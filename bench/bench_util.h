// Shared helpers for the experiment harnesses (E1..E8).
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"

namespace rn::bench {

inline void print_header(const char* id, const char* claim,
                         const char* profile) {
  std::cout << "==============================================================\n"
            << id << " — " << claim << "\n"
            << "constants profile: " << profile << "\n"
            << "==============================================================\n";
}

/// Mean of `fn(seed)` over seeds 1..reps.
inline double mean_over_seeds(int reps,
                              const std::function<double(std::uint64_t)>& fn) {
  sample_stats s;
  for (int i = 1; i <= reps; ++i) s.add(fn(static_cast<std::uint64_t>(i)));
  return s.mean();
}

}  // namespace rn::bench
