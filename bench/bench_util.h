// DEPRECATED compatibility shim for the pre-sim experiment harnesses.
//
// The serial `mean_over_seeds` loop and ad-hoc iostream reporting were
// replaced by the trial-parallel engine in src/sim/ (sim::run_trials,
// sim::experiment, sim::run_suite). New code should define a
// `sim::experiment` in bench/experiments/ instead of using this header.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>

#include "common/check.h"
#include "sim/experiment.h"
#include "sim/runner.h"

namespace rn::bench {

[[deprecated("use sim::print_report via a registered sim::experiment")]]
inline void print_header(const char* id, const char* claim,
                         const char* profile) {
  std::cout << "==============================================================\n"
            << id << " — " << claim << "\n"
            << "constants profile: " << profile << "\n"
            << "==============================================================\n";
}

/// Mean of `fn(seed)` over seeds 1..reps. Runs on the sim engine (serially,
/// to preserve the historical seed sequence 1..reps exactly).
[[deprecated("use sim::run_trials, which parallelizes and seeds via rng streams")]]
inline double mean_over_seeds(int reps,
                              const std::function<double(std::uint64_t)>& fn) {
  RN_REQUIRE(reps >= 1, "mean_over_seeds requires reps >= 1");
  sim::run_config cfg;
  cfg.trials = static_cast<std::size_t>(reps);
  cfg.threads = 1;
  const auto results = sim::run_trials(cfg, [&fn](std::size_t trial, rng&) {
    sim::metrics m;
    m.set("value", fn(static_cast<std::uint64_t>(trial) + 1));
    return m;
  });
  return sim::aggregate(results.per_trial).front().stats.mean;
}

}  // namespace rn::bench
