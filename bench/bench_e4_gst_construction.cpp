// E4 — distributed GST construction cost (Theorem 2.1) and the pipelining
// ablation (section 2.2.4).
//
// Claims: construction rounds grow linearly in D; the pipelined schedule
// replaces the (depth x rank) slot product with a sum (asymptotically
// O(D log^4) vs O(D log^5); at laptop scale the win factor is ~L/6).
// Validity and [DEV-9] fallback counters are reported for every run.
#include <iostream>

#include "bench_util.h"
#include "core/gst_distributed.h"
#include "graph/bfs.h"
#include "graph/generators.h"

using namespace rn;

int main() {
  bench::print_header("E4: distributed GST construction rounds vs D",
                      "Theorem 2.1: O(D log^4 n) pipelined vs O(D log^5 n) "
                      "sequential; all outputs validated",
                      "fast");
  const int reps = 3;
  text_table table({"D", "n", "pipelined", "sequential", "ratio", "valid",
                    "fallbacks"});
  for (int d : {6, 12, 24, 48}) {
    graph::layered_options lo;
    lo.depth = static_cast<std::size_t>(d);
    lo.width = 3;
    lo.edge_prob = 0.4;
    double pip = 0, seq = 0;
    int valid = 0, fallbacks = 0;
    for (int i = 1; i <= reps; ++i) {
      lo.seed = static_cast<std::uint64_t>(i) * 53;
      const auto g = graph::random_layered(lo);
      core::distributed_gst_options opt;
      opt.seed = static_cast<std::uint64_t>(i);
      opt.prm = core::params::fast();
      opt.pipelined = true;
      const auto p = core::build_gst_distributed_single(g, 0, opt);
      opt.pipelined = false;
      const auto s = core::build_gst_distributed_single(g, 0, opt);
      pip += static_cast<double>(p.rounds) / reps;
      seq += static_cast<double>(s.rounds) / reps;
      valid += core::validate_gst(g, p.forests[0]).empty() &&
                       core::validate_gst(g, s.forests[0]).empty()
                   ? 1
                   : 0;
      fallbacks += p.fallback_finalizations + p.fallback_adoptions +
                   s.fallback_finalizations + s.fallback_adoptions;
    }
    table.add_row({std::to_string(d), std::to_string(1 + d * 3),
                   text_table::num(pip), text_table::num(seq),
                   text_table::num(seq / pip, 2),
                   std::to_string(valid) + "/" + std::to_string(reps),
                   std::to_string(fallbacks)});
  }
  table.print(std::cout);
  std::cout << "\n(ratio should exceed 1 and grow with D; both columns scale "
               "linearly in D)\n";
  return 0;
}
