// E4 — distributed GST construction cost (thin wrapper; the experiment
// definition lives in experiments/e4_gst_construction.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e4");
}
