// Consolidated experiment harness: runs any registered experiment (E1..E10)
// or an ad-hoc declarative workload on the scenario-parallel Monte Carlo
// engine.
//
//   bench_suite --list
//   bench_suite --experiment e1 --trials 64 --threads 8 --json out.json
//   bench_suite --experiment all --trials 2 --json bench.json
//   bench_suite --topology power_law:n=4096 --protocol decay,gst-known
//               --sweep edges_per_node=1,2,4 --trials 16
//
// Results are bit-identical for a given (seed, trials) at any --threads.
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv);
}
