// E8 — coding layer: RLNC decode overhead, FEC fountain overhead, and the
// generation-size ablation behind [DEV-7] / paper footnote 5.
//
// Claims: random GF(2) combinations decode after k + O(1) innovative packets
// (expected overhead ~1.6 packets, no coupon-collector term); splitting k
// messages into generations of size b trades header bits (b per packet) for
// a small extra-packet overhead per generation.
#include <iostream>

#include "bench_util.h"
#include "coding/gf2.h"
#include "coding/rlnc.h"
#include "common/rng.h"

using namespace rn;
using namespace rn::coding;

int main() {
  bench::print_header("E8: RLNC / FEC decoding overhead",
                      "decode at k + O(1) packets; generations trade header "
                      "size for small per-batch overhead",
                      "n/a (pure coding)");
  const int reps = 200;

  text_table t1({"k", "mean_packets_to_decode", "overhead"});
  for (std::size_t k : {2, 4, 8, 16, 32, 64, 128}) {
    double total = 0;
    for (int i = 1; i <= reps; ++i) {
      rng r(static_cast<std::uint64_t>(i) * 97 + k);
      gf2_decoder src(k, 1);
      for (std::size_t m = 0; m < k; ++m)
        src.insert(gf2_vector::unit(k, m), {static_cast<std::uint8_t>(m)});
      gf2_decoder sink(k, 1);
      int packets = 0;
      while (!sink.complete()) {
        auto row = src.random_combination(r);
        sink.insert(std::move(row.coeffs), std::move(row.payload));
        ++packets;
      }
      total += packets;
    }
    const double mean = total / reps;
    t1.add_row({std::to_string(k), text_table::num(mean, 2),
                text_table::num(mean - static_cast<double>(k), 2)});
  }
  t1.print(std::cout);
  std::cout << "\n(overhead ~1.6 packets regardless of k — the expected "
               "number of non-innovative random GF(2) draws)\n\n";

  // Generation ablation: deliver k = 64 messages through one lossy relay hop
  // (each packet lost with probability 0.3), coding within generations only.
  const std::size_t k = 64;
  text_table t2({"generation_size", "header_bits/packet", "mean_packets_sent"});
  for (std::size_t gen : {4, 8, 16, 32, 64}) {
    batch_layout bl{k, gen};
    double total = 0;
    for (int i = 1; i <= 50; ++i) {
      rng r(static_cast<std::uint64_t>(i) * 131 + gen);
      int sent = 0;
      for (std::size_t b = 0; b < bl.batch_count(); ++b) {
        const std::size_t dim = bl.size_of(b);
        gf2_decoder src(dim, 1);
        for (std::size_t m = 0; m < dim; ++m)
          src.insert(gf2_vector::unit(dim, m), {static_cast<std::uint8_t>(m)});
        gf2_decoder sink(dim, 1);
        while (!sink.complete()) {
          auto row = src.random_combination(r);
          ++sent;
          if (r.bernoulli(0.3)) continue;  // packet lost
          sink.insert(std::move(row.coeffs), std::move(row.payload));
        }
      }
      total += sent;
    }
    t2.add_row({std::to_string(gen), std::to_string(gen),
                text_table::num(total / 50, 1)});
  }
  t2.print(std::cout);
  std::cout << "\n(smaller generations: smaller coefficient headers — the "
               "paper's O(log n) bound — at ~2 extra packets per batch)\n";
  return 0;
}
