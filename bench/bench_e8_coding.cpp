// E8 — coding layer overheads (thin wrapper; the experiment definition
// lives in experiments/e8_coding.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e8");
}
