// E1 — single-message broadcast rounds vs diameter D (thin wrapper; the
// experiment definition lives in experiments/e1_single_vs_d.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e1");
}
