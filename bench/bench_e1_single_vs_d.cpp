// E1 — single-message broadcast rounds vs diameter D at (roughly) fixed n.
//
// Claim under test (Theorem 1.1 vs prior work): GST-based algorithms have an
// *additive* dependence on D (slope ~constant rounds per hop) while
// Decay-style algorithms pay a multiplicative ~log n per hop. The Theorem 1.1
// pipeline's one-time setup (wave + construction + labeling) is reported
// separately from its dissemination phase.
#include <iostream>

#include "bench_util.h"
#include "core/api.h"
#include "core/single_broadcast.h"
#include "graph/generators.h"

using namespace rn;

int main() {
  bench::print_header(
      "E1: single-message rounds vs D",
      "GST algorithms: additive D; Decay baselines: ~D log n", "fast");
  const int reps = 5;
  const std::size_t total_width = 240;

  text_table table({"D", "width", "n", "decay", "tuned", "gst_known",
                    "thm1.1_bcast", "thm1.1_setup"});
  double first_decay = 0, last_decay = 0, first_gst = 0, last_gst = 0;
  int first_d = 0, last_d = 0;
  for (int d : {8, 12, 24, 40, 60}) {
    const std::size_t width = total_width / static_cast<std::size_t>(d);
    graph::layered_options lo;
    lo.depth = static_cast<std::size_t>(d);
    lo.width = width;
    lo.edge_prob = 0.4;
    auto make = [&](std::uint64_t seed) {
      lo.seed = seed * 101;
      return graph::random_layered(lo);
    };
    auto run = [&](core::single_algorithm alg) {
      return bench::mean_over_seeds(reps, [&](std::uint64_t seed) {
        const auto g = make(seed);
        core::run_options opt;
        opt.seed = seed;
        opt.prm = core::params::fast();
        return static_cast<double>(
            core::run_single(g, 0, alg, opt).rounds_to_complete);
      });
    };
    const double decay = run(core::single_algorithm::decay);
    const double tuned = run(core::single_algorithm::tuned_decay);
    const double gst = run(core::single_algorithm::gst_known);
    // Theorem 1.1: separate setup (one-time) from dissemination.
    double bcast = 0, setup = 0;
    const int reps11 = 2;  // the Thm 1.1 pipeline simulates millions of rounds
    for (int i = 1; i <= reps11; ++i) {
      const auto g = make(static_cast<std::uint64_t>(i));
      core::single_broadcast_options opt;
      opt.seed = static_cast<std::uint64_t>(i);
      opt.prm = core::params::fast();
      const auto res = core::run_unknown_cd_single_broadcast(g, 0, opt);
      round_t s = 0;
      for (const auto& [name, r] : res.phase_rounds)
        if (std::string(name) != "ring_relay") s += r;
      setup += static_cast<double>(s) / reps11;
      bcast += static_cast<double>(res.rounds_to_complete - s) / reps11;
    }
    table.add_row({std::to_string(d), std::to_string(width),
                   std::to_string(1 + d * width), text_table::num(decay),
                   text_table::num(tuned), text_table::num(gst),
                   text_table::num(bcast), text_table::num(setup)});
    if (first_d == 0) {
      first_d = d;
      first_decay = decay;
      first_gst = gst;
    }
    last_d = d;
    last_decay = decay;
    last_gst = gst;
  }
  table.print(std::cout);
  const double slope_decay = (last_decay - first_decay) / (last_d - first_d);
  const double slope_gst = (last_gst - first_gst) / (last_d - first_d);
  std::cout << "\nmarginal rounds per hop:  decay " << text_table::num(slope_decay, 2)
            << "   gst_known " << text_table::num(slope_gst, 2)
            << "   (expected: decay >> gst_known; gst slope ~2-3 = fast-"
               "transmission pipelining)\n";
  return 0;
}
