// E9 — ring-width ablation (thin wrapper; the experiment definition lives
// in experiments/e9_ring_ablation.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e9");
}
