// E9 — ring-width ablation for the Theorem 1.1 pipeline [DEV-6].
//
// The paper sets ring width D / log^4 n (one ring when D is small). The
// width trades per-ring GST construction cost (grows with width) against
// relay overhead (more rings = more Decay handoffs and more sequential
// per-ring broadcasts). This harness sweeps the divisor on a deep graph.
#include <iostream>

#include "bench_util.h"
#include "core/single_broadcast.h"
#include "graph/bfs.h"
#include "graph/generators.h"

using namespace rn;

int main() {
  bench::print_header(
      "E9: Theorem 1.1 ring-width ablation (layered, D = 24, n = 97)",
      "wider rings: cheaper relay, costlier construction wavefront", "fast");
  const int reps = 2;
  graph::layered_options lo;
  lo.depth = 24;
  lo.width = 4;
  lo.edge_prob = 0.4;

  text_table table({"ring_divisor", "rings", "setup", "relay", "completed"});
  for (double divisor : {0.0, 2.0, 4.0, 8.0}) {
    double setup = 0, relay = 0;
    std::size_t rings = 0;
    int ok = 0;
    for (int i = 1; i <= reps; ++i) {
      lo.seed = static_cast<std::uint64_t>(i) * 61;
      const auto g = graph::random_layered(lo);
      core::single_broadcast_options opt;
      opt.seed = static_cast<std::uint64_t>(i);
      opt.prm = core::params::fast();
      opt.prm.ring_divisor = divisor;
      const auto res = core::run_unknown_cd_single_broadcast(g, 0, opt);
      round_t s = 0, rel = 0;
      for (const auto& [name, r] : res.phase_rounds)
        (std::string(name) == "ring_relay" ? rel : s) += r;
      setup += static_cast<double>(s) / reps;
      relay += static_cast<double>(rel) / reps;
      ok += res.completed ? 1 : 0;
      core::single_broadcast_options popt = opt;
      rings = core::decompose_rings(
                  graph::bfs(g, 0).level,
                  core::ring_width_for(24, divisor))
                  .rings.size();
    }
    table.add_row({text_table::num(divisor, 1), std::to_string(rings),
                   text_table::num(setup), text_table::num(relay),
                   std::to_string(ok) + "/" + std::to_string(reps)});
  }
  table.print(std::cout);
  std::cout << "\n(setup shrinks as rings narrow — shorter construction "
               "wavefront per ring — while relay grows with the number of "
               "handoffs; the paper picks width D/log^4 n so both sides are "
               "O(D))\n";
  return 0;
}
