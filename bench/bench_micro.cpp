// M1 — micro-benchmarks (google-benchmark): simulator and coding throughput.
#include <benchmark/benchmark.h>

#include <functional>

#include "baseline/decay.h"
#include "coding/gf2.h"
#include "common/rng.h"
#include "core/gst_centralized.h"
#include "core/gst_distributed.h"
#include "graph/generators.h"
#include "radio/network.h"

using namespace rn;

// The owned-packet slow path: every round mints per-node packets into the
// round_buffer arena and dispatches receptions through a type-erased
// std::function. (Historically this measured the deleted legacy by-value
// step adapter; the round shape is unchanged so the perf trajectory stays
// comparable.)
static void BM_NetworkStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_gnp_connected(n, 8.0 / static_cast<double>(n), 1);
  radio::network net(g, {.collision_detection = true});
  rng r(1);
  radio::round_buffer txs;
  const std::function<void(const radio::reception&)> on_rx =
      [](const radio::reception&) {};
  for (auto _ : state) {
    txs.clear();
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(3))
        txs.add_owned(v, radio::packet::make_beacon(v));
    net.step(txs, on_rx);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetworkStep)->Arg(64)->Arg(512)->Arg(4096);

// The zero-allocation transmit path: a reusable round_buffer referencing
// per-node flyweight packets, receptions statically dispatched. Same round
// shape as BM_NetworkStep minus the per-round packet copies and the
// std::function hop — the gap between the two is the type-erasure tax.
static void BM_StepNoAlloc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_gnp_connected(n, 8.0 / static_cast<double>(n), 1);
  radio::network net(g, {.collision_detection = true});
  rng r(1);
  std::vector<radio::packet> beacons;
  beacons.reserve(n);
  for (node_id v = 0; v < n; ++v)
    beacons.push_back(radio::packet::make_beacon(v));
  radio::round_buffer txs;
  std::int64_t sink = 0;
  for (auto _ : state) {
    txs.clear();
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(3)) txs.add(v, beacons[v]);
    net.step(txs, [&](const radio::reception& rx) { sink += rx.listener; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StepNoAlloc)->Arg(64)->Arg(512)->Arg(4096);

// The intra-trial sharded walk: same dense round as BM_StepNoAlloc on a
// bigger graph, row walks sharded across Arg(0) team threads (volume floor
// lowered so every round engages the team). Arg(0)=1 is the serial walk —
// the ratio between the two rows is the intra-trial speedup on this
// machine; results are byte-identical either way (tests/test_radio.cpp).
static void BM_StepSharded(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const auto g = graph::random_gnp_connected(n, 16.0 / static_cast<double>(n), 1);
  radio::network net(g, {.collision_detection = true});
  net.set_min_parallel_volume(0);
  net.enable_intra_trial(static_cast<unsigned>(state.range(0)));
  rng r(1);
  std::vector<radio::packet> beacons;
  beacons.reserve(n);
  for (node_id v = 0; v < n; ++v)
    beacons.push_back(radio::packet::make_beacon(v));
  radio::round_buffer txs;
  std::int64_t sink = 0;
  for (auto _ : state) {
    txs.clear();
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(3)) txs.add(v, beacons[v]);
    net.step(txs, [&](const radio::reception& rx) { sink += rx.listener; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StepSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The vectorized reception walk: same dense round as BM_StepSharded on the
// serial path, row walks run by the kernel tier selected via Arg(0)
// (0 = scalar, 1 = AVX2, 2 = AVX-512). Rows the CPU or build cannot run are
// skipped. The ratio between rows is the SIMD speedup of the phase-B walk;
// results are byte-identical across all three (tests/test_radio.cpp).
static void BM_StepSimd(benchmark::State& state) {
  const auto lvl = static_cast<radio::simd_level>(state.range(0));
  if (lvl > radio::detected_simd_level()) {
    state.SkipWithError("kernel level not available on this CPU/build");
    return;
  }
  const radio::simd_level prev = radio::active_simd_level();
  radio::set_simd_level(lvl);
  const std::size_t n = 1 << 16;
  const auto g = graph::random_gnp_connected(n, 16.0 / static_cast<double>(n), 1);
  radio::network net(g, {.collision_detection = true});
  rng r(1);
  std::vector<radio::packet> beacons;
  beacons.reserve(n);
  for (node_id v = 0; v < n; ++v)
    beacons.push_back(radio::packet::make_beacon(v));
  radio::round_buffer txs;
  std::int64_t sink = 0;
  for (auto _ : state) {
    txs.clear();
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(3)) txs.add(v, beacons[v]);
    net.step(txs, [&](const radio::reception& rx) { sink += rx.listener; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetLabel(radio::to_string(lvl));
  radio::set_simd_level(prev);
}
BENCHMARK(BM_StepSimd)->Arg(0)->Arg(1)->Arg(2);

// Per-round cost of the Decay baseline on its batched coin calendar
// (counter-based blocks + next-transmit sampling; baseline/decay.h). Tracks
// the e10 Decay column's hot loop; items = simulated protocol rounds.
static void BM_DecayRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_gnp_connected(n, 8.0 / static_cast<double>(n), 1);
  std::uint64_t seed = 1;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    baseline::decay_options opt;
    opt.seed = ++seed;
    opt.fast_forward = true;
    const auto res = baseline::run_decay_broadcast(g, 0, opt);
    rounds += res.rounds_executed;
    benchmark::DoNotOptimize(res.transmissions);
  }
  state.SetItemsProcessed(rounds);
  state.counters["rounds_per_run"] =
      static_cast<double>(rounds) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
}
BENCHMARK(BM_DecayRound)->Arg(512)->Arg(4096)->Unit(benchmark::kMicrosecond);

// Fast-forwarding idle rounds must stay O(1) per call regardless of graph
// size — this tracks the advance() hot path (and would catch any accidental
// per-node work creeping into it).
static void BM_NetworkAdvance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::random_gnp_connected(n, 8.0 / static_cast<double>(n), 1);
  radio::network net(g, {.collision_detection = true});
  for (auto _ : state) {
    net.advance(1 << 20);
    benchmark::DoNotOptimize(net.now());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkAdvance)->Arg(64)->Arg(4096);

// End-to-end fast-forwarded Theorem 2.1 construction: the protocol simulates
// ~10^6 rounds; wall-clock here tracks how well the quiet-round analysis
// collapses them (the CI perf gate trends this).
static void BM_GstConstructionFastForward(benchmark::State& state) {
  graph::layered_options lo;
  lo.depth = static_cast<std::size_t>(state.range(0));
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = 5;
  const auto g = graph::random_layered(lo);
  core::distributed_gst_options opt;
  opt.seed = 11;
  opt.prm = core::params::fast();
  opt.fast_forward = true;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    auto out = core::build_gst_distributed_single(g, 0, opt);
    rounds = out.rounds;
    benchmark::DoNotOptimize(out.parent_rank.data());
  }
  state.counters["protocol_rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_GstConstructionFastForward)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

static void BM_Gf2DecoderInsert(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  rng r(2);
  coding::gf2_decoder src(k, 32);
  for (std::size_t i = 0; i < k; ++i)
    src.insert(coding::gf2_vector::unit(k, i),
               std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i)));
  for (auto _ : state) {
    state.PauseTiming();
    coding::gf2_decoder sink(k, 32);
    state.ResumeTiming();
    while (!sink.complete()) {
      auto row = src.random_combination(r);
      sink.insert(std::move(row.coeffs), std::move(row.payload));
    }
    benchmark::DoNotOptimize(sink.rank());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_Gf2DecoderInsert)->Arg(8)->Arg(64)->Arg(256);

static void BM_CentralizedGst(benchmark::State& state) {
  graph::layered_options lo;
  lo.depth = static_cast<std::size_t>(state.range(0));
  lo.width = 8;
  lo.edge_prob = 0.4;
  lo.seed = 3;
  const auto g = graph::random_layered(lo);
  for (auto _ : state) {
    auto t = core::build_gst_centralized(g, 0);
    benchmark::DoNotOptimize(t.max_rank());
  }
}
BENCHMARK(BM_CentralizedGst)->Arg(8)->Arg(32)->Arg(128);

static void BM_RngPow2(benchmark::State& state) {
  rng r(4);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += r.with_probability_pow2(5) ? 1 : 0;
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngPow2);

BENCHMARK_MAIN();
