// E3 — k-message broadcast rounds vs k (Theorems 1.2/1.3 vs baselines).
//
// Claims: RLNC over the MMV-GST schedule pays ~log n-scale rounds per extra
// message; sequential Decay pays ~D log n per message; random routing sits in
// between with a coupon-collector tail. Theorem 1.3's one-time setup is
// reported separately.
#include <iostream>

#include "bench_util.h"
#include "core/api.h"
#include "core/multi_broadcast.h"
#include "graph/generators.h"

using namespace rn;

int main() {
  bench::print_header(
      "E3: k-message rounds vs k (layered graph, D = 16, n = 81)",
      "Thm 1.2/1.3: ~k log n; sequential baseline: ~k D log n", "fast");
  const int reps = 3;
  graph::layered_options lo;
  lo.depth = 16;
  lo.width = 5;
  lo.edge_prob = 0.4;

  text_table table({"k", "seq_decay", "routing", "rlnc_known(1.2)",
                    "rlnc_unknown(1.3)", "thm1.3_setup"});
  for (std::size_t k : {2, 4, 8, 16, 32}) {
    auto run = [&](core::multi_algorithm alg) {
      return bench::mean_over_seeds(reps, [&](std::uint64_t seed) {
        lo.seed = seed * 71;
        const auto g = graph::random_layered(lo);
        core::run_options opt;
        opt.seed = seed;
        opt.prm = core::params::fast();
        return static_cast<double>(
            core::run_multi(g, 0, k, alg, opt).rounds_to_complete);
      });
    };
    const double seq = run(core::multi_algorithm::sequential_decay);
    const double routing = run(core::multi_algorithm::routing);
    const double known = run(core::multi_algorithm::rlnc_known);
    double unknown_bcast = 0, setup = 0;
    for (int i = 1; i <= reps; ++i) {
      lo.seed = static_cast<std::uint64_t>(i) * 71;
      const auto g = graph::random_layered(lo);
      core::multi_broadcast_options opt;
      opt.seed = static_cast<std::uint64_t>(i);
      opt.prm = core::params::fast();
      opt.payload_size = 16;
      const auto msgs = coding::make_test_messages(k, 16, 7);
      const auto res = core::run_unknown_cd_multi_broadcast(g, 0, msgs, opt);
      round_t s = 0;
      for (const auto& [name, r] : res.base.phase_rounds)
        if (std::string(name) != "batch_pipeline") s += r;
      setup += static_cast<double>(s) / reps;
      unknown_bcast +=
          static_cast<double>(res.base.rounds_to_complete - s) / reps;
    }
    table.add_row({std::to_string(k), text_table::num(seq),
                   text_table::num(routing), text_table::num(known),
                   text_table::num(unknown_bcast), text_table::num(setup)});
  }
  table.print(std::cout);
  std::cout << "\n(per-message slope: seq ~D log n; rlnc ~6 log n, "
               "independent of D)\n";
  return 0;
}
