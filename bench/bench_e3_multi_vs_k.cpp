// E3 — k-message broadcast rounds vs k (thin wrapper; the experiment
// definition lives in experiments/e3_multi_vs_k.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e3");
}
