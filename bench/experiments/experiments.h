// Registration entry points for the E1..E10 experiments.
//
// Each experiment lives in its own translation unit and registers a
// `sim::experiment` into the process-wide registry. Registration is explicit
// (no self-registering statics — a static library would silently drop them):
// every harness main calls register_all() before sim::run_suite().
#pragma once

namespace rn::sim {
class registry;
}

namespace rn::bench {

void register_e1(sim::registry& reg);
void register_e2(sim::registry& reg);
void register_e3(sim::registry& reg);
void register_e4(sim::registry& reg);
void register_e5(sim::registry& reg);
void register_e6(sim::registry& reg);
void register_e7(sim::registry& reg);
void register_e8(sim::registry& reg);
void register_e9(sim::registry& reg);
void register_e10(sim::registry& reg);

/// Registers E1..E10 into sim::registry::instance(); idempotent.
void register_all();

}  // namespace rn::bench
