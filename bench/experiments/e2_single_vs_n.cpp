// E2 — single-message broadcast rounds vs n at fixed diameter.
//
// Claim: at fixed D, all algorithms grow polylogarithmically in n; the
// GST-based broadcast stays near its D-dominated floor.
#include <string>

#include "core/params.h"
#include "experiments/experiments.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e2(sim::registry& reg) {
  sim::experiment e;
  e.id = "e2";
  e.title = "single-message rounds vs n (fixed D = 12)";
  e.claim = "polylog growth in n for every algorithm";
  e.profile = "fast";
  e.default_trials = 5;
  e.metric_columns = {"decay", "tuned", "gst_known"};
  e.notes = "(n grows 32x; rounds should grow only a few-fold)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const std::size_t width : {2, 4, 8, 16, 32, 64}) {
      sim::scenario sc;
      sc.label = "n=" + std::to_string(1 + 12 * width);
      sc.params = {{"n", static_cast<double>(1 + 12 * width)},
                   {"width", static_cast<double>(width)}};
      sc.topology.kind = "layered";
      sc.topology.params = {{"depth", 12.0},
                            {"width", static_cast<double>(width)},
                            {"edge_prob", 0.4}};
      sc.options.prm = core::params::fast();
      sc.probes = {{"decay", "decay"},
                   {"tuned-decay", "tuned"},
                   {"gst-known", "gst_known"}};
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
