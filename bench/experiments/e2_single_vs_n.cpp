// E2 — single-message broadcast rounds vs n at fixed diameter.
//
// Claim: at fixed D, all algorithms grow polylogarithmically in n; the
// GST-based broadcast stays near its D-dominated floor.
#include <string>

#include "core/api.h"
#include "experiments/experiments.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e2(sim::registry& reg) {
  sim::experiment e;
  e.id = "e2";
  e.title = "single-message rounds vs n (fixed D = 12)";
  e.claim = "polylog growth in n for every algorithm";
  e.profile = "fast";
  e.default_trials = 5;
  e.metric_columns = {"decay", "tuned", "gst_known"};
  e.notes = "(n grows 32x; rounds should grow only a few-fold)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const std::size_t width : {2, 4, 8, 16, 32, 64}) {
      sim::scenario sc;
      sc.label = "n=" + std::to_string(1 + 12 * width);
      sc.params = {{"n", static_cast<double>(1 + 12 * width)},
                   {"width", static_cast<double>(width)}};
      sc.run = [width](std::size_t, rng& r) {
        graph::layered_options lo;
        lo.depth = 12;
        lo.width = width;
        lo.edge_prob = 0.4;
        lo.seed = r();
        const auto g = graph::random_layered(lo);
        core::run_options opt;
        opt.fast_forward = sim::use_fast_forward();
        opt.prm = core::params::fast();
        sim::metrics m;
        for (const auto& [name, alg] :
             {std::pair{"decay", core::single_algorithm::decay},
              std::pair{"tuned", core::single_algorithm::tuned_decay},
              std::pair{"gst_known", core::single_algorithm::gst_known}}) {
          opt.seed = r();
          m.set(name, static_cast<double>(
                          core::run_single(g, 0, alg, opt).rounds_to_complete));
        }
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
