// E5 — multi-message viability (Definition 3.1) under noise injection.
//
// Claims: the leveled Decay schedule (Lemma 3.2) and the paper's new
// virtual-distance-keyed GST schedule (Lemma 3.3) complete even when every
// prompted node without the message jams; the classic level-keyed GST
// schedule of [7]/[19] — which the paper argues is *not* MMV — degrades.
#include <string>

#include "baseline/decay.h"
#include "core/gst_broadcast.h"
#include "core/gst_centralized.h"
#include "experiments/experiments.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e5(sim::registry& reg) {
  sim::experiment e;
  e.id = "e5";
  e.title = "broadcast under MMV noise (uninformed prompted nodes jam)";
  e.claim =
      "Lemmas 3.2/3.3: vdist-keyed schedules stay fast; classic level-keyed "
      "schedule is not MMV";
  e.profile = "paper";
  e.default_trials = 10;
  e.metric_columns = {"completed", "rounds"};
  e.notes =
      "(the classic schedule may still complete within its budget; the MMV "
      "claim is about *guaranteed* progress — compare round inflation under "
      "+noise. rounds averages completed runs only.)";
  e.make_scenarios = [] {
    struct variant {
      const char* name;
      bool noise;
      bool classic;
      bool leveled_decay;
    };
    const variant variants[] = {
        {"leveled_decay", false, false, true},
        {"leveled_decay+noise", true, false, true},
        {"mmv_gst", false, false, false},
        {"mmv_gst+noise", true, false, false},
        {"classic_gst", false, true, false},
        {"classic_gst+noise", true, true, false},
    };
    std::vector<sim::scenario> out;
    for (const auto& v : variants) {
      sim::scenario sc;
      sc.label = v.name;
      sc.run = [v](std::size_t, rng& r) {
        graph::layered_options lo;
        lo.depth = 12;
        lo.width = 5;
        lo.edge_prob = 0.4;
        lo.intra_prob = 0.2;
        lo.seed = r();
        const auto g = graph::random_layered(lo);
        radio::broadcast_result res;
        if (v.leveled_decay) {
          baseline::leveled_decay_options opt;
          opt.seed = r();
          opt.mmv_noise = v.noise;
          opt.fast_forward = sim::use_fast_forward();
          res = baseline::run_leveled_decay_broadcast(
              g, 0, graph::bfs(g, 0).level, opt);
        } else {
          const auto t = core::build_gst_centralized(g, 0);
          const auto d = core::derive(g, t);
          core::gst_broadcast_options opt;
          opt.seed = r();
          opt.mmv_noise = v.noise;
          opt.classic_levels = v.classic;
          opt.fast_forward = sim::use_fast_forward();
          res = core::run_gst_single_broadcast(g, t, d, {0}, opt);
        }
        return sim::of_broadcast_result(res);
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
