// E6 — the Recruiting protocol (Lemma 2.3).
//
// Claims: within Theta(log^3 n) rounds every blue with a red neighbor is
// recruited w.h.p., and the count/class knowledge of both sides is exact
// (properties (b)/(c) — unconditionally, thanks to [DEV-2]).
#include <string>

#include "common/math.h"
#include "core/recruiting.h"
#include "experiments/experiments.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e6(sim::registry& reg) {
  sim::experiment e;
  e.id = "e6";
  e.title = "recruiting success vs instance size";
  e.claim =
      "Lemma 2.3: all blues recruited in Theta(log^3 n) rounds; class "
      "knowledge exact";
  e.profile = "paper-grade (6 L^2 iterations)";
  e.default_trials = 10;
  e.metric_columns = {"rounds", "rounds_per_L3", "recruited_pct", "props_ok"};
  e.notes = "(rounds/L^3 stays bounded: the Theta(log^3 n) claim)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const std::size_t half : {8, 16, 32, 64, 128}) {
      const std::size_t n = 2 * half;
      const int L = log_range(n) + 1;
      sim::scenario sc;
      sc.label = "n=" + std::to_string(n);
      sc.params = {{"n", static_cast<double>(n)},
                   {"L", static_cast<double>(L)}};
      sc.run = [half, n, L](std::size_t, rng& r) {
        graph::graph::builder gb(n);
        for (node_id red = 0; red < half; ++red)
          for (node_id blue = 0; blue < half; ++blue)
            if (r.bernoulli(4.0 / static_cast<double>(half)))
              gb.add_edge(red, static_cast<node_id>(half + blue));
        const auto g = std::move(gb).build();
        std::vector<node_id> reds, blues;
        for (node_id red = 0; red < half; ++red) reds.push_back(red);
        for (node_id blue = 0; blue < half; ++blue)
          if (g.degree(static_cast<node_id>(half + blue)) > 0)
            blues.push_back(static_cast<node_id>(half + blue));
        const int iters = 6 * L * L;
        const auto res = core::run_recruiting(g, reds, blues, L, iters,
                                              L, r(), sim::use_fast_forward());
        sim::metrics m;
        m.set("rounds", static_cast<double>(res.rounds));
        m.set("rounds_per_L3",
              static_cast<double>(res.rounds) / static_cast<double>(L * L * L));
        m.set("recruited_pct",
              res.blues > 0 ? 100.0 * static_cast<double>(res.recruited) /
                                  static_cast<double>(res.blues)
                            : 100.0);
        m.set("props_ok", res.properties_ok ? 1.0 : 0.0);
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
