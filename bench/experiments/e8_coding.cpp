// E8 — coding layer: RLNC decode overhead, FEC fountain overhead, and the
// generation-size ablation behind [DEV-7] / paper footnote 5.
//
// (No radio rounds are simulated here, so there is nothing for the
// fast-forward engine to skip — this is the one experiment that does not opt
// into sim::use_fast_forward().)
//
// Claims: random GF(2) combinations decode after k + O(1) innovative packets
// (expected overhead ~1.6 packets, no coupon-collector term); splitting k
// messages into generations of size b trades header bits (b per packet) for
// a small extra-packet overhead per generation.
#include <string>

#include "coding/gf2.h"
#include "coding/rlnc.h"
#include "experiments/experiments.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e8(sim::registry& reg) {
  sim::experiment e;
  e.id = "e8";
  e.title = "RLNC / FEC decoding overhead";
  e.claim =
      "decode at k + O(1) packets; generations trade header size for small "
      "per-batch overhead";
  e.profile = "n/a (pure coding)";
  e.default_trials = 50;
  e.metric_columns = {"packets_to_decode", "overhead", "packets_sent"};
  e.notes =
      "(overhead ~1.6 packets regardless of k — the expected number of "
      "non-innovative random GF(2) draws. gen=* rows: one lossy relay hop, "
      "packet loss 0.3 — smaller generations mean smaller coefficient headers "
      "at ~2 extra packets per batch.)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const std::size_t k : {2, 4, 8, 16, 32, 64, 128}) {
      sim::scenario sc;
      sc.label = "k=" + std::to_string(k);
      sc.params = {{"k", static_cast<double>(k)}};
      sc.run = [k](std::size_t, rng& r) {
        coding::gf2_decoder src(k, 1);
        for (std::size_t i = 0; i < k; ++i)
          src.insert(coding::gf2_vector::unit(k, i),
                     {static_cast<std::uint8_t>(i)});
        coding::gf2_decoder sink(k, 1);
        int packets = 0;
        while (!sink.complete()) {
          auto row = src.random_combination(r);
          sink.insert(std::move(row.coeffs), std::move(row.payload));
          ++packets;
        }
        sim::metrics m;
        m.set("packets_to_decode", packets);
        m.set("overhead", packets - static_cast<double>(k));
        return m;
      };
      out.push_back(std::move(sc));
    }
    // Generation ablation: deliver k = 64 messages through one lossy relay
    // hop (each packet lost with probability 0.3), coding within generations.
    const std::size_t k = 64;
    for (const std::size_t gen : {4, 8, 16, 32, 64}) {
      sim::scenario sc;
      sc.label = "gen=" + std::to_string(gen);
      sc.params = {{"generation_size", static_cast<double>(gen)},
                   {"header_bits", static_cast<double>(gen)}};
      sc.run = [k, gen](std::size_t, rng& r) {
        coding::batch_layout bl{k, gen};
        int sent = 0;
        for (std::size_t b = 0; b < bl.batch_count(); ++b) {
          const std::size_t dim = bl.size_of(b);
          coding::gf2_decoder src(dim, 1);
          for (std::size_t i = 0; i < dim; ++i)
            src.insert(coding::gf2_vector::unit(dim, i),
                       {static_cast<std::uint8_t>(i)});
          coding::gf2_decoder sink(dim, 1);
          while (!sink.complete()) {
            auto row = src.random_combination(r);
            ++sent;
            if (r.bernoulli(0.3)) continue;  // packet lost
            sink.insert(std::move(row.coeffs), std::move(row.payload));
          }
        }
        sim::metrics m;
        m.set("packets_sent", sent);
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
