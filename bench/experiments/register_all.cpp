#include "experiments/experiments.h"

#include "sim/experiment.h"

namespace rn::bench {

void register_all() {
  static const bool done = [] {
    auto& reg = sim::registry::instance();
    register_e1(reg);
    register_e2(reg);
    register_e3(reg);
    register_e4(reg);
    register_e5(reg);
    register_e6(reg);
    register_e7(reg);
    register_e8(reg);
    register_e9(reg);
    register_e10(reg);
    return true;
  }();
  (void)done;
}

}  // namespace rn::bench
