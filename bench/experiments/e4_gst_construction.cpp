// E4 — distributed GST construction cost (Theorem 2.1) and the pipelining
// ablation (section 2.2.4).
//
// Claims: construction rounds grow linearly in D; the pipelined schedule
// replaces the (depth x rank) slot product with a sum (asymptotically
// O(D log^4) vs O(D log^5); at laptop scale the win factor is ~L/6).
// Validity and [DEV-9] fallback counters are reported for every run.
#include <string>

#include "core/gst.h"
#include "core/gst_distributed.h"
#include "experiments/experiments.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e4(sim::registry& reg) {
  sim::experiment e;
  e.id = "e4";
  e.title = "distributed GST construction rounds vs D";
  e.claim =
      "Theorem 2.1: O(D log^4 n) pipelined vs O(D log^5 n) sequential; all "
      "outputs validated";
  e.profile = "fast";
  e.default_trials = 3;
  e.metric_columns = {"pipelined", "sequential", "ratio", "valid", "fallbacks"};
  e.notes =
      "(ratio should exceed 1 and grow with D; both columns scale linearly in "
      "D; valid is the fraction of runs whose forests pass the validator)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const int d : {6, 12, 24, 48}) {
      sim::scenario sc;
      sc.label = "D=" + std::to_string(d);
      sc.params = {{"D", static_cast<double>(d)},
                   {"n", static_cast<double>(1 + d * 3)}};
      sc.run = [d](std::size_t, rng& r) {
        graph::layered_options lo;
        lo.depth = static_cast<std::size_t>(d);
        lo.width = 3;
        lo.edge_prob = 0.4;
        lo.seed = r();
        const auto g = graph::random_layered(lo);
        core::distributed_gst_options opt;
        opt.seed = r();
        opt.prm = core::params::fast();
        opt.fast_forward = sim::use_fast_forward();
        opt.pipelined = true;
        const auto p = core::build_gst_distributed_single(g, 0, opt);
        opt.pipelined = false;
        const auto s = core::build_gst_distributed_single(g, 0, opt);
        sim::metrics m;
        m.set("pipelined", static_cast<double>(p.rounds));
        m.set("sequential", static_cast<double>(s.rounds));
        m.set("ratio",
              static_cast<double>(s.rounds) / static_cast<double>(p.rounds));
        m.set("valid", core::validate_gst(g, p.forests[0]).empty() &&
                               core::validate_gst(g, s.forests[0]).empty()
                           ? 1.0
                           : 0.0);
        m.set("fallbacks",
              static_cast<double>(p.fallback_finalizations +
                                  p.fallback_adoptions +
                                  s.fallback_finalizations +
                                  s.fallback_adoptions));
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
