// E1 — single-message broadcast rounds vs diameter D at (roughly) fixed n.
//
// Claim under test (Theorem 1.1 vs prior work): GST-based algorithms have an
// *additive* dependence on D (slope ~constant rounds per hop) while
// Decay-style algorithms pay a multiplicative ~log n per hop. The Theorem 1.1
// pipeline's one-time setup (wave + construction + labeling) is reported in
// separate scenario rows (it simulates orders of magnitude more rounds, so
// its rows carry a trial cap).
#include <string>

#include "core/api.h"
#include "core/single_broadcast.h"
#include "experiments/experiments.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

namespace {

graph::graph make_layered(int d, std::size_t width, std::uint64_t seed) {
  graph::layered_options lo;
  lo.depth = static_cast<std::size_t>(d);
  lo.width = width;
  lo.edge_prob = 0.4;
  lo.seed = seed;
  return graph::random_layered(lo);
}

}  // namespace

void register_e1(sim::registry& reg) {
  sim::experiment e;
  e.id = "e1";
  e.title = "single-message rounds vs D";
  e.claim = "GST algorithms: additive D; Decay baselines: ~D log n";
  e.profile = "fast";
  e.default_trials = 5;
  e.metric_columns = {"decay", "tuned", "gst_known", "thm11_bcast",
                      "thm11_setup", "completed"};
  e.notes =
      "(marginal rounds per hop: decay >> gst_known; gst slope ~2-3 = "
      "fast-transmission pipelining. thm1.1 rows separate the one-time setup "
      "from dissemination; the pipeline simulates millions of protocol "
      "rounds, fast-forwarded through the idle ones.)";
  e.make_scenarios = [] {
    const std::size_t total_width = 240;
    std::vector<sim::scenario> out;
    for (const int d : {8, 12, 24, 40, 60}) {
      const std::size_t width = total_width / static_cast<std::size_t>(d);
      sim::scenario sc;
      sc.label = "D=" + std::to_string(d);
      sc.params = {{"D", static_cast<double>(d)},
                   {"width", static_cast<double>(width)},
                   {"n", static_cast<double>(1 + d * static_cast<int>(width))}};
      sc.run = [d, width](std::size_t, rng& r) {
        const auto g = make_layered(d, width, r());
        core::run_options opt;
        opt.prm = core::params::fast();
        opt.fast_forward = sim::use_fast_forward();
        sim::metrics m;
        for (const auto& [name, alg] :
             {std::pair{"decay", core::single_algorithm::decay},
              std::pair{"tuned", core::single_algorithm::tuned_decay},
              std::pair{"gst_known", core::single_algorithm::gst_known}}) {
          opt.seed = r();
          m.set(name, static_cast<double>(
                          core::run_single(g, 0, alg, opt).rounds_to_complete));
        }
        return m;
      };
      out.push_back(std::move(sc));
    }
    // Theorem 1.1 pipeline rows: setup (one-time) vs dissemination.
    for (const int d : {8, 12, 24, 40, 60}) {
      const std::size_t width = total_width / static_cast<std::size_t>(d);
      sim::scenario sc;
      sc.label = "D=" + std::to_string(d) + "/thm1.1";
      sc.params = {{"D", static_cast<double>(d)},
                   {"width", static_cast<double>(width)},
                   {"n", static_cast<double>(1 + d * static_cast<int>(width))}};
      sc.run = [d, width](std::size_t, rng& r) {
        const auto g = make_layered(d, width, r());
        core::single_broadcast_options opt;
        opt.seed = r();
        opt.prm = core::params::fast();
        opt.fast_forward = sim::use_fast_forward();
        const auto res = core::run_unknown_cd_single_broadcast(g, 0, opt);
        round_t setup = 0;
        for (const auto& [name, rounds] : res.phase_rounds)
          if (std::string(name) != "ring_relay") setup += rounds;
        sim::metrics m;
        m.set("thm11_setup", static_cast<double>(setup));
        m.set("thm11_bcast",
              static_cast<double>(res.rounds_to_complete - setup));
        m.set("completed", res.completed ? 1.0 : 0.0);
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
