// E1 — single-message broadcast rounds vs diameter D at (roughly) fixed n.
//
// Claim under test (Theorem 1.1 vs prior work): GST-based algorithms have an
// *additive* dependence on D (slope ~constant rounds per hop) while
// Decay-style algorithms pay a multiplicative ~log n per hop. The Theorem 1.1
// pipeline's one-time setup (wave + construction + labeling) is reported in
// separate scenario rows via the phase-split probe.
#include <string>

#include "core/params.h"
#include "experiments/experiments.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e1(sim::registry& reg) {
  sim::experiment e;
  e.id = "e1";
  e.title = "single-message rounds vs D";
  e.claim = "GST algorithms: additive D; Decay baselines: ~D log n";
  e.profile = "fast";
  e.default_trials = 5;
  e.metric_columns = {"decay", "tuned", "gst_known", "thm11_bcast",
                      "thm11_setup", "completed"};
  e.notes =
      "(marginal rounds per hop: decay >> gst_known; gst slope ~2-3 = "
      "fast-transmission pipelining. thm1.1 rows separate the one-time setup "
      "from dissemination; the pipeline simulates millions of protocol "
      "rounds, fast-forwarded through the idle ones.)";
  e.make_scenarios = [] {
    const std::size_t total_width = 240;
    std::vector<sim::scenario> out;
    auto base_scenario = [&](int d) {
      const std::size_t width = total_width / static_cast<std::size_t>(d);
      sim::scenario sc;
      sc.params = {{"D", static_cast<double>(d)},
                   {"width", static_cast<double>(width)},
                   {"n", static_cast<double>(1 + d * static_cast<int>(width))}};
      sc.topology.kind = "layered";
      sc.topology.params = {{"depth", static_cast<double>(d)},
                            {"width", static_cast<double>(width)},
                            {"edge_prob", 0.4}};
      sc.options.prm = core::params::fast();
      return sc;
    };
    for (const int d : {8, 12, 24, 40, 60}) {
      sim::scenario sc = base_scenario(d);
      sc.label = "D=" + std::to_string(d);
      sc.probes = {{"decay", "decay"},
                   {"tuned-decay", "tuned"},
                   {"gst-known", "gst_known"}};
      out.push_back(std::move(sc));
    }
    // Theorem 1.1 pipeline rows: setup (one-time) vs dissemination, split on
    // the ring_relay phase.
    for (const int d : {8, 12, 24, 40, 60}) {
      sim::scenario sc = base_scenario(d);
      sc.label = "D=" + std::to_string(d) + "/thm1.1";
      sim::protocol_probe p;
      p.protocol = "gst-unknown-cd";
      p.metric = "thm11_bcast";
      p.setup_metric = "thm11_setup";
      p.relay_phase = "ring_relay";
      p.completed_metric = "completed";
      sc.probes = {std::move(p)};
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
