// E3 — k-message broadcast rounds vs k (Theorems 1.2/1.3 vs baselines).
//
// Claims: RLNC over the MMV-GST schedule pays ~log n-scale rounds per extra
// message; sequential Decay pays ~D log n per message; random routing sits in
// between with a coupon-collector tail. Theorem 1.3's one-time setup is
// reported separately via the phase-split probe.
#include <string>

#include "core/params.h"
#include "experiments/experiments.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e3(sim::registry& reg) {
  sim::experiment e;
  e.id = "e3";
  e.title = "k-message rounds vs k (layered graph, D = 16, n = 81)";
  e.claim = "Thm 1.2/1.3: ~k log n; sequential baseline: ~k D log n";
  e.profile = "fast";
  e.default_trials = 3;
  e.metric_columns = {"seq_decay", "routing", "rlnc_known", "rlnc_unknown",
                      "thm13_setup", "payloads_verified"};
  e.notes =
      "(per-message slope: seq ~D log n; rlnc ~6 log n, independent of D)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const std::size_t k : {2, 4, 8, 16, 32}) {
      sim::scenario sc;
      sc.label = "k=" + std::to_string(k);
      sc.params = {{"k", static_cast<double>(k)}};
      sc.topology.kind = "layered";
      sc.topology.params = {
          {"depth", 16.0}, {"width", 5.0}, {"edge_prob", 0.4}};
      sc.workload.messages = k;
      sc.options.prm = core::params::fast();
      sc.probes = {{"seq-decay", "seq_decay"},
                   {"routing", "routing"},
                   {"rlnc-known", "rlnc_known"}};
      // Theorem 1.3: split the one-time setup from batch dissemination and
      // check the decoded payloads (historical fixed message seed + 16-byte
      // payloads, kept so the pre-redesign results byte-compare).
      sim::protocol_probe thm13;
      thm13.protocol = "rlnc-unknown-cd";
      thm13.metric = "rlnc_unknown";
      thm13.setup_metric = "thm13_setup";
      thm13.relay_phase = "batch_pipeline";
      thm13.verified_metric = "payloads_verified";
      thm13.payload_size = 16;
      thm13.message_seed = 7;
      sc.probes.push_back(std::move(thm13));
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
