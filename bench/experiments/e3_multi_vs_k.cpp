// E3 — k-message broadcast rounds vs k (Theorems 1.2/1.3 vs baselines).
//
// Claims: RLNC over the MMV-GST schedule pays ~log n-scale rounds per extra
// message; sequential Decay pays ~D log n per message; random routing sits in
// between with a coupon-collector tail. Theorem 1.3's one-time setup is
// reported separately.
#include <string>

#include "core/api.h"
#include "core/multi_broadcast.h"
#include "experiments/experiments.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e3(sim::registry& reg) {
  sim::experiment e;
  e.id = "e3";
  e.title = "k-message rounds vs k (layered graph, D = 16, n = 81)";
  e.claim = "Thm 1.2/1.3: ~k log n; sequential baseline: ~k D log n";
  e.profile = "fast";
  e.default_trials = 3;
  e.metric_columns = {"seq_decay", "routing", "rlnc_known", "rlnc_unknown",
                      "thm13_setup", "payloads_verified"};
  e.notes =
      "(per-message slope: seq ~D log n; rlnc ~6 log n, independent of D)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const std::size_t k : {2, 4, 8, 16, 32}) {
      sim::scenario sc;
      sc.label = "k=" + std::to_string(k);
      sc.params = {{"k", static_cast<double>(k)}};
      sc.run = [k](std::size_t, rng& r) {
        graph::layered_options lo;
        lo.depth = 16;
        lo.width = 5;
        lo.edge_prob = 0.4;
        lo.seed = r();
        const auto g = graph::random_layered(lo);
        sim::metrics m;
        for (const auto& [name, alg] :
             {std::pair{"seq_decay", core::multi_algorithm::sequential_decay},
              std::pair{"routing", core::multi_algorithm::routing},
              std::pair{"rlnc_known", core::multi_algorithm::rlnc_known}}) {
          core::run_options opt;
          opt.seed = r();
          opt.prm = core::params::fast();
          opt.fast_forward = sim::use_fast_forward();
          m.set(name,
                static_cast<double>(
                    core::run_multi(g, 0, k, alg, opt).rounds_to_complete));
        }
        // Theorem 1.3: split the one-time setup from batch dissemination.
        core::multi_broadcast_options opt;
        opt.seed = r();
        opt.prm = core::params::fast();
        opt.payload_size = 16;
        opt.fast_forward = sim::use_fast_forward();
        const auto msgs = coding::make_test_messages(k, 16, 7);
        const auto res = core::run_unknown_cd_multi_broadcast(g, 0, msgs, opt);
        round_t setup = 0;
        for (const auto& [name, rounds] : res.base.phase_rounds)
          if (std::string(name) != "batch_pipeline") setup += rounds;
        m.set("thm13_setup", static_cast<double>(setup));
        m.set("rlnc_unknown",
              static_cast<double>(res.base.rounds_to_complete - setup));
        m.set("payloads_verified", res.payloads_verified ? 1.0 : 0.0);
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
