// E9 — ring-width ablation for the Theorem 1.1 pipeline [DEV-6].
//
// The paper sets ring width D / log^4 n (one ring when D is small). The
// width trades per-ring GST construction cost (grows with width) against
// relay overhead (more rings = more Decay handoffs and more sequential
// per-ring broadcasts). This experiment sweeps the divisor on a deep graph.
#include <string>

#include "core/single_broadcast.h"
#include "experiments/experiments.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e9(sim::registry& reg) {
  sim::experiment e;
  e.id = "e9";
  e.title = "Theorem 1.1 ring-width ablation (layered, D = 24, n = 97)";
  e.claim = "wider rings: cheaper relay, costlier construction wavefront";
  e.profile = "fast";
  e.default_trials = 2;
  e.metric_columns = {"rings", "setup", "relay", "completed"};
  e.notes =
      "(setup shrinks as rings narrow — shorter construction wavefront per "
      "ring — while relay grows with the number of handoffs; the paper picks "
      "width D/log^4 n so both sides are O(D))";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    for (const double divisor : {0.0, 2.0, 4.0, 8.0}) {
      sim::scenario sc;
      sc.label = "divisor=" + std::to_string(static_cast<int>(divisor));
      sc.params = {{"ring_divisor", divisor}};
      sc.run = [divisor](std::size_t, rng& r) {
        graph::layered_options lo;
        lo.depth = 24;
        lo.width = 4;
        lo.edge_prob = 0.4;
        lo.seed = r();
        const auto g = graph::random_layered(lo);
        core::single_broadcast_options opt;
        opt.seed = r();
        opt.prm = core::params::fast();
        opt.prm.ring_divisor = divisor;
        opt.fast_forward = sim::use_fast_forward();
        const auto res = core::run_unknown_cd_single_broadcast(g, 0, opt);
        round_t setup = 0, relay = 0;
        for (const auto& [name, rounds] : res.phase_rounds)
          (std::string(name) == "ring_relay" ? relay : setup) += rounds;
        const std::size_t rings =
            core::decompose_rings(graph::bfs(g, 0).level,
                                  core::ring_width_for(24, divisor))
                .rings.size();
        sim::metrics m;
        m.set("rings", static_cast<double>(rings));
        m.set("setup", static_cast<double>(setup));
        m.set("relay", static_cast<double>(relay));
        m.set("completed", res.completed ? 1.0 : 0.0);
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
