// E7 — the bipartite assignment epoch dynamics (Lemma 2.4, Figure 2).
//
// Claim: the number of active red nodes shrinks by a constant factor per
// epoch (in expectation), so Theta(log n) epochs empty the instance. The
// per-epoch active-red counts become one metric column per epoch
// (epoch00, epoch01, ...).
#include <cstdio>
#include <string>

#include "common/math.h"
#include "core/assignment.h"
#include "experiments/experiments.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::bench {

void register_e7(sim::registry& reg) {
  sim::experiment e;
  e.id = "e7";
  e.title = "active red nodes per assignment epoch";
  e.claim = "Lemma 2.4: geometric decay of the active set";
  e.profile = "paper-grade";
  e.default_trials = 12;
  e.notes =
      "(epochNN columns are mean active reds entering epoch NN; consecutive "
      "ratios < 1 throughout: the Lemma 2.4 contraction)";
  e.make_scenarios = [] {
    const std::size_t half = 48;
    const std::size_t n = 2 * half;
    const int L = log_range(n) + 1;
    sim::scenario sc;
    sc.label = "half=" + std::to_string(half);
    sc.params = {{"n", static_cast<double>(n)}, {"L", static_cast<double>(L)}};
    sc.run = [half, n, L](std::size_t, rng& r) {
      graph::graph::builder gb(n);
      for (node_id red = 0; red < half; ++red)
        for (node_id blue = 0; blue < half; ++blue)
          if (r.bernoulli(0.12))
            gb.add_edge(red, static_cast<node_id>(half + blue));
      const auto g = std::move(gb).build();
      std::vector<node_id> reds, blues;
      for (node_id red = 0; red < half; ++red) reds.push_back(red);
      for (node_id blue = 0; blue < half; ++blue)
        if (g.degree(static_cast<node_id>(half + blue)) > 0)
          blues.push_back(static_cast<node_id>(half + blue));
      const auto res =
          core::run_assignment(g, reds, blues, 1, L, 2 * L, 3 * L, 4 * L * L,
                               L, r(), sim::use_fast_forward());
      sim::metrics m;
      m.set("all_assigned", res.all_assigned ? 1.0 : 0.0);
      m.set("fallbacks", static_cast<double>(res.fallback_finalizations +
                                             res.fallback_adoptions));
      // Trials that empty before epoch ep contribute 0, not a missing sample:
      // the per-epoch mean must be over ALL trials or the late-epoch columns
      // would average only the stragglers and break the ratios-<-1 reading.
      for (std::size_t ep = 0; ep < 12; ++ep) {
        char name[16];
        std::snprintf(name, sizeof(name), "epoch%02zu", ep);
        m.set(name, ep < res.epoch_active_reds.size()
                        ? static_cast<double>(res.epoch_active_reds[ep])
                        : 0.0);
      }
      return m;
    };
    return std::vector<sim::scenario>{std::move(sc)};
  };
  reg.add(std::move(e));
}

}  // namespace rn::bench
