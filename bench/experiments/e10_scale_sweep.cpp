// E10 — scale sweep: n up to 10^7 across three graph families (layered,
// unit-disk, power-law), all declared through the topology registry.
//
// Claim context: Theorem 1.1's O(D + polylog n) bounds are family-agnostic;
// the related broadcast literature (Czumaj-Davies arXiv:1805.04842,
// Andriambolamalala-Ravelomanana arXiv:1701.01587) only separates algorithms
// on specific shapes — hub-dominated power-law graphs (tiny D, huge
// contention) vs geometric unit-disk graphs (large D, local contention).
// The Decay baseline rides its batched coin calendar (baseline/decay.h), so
// it now scales with the transmitter count instead of paying a coin flip per
// informed node per round — the column runs through n = 10^5, and the
// layered family carries a 10^6 point (per-trial memory is the binding
// constraint there, tracked via the timing sidecar's peak_rss_kb).
// Slow-labeled: excluded from `--experiment all`; run with `-e e10`.
#include <string>

#include "core/params.h"
#include "experiments/experiments.h"
#include "sim/experiment.h"

namespace rn::bench {

namespace {

sim::scenario scale_scenario(const char* family, std::size_t n,
                             graph::topology_spec spec, bool with_decay) {
  sim::scenario sc;
  sc.label = std::string(family) + "/n=" + std::to_string(n);
  sc.params = {{"n", static_cast<double>(n)}};
  sc.topology = std::move(spec);
  sc.options.prm = core::params::fast();
  sc.probes = {{"gst-known", "gst_known"}};
  if (with_decay) sc.probes.push_back({"decay", "decay"});
  return sc;
}

}  // namespace

void register_e10(sim::registry& reg) {
  sim::experiment e;
  e.id = "e10";
  e.title = "scale sweep: layered / unit-disk / power-law, n up to 1e7";
  e.claim =
      "GST broadcast stays D-dominated at 10^4..10^7 nodes on every family";
  e.profile = "fast";
  e.default_trials = 2;
  e.slow = true;
  e.metric_columns = {"gst_known", "decay"};
  e.notes =
      "(layered: D fixed at 50, width carries n; unit-disk: D ~ 1/radius; "
      "power-law: D ~ log n with heavy hub contention. decay runs on the "
      "batched coin calendar — per-round cost tracks transmitters, not "
      "informed nodes — so the column extends through n = 10^7 on the "
      "layered family. The 10^6/10^7 points shard their row walks across "
      "the intra-trial backend when worker capacity allows; results are "
      "byte-identical either way.)";
  e.make_scenarios = [] {
    std::vector<sim::scenario> out;
    out.push_back(scale_scenario(
        "layered", 10001,
        {"layered", {{"depth", 50}, {"width", 200}, {"edge_prob", 0.1}}},
        true));
    out.push_back(scale_scenario(
        "layered", 100001,
        {"layered", {{"depth", 50}, {"width", 2000}, {"edge_prob", 0.01}}},
        true));
    out.push_back(scale_scenario(
        "unit_disk", 10000,
        {"unit_disk", {{"n", 10000}, {"radius", 0.03}}}, true));
    out.push_back(scale_scenario(
        "unit_disk", 100000,
        {"unit_disk", {{"n", 100000}, {"radius", 0.011}}}, true));
    out.push_back(scale_scenario(
        "power_law", 10000,
        {"power_law", {{"n", 10000}, {"edges_per_node", 2}}}, true));
    out.push_back(scale_scenario(
        "power_law", 100000,
        {"power_law", {{"n", 100000}, {"edges_per_node", 2}}}, true));
    // The 10^6 point: diameter-exact layered graph, mean degree ~40 as at
    // 10^5. Runs single-threaded within 8 GB RSS (see peak_rss_kb in the
    // timing sidecar).
    out.push_back(scale_scenario(
        "layered", 1000001,
        {"layered", {{"depth", 50}, {"width", 20000}, {"edge_prob", 0.001}}},
        true));
    // The 10^7 point: same shape, mean degree ~40, ~2x10^8 undirected
    // edges. One trial is big enough that the intra-trial sharded walk is
    // the parallelism that matters (the trial pool is idle with this few
    // units); peak RSS lands around 5 GB — see README and the sidecar.
    out.push_back(scale_scenario(
        "layered", 10000001,
        {"layered",
         {{"depth", 50}, {"width", 200000}, {"edge_prob", 0.0001}}},
        true));
    return out;
  };
  reg.add(std::move(e));

  // The 10^8 frontier point rides its own id so `-e e10` keeps fitting the
  // 8 GB class of machine: one trial's adjacency alone is ~17 GB, which is
  // exactly what the distributed backend exists for. Run it as
  //   rn_dist --ranks 4 -e e10x --trials 1 --timing t.json
  // — each rank then holds only its ~4.3 GB partitioned CSR slice (streamed
  // from the layered generator, never materializing the full graph in the
  // worker) and the v5 sidecar reports the per-rank peaks. Results are
  // byte-identical to a single-process run of the same seed, which a 128 GB
  // coordinator-only box can cross-check with bench_suite.
  sim::experiment xl;
  xl.id = "e10x";
  xl.title = "scale frontier: layered n = 1e8 (distributed ranks)";
  xl.claim =
      "GST broadcast stays D-dominated at 10^8 nodes; one trial exceeds a "
      "single address space's comfort and shards across worker ranks";
  xl.profile = "fast";
  xl.default_trials = 1;
  xl.slow = true;
  xl.metric_columns = {"gst_known"};
  xl.notes =
      "(layered: D = 50, width 2e6, mean degree ~42, ~2.1e9 undirected "
      "edges — the CSR sits just under the 32-bit offset ceiling. gst-known "
      "only: the Decay column's round count is unremarkable at this scale "
      "and roughly doubles the wall-clock. See README \"Distributed mode\" "
      "for the measured per-rank footprint table.)";
  xl.make_scenarios = [] {
    std::vector<sim::scenario> out;
    out.push_back(scale_scenario(
        "layered", 100000001,
        {"layered",
         {{"depth", 50}, {"width", 2000000}, {"edge_prob", 0.00001}}},
        false));
    return out;
  };
  reg.add(std::move(xl));
}

}  // namespace rn::bench
