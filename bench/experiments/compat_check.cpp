// Compile-time check that the deprecated bench_util.h shim still builds for
// any straggler harness; intentionally has no runtime content.
#include "bench_util.h"
