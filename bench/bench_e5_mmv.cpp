// E5 — multi-message viability under noise injection (thin wrapper; the
// experiment definition lives in experiments/e5_mmv.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e5");
}
