// E5 — multi-message viability (Definition 3.1) under noise injection.
//
// Claims: the leveled Decay schedule (Lemma 3.2) and the paper's new
// virtual-distance-keyed GST schedule (Lemma 3.3) complete even when every
// prompted node without the message jams; the classic level-keyed GST
// schedule of [7]/[19] — which the paper argues is *not* MMV — degrades.
#include <iostream>

#include "baseline/decay.h"
#include "bench_util.h"
#include "core/gst_broadcast.h"
#include "core/gst_centralized.h"
#include "graph/bfs.h"
#include "graph/generators.h"

using namespace rn;

int main() {
  bench::print_header(
      "E5: broadcast under MMV noise (uninformed prompted nodes jam)",
      "Lemmas 3.2/3.3: vdist-keyed schedules stay fast; classic level-keyed "
      "schedule is not MMV",
      "paper");
  const int reps = 10;
  graph::layered_options lo;
  lo.depth = 12;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.intra_prob = 0.2;

  struct row {
    const char* name;
    bool noise;
    bool classic;
    bool leveled_decay;
  };
  const row rows[] = {
      {"leveled_decay", false, false, true},
      {"leveled_decay+noise", true, false, true},
      {"mmv_gst", false, false, false},
      {"mmv_gst+noise", true, false, false},
      {"classic_gst", false, true, false},
      {"classic_gst+noise", true, true, false},
  };
  text_table table({"schedule", "completed", "mean_rounds"});
  for (const auto& r : rows) {
    int ok = 0;
    sample_stats rounds;
    for (int i = 1; i <= reps; ++i) {
      lo.seed = static_cast<std::uint64_t>(i) * 13;
      const auto g = graph::random_layered(lo);
      radio::broadcast_result res;
      if (r.leveled_decay) {
        baseline::leveled_decay_options opt;
        opt.seed = static_cast<std::uint64_t>(i);
        opt.mmv_noise = r.noise;
        res = baseline::run_leveled_decay_broadcast(
            g, 0, graph::bfs(g, 0).level, opt);
      } else {
        const auto t = core::build_gst_centralized(g, 0);
        const auto d = core::derive(g, t);
        core::gst_broadcast_options opt;
        opt.seed = static_cast<std::uint64_t>(i);
        opt.mmv_noise = r.noise;
        opt.classic_levels = r.classic;
        res = core::run_gst_single_broadcast(g, t, d, {0}, opt);
      }
      if (res.completed) {
        ++ok;
        rounds.add(static_cast<double>(res.rounds_to_complete));
      }
    }
    table.add_row({r.name, std::to_string(ok) + "/" + std::to_string(reps),
                   ok > 0 ? text_table::num(rounds.mean()) : "-"});
  }
  table.print(std::cout);
  std::cout << "\n(the classic schedule may still complete within its budget; "
               "the MMV claim is about *guaranteed* progress — compare round "
               "inflation under +noise)\n";
  return 0;
}
