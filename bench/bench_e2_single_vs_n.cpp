// E2 — single-message broadcast rounds vs n at fixed diameter.
//
// Claim: at fixed D, all algorithms grow polylogarithmically in n; the
// GST-based broadcast stays near its D-dominated floor.
#include <iostream>

#include "bench_util.h"
#include "core/api.h"
#include "graph/generators.h"

using namespace rn;

int main() {
  bench::print_header("E2: single-message rounds vs n (fixed D = 12)",
                      "polylog growth in n for every algorithm", "fast");
  const int reps = 5;
  text_table table({"n", "width", "decay", "tuned", "gst_known"});
  for (std::size_t width : {2, 4, 8, 16, 32, 64}) {
    graph::layered_options lo;
    lo.depth = 12;
    lo.width = width;
    lo.edge_prob = 0.4;
    auto run = [&](core::single_algorithm alg) {
      return bench::mean_over_seeds(reps, [&](std::uint64_t seed) {
        lo.seed = seed * 31;
        const auto g = graph::random_layered(lo);
        core::run_options opt;
        opt.seed = seed;
        opt.prm = core::params::fast();
        return static_cast<double>(
            core::run_single(g, 0, alg, opt).rounds_to_complete);
      });
    };
    table.add_row({std::to_string(1 + 12 * width), std::to_string(width),
                   text_table::num(run(core::single_algorithm::decay)),
                   text_table::num(run(core::single_algorithm::tuned_decay)),
                   text_table::num(run(core::single_algorithm::gst_known))});
  }
  table.print(std::cout);
  std::cout << "\n(n grows 32x; rounds should grow only a few-fold)\n";
  return 0;
}
