// E2 — single-message broadcast rounds vs n (thin wrapper; the experiment
// definition lives in experiments/e2_single_vs_n.cpp).
#include "experiments/experiments.h"
#include "sim/cli.h"

int main(int argc, char** argv) {
  rn::bench::register_all();
  return rn::sim::run_suite(argc, argv, "e2");
}
