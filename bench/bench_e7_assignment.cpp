// E7 — the bipartite assignment epoch dynamics (Lemma 2.4, Figure 2).
//
// Claim: the number of active red nodes shrinks by a constant factor per
// epoch (in expectation), so Theta(log n) epochs empty the instance.
#include <iostream>

#include "bench_util.h"
#include "common/math.h"
#include "common/rng.h"
#include "core/assignment.h"
#include "graph/graph.h"

using namespace rn;

int main() {
  bench::print_header("E7: active red nodes per assignment epoch",
                      "Lemma 2.4: geometric decay of the active set",
                      "paper-grade");
  const int reps = 12;
  const std::size_t half = 48;
  const std::size_t n = 2 * half;
  const int L = log_range(n) + 1;

  std::vector<double> sums;
  double assigned_ok = 0;
  int fallbacks = 0;
  for (int i = 1; i <= reps; ++i) {
    rng prob(static_cast<std::uint64_t>(i) * 11);
    graph::graph::builder gb(n);
    for (node_id r = 0; r < half; ++r)
      for (node_id b = 0; b < half; ++b)
        if (prob.bernoulli(0.12)) gb.add_edge(r, static_cast<node_id>(half + b));
    const auto g = std::move(gb).build();
    std::vector<node_id> reds, blues;
    for (node_id r = 0; r < half; ++r) reds.push_back(r);
    for (node_id b = 0; b < half; ++b)
      if (g.degree(static_cast<node_id>(half + b)) > 0)
        blues.push_back(static_cast<node_id>(half + b));
    const auto res =
        core::run_assignment(g, reds, blues, 1, L, 2 * L, 3 * L, 4 * L * L, L,
                             static_cast<std::uint64_t>(i));
    if (res.all_assigned) assigned_ok += 1;
    fallbacks += res.fallback_finalizations + res.fallback_adoptions;
    for (std::size_t e = 0; e < res.epoch_active_reds.size(); ++e) {
      if (sums.size() <= e) sums.push_back(0);
      sums[e] += static_cast<double>(res.epoch_active_reds[e]) / reps;
    }
  }

  text_table table({"epoch", "mean_active_reds", "ratio_vs_prev"});
  double prev = -1;
  for (std::size_t e = 0; e < sums.size() && e < 12; ++e) {
    table.add_row({std::to_string(e), text_table::num(sums[e], 2),
                   prev > 0 ? text_table::num(sums[e] / prev, 3) : "-"});
    prev = sums[e];
  }
  table.print(std::cout);
  std::cout << "\nall blues assigned in " << text_table::num(assigned_ok, 0)
            << "/" << reps << " runs; fallbacks fired " << fallbacks
            << " times\n(ratio < 1 throughout: the Lemma 2.4 contraction)\n";
  return 0;
}
