// E6 — the Recruiting protocol (Lemma 2.3).
//
// Claims: within Theta(log^3 n) rounds every blue with a red neighbor is
// recruited w.h.p., and the count/class knowledge of both sides is exact
// (properties (b)/(c) — unconditionally, thanks to [DEV-2]).
#include <iostream>

#include "bench_util.h"
#include "common/math.h"
#include "common/rng.h"
#include "core/recruiting.h"
#include "graph/graph.h"

using namespace rn;

int main() {
  bench::print_header("E6: recruiting success vs instance size",
                      "Lemma 2.3: all blues recruited in Theta(log^3 n) "
                      "rounds; class knowledge exact",
                      "paper-grade (6 L^2 iterations)");
  const int reps = 10;
  text_table table({"n", "L", "rounds", "rounds/L^3", "recruited%",
                    "props_ok"});
  for (std::size_t half : {8, 16, 32, 64, 128}) {
    const std::size_t n = 2 * half;
    const int L = log_range(n) + 1;
    const int iters = 6 * L * L;
    double recruited = 0, total = 0;
    int props = 0;
    round_t rounds = 0;
    for (int i = 1; i <= reps; ++i) {
      rng prob(static_cast<std::uint64_t>(i) * 7 + half);
      graph::graph::builder gb(n);
      for (node_id r = 0; r < half; ++r)
        for (node_id b = 0; b < half; ++b)
          if (prob.bernoulli(4.0 / static_cast<double>(half)))
            gb.add_edge(r, static_cast<node_id>(half + b));
      const auto g = std::move(gb).build();
      std::vector<node_id> reds, blues;
      for (node_id r = 0; r < half; ++r) reds.push_back(r);
      for (node_id b = 0; b < half; ++b)
        if (g.degree(static_cast<node_id>(half + b)) > 0)
          blues.push_back(static_cast<node_id>(half + b));
      const auto res = core::run_recruiting(g, reds, blues, L, iters, L,
                                            static_cast<std::uint64_t>(i));
      recruited += static_cast<double>(res.recruited);
      total += static_cast<double>(res.blues);
      props += res.properties_ok ? 1 : 0;
      rounds = res.rounds;
    }
    table.add_row(
        {std::to_string(n), std::to_string(L), std::to_string(rounds),
         text_table::num(static_cast<double>(rounds) / (L * L * L), 2),
         text_table::num(100.0 * recruited / total, 2),
         std::to_string(props) + "/" + std::to_string(reps)});
  }
  table.print(std::cout);
  std::cout << "\n(rounds/L^3 stays bounded: the Theta(log^3 n) claim)\n";
  return 0;
}
