// rn_submit — thin client for the rn_serve daemon.
//
//   rn_submit --socket /tmp/rn.sock --topology layered:depth=12,width=8 \
//             --protocol decay --trials 8 --seed 1 --json out.json
//   rn_submit --socket /tmp/rn.sock --experiment e1 --trials 2
//   rn_submit --socket /tmp/rn.sock --metrics
//   rn_submit --socket /tmp/rn.sock --list
//   rn_submit --socket /tmp/rn.sock --shutdown
//
// Builds one request line (the workload flags mirror `bench_suite`'s ad-hoc
// surface exactly), sends it, and prints the outcome. For runs the summary
// line is `cache=hit|miss key=... wall_ms=...` and --json writes the
// payload bytes — which are byte-identical to the file `bench_suite --json`
// writes for the same workload, whether the daemon served them from the
// cache or ran the experiment. Exits 1 on an error response (the structured
// code and message go to stderr).
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/json.h"

#if defined(__unix__) || defined(__APPLE__)
#define RN_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --socket PATH (workload | action)\n"
      << "workload (mirrors bench_suite):\n"
      << "  --experiment ID | --topology SPEC --protocol A[,B...]\n"
      << "  [--sweep SPEC] [--messages K] [--options OPT]\n"
      << "  [--trials N] [--seed S] [--priority P] [--json PATH]\n"
      << "actions:\n"
      << "  --metrics | --list | --shutdown\n";
  return 2;
}

#if RN_HAVE_UNIX_SOCKETS

/// One round trip: send `line` + newline, read one newline-terminated
/// response. Returns false on transport failure.
bool round_trip(const std::string& path, const std::string& line,
                std::string& response) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  std::string wire = line;
  wire += "\n";
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  response.clear();
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
    const auto nl = response.find('\n');
    if (nl != std::string::npos) {
      response.resize(nl);
      ::close(fd);
      return true;
    }
  }
  ::close(fd);
  return false;
}

#endif  // RN_HAVE_UNIX_SOCKETS

}  // namespace

int main(int argc, char** argv) {
#if !RN_HAVE_UNIX_SOCKETS
  (void)argc;
  (void)argv;
  std::cerr << "rn_submit needs a POSIX platform (Unix sockets)\n";
  return 1;
#else
  std::string socket_path;
  std::string json_path;
  std::string method = "run";
  rn::sim::json_value req = rn::sim::json_value::object();
  req["id"] = 1;

  auto value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  bool have_workload = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--socket" && (v = value(i))) {
      socket_path = v;
    } else if (arg == "--json" && (v = value(i))) {
      json_path = v;
    } else if (arg == "--metrics" || arg == "--list" || arg == "--shutdown") {
      method = arg.substr(2);
    } else if (arg == "--experiment" && (v = value(i))) {
      req["experiment"] = v;
      have_workload = true;
    } else if (arg == "--topology" && (v = value(i))) {
      req["topology"] = v;
      have_workload = true;
    } else if (arg == "--protocol" && (v = value(i))) {
      req["protocols"] = v;
    } else if (arg == "--sweep" && (v = value(i))) {
      req["sweep"] = v;
    } else if (arg == "--options" && (v = value(i))) {
      req["options"] = v;
    } else if (arg == "--messages" && (v = value(i))) {
      req["messages"] = static_cast<std::uint64_t>(std::stoull(v));
    } else if (arg == "--trials" && (v = value(i))) {
      req["trials"] = static_cast<std::uint64_t>(std::stoull(v));
    } else if (arg == "--seed" && (v = value(i))) {
      req["seed"] = static_cast<std::uint64_t>(std::stoull(v));
    } else if (arg == "--priority" && (v = value(i))) {
      req["priority"] = std::stoi(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);
  if (method == "run" && !have_workload) return usage(argv[0]);
  req["method"] = method;

  std::string response;
  if (!round_trip(socket_path, req.dump(), response)) {
    std::cerr << "cannot reach rn_serve at " << socket_path << "\n";
    return 1;
  }

  rn::sim::json_value doc;
  try {
    doc = rn::sim::parse_json(response);
  } catch (const std::exception& ex) {
    std::cerr << "unparseable response: " << ex.what() << "\n";
    return 1;
  }
  const rn::sim::json_value* status = doc.find("status");
  if (status == nullptr || status->as_string() != "ok") {
    const rn::sim::json_value* code = doc.find("code");
    const rn::sim::json_value* err = doc.find("error");
    std::cerr << "error"
              << (code != nullptr ? " [" + code->as_string() + "]" : "") << ": "
              << (err != nullptr ? err->as_string() : response) << "\n";
    return 1;
  }

  if (method == "metrics") {
    const rn::sim::json_value* m = doc.find("metrics");
    std::cout << (m != nullptr ? m->as_string() : "");
    return 0;
  }
  if (method == "list") {
    const rn::sim::json_value* ids = doc.find("experiments");
    if (ids != nullptr)
      for (std::size_t i = 0; i < ids->size(); ++i)
        std::cout << ids->at(i).as_string() << "\n";
    return 0;
  }
  if (method == "shutdown") {
    std::cout << "shutdown acknowledged\n";
    return 0;
  }

  const rn::sim::json_value* cache = doc.find("cache");
  const rn::sim::json_value* key = doc.find("key");
  const rn::sim::json_value* wall = doc.find("wall_ms");
  std::cout << "cache=" << (cache != nullptr ? cache->as_string() : "?")
            << " wall_ms=" << (wall != nullptr ? wall->as_number() : 0.0)
            << "\n  key=" << (key != nullptr ? key->as_string() : "?") << "\n";
  if (!json_path.empty()) {
    const rn::sim::json_value* payload = doc.find("payload");
    if (payload == nullptr) {
      std::cerr << "response carries no payload\n";
      return 1;
    }
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << payload->as_string();  // exact bench_suite --json bytes
  }
  return 0;
#endif
}
