// rn_serve — resident broadcast-as-a-service daemon.
//
// Hosts svc::service (worker pool + LRU result cache + Prometheus metrics)
// behind one of two newline-delimited-JSON transports:
//
//   rn_serve --socket /tmp/rn.sock [--workers 2] [--threads 0]
//            [--cache 128] [--max-trials 4096] [--cache-file cache.snap]
//            [--metrics-file metrics.prom]
//   rn_serve --stdio             # request lines on stdin, responses on stdout
//
// Request/response grammar: see src/svc/request.h and README "Service
// mode". The daemon exits after a {"method":"shutdown"} request (queued
// runs still complete) or, in stdio mode, at EOF. --metrics-file rewrites
// the Prometheus text exposition after every response and at exit, so a
// node-exporter-style textfile collector can scrape a daemon that has no
// HTTP port.
//
// SIGTERM / SIGINT drain gracefully: stop accepting new connections and
// request lines, finish every in-flight and queued run, write the metrics
// file one last time, and exit through the normal path — which snapshots
// the result cache to --cache-file (write-then-rename), so a supervised
// restart comes back warm.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiments/experiments.h"
#include "svc/service.h"

#if defined(__unix__) || defined(__APPLE__)
#define RN_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

std::atomic<bool> g_stop{false};     ///< set by SIGTERM/SIGINT
std::atomic<int> g_listener{-1};     ///< socket-mode listener, for the handler

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
#if defined(__unix__) || defined(__APPLE__)
  // shutdown() is async-signal-safe: unblocks the accept() loop without
  // waiting for the next connection.
  const int fd = g_listener.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
#endif
}

void install_stop_handlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads return EINTR and drain
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
#else
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
#endif
}

struct serve_options {
  std::string socket_path;  ///< empty = stdio transport
  std::string metrics_path;
  rn::svc::service_config svc;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--socket PATH | --stdio) [options]\n"
      << "  --socket PATH       listen on a Unix stream socket\n"
      << "  --stdio             serve stdin/stdout (one JSON object per line)\n"
      << "  --workers N         concurrent runs (default 2)\n"
      << "  --threads N         trial-pool threads per run (default 0 = auto)\n"
      << "  --cache N           result-cache entries (default 128)\n"
      << "  --max-trials N      per-request trial budget (default 4096)\n"
      << "  --cache-file PATH   load the result cache from this snapshot at\n"
      << "                      start (cold start if missing or corrupt) and\n"
      << "                      save it back at shutdown\n"
      << "  --metrics-file PATH rewrite Prometheus text here after each "
         "response\n";
  return 2;
}

/// Serialized rewrite of the metrics textfile (responses arrive from
/// several worker threads).
class metrics_file {
 public:
  explicit metrics_file(std::string path) : path_(std::move(path)) {}

  void write(const std::string& text) {
    if (path_.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

 private:
  std::string path_;
  std::mutex mu_;
};

int serve_stdio(rn::svc::service& svc, metrics_file& mf) {
  std::mutex out_mu;
  std::string line;
  // A stop signal interrupts the blocked getline (no SA_RESTART → EINTR →
  // failbit), so SIGTERM/SIGINT fall through to the drain below.
  while (!g_stop.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    svc.submit(line, [&](const std::string& resp) {
      {
        std::lock_guard<std::mutex> lock(out_mu);
        std::cout << resp << "\n" << std::flush;
      }
      mf.write(svc.metrics_text());
    });
    if (svc.shutdown_requested()) break;
  }
  svc.drain();
  mf.write(svc.metrics_text());
  return 0;
}

#if RN_HAVE_UNIX_SOCKETS

/// Reads one '\n'-terminated line from fd into out (without the newline).
/// Returns false on EOF/error with nothing buffered.
bool read_line(int fd, std::string& buf, std::string& out) {
  for (;;) {
    const auto nl = buf.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf, 0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

void send_line(int fd, std::mutex& mu, const std::string& resp) {
  std::lock_guard<std::mutex> lock(mu);
  std::string wire = resp;
  wire += "\n";
  std::size_t off = 0;
  while (off < wire.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, 0);
#endif
    if (n <= 0) return;  // peer went away; the run result stays cached
    off += static_cast<std::size_t>(n);
  }
}

int serve_socket(rn::svc::service& svc, metrics_file& mf,
                 const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << path << "\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }

  g_listener.store(listener, std::memory_order_relaxed);

  std::mutex conns_mu;
  std::vector<std::thread> conns;
  std::vector<int> conn_fds;  // owned here; closed after every thread joins
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !g_stop.load(std::memory_order_relaxed)) continue;
      break;  // listener shut down (in-band shutdown or stop signal)
    }
    std::lock_guard<std::mutex> lock(conns_mu);
    conn_fds.push_back(fd);
    conns.emplace_back([&svc, &mf, fd, listener] {
      auto write_mu = std::make_shared<std::mutex>();
      std::string buf;
      std::string line;
      while (read_line(fd, buf, line)) {
        if (line.empty()) continue;
        svc.submit(line, [&svc, &mf, fd, write_mu](const std::string& resp) {
          send_line(fd, *write_mu, resp);
          mf.write(svc.metrics_text());
        });
        if (svc.shutdown_requested()) {
          // Stop accepting; in-flight and queued runs still complete.
          ::shutdown(listener, SHUT_RDWR);
          break;
        }
      }
      // Outstanding responses for this connection may still arrive from
      // worker threads; wait for them before retiring the connection.
      svc.drain();
      ::shutdown(fd, SHUT_RDWR);
    });
    if (svc.shutdown_requested()) break;
  }
  g_listener.store(-1, std::memory_order_relaxed);
  ::close(listener);
  {
    // A stop signal only interrupts the accept loop; connection threads may
    // still be blocked in recv(). Shut their sockets down so every thread
    // unwinds through its drain (fds stay valid until the joins below).
    std::lock_guard<std::mutex> lock(conns_mu);
    if (g_stop.load(std::memory_order_relaxed))
      for (const int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto& t : conns) t.join();
    for (const int fd : conn_fds) ::close(fd);
  }
  svc.drain();
  mf.write(svc.metrics_text());
  ::unlink(path.c_str());
  return 0;
}

#endif  // RN_HAVE_UNIX_SOCKETS

}  // namespace

int main(int argc, char** argv) {
  rn::bench::register_all();

  serve_options opt;
  bool stdio = false;
  auto value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--socket" && (v = value(i))) {
      opt.socket_path = v;
    } else if (arg == "--metrics-file" && (v = value(i))) {
      opt.metrics_path = v;
    } else if (arg == "--workers" && (v = value(i))) {
      opt.svc.workers = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--threads" && (v = value(i))) {
      opt.svc.threads_per_request = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--cache" && (v = value(i))) {
      opt.svc.cache_entries = std::stoul(v);
    } else if (arg == "--max-trials" && (v = value(i))) {
      opt.svc.max_trials = std::stoul(v);
    } else if (arg == "--cache-file" && (v = value(i))) {
      opt.svc.cache_file = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (stdio == !opt.socket_path.empty()) return usage(argv[0]);

  install_stop_handlers();
  rn::svc::service svc(opt.svc);
  metrics_file mf(opt.metrics_path);
  mf.write(svc.metrics_text());
  if (stdio) return serve_stdio(svc, mf);
#if RN_HAVE_UNIX_SOCKETS
  return serve_socket(svc, mf, opt.socket_path);
#else
  std::cerr << "socket transport needs a POSIX platform; use --stdio\n";
  return 1;
#endif
}
