#!/usr/bin/env python3
"""Cross-commit perf trend: aggregate retained BENCH_<sha>*.json artifacts
into a per-benchmark trend table and gate the current run against the
median of the last N green runs.

The single-previous-run comparison (tools/bench_compare.py) is noisy on
shared CI runners and blind to slow drift: a 10%/PR regression never trips
a 25% single-step gate. This tool instead reconstructs the whole perf
trajectory from the uploaded artifacts — every green perf-job run uploads
its `BENCH_<sha>_timing.json` / `BENCH_<sha>_micro.json` files with 90-day
retention — and compares the current run against the *median* of the last
N historical values per metric, which is robust to one-off runner noise in
both the history and the gate.

History sources (pick one):

  --dir DIR      read BENCH_*.json files from a local directory (e.g. the
                 extraction of previously downloaded artifacts); ordered by
                 file modification time.
  --fetch        list and download the retained artifacts of this repository
                 via the GitHub API (needs GITHUB_REPOSITORY and
                 GITHUB_TOKEN, i.e. a CI run); ordered by artifact creation
                 time. Only green runs upload artifacts, so the history is
                 green by construction.

Usage:
    bench_trend.py (--dir DIR | --fetch) --current FILE [--current FILE ...]
                   [--window 5] [--threshold 1.25] [--min-ms 5]
                   [--artifact-name bench-json-perf] [--max-artifacts 30]
                   [--markdown PATH] [--no-gate]

Metric extraction is shared with bench_compare.py (suite wall_ms +
micro real_time). Exit codes: 0 ok / seeding, 1 trend regression, 2 bad
input. An empty history is the seeding case: the table is still written so
this run becomes the trajectory's first point, and the gate passes.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import re
import statistics
import sys
import tempfile
import urllib.request
import zipfile

import bench_compare

# One run's metrics: {metric name: value}.
Metrics = dict[str, float]
# (metric, [(short sha, value)] window tail, median, current, verdict).
TrendRow = tuple[str, list[tuple[str, float]], float | None, float | None, str]

SHA_RE = re.compile(r"^BENCH_([0-9a-f]{7,40})(?:_(timing|micro))?\.json$")

# Trended on the table but never gated: RSS on shared CI runners is too
# noisy for a hard threshold (same policy as bench_compare.py).
REPORT_ONLY = {"suite/peak_rss_mib"}


def short(sha: str) -> str:
    return sha[:9] if re.fullmatch(r"[0-9a-f]{7,40}", sha) else sha


def classify(path: str) -> tuple[str | None, str | None]:
    """Returns (sha, kind) for a BENCH_<sha>[_timing|_micro].json basename,
    or (None, None) for files that are not part of the trajectory."""
    m = SHA_RE.match(os.path.basename(path))
    if not m:
        return None, None
    return m.group(1), m.group(2) or "results"


def load_point_metrics(paths: list[str]) -> Metrics:
    """Merged {metric: value} over one run's timing/micro files (results
    JSONs carry no timings and are skipped)."""
    metrics: Metrics = {}
    for path in paths:
        try:
            m, rss = bench_compare.load_metrics(path)
        except SystemExit:
            continue  # results JSON or unreadable — not a trend metric file
        except (OSError, ValueError, KeyError, TypeError) as e:
            # A truncated upload or corrupt row must cost one point of
            # history, not the whole trend job.
            print(f"bench_trend: skipping corrupt metrics file {path}: {e}",
                  file=sys.stderr)
            continue
        metrics.update(m)
        if rss is not None:
            metrics["suite/peak_rss_mib"] = rss / 1024.0
    return metrics


def history_from_dir(dirpath: str) -> list[tuple[str, Metrics]]:
    """[(sha, {metric: value})] ordered oldest -> newest by file mtime."""
    runs: dict[str, tuple[float, list[str]]] = {}  # sha -> (mtime, paths)
    for name in os.listdir(dirpath):
        path = os.path.join(dirpath, name)
        sha, kind = classify(path)
        if sha is None or kind == "results" or not os.path.isfile(path):
            continue
        mtime, paths = runs.get(sha, (0.0, []))
        runs[sha] = (max(mtime, os.path.getmtime(path)), paths + [path])
    ordered = sorted(runs.items(), key=lambda kv: kv[1][0])
    return [(sha, load_point_metrics(paths)) for sha, (_t, paths) in ordered]


def github_api(url: str, token: str, raw: bool = False) -> object:
    req = urllib.request.Request(url)
    req.add_header("Authorization", f"Bearer {token}")
    req.add_header("X-GitHub-Api-Version", "2022-11-28")
    if not raw:
        req.add_header("Accept", "application/vnd.github+json")
    with urllib.request.urlopen(req, timeout=60) as resp:
        body = resp.read()
    return body if raw else json.loads(body)


def history_from_artifacts(artifact_name: str,
                           max_artifacts: int) -> list[tuple[str, Metrics]]:
    """Downloads the newest `max_artifacts` non-expired artifacts with the
    given name and returns [(sha, metrics)] oldest -> newest."""
    repo = os.environ.get("GITHUB_REPOSITORY")
    token = os.environ.get("GITHUB_TOKEN")
    if not repo or not token:
        raise SystemExit("bench_trend: --fetch needs GITHUB_REPOSITORY and "
                         "GITHUB_TOKEN in the environment")
    base = os.environ.get("GITHUB_API_URL", "https://api.github.com")
    listing = github_api(
        f"{base}/repos/{repo}/actions/artifacts"
        f"?name={artifact_name}&per_page=100", token)
    assert isinstance(listing, dict)
    artifacts = [a for a in listing.get("artifacts", [])
                 if not a.get("expired", False)]
    artifacts.sort(key=lambda a: a.get("created_at", ""))  # oldest first
    artifacts = artifacts[-max_artifacts:]
    history: list[tuple[str, Metrics]] = []
    for art in artifacts:
        try:
            blob = github_api(art["archive_download_url"], token, raw=True)
            assert isinstance(blob, bytes)
        except OSError as e:
            print(f"bench_trend: skipping artifact {art.get('id')}: {e}",
                  file=sys.stderr)
            continue
        with tempfile.TemporaryDirectory() as tmp:
            try:
                with zipfile.ZipFile(io.BytesIO(blob)) as zf:
                    zf.extractall(tmp)
            except zipfile.BadZipFile:
                continue
            point = history_from_dir(tmp)
        # One artifact = one run = one sha in practice; keep them all if not.
        history.extend(point)
    return history


def build_table(history: list[tuple[str, Metrics]], current: Metrics,
                window: int, threshold: float, min_ms: float,
                min_micro_ms: float) -> tuple[list[TrendRow], list[str]]:
    """Returns (rows, regressions). Each row:
    (metric, [historical values in window order], median, current, verdict)."""
    names = sorted(set(current) | {n for _sha, m in history for n in m})
    rows: list[TrendRow] = []
    regressions: list[str] = []
    for name in names:
        series = [(short(sha), m[name]) for sha, m in history if name in m]
        tail = series[-window:]
        cur = current.get(name)
        if cur is None:
            rows.append((name, tail, None, None, "retired"))
            continue
        if not tail:
            rows.append((name, tail, None, cur, "new (seeding trajectory)"))
            continue
        med = statistics.median(v for _s, v in tail)
        if name in REPORT_ONLY:
            ratio = cur / med if med > 0 else float("inf")
            rows.append((name, tail, med, cur,
                         f"reported only, not gated (x{ratio:.2f})"))
            continue
        floor = min_micro_ms if name.startswith("micro/") else min_ms
        if max(med, cur) < floor:
            rows.append((name, tail, med, cur, "(below noise floor)"))
            continue
        ratio = cur / med if med > 0 else float("inf")
        verdict = "ok"
        if ratio > threshold:
            verdict = f"REGRESSION x{ratio:.2f} vs median"
            regressions.append(name)
        elif ratio < 1 / threshold:
            verdict = f"improved x{1 / ratio:.2f} vs median"
        rows.append((name, tail, med, cur, verdict))
    return rows, regressions


def write_markdown(path: str, rows: list[TrendRow], current_sha: str,
                   window: int, verdict_line: str) -> None:
    def fmt(v: float | None) -> str:
        return f"{v:.2f}" if v is not None else "-"

    shas: list[str] = []
    for _name, tail, _med, _cur, _verdict in rows:
        for sha, _v in tail:
            if sha not in shas:
                shas.append(sha)
    with open(path, "a") as f:
        f.write(f"### perf trend: last {window} green runs → "
                f"`{short(current_sha)}`\n\n")
        header = " | ".join(f"`{s}`" for s in shas) if shas else "(no history)"
        f.write(f"| metric | {header} | median | current | verdict |\n")
        f.write("|---|" + "---:|" * (max(1, len(shas)) + 2) + "---|\n")
        for name, tail, med, cur, verdict in rows:
            by_sha = dict(tail)
            cells = " | ".join(fmt(by_sha.get(s)) for s in shas) \
                if shas else "-"
            cell = verdict
            if verdict.startswith("REGRESSION"):
                cell = f"**{verdict}** :red_circle:"
            elif verdict.startswith("improved"):
                cell = f"{verdict} :green_circle:"
            f.write(f"| `{name}` | {cells} | {fmt(med)} | {fmt(cur)} "
                    f"| {cell} |\n")
        f.write(f"\n{verdict_line}\n\n")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    src = ap.add_mutually_exclusive_group(required=True)
    src.add_argument("--dir", help="local directory of BENCH_<sha>*.json")
    src.add_argument("--fetch", action="store_true",
                     help="download retained artifacts via the GitHub API")
    ap.add_argument("--current", action="append", required=True,
                    help="current run's timing/micro JSON (repeatable)")
    ap.add_argument("--current-sha",
                    default=os.environ.get("GITHUB_SHA", "current"),
                    help="label for the current run (default: $GITHUB_SHA)")
    ap.add_argument("--window", type=int, default=5,
                    help="gate against the median of the last N runs")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > threshold * median")
    ap.add_argument("--min-ms", type=float, default=5.0)
    ap.add_argument("--min-micro-ms", type=float, default=0.01)
    ap.add_argument("--artifact-name", default="bench-json-perf",
                    help="artifact name to fetch history from")
    ap.add_argument("--max-artifacts", type=int, default=30,
                    help="newest artifacts to download with --fetch")
    ap.add_argument("--markdown", default=os.environ.get("GITHUB_STEP_SUMMARY"),
                    help="append the trend table to this file "
                         "(default: $GITHUB_STEP_SUMMARY when set)")
    ap.add_argument("--no-gate", action="store_true",
                    help="report the trend but never fail")
    args = ap.parse_args()

    current = load_point_metrics(args.current)
    if not current:
        raise SystemExit(f"bench_trend: no metrics in {args.current}")
    history = (history_from_dir(args.dir) if args.dir
               else history_from_artifacts(args.artifact_name,
                                           args.max_artifacts))
    # The current run may already sit in the history dir (local use);
    # self-comparison would hide exactly the regression we gate on.
    history = [(sha, m) for sha, m in history
               if short(sha) != short(args.current_sha)]

    rows, regressions = build_table(history, current, args.window,
                                    args.threshold, args.min_ms,
                                    args.min_micro_ms)

    width = max((len(r[0]) for r in rows), default=10)

    def fmt(v: float | None) -> str:
        return f"{v:10.2f}" if v is not None else "         -"

    print(f"{'metric':<{width}}  {'median':>10}  {'current':>10}  "
          f"verdict  (window {args.window}, {len(history)} run(s) of history)")
    for name, _tail, med, cur, verdict in rows:
        print(f"{name:<{width}}  {fmt(med)}  {fmt(cur)}  {verdict}")

    if not history:
        verdict_line = ("no historical runs found — seeding the trajectory "
                        "with this run's artifacts")
    elif regressions:
        verdict_line = (f"FAIL: {len(regressions)} metric(s) regressed beyond "
                        f"x{args.threshold} vs the median of the last "
                        f"{args.window} green runs: {', '.join(regressions)}")
    else:
        verdict_line = (f"OK: no metric regressed beyond x{args.threshold} vs "
                        f"the median of the last {args.window} green runs")
    if args.no_gate and regressions:
        verdict_line += " [--no-gate: reported only]"

    if args.markdown:
        try:
            write_markdown(args.markdown, rows, args.current_sha, args.window,
                           verdict_line)
        except OSError as e:
            print(f"bench_trend: cannot write markdown summary: {e}",
                  file=sys.stderr)

    print(f"\n{verdict_line}")
    return 1 if regressions and not args.no_gate else 0


if __name__ == "__main__":
    sys.exit(main())
