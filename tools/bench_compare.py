#!/usr/bin/env python3
"""Compare two bench timing files and fail on wall-clock regressions.

Inputs are rn-bench-timing-v1..v5 sidecars written by `bench_suite --timing`
(v5 adds the distributed-rank fields emitted by `rn_dist`)
and/or google-benchmark JSON written by `bench_micro --benchmark_out=...`.
The file kind is auto-detected. Tracked metrics:

  * bench_suite:  per-experiment `wall_ms`
  * bench_micro:  per-benchmark `real_time` (aggregate rows are skipped)

The v2 sidecar also carries `peak_rss_kb` (process high-water mark); it is
reported for trend-watching but never gated — RSS on shared CI runners is
too noisy for a hard threshold.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 1.25] [--min-ms 5]
                     [--markdown PATH]

Exit codes: 0 ok (or no comparable baseline), 1 regression, 2 bad input.
Metrics only present on one side are reported but never fail the gate: a
benchmark's first appearance shows as "new (no baseline)" and a removed one
as "retired". Timings below --min-ms are ignored: at micro scale CI-runner
noise swamps any real signal.

A markdown comparison table is appended to --markdown PATH, defaulting to
$GITHUB_STEP_SUMMARY when that is set — so the CI perf job surfaces the
numbers on the run's summary page without artifact digging.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# (metric, baseline_ms, current_ms, verdict) — one comparison-table row.
Row = tuple[str, float | None, float | None, str]


# v3 made the per-experiment peak_rss_kb a per-run high-water mark (reset
# between experiments); the top-level peak_rss_kb stays process-monotone, so
# the comparison logic is unchanged across versions. v4 added the active
# SIMD kernel tier and per-experiment simd/scalar round splits — execution
# evidence, not timings, so they ride along untracked here.
TIMING_SCHEMAS = ("rn-bench-timing-v1", "rn-bench-timing-v2",
                  "rn-bench-timing-v3", "rn-bench-timing-v4",
                  "rn-bench-timing-v5", "rn-bench-timing-v6")


def load_metrics(path: str) -> tuple[dict[str, float], int | None]:
    """Returns ({metric_name: milliseconds}, peak_rss_kb_or_None)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}") from e

    metrics: dict[str, float] = {}
    peak_rss: int | None = None
    if isinstance(data, dict) and data.get("schema") in TIMING_SCHEMAS:
        for row in data.get("experiments", []):
            metrics[f"suite/{row['id']}"] = float(row["wall_ms"])
        if "peak_rss_kb" in data:
            peak_rss = int(data["peak_rss_kb"])
    elif isinstance(data, dict) and "benchmarks" in data:  # google-benchmark
        unit_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
        for row in data["benchmarks"]:
            if row.get("run_type") == "aggregate":
                continue
            # Skipped benchmarks (e.g. a SIMD tier the runner's CPU lacks)
            # report error rows, not timings.
            if row.get("error_occurred"):
                continue
            scale = unit_ms.get(row.get("time_unit", "ns"))
            if scale is None:
                continue
            metrics[f"micro/{row['name']}"] = float(row["real_time"]) * scale
    else:
        raise SystemExit(f"bench_compare: {path}: unrecognized format")
    return metrics, peak_rss


def _fmt_cell(value: float | None) -> str:
    return f"{value:.2f}" if value is not None else "-"


def write_markdown(path: str, title: str, rows: list[Row],
                   verdict_line: str) -> None:
    """Appends a GitHub-flavored markdown comparison table to `path`."""
    with open(path, "a") as f:
        f.write(f"### perf compare: {title}\n\n")
        f.write("| metric | base | cur | verdict |\n")
        f.write("|---|---:|---:|---|\n")
        for name, b, c, verdict in rows:
            cell = verdict
            if verdict.startswith("REGRESSION"):
                cell = f"**{verdict}** :red_circle:"
            elif verdict.startswith("improved"):
                cell = f"{verdict} :green_circle:"
            f.write(f"| `{name}` | {_fmt_cell(b)} | {_fmt_cell(c)} | {cell} |\n")
        f.write(f"\n{verdict_line}\n\n")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > threshold * baseline (default 1.25)")
    ap.add_argument("--min-ms", type=float, default=5.0,
                    help="ignore suite metrics faster than this in the baseline")
    ap.add_argument("--min-micro-ms", type=float, default=0.01,
                    help="ignore micro (per-iteration) metrics faster than this")
    ap.add_argument("--markdown", default=os.environ.get("GITHUB_STEP_SUMMARY"),
                    help="append a markdown comparison table to this file "
                         "(default: $GITHUB_STEP_SUMMARY when set)")
    args = ap.parse_args()

    # A fresh branch (or a wiped cache) has no baseline artifact at all;
    # that is a seeding run, not an error — never fail the gate on it.
    if not os.path.exists(args.baseline):
        print("no baseline, skipping gate")
        return 0

    base, base_rss = load_metrics(args.baseline)
    cur, cur_rss = load_metrics(args.current)

    regressions: list[str] = []
    rows: list[Row] = []
    for name in sorted(set(base) | set(cur)):
        b, c = base.get(name), cur.get(name)
        if b is None:
            rows.append((name, b, c, "new (no baseline, not gated)"))
            continue
        if c is None:
            rows.append((name, b, c, "retired"))
            continue
        floor = args.min_micro_ms if name.startswith("micro/") else args.min_ms
        if max(b, c) < floor:  # ignore only when both sides are in the noise
            rows.append((name, b, c, "(below noise floor, ignored)"))
            continue
        ratio = c / b if b > 0 else float("inf")
        verdict = "ok"
        if ratio > args.threshold:
            verdict = f"REGRESSION x{ratio:.2f}"
            regressions.append(name)
        elif ratio < 1 / args.threshold:
            verdict = f"improved x{1 / ratio:.2f}"
        rows.append((name, b, c, verdict))

    # The v2 sidecar's RSS high-water mark rides along in the same table (in
    # MiB, not ms) so memory regressions are visible on the step summary —
    # reported, never gated: RSS on shared CI runners is too noisy for a
    # hard threshold.
    if base_rss is not None or cur_rss is not None:
        def to_mib(v: int | None) -> float | None:
            return v / 1024.0 if v is not None else None

        rss_verdict = "reported only, not gated"
        if base_rss and cur_rss:
            rss_verdict += f" (x{cur_rss / base_rss:.2f})"
        rows.append(("suite/peak_rss_mib", to_mib(base_rss), to_mib(cur_rss),
                     rss_verdict))

    width = max((len(r[0]) for r in rows), default=10)

    def fmt_ms(v: float | None) -> str:
        return f"{v:10.2f}" if v is not None else "         -"

    print(f"{'metric':<{width}}  {'base':>10}  {'cur':>10}  verdict")
    for name, b, c, verdict in rows:
        print(f"{name:<{width}}  {fmt_ms(b)}  {fmt_ms(c)}  {verdict}")

    if regressions:
        verdict_line = (f"FAIL: {len(regressions)} metric(s) regressed beyond "
                        f"x{args.threshold}: {', '.join(regressions)}")
    else:
        verdict_line = f"OK: no tracked metric regressed beyond x{args.threshold}"
    if cur_rss is not None:
        rss_note = f"peak RSS: {cur_rss / 1024.0:.0f} MiB"
        if base_rss is not None:
            rss_note += f" (baseline {base_rss / 1024.0:.0f} MiB)"
        verdict_line += f" — {rss_note} [not gated]"

    if args.markdown:
        try:
            write_markdown(args.markdown, args.current, rows, verdict_line)
        except OSError as e:
            print(f"bench_compare: cannot write markdown summary: {e}",
                  file=sys.stderr)

    print(f"\n{verdict_line}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
