#!/usr/bin/env python3
"""rn_lint — determinism & dist-safety contract checker for this repository.

Every guarantee the repo makes (results JSON byte-identical across thread
counts, SIMD levels, rank counts, and every fault-recovery path) is enforced
at runtime by `cmp` in CI.  This tool enforces the *source-level* contracts
behind those guarantees, so a violation is caught when the code is written
rather than when a byte-identity lane flakes:

  R1 no-wallclock-entropy   No non-deterministic entropy or wall-clock source
                            (`rand`, `std::random_device`, `time`,
                            `std::chrono::*_clock::now`, ...) outside the
                            allowlisted RNG/deadline/backoff implementations.
                            Timing *measurement* that feeds the sidecar (never
                            results JSON) is suppressed inline with a reason.
  R2 no-unordered-iteration No iteration over `std::unordered_{map,set}` in a
                            translation unit that feeds results JSON or
                            hit-word/touch-list state.  Iteration order of
                            those containers is implementation-defined, so an
                            output path through one silently breaks the
                            byte-identity contract.  Keyed lookup is fine.
  R3 wire-only-dist-io      All blocking I/O in `src/dist/` goes through the
                            `dist::channel` deadline API (`src/dist/wire.*`).
                            A raw `read`/`write`/`recv`/`send`/`poll` on a
                            channel fd bypasses the PR 9 deadline discipline
                            and can reintroduce hangs the supervisor cannot
                            see.
  R4 contract-error-throws  Exceptions thrown in `src/dist/` and `src/svc/`
                            derive from `contract_error` (e.g. `wire_error`)
                            so failures stay machine-checkable at the
                            supervision and service boundaries.
  R5 suppression-needs-reason
                            Every suppression comment (`rn-lint: allow(...)`
                            or clang-tidy `NOLINT*`) carries a non-empty
                            reason string.  A reasonless suppression still
                            suppresses its target rule, but is itself a
                            finding.

Suppression syntax (applies to its own line, or to the next line when the
comment stands alone):

    foo();  // rn-lint: allow(R1) timing sidecar only, never results JSON
    // rn-lint: allow(R2,R4) <reason>
    bar();

Backends: the `ast` backend uses libclang (python `clang` bindings) driven
off `compile_commands.json`; the `lex` backend is a built-in C++ lexer with
no dependencies.  `auto` (default) picks `ast` when the bindings import and
a library resolves, else `lex`.  Both emit identical finding shapes and both
must agree on the fixture suite in `tests/lint_fixtures/`.

Usage:
    rn_lint.py [--root DIR] [--build-dir DIR | --compile-commands FILE]
               [--files F ...] [--backend auto|lex|ast] [--rules R1,R3]
               [--list-rules] [--json] [--quiet]

Exit codes: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    rule_id: str
    slug: str
    contract: str
    # fnmatch globs, repo-root-relative with forward slashes.
    scope: tuple[str, ...]
    allow: tuple[str, ...]


RULES: dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule(
            "R1",
            "no-wallclock-entropy",
            "trial RNG draw order is a versioned contract; wall clocks and "
            "OS entropy must not reach result paths",
            scope=("src/*", "bench/*", "tools/*.cpp", "tests/*", "examples/*"),
            allow=(
                # The deterministic counter-RNG implementation itself.
                "src/common/rng.*",
                # The deadline engine: poll() budgets are wall-clock by design.
                "src/dist/wire.*",
                # Respawn backoff delays: wall-clock by design, round results
                # are validated before apply so timing never reaches output.
                "src/dist/supervisor.*",
            ),
        ),
        Rule(
            "R2",
            "no-unordered-iteration",
            "results JSON and hit-word/touch-list state are byte-compared "
            "across runs; unordered-container iteration order is not stable",
            scope=(
                "src/core/*",
                "src/radio/*",
                "src/sim/*",
                "src/svc/*",
                "src/dist/*",
                "bench/*",
            ),
            allow=(),
        ),
        Rule(
            "R3",
            "wire-only-dist-io",
            "dist-channel I/O goes through the deadline-driven wire API; raw "
            "fd I/O can hang past the supervisor's detection",
            scope=("src/dist/*",),
            allow=("src/dist/wire.cpp", "src/dist/wire.h"),
        ),
        Rule(
            "R4",
            "contract-error-throws",
            "dist/svc failures must stay machine-checkable: every thrown "
            "exception derives from contract_error",
            scope=("src/dist/*", "src/svc/*"),
            allow=(),
        ),
        Rule(
            "R5",
            "suppression-needs-reason",
            "suppressions are part of the audit trail; each one records why "
            "the contract does not apply at that site",
            scope=("src/*", "bench/*", "tools/*", "tests/*", "examples/*"),
            allow=(),
        ),
    )
}

# R1: names that are findings when used as a call (identifier followed by
# `(`, not a member access, unqualified or qualified by `std`/global `::`).
ENTROPY_CALLS = frozenset(
    {
        "rand",
        "srand",
        "rand_r",
        "random",
        "srandom",
        "drand48",
        "lrand48",
        "mrand48",
        "erand48",
        "getrandom",
        "getentropy",
        "time",
        "clock",
        "timespec_get",
        "gettimeofday",
        "clock_gettime",
    }
)
# R1: names that are findings on any use (types / objects).
ENTROPY_TYPES = frozenset({"random_device"})
# R1: `<qualifier>::now(` — any qualified now() call is a clock read; clock
# type aliases (`using clock = std::chrono::steady_clock`) make qualifier
# whitelisting unsound, so the rule is conservative and relies on inline
# suppressions for the (unlikely) non-clock `X::now()`.
CLOCK_NOW = "now"

# R3: blocking-I/O entry points that bypass dist::channel deadlines.
RAW_IO_CALLS = frozenset(
    {
        "read",
        "write",
        "recv",
        "send",
        "pread",
        "pwrite",
        "readv",
        "writev",
        "recvmsg",
        "sendmsg",
        "recvfrom",
        "sendto",
        "poll",
        "ppoll",
        "select",
        "pselect",
        "epoll_wait",
        "epoll_pwait",
    }
)

# R4: exception types legal to throw in src/dist and src/svc.
ALLOWED_THROW_TYPES = frozenset({"contract_error", "wire_error"})

UNORDERED_CONTAINERS = frozenset(
    {
        "unordered_map",
        "unordered_set",
        "unordered_multimap",
        "unordered_multiset",
    }
)

ITERATION_MEMBERS = frozenset(
    {"begin", "cbegin", "rbegin", "crbegin", "end", "cend", "rend", "crend"}
)


@dataclass(frozen=True)
class Finding:
    path: str  # repo-root-relative
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        slug = RULES[self.rule_id].slug
        return f"{self.path}:{self.line}: {self.rule_id} [{slug}] {self.message}"


# --------------------------------------------------------------------------
# Lexer (shared: suppression scan always runs; the lex backend runs on it too)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "punct" | "num" | "str" | "char"
    text: str
    line: int


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::",
    "->",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
)

_ID_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | frozenset("0123456789")


@dataclass
class LexedFile:
    tokens: list[Token] = field(default_factory=list)
    # line -> list of comment texts on that line (joined body, no delimiters)
    comments: dict[int, list[str]] = field(default_factory=dict)
    # lines that contain at least one non-comment, non-whitespace character
    code_lines: set[int] = field(default_factory=set)


def lex(source: str) -> LexedFile:  # noqa: C901 - a lexer is one big switch
    out = LexedFile()
    i, n, line = 0, len(source), 1
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            j = n if j < 0 else j
            out.comments.setdefault(line, []).append(source[i + 2 : j].strip())
            i = j
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = source[i + 2 : j]
            out.comments.setdefault(line, []).append(body.strip())
            line += body.count("\n")
            i = j + 2
            continue
        if c == "#" and not out.code_lines.__contains__(line):
            # Preprocessor directive: skip to end of line (honouring \-splices)
            # so `#include <random>` and macro bodies never produce tokens.
            j = i
            while j < n:
                k = source.find("\n", j)
                if k < 0:
                    j = n
                    break
                if source[k - 1] == "\\" if k > 0 else False:
                    line += 1
                    j = k + 1
                    continue
                j = k
                break
            i = j
            continue
        out.code_lines.add(line)
        if c in _ID_START:
            j = i + 1
            while j < n and source[j] in _ID_CONT:
                j += 1
            text = source[i:j]
            # Raw string literal prefix: R"delim( ... )delim"
            if j < n and source[j] == '"' and text.endswith("R"):
                k = source.find("(", j)
                if k > 0:
                    delim = source[j + 1 : k]
                    close = source.find(")" + delim + '"', k)
                    close = n if close < 0 else close + len(delim) + 2
                    line += source.count("\n", i, close)
                    out.tokens.append(Token("str", "<rawstr>", line))
                    i = close
                    continue
            out.tokens.append(Token("id", text, line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and (source[j] in _ID_CONT or source[j] in ".'+-"):
                if source[j] in "+-" and source[j - 1] not in "eEpP":
                    break
                j += 1
            out.tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n and source[j] != c:
                if source[j] == "\\":
                    j += 1
                elif source[j] == "\n":
                    break  # unterminated; bail at EOL
                j += 1
            out.tokens.append(
                Token("str" if c == '"' else "char", "<lit>", line)
            )
            i = j + 1
            continue
        for p in _PUNCT3:
            if source.startswith(p, i):
                out.tokens.append(Token("punct", p, line))
                i += 3
                break
        else:
            for p in _PUNCT2:
                if source.startswith(p, i):
                    out.tokens.append(Token("punct", p, line))
                    i += 2
                    break
            else:
                out.tokens.append(Token("punct", c, line))
                i += 1
    return out


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------

_ALLOW_RE = re.compile(r"rn-lint:\s*allow\(\s*([A-Z0-9,\s]+?)\s*\)[:\s-]*(.*)")
_NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?\b(?:\(([^)]*)\))?[:\s-]*(.*)")


@dataclass
class Suppressions:
    # line -> rule ids suppressed on that line ("*" = all, for NOLINT)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    reasonless: list[tuple[int, str]] = field(default_factory=list)

    def active(self, rule_id: str, line: int) -> bool:
        rules = self.by_line.get(line)
        return rules is not None and (rule_id in rules or "*" in rules)


def scan_suppressions(lexed: LexedFile) -> Suppressions:
    sup = Suppressions()
    for line, comments in sorted(lexed.comments.items()):
        # A comment with no code on its line covers the next code line.
        target = line if line in lexed.code_lines else line + 1
        for comment in comments:
            m = _ALLOW_RE.search(comment)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                sup.by_line.setdefault(target, set()).update(rules)
                if not m.group(2).strip():
                    sup.reasonless.append((line, "rn-lint: allow() without a reason"))
                continue
            # NOLINT is audited only when it leads the comment; prose that
            # merely mentions NOLINT is not a suppression.
            m = _NOLINT_RE.match(comment)
            if m:
                # clang-tidy handles the actual suppression; rn_lint only
                # audits that a check list and reason are present.
                if not m.group(1) or not m.group(1).strip():
                    sup.reasonless.append(
                        (line, "NOLINT without an explicit check list")
                    )
                elif not m.group(2).strip():
                    sup.reasonless.append((line, "NOLINT without a reason"))
    return sup


# --------------------------------------------------------------------------
# Lexical backend
# --------------------------------------------------------------------------


def _prev(tokens: Sequence[Token], i: int) -> Token | None:
    return tokens[i - 1] if i > 0 else None


def _next(tokens: Sequence[Token], i: int) -> Token | None:
    return tokens[i + 1] if i + 1 < len(tokens) else None


def _is_member_access(tokens: Sequence[Token], i: int) -> bool:
    p = _prev(tokens, i)
    return p is not None and p.kind == "punct" and p.text in (".", "->")


# Statement keywords that can directly precede a call expression; any other
# identifier (or a type-closing `>`/`&`/`*`) before `name(` means `name` is
# being *declared* (`gf2_vector random(...)`), not called.
_STMT_KEYWORDS = frozenset(
    {"return", "co_return", "co_yield", "co_await", "throw", "case", "else", "do"}
)


def _looks_like_declaration(tokens: Sequence[Token], i: int) -> bool:
    p = _prev(tokens, i)
    if p is None:
        return False
    if p.kind == "id":
        return p.text not in _STMT_KEYWORDS
    return p.text in (">", "&", "*", "~")


def _qualifier(tokens: Sequence[Token], i: int) -> str | None:
    """For tokens[i] preceded by `::`, the qualifying identifier ("" = global)."""
    p = _prev(tokens, i)
    if p is None or p.text != "::":
        return None
    q = _prev(tokens, i - 1)
    if q is not None and q.kind == "id":
        return q.text
    return ""


def _skip_template_args(tokens: Sequence[Token], i: int) -> int:
    """tokens[i] just after a container name; skip a balanced <...> if present."""
    if i < len(tokens) and tokens[i].text == "<":
        depth = 0
        while i < len(tokens):
            t = tokens[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return i  # malformed / not template args after all
            i += 1
    return i


def _check_r1(path: str, tokens: Sequence[Token]) -> Iterator[Finding]:
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or _is_member_access(tokens, i):
            continue
        nxt = _next(tokens, i)
        called = nxt is not None and nxt.text == "("
        qual = _qualifier(tokens, i)
        if tok.text in ENTROPY_TYPES and qual in (None, "", "std"):
            yield Finding(
                path, tok.line, "R1", f"`{tok.text}` is a non-deterministic source"
            )
        elif (
            tok.text in ENTROPY_CALLS
            and called
            and qual in (None, "", "std")
            and not _looks_like_declaration(tokens, i)
        ):
            yield Finding(
                path,
                tok.line,
                "R1",
                f"call to `{tok.text}` reads wall clock / OS entropy",
            )
        elif tok.text == CLOCK_NOW and called and qual not in (None, ""):
            yield Finding(
                path, tok.line, "R1", f"clock read `{qual}::now()`"
            )


def _check_r2(path: str, tokens: Sequence[Token]) -> Iterator[Finding]:
    # Pass 1: names declared with an unordered container type in this file.
    unordered_vars: set[str] = set()
    for i, tok in enumerate(tokens):
        if tok.kind == "id" and tok.text in UNORDERED_CONTAINERS:
            j = _skip_template_args(tokens, i + 1)
            while j < len(tokens) and tokens[j].text in ("&", "&&", "*", "const"):
                j += 1
            if j < len(tokens) and tokens[j].kind == "id":
                unordered_vars.add(tokens[j].text)

    def is_unordered_expr(expr: Sequence[Token]) -> bool:
        return any(
            t.kind == "id"
            and (t.text in UNORDERED_CONTAINERS or t.text in unordered_vars)
            for t in expr
        )

    # Pass 2a: range-for whose range expression mentions an unordered name.
    for i, tok in enumerate(tokens):
        if tok.kind == "id" and tok.text == "for":
            nxt = _next(tokens, i)
            if nxt is None or nxt.text != "(":
                continue
            depth, j, colon = 0, i + 1, -1
            while j < len(tokens):
                t = tokens[j].text
                if t in ("(", "[", "{"):
                    depth += 1
                elif t in (")", "]", "}"):
                    depth -= 1
                    if depth == 0:
                        break
                elif t == ":" and depth == 1 and colon < 0:
                    colon = j
                elif t == ";" and depth == 1:
                    colon = -1  # classic for loop
                    break
                j += 1
            if colon > 0 and is_unordered_expr(tokens[colon + 1 : j]):
                yield Finding(
                    path,
                    tok.line,
                    "R2",
                    "range-for over an unordered container (iteration order "
                    "is not stable across implementations)",
                )
    # Pass 2b: explicit iterator walks: var.begin() / std::begin(var).
    for i, tok in enumerate(tokens):
        if (
            tok.kind == "id"
            and tok.text in ITERATION_MEMBERS
            and _is_member_access(tokens, i)
        ):
            nxt = _next(tokens, i)
            obj = _prev(tokens, i - 1)
            if (
                nxt is not None
                and nxt.text == "("
                and obj is not None
                and obj.kind == "id"
                and obj.text in unordered_vars
            ):
                yield Finding(
                    path,
                    tok.line,
                    "R2",
                    f"iterator walk over unordered container `{obj.text}`",
                )


def _check_r3(path: str, tokens: Sequence[Token]) -> Iterator[Finding]:
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in RAW_IO_CALLS:
            continue
        if _is_member_access(tokens, i):
            continue  # channel.send(...) etc. — the wire API itself
        nxt = _next(tokens, i)
        if nxt is None or nxt.text != "(":
            continue
        qual = _qualifier(tokens, i)
        if qual not in (None, ""):
            continue  # ns-qualified: some other API, not a libc symbol
        if _looks_like_declaration(tokens, i):
            continue
        yield Finding(
            path,
            tok.line,
            "R3",
            f"raw `{tok.text}()` bypasses the dist::channel deadline API "
            "(src/dist/wire.h)",
        )


def _check_r4(path: str, tokens: Sequence[Token]) -> Iterator[Finding]:
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "throw":
            continue
        j = i + 1
        if j >= len(tokens):
            continue
        if tokens[j].text == ";":
            continue  # rethrow
        last_id: str | None = None
        while j < len(tokens) and (
            tokens[j].kind == "id" or tokens[j].text == "::"
        ):
            if tokens[j].kind == "id":
                last_id = tokens[j].text
            j += 1
        if last_id is None or last_id not in ALLOWED_THROW_TYPES:
            shown = last_id if last_id is not None else "<expression>"
            yield Finding(
                path,
                tok.line,
                "R4",
                f"throws `{shown}`, which does not derive from "
                "`contract_error` (src/common/check.h)",
            )


LEX_CHECKS = {
    "R1": _check_r1,
    "R2": _check_r2,
    "R3": _check_r3,
    "R4": _check_r4,
    # R5 is produced by the suppression scanner, not a token check.
}


# --------------------------------------------------------------------------
# AST backend (libclang) — optional; gated behind an import probe because the
# python bindings + shared library are not part of the base toolchain.
# --------------------------------------------------------------------------


def _load_cindex():  # type: ignore[no-untyped-def]
    try:
        from clang import cindex  # noqa: PLC0415 - optional dependency probe
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # library missing / version mismatch
        return None
    return cindex


def ast_available() -> bool:
    return _load_cindex() is not None


def _ast_findings(  # noqa: C901 - one cursor walk, several rule arms
    cindex,  # type: ignore[no-untyped-def]
    path: Path,
    rel: str,
    args: list[str],
) -> list[Finding]:
    """Best-effort AST checks for one TU; raises on parse failure (caller
    falls back to the lexical backend)."""
    index = cindex.Index.create()
    tu = index.parse(
        str(path),
        args=args,
        options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0,
    )
    severe = [d for d in tu.diagnostics if d.severity >= 4]
    if severe:
        raise RuntimeError(f"parse failure: {severe[0].spelling}")
    ck = cindex.CursorKind
    findings: list[Finding] = []

    def here(cursor) -> bool:  # type: ignore[no-untyped-def]
        loc = cursor.location
        return loc.file is not None and Path(loc.file.name).resolve() == path

    def derives_from_contract_error(type_decl) -> bool:  # type: ignore[no-untyped-def]
        seen = set()
        stack = [type_decl]
        while stack:
            d = stack.pop()
            if d is None or d.hash in seen:
                continue
            seen.add(d.hash)
            if d.spelling in ALLOWED_THROW_TYPES or d.spelling == "contract_error":
                return True
            for child in d.get_children():
                if child.kind == ck.CXX_BASE_SPECIFIER:
                    stack.append(child.type.get_declaration())
        return False

    for cursor in tu.cursor.walk_preorder():
        if not here(cursor):
            continue
        line = cursor.location.line
        if cursor.kind == ck.CALL_EXPR:
            ref = cursor.referenced
            name = ref.spelling if ref is not None else cursor.spelling
            parent = ref.semantic_parent if ref is not None else None
            pname = parent.spelling if parent is not None else ""
            if name in ENTROPY_CALLS and pname in ("", "std"):
                findings.append(
                    Finding(rel, line, "R1", f"call to `{name}` reads wall clock / OS entropy")
                )
            elif name == CLOCK_NOW and "clock" in pname:
                findings.append(Finding(rel, line, "R1", f"clock read `{pname}::now()`"))
            elif name in RAW_IO_CALLS and pname in ("", "std"):
                findings.append(
                    Finding(
                        rel,
                        line,
                        "R3",
                        f"raw `{name}()` bypasses the dist::channel deadline API (src/dist/wire.h)",
                    )
                )
        elif cursor.kind in (ck.VAR_DECL, ck.TYPE_REF):
            if "random_device" in cursor.type.spelling:
                findings.append(
                    Finding(rel, line, "R1", "`random_device` is a non-deterministic source")
                )
        elif cursor.kind == ck.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if children:
                range_t = children[-2].type.spelling if len(children) >= 2 else ""
                if "unordered_" in range_t:
                    findings.append(
                        Finding(
                            rel,
                            line,
                            "R2",
                            "range-for over an unordered container (iteration "
                            "order is not stable across implementations)",
                        )
                    )
        elif cursor.kind == ck.CXX_THROW_EXPR:
            operands = list(cursor.get_children())
            if operands:
                decl = operands[0].type.get_declaration()
                if not derives_from_contract_error(decl):
                    findings.append(
                        Finding(
                            rel,
                            line,
                            "R4",
                            f"throws `{operands[0].type.spelling}`, which does not "
                            "derive from `contract_error` (src/common/check.h)",
                        )
                    )
    # The AST walk double-reports nothing by construction, but dedupe anyway
    # to keep parity with the lexical backend on macro-heavy code.
    return sorted(set(findings), key=lambda f: (f.line, f.rule_id, f.message))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

DEFAULT_GLOBS = (
    "src/**/*.cpp",
    "src/**/*.h",
    "bench/**/*.cpp",
    "bench/**/*.h",
    "tools/*.cpp",
    "tests/*.cpp",
    "examples/*.cpp",
)


def rule_applies(rule: Rule, rel: str) -> bool:
    rel = rel.replace("\\", "/")
    in_scope = any(fnmatch.fnmatch(rel, g) for g in rule.scope)
    allowed = any(fnmatch.fnmatch(rel, g) for g in rule.allow)
    return in_scope and not allowed


def load_compile_commands(cc_path: Path) -> dict[Path, list[str]]:
    """Map of absolute TU path -> clang-ish args (for the AST backend)."""
    entries = json.loads(cc_path.read_text())
    out: dict[Path, list[str]] = {}
    for entry in entries:
        file_path = Path(entry["directory"], entry["file"]).resolve()
        raw = entry.get("arguments") or entry.get("command", "").split()
        args: list[str] = []
        keep_next = False
        for a in raw[1:]:
            if keep_next:
                args.append(a)
                keep_next = False
            elif a in ("-I", "-isystem", "-D", "-U", "-include"):
                args.append(a)
                keep_next = True
            elif a.startswith(("-I", "-D", "-U", "-std=", "-isystem")):
                args.append(a)
        out[file_path] = args
    return out


def collect_files(
    root: Path,
    explicit: Sequence[str],
    compile_commands: dict[Path, list[str]] | None,
) -> list[Path]:
    if explicit:
        return [Path(f).resolve() for f in explicit]
    files: set[Path] = set()
    if compile_commands:
        # The build dir defines the TU set (e.g. build-nosimd drops the
        # per-ISA SIMD TUs); headers are globbed on top since they are not
        # TUs but still carry contract-relevant code.
        for tu in compile_commands:
            try:
                tu.relative_to(root)
            except ValueError:
                continue
            files.add(tu)
        for pattern in DEFAULT_GLOBS:
            if pattern.endswith(".h"):
                files.update(p.resolve() for p in root.glob(pattern))
    else:
        for pattern in DEFAULT_GLOBS:
            files.update(p.resolve() for p in root.glob(pattern))
    return sorted(files)


def lint_file(
    path: Path,
    root: Path,
    backend: str,
    rules: set[str],
    compile_commands: dict[Path, list[str]] | None,
) -> tuple[list[Finding], str]:
    """Returns (findings, backend_used)."""
    try:
        rel = path.resolve().relative_to(root).as_posix()
    except ValueError:
        rel = path.name
    source = path.read_text(errors="replace")
    lexed = lex(source)
    sup = scan_suppressions(lexed)

    used = "lex"
    raw: list[Finding] = []
    active = [r for r in ("R1", "R2", "R3", "R4") if r in rules and rule_applies(RULES[r], rel)]
    if active:
        if backend == "ast":
            cindex = _load_cindex()
            if cindex is None:
                raise SystemExit(
                    "rn_lint: --backend ast requested but python clang "
                    "bindings / libclang are not available"
                )
            args = (compile_commands or {}).get(path.resolve(), ["-std=c++20"])
            raw = _ast_findings(cindex, path.resolve(), rel, args)
            used = "ast"
        elif backend == "auto" and path.suffix == ".cpp" and ast_available():
            try:
                args = (compile_commands or {}).get(path.resolve(), ["-std=c++20"])
                raw = _ast_findings(_load_cindex(), path.resolve(), rel, args)
                used = "ast"
            except Exception:
                raw = []
                for rule_id in active:
                    raw.extend(LEX_CHECKS[rule_id](rel, lexed.tokens))
        else:
            for rule_id in active:
                raw.extend(LEX_CHECKS[rule_id](rel, lexed.tokens))

    # set(): `stats.begin()`/`stats.end()` on one line is one finding, and
    # the AST backend may visit a macro-expanded node twice.
    findings = [
        f
        for f in set(raw)
        if f.rule_id in rules
        and rule_applies(RULES[f.rule_id], rel)
        and not sup.active(f.rule_id, f.line)
    ]
    if "R5" in rules and rule_applies(RULES["R5"], rel):
        findings.extend(
            Finding(rel, line, "R5", msg) for line, msg in sup.reasonless
        )
    findings.sort(key=lambda f: (f.line, f.rule_id))
    return findings, used


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rn_lint.py", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (rule scopes are relative to it)",
    )
    parser.add_argument("--build-dir", type=Path, help="build dir holding compile_commands.json")
    parser.add_argument("--compile-commands", type=Path, help="explicit compile_commands.json")
    parser.add_argument("--files", nargs="*", default=[], help="lint only these files")
    parser.add_argument("--backend", choices=("auto", "lex", "ast"), default="auto")
    parser.add_argument("--rules", default=",".join(RULES), help="comma-separated rule subset")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", action="store_true", help="machine-readable findings")
    parser.add_argument("--quiet", action="store_true")
    opts = parser.parse_args(argv)

    if opts.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id} {rule.slug}")
            print(f"    contract:  {rule.contract}")
            print(f"    scope:     {', '.join(rule.scope)}")
            print(f"    allowlist: {', '.join(rule.allow) or '(none)'}")
        return 0

    rules = {r.strip() for r in opts.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"rn_lint: unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    root = opts.root.resolve()
    cc_path: Path | None = None
    if opts.compile_commands:
        cc_path = opts.compile_commands
    elif opts.build_dir:
        cc_path = opts.build_dir / "compile_commands.json"
    compile_commands: dict[Path, list[str]] | None = None
    if cc_path is not None:
        if not cc_path.exists():
            print(f"rn_lint: {cc_path} not found (configure with "
                  "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
            return 2
        compile_commands = load_compile_commands(cc_path)

    files = collect_files(root, opts.files, compile_commands)
    if not files:
        print("rn_lint: no input files", file=sys.stderr)
        return 2

    all_findings: list[Finding] = []
    backends_used: set[str] = set()
    for path in files:
        findings, used = lint_file(path, root, opts.backend, rules, compile_commands)
        backends_used.add(used)
        all_findings.extend(findings)

    if opts.json:
        print(
            json.dumps(
                [
                    {"file": f.path, "line": f.line, "rule": f.rule_id,
                     "slug": RULES[f.rule_id].slug, "message": f.message}
                    for f in all_findings
                ],
                indent=2,
            )
        )
    else:
        for f in all_findings:
            print(f.render())
        if not opts.quiet:
            print(
                f"rn_lint: {len(all_findings)} finding(s) in {len(files)} "
                f"file(s) [backend: {'+'.join(sorted(backends_used))}]",
                file=sys.stderr,
            )
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
