// Multi-process launcher: bench_suite semantics on a rank fleet.
//
//   rn_dist --ranks 4 --experiment e1 --trials 8 --json out.json --timing t.json
//   rn_dist --ranks 4 --intra-trial-threads 2 --topology layered:depth=50,width=200 ...
//
// Every flag after --ranks is the bench_suite CLI. The process forks R
// worker ranks (re-exec'ing this binary with the hidden --rn-worker-fd
// flag), installs the dist session as the trial observer, and runs the
// ordinary suite driver: declarative trials execute on the fleet, each rank
// holding only its partitioned CSR slice. Results JSON is byte-identical to
// bench_suite at any --ranks / --intra-trial-threads; the timing sidecar is
// rn-bench-timing-v6 with per-rank peak RSS, transport byte counts,
// coordinator merge time, and the recovery counters.
//
// Supervision flags (dist/supervisor.h; values in milliseconds / attempts):
//
//   --round-deadline-ms N   recv deadline per round frame (default 60000;
//                           0 = block forever, disables wedge detection)
//   --setup-deadline-ms N   recv deadline for setup/teardown acks (300000)
//   --max-respawns N        respawn attempts per rank per trial before the
//                           rank degrades to block reassignment (2)
//   --backoff-ms N          base of the exponential respawn backoff (100)
//   --fault-plan PLAN       deterministic fault injection, e.g.
//                           "kill:rank=1,trial=0,round=4;drop:rank=0,..."
//                           (grammar in dist/fault.h)
//
// A crashed or wedged rank is respawned (bounded backoff) with its CSR slice
// rebuilt and the trial replayed; past the budget its blocks are reassigned
// to the survivors. Results stay byte-identical through every path.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dist/session.h"
#include "dist/worker.h"
#include "experiments/experiments.h"
#include "sim/cli.h"
#include "sim/engine.h"

namespace {

/// Extracts "--flag N" from args (erasing it); returns fallback when absent.
bool take_value_flag(std::vector<char*>& args, const std::string& flag,
                     unsigned& out) {
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (flag != args[i]) continue;
    char* end = nullptr;
    const unsigned long v = std::strtoul(args[i + 1], &end, 10);
    if (end == nullptr || *end != '\0') {
      std::cerr << "bad value for " << flag << ": " << args[i + 1] << "\n";
      std::exit(2);
    }
    out = static_cast<unsigned>(v);
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return true;
  }
  return false;
}

/// Extracts "--flag TEXT" from args (erasing it); returns fallback when
/// absent.
bool take_string_flag(std::vector<char*>& args, const std::string& flag,
                      std::string& out) {
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (flag != args[i]) continue;
    out = args[i + 1];
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return true;
  }
  return false;
}

/// Peeks (without erasing — run_suite consumes it too) at a numeric flag.
unsigned peek_value_flag(const std::vector<char*>& args,
                         const std::string& flag, unsigned fallback) {
  for (std::size_t i = 1; i + 1 < args.size(); ++i)
    if (flag == args[i])
      return static_cast<unsigned>(std::strtoul(args[i + 1], nullptr, 10));
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker entry: the coordinator re-execs this binary per rank.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string("--rn-worker-fd") == argv[i]) {
      return rn::dist::worker_main(std::atoi(argv[i + 1]));
    }
  }

  std::vector<char*> args(argv, argv + argc);
  unsigned ranks = 4;
  take_value_flag(args, "--ranks", ranks);

  rn::bench::register_all();

  rn::dist::session_options opt;
  opt.ranks = ranks;
  take_value_flag(args, "--round-deadline-ms", opt.policy.round_deadline_ms);
  take_value_flag(args, "--setup-deadline-ms", opt.policy.setup_deadline_ms);
  take_value_flag(args, "--max-respawns", opt.policy.max_respawns);
  take_value_flag(args, "--backoff-ms", opt.policy.backoff_base_ms);
  take_string_flag(args, "--fault-plan", opt.fault_plan);
  // In distributed mode the intra-trial knob applies worker-side (the
  // coordinator's networks delegate their walks); run_suite still parses
  // the flag for the local fallback paths.
  opt.intra_trial_threads =
      std::max(1u, peek_value_flag(args, "--intra-trial-threads", 1));
  // Re-exec through /proc/self/exe so the fleet runs this exact binary
  // regardless of how it was invoked.
  opt.worker_exec = "/proc/self/exe";

  rn::dist::session session(opt);
  session.install();
  rn::sim::set_timing_extension([&session](rn::sim::json_value& timing) {
    timing["schema"] = "rn-bench-timing-v6";
    timing["ranks"] = static_cast<std::uint64_t>(session.ranks());
    const rn::dist::session_totals t = session.totals();
    rn::sim::json_value per_rank = rn::sim::json_value::array();
    std::int64_t peak = rn::sim::process_peak_rss_kb();  // coordinator
    for (const std::int64_t kb : t.peak_rss_kb_per_rank) {
      per_rank.push_back(kb);
      peak = std::max(peak, kb);
    }
    timing["peak_rss_kb_per_rank"] = std::move(per_rank);
    // Cross-process fix: the top-level peak is the max over the coordinator
    // and every rank, not the coordinator alone.
    timing["peak_rss_kb"] = peak;
    timing["dist_bytes_sent"] = t.bytes_sent;
    timing["dist_bytes_received"] = t.bytes_received;
    timing["dist_merge_wall_ms"] = t.merge_wall_ms;
    timing["dist_trials"] = t.trials;
    // v6: recovery observability — zero across the board on a healthy run.
    timing["dist_rounds"] = t.rounds;
    timing["dist_rank_restarts"] = t.rank_restarts;
    timing["dist_reassigned_blocks"] = t.reassigned_blocks;
    timing["dist_degraded_ranks"] = t.degraded_ranks;
    timing["dist_recovery_wall_ms"] = t.recovery_wall_ms;
  });

  const int rc = rn::sim::run_suite(static_cast<int>(args.size()),
                                    args.data());
  rn::sim::set_timing_extension({});
  session.uninstall();
  return rc;
}
