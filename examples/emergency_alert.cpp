// City-wide emergency alert over an ad-hoc mesh.
//
// City blocks are dense radio cells (cliques) chained along a corridor —
// a worst case for contention (everyone in a block hears everyone) and for
// diameter (the corridor is long). Shows how collision detection closes the
// gap between unknown- and known-topology dissemination, the message of
// Theorems 1.1/1.3.
//
//   ./examples/emergency_alert
#include <cstdio>

#include "core/api.h"
#include "core/single_broadcast.h"
#include "graph/bfs.h"
#include "graph/generators.h"

int main() {
  using namespace rn;

  const auto g = graph::clique_chain(/*cliques=*/12, /*clique_size=*/8);
  std::printf("city mesh: %zu radios in 12 blocks, diameter %d\n\n",
              g.node_count(), graph::diameter(g));

  core::options opt;
  opt.seed = 9;
  opt.prm = core::params::fast();

  std::printf("dissemination (alert from node 0):\n");
  for (const char* protocol : {"decay", "tuned-decay", "gst-known"}) {
    const auto res = core::run_broadcast(g, protocol, {/*source=*/0}, opt);
    std::printf("  %-12s rounds=%lld  collisions observed=%lld\n", protocol,
                static_cast<long long>(res.base.rounds_to_complete),
                static_cast<long long>(res.base.collisions_observed));
  }

  // With collision detection, the unknown-topology pipeline prepares the
  // same GST infrastructure distributedly; once built, every further alert
  // reuses it at known-topology speed.
  core::single_broadcast_options so;
  so.seed = 9;
  so.prm = core::params::fast();
  const auto setup = core::prepare_unknown_topology(g, 0, so);
  std::printf(
      "\none-time distributed setup with CD (Theorem 1.1 preprocessing):\n"
      "  wave=%lld rounds, construction=%lld, labeling=%lld  "
      "(rings=%zu, fallbacks=%d)\n",
      static_cast<long long>(setup.wave_rounds),
      static_cast<long long>(setup.construction_rounds),
      static_cast<long long>(setup.labeling_rounds), setup.rings.rings.size(),
      setup.fallback_finalizations + setup.fallback_adoptions);

  const auto res = core::run_broadcast(g, "gst-unknown-cd", {0}, opt);
  std::printf("  full Theorem 1.1 run: completed=%s, total rounds=%lld\n",
              res.base.completed ? "yes" : "NO",
              static_cast<long long>(res.base.rounds_executed));
  std::printf(
      "\ntakeaway: collision detection replaces topology knowledge — the\n"
      "per-alert cost matches the known-topology schedule after setup.\n");
  return 0;
}
