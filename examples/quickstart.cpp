// Quickstart: broadcast one message through a multi-hop radio network with
// the paper's Theorem 1.1 algorithm (unknown topology + collision detection),
// and compare against the classic Decay baseline.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/api.h"
#include "graph/topology.h"

int main() {
  using namespace rn;

  // A 12-hop-deep network of 61 radios; node 0 is the source. Topologies are
  // declarative specs resolved through the registry (same syntax as
  // `bench_suite --topology ...`).
  auto spec = graph::parse_topology_spec("layered:depth=12,width=5,edge_prob=0.4");
  spec.seed = 7;
  const auto g = graph::build_topology(spec);
  std::printf("network %s: n=%zu, m=%zu edges\n\n", spec.to_string().c_str(),
              g.node_count(), g.edge_count());

  core::options opt;
  opt.seed = 42;
  opt.prm = core::params::fast();  // simulation-friendly Theta constants

  for (const char* protocol : {"decay", "gst-known", "gst-unknown-cd"}) {
    const auto res = core::run_broadcast(g, protocol, {/*source=*/0}, opt);
    std::printf("%-15s  completed=%s  rounds=%lld  transmissions=%lld\n",
                protocol, res.base.completed ? "yes" : "NO",
                static_cast<long long>(res.base.rounds_to_complete),
                static_cast<long long>(res.base.transmissions));
    for (const auto& [phase, rounds] : res.base.phase_rounds)
      std::printf("    phase %-16s %10lld rounds\n", phase,
                  static_cast<long long>(rounds));
  }
  std::printf(
      "\nNote: gst-unknown-cd pays a one-time distributed setup "
      "(BFS wave + GST construction + labeling); after that, dissemination\n"
      "needs only ~2 rounds per hop instead of Decay's ~log n per hop.\n");
  return 0;
}
