// Quickstart: broadcast one message through a multi-hop radio network with
// the paper's Theorem 1.1 algorithm (unknown topology + collision detection),
// and compare against the classic Decay baseline.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/api.h"
#include "graph/generators.h"

int main() {
  using namespace rn;

  // A 12-hop-deep network of 61 radios; node 0 is the source.
  graph::layered_options lo;
  lo.depth = 12;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.seed = 7;
  const auto g = graph::random_layered(lo);
  std::printf("network: n=%zu, m=%zu edges, source eccentricity=%zu\n\n",
              g.node_count(), g.edge_count(), lo.depth);

  core::run_options opt;
  opt.seed = 42;
  opt.prm = core::params::fast();  // simulation-friendly Theta constants

  for (const auto alg : {core::single_algorithm::decay,
                         core::single_algorithm::gst_known,
                         core::single_algorithm::gst_unknown_cd}) {
    const auto res = core::run_single(g, 0, alg, opt);
    std::printf("%-15s  completed=%s  rounds=%lld  transmissions=%lld\n",
                core::to_string(alg).c_str(), res.completed ? "yes" : "NO",
                static_cast<long long>(res.rounds_to_complete),
                static_cast<long long>(res.transmissions));
    for (const auto& [phase, rounds] : res.phase_rounds)
      std::printf("    phase %-16s %10lld rounds\n", phase,
                  static_cast<long long>(rounds));
  }
  std::printf(
      "\nNote: gst-unknown-cd pays a one-time distributed setup "
      "(BFS wave + GST construction + labeling); after that, dissemination\n"
      "needs only ~2 rounds per hop instead of Decay's ~log n per hop.\n");
  return 0;
}
