// Gathering-Spanning-Tree explorer — reproduces the paper's Figure 1.
//
// Builds (a) a naive ranked BFS tree and (b) a proper GST on the same graph,
// prints levels/ranks/fast stretches, runs the validator on both, and emits
// Graphviz DOT for each (pipe into `dot -Tpng` if available).
//
//   ./examples/gst_explorer
#include <cstdio>

#include "core/gst.h"
#include "core/gst_centralized.h"
#include "graph/dot.h"
#include "graph/generators.h"

using namespace rn;

namespace {

void describe(const char* title, const graph::graph& g, const core::gst& t) {
  std::printf("--- %s ---\n", title);
  const auto d = core::derive(g, t);
  std::printf("node: ");
  for (node_id v = 0; v < g.node_count(); ++v) std::printf("%3u", v);
  std::printf("\nlvl : ");
  for (node_id v = 0; v < g.node_count(); ++v) std::printf("%3d", t.level[v]);
  std::printf("\nrank: ");
  for (node_id v = 0; v < g.node_count(); ++v) std::printf("%3d", t.rank[v]);
  std::printf("\npar : ");
  for (node_id v = 0; v < g.node_count(); ++v)
    t.parent[v] == no_node ? std::printf("  -")
                           : std::printf("%3u", t.parent[v]);
  std::printf("\n");
  std::printf("fast stretches (head -> ... -> tail):\n");
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (!d.is_stretch_head[v] || d.stretch_child[v] == no_node) continue;
    std::printf("  %u", v);
    for (node_id w = d.stretch_child[v]; w != no_node; w = d.stretch_child[w])
      std::printf(" -> %u", w);
    std::printf("   (rank %d)\n", t.rank[v]);
  }
  const auto errs = core::validate_gst(g, t);
  if (errs.empty()) {
    std::printf("validator: VALID GST (collision-free)\n\n");
  } else {
    std::printf("validator: %zu violation(s):\n", errs.size());
    for (const auto& e : errs) std::printf("  ! %s\n", e.c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // The Figure-1 shape: two parallel rank-1 chains hanging off level 1, with
  // a cross edge that makes naive parent choices violate collision-freeness.
  graph::graph::builder b(9);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 4);
  b.add_edge(2, 3);  // the troublesome cross edge
  b.add_edge(3, 5);
  b.add_edge(4, 6);
  b.add_edge(5, 7);
  b.add_edge(6, 8);
  const auto g = std::move(b).build();

  std::printf("graph: n=%zu m=%zu (Figure 1 family)\n\n", g.node_count(),
              g.edge_count());

  // (a) a ranked BFS with min-id parents — not necessarily a GST.
  const auto naive = core::ranked_bfs(g, 0);
  describe("ranked BFS (naive parents, Figure 1 left)", g, naive);

  // (b) the centralized GST construction — always collision-free.
  const auto proper = core::build_gst_centralized(g, 0);
  describe("gathering spanning tree (Figure 1 right)", g, proper);

  // DOT output for visual comparison.
  auto dot_for = [&](const core::gst& t) {
    std::vector<graph::dot_node_style> styles(g.node_count());
    std::vector<graph::dot_highlight_edge> tree;
    for (node_id v = 0; v < g.node_count(); ++v) {
      styles[v].label =
          std::to_string(v) + " r" + std::to_string(t.rank[v]);
      if (t.parent[v] != no_node) {
        const bool stretch = t.rank[v] == t.rank[t.parent[v]];
        tree.push_back({t.parent[v], v, stretch ? "blue" : "green"});
      }
    }
    return graph::to_dot(g, styles, tree);
  };
  std::printf("DOT (naive):\n%s\n", dot_for(naive).c_str());
  std::printf("DOT (GST, blue = fast stretch edges):\n%s", dot_for(proper).c_str());
  return 0;
}
