// Firmware update over a wireless sensor field.
//
// A base station (node 0) must push a k-chunk firmware image to every sensor
// in a unit-disk network. Compares the paper's network-coded pipeline
// (Theorem 1.2/1.3 engines) against sequential per-chunk Decay broadcasts
// and uncoded store-and-forward routing.
//
//   ./examples/sensor_grid
#include <cstdio>

#include "core/api.h"
#include "graph/bfs.h"
#include "graph/generators.h"

int main() {
  using namespace rn;

  const auto g = graph::random_unit_disk(120, 0.17, 11);
  const auto depth = graph::bfs(g, 0).max_level;
  std::printf("sensor field: n=%zu, m=%zu edges, base-station depth=%d\n",
              g.node_count(), g.edge_count(), depth);

  const std::size_t k = 16;  // firmware chunks
  std::printf("firmware: %zu chunks of 32 bytes\n\n", k);

  core::options opt;
  opt.seed = 3;
  opt.prm = core::params::fast();
  opt.payload_size = 32;

  std::printf("%-18s %12s %14s %14s\n", "strategy", "rounds", "transmissions",
              "all decoded");
  for (const char* protocol :
       {"seq-decay", "routing", "rlnc-known", "rlnc-unknown-cd"}) {
    const auto res = core::run_broadcast(g, protocol, {/*source=*/0, k}, opt);
    std::printf("%-18s %12lld %14lld %14s\n", protocol,
                static_cast<long long>(res.base.rounds_to_complete),
                static_cast<long long>(res.base.transmissions),
                res.base.completed && res.payloads_verified ? "yes" : "NO");
  }
  std::printf(
      "\nrlnc-known codes all %zu chunks together over the GST schedule\n"
      "(Theorem 1.2); rlnc-unknown-cd additionally builds everything\n"
      "distributedly and pipelines generations through rings (Theorem 1.3).\n",
      k);
  return 0;
}
