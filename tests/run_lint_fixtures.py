#!/usr/bin/env python3
"""Fixture-based test suite for tools/rn_lint.py, registered with ctest.

Each `.cpp` under tests/lint_fixtures/ is self-describing:

    // lint-fixture-place:  src/dist/r3_raw_io.cpp   (repo-relative path the
    //                      file is staged at — rule scopes are path-based)
    // lint-fixture-expect: R3 R3 R3                  (exact multiset of rule
    //                      IDs that must fire; `none` for clean fixtures)

The runner stages every fixture into a shadow tree, runs rn_lint on it with
each available backend, and asserts the reported rule-ID multiset matches
the directive exactly — the named rule fires the named number of times and
*nothing else* fires.  Exit 0 = all fixtures pass.
"""

from __future__ import annotations

import collections
import json
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RN_LINT = REPO / "tools" / "rn_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

_PLACE_RE = re.compile(r"lint-fixture-place:\s*(\S+)")
_EXPECT_RE = re.compile(r"lint-fixture-expect:\s*(.+)")


def parse_directives(fixture: Path) -> tuple[str, list[str]]:
    head = fixture.read_text()
    place = _PLACE_RE.search(head)
    expect = _EXPECT_RE.search(head)
    if place is None or expect is None:
        raise SystemExit(f"{fixture.name}: missing lint-fixture directives")
    raw = expect.group(1).split("//")[0].strip()
    rules = [] if raw == "none" else raw.split()
    return place.group(1), rules


def available_backends() -> list[str]:
    backends = ["lex"]
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "import sys; sys.path.insert(0, r'%s'); import rn_lint; "
            "sys.exit(0 if rn_lint.ast_available() else 3)" % (REPO / "tools"),
        ],
        check=False,
    )
    if probe.returncode == 0:
        backends.append("ast")
    return backends


def run_fixture(
    fixture: Path, place: str, expected: list[str], backend: str
) -> list[str]:
    """Returns a list of failure messages (empty = pass)."""
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="rn_lint_fix_") as tmp:
        root = Path(tmp)
        staged = root / place
        staged.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(fixture, staged)
        proc = subprocess.run(
            [
                sys.executable,
                str(RN_LINT),
                "--root",
                str(root),
                "--files",
                str(staged),
                "--backend",
                backend,
                "--json",
            ],
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode not in (0, 1):
            return [
                f"{fixture.name} [{backend}]: rn_lint crashed "
                f"(rc={proc.returncode}): {proc.stderr.strip()}"
            ]
        findings = json.loads(proc.stdout)
        got = collections.Counter(f["rule"] for f in findings)
        want = collections.Counter(expected)
        if got != want:
            detail = "; ".join(
                f"{f['file']}:{f['line']} {f['rule']} {f['message']}"
                for f in findings
            )
            failures.append(
                f"{fixture.name} [{backend}]: expected {dict(want) or 'none'}, "
                f"got {dict(got) or 'none'} ({detail or 'no findings'})"
            )
        want_rc = 1 if expected else 0
        if proc.returncode != want_rc:
            failures.append(
                f"{fixture.name} [{backend}]: exit code {proc.returncode}, "
                f"expected {want_rc}"
            )
    return failures


def main() -> int:
    fixtures = sorted(FIXTURES.glob("*.cpp"))
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 2
    backends = available_backends()
    failures: list[str] = []
    ran = 0
    for fixture in fixtures:
        place, expected = parse_directives(fixture)
        for backend in backends:
            failures.extend(run_fixture(fixture, place, expected, backend))
            ran += 1
    for message in failures:
        print(f"FAIL {message}")
    print(
        f"lint fixtures: {ran - len(failures)}/{ran} passed "
        f"({len(fixtures)} fixtures x backends {'+'.join(backends)})"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
