// Fast-forward equivalence: every protocol runner must produce bit-identical
// results whether idle rounds are stepped on the channel or skipped via
// network::advance. The naive mode is the oracle; these tests run each
// pipeline both ways and compare network statistics, per-node energy vectors,
// protocol outputs and round counts.
#include <gtest/gtest.h>

#include "baseline/decay.h"
#include "coding/rlnc.h"
#include "core/assignment.h"
#include "core/gst_distributed.h"
#include "core/multi_broadcast.h"
#include "core/recruiting.h"
#include "core/single_broadcast.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "radio/network.h"

namespace rn {
namespace {

graph::graph layered(std::size_t depth, std::size_t width, std::uint64_t seed) {
  graph::layered_options lo;
  lo.depth = depth;
  lo.width = width;
  lo.edge_prob = 0.4;
  lo.seed = seed;
  return graph::random_layered(lo);
}

void expect_same_result(const radio::broadcast_result& naive,
                        const radio::broadcast_result& ff) {
  EXPECT_EQ(naive.completed, ff.completed);
  EXPECT_EQ(naive.rounds_to_complete, ff.rounds_to_complete);
  EXPECT_EQ(naive.rounds_executed, ff.rounds_executed);
  EXPECT_EQ(naive.transmissions, ff.transmissions);
  EXPECT_EQ(naive.deliveries, ff.deliveries);
  EXPECT_EQ(naive.collisions_observed, ff.collisions_observed);
  EXPECT_EQ(naive.energy, ff.energy);  // per-node transmission counts
  ASSERT_EQ(naive.phase_rounds.size(), ff.phase_rounds.size());
  for (std::size_t i = 0; i < naive.phase_rounds.size(); ++i) {
    EXPECT_STREQ(naive.phase_rounds[i].first, ff.phase_rounds[i].first);
    EXPECT_EQ(naive.phase_rounds[i].second, ff.phase_rounds[i].second);
  }
}

TEST(FastForward, Theorem11PipelineBitIdentical) {
  // E1-style single-message broadcast at small n: the full unknown-topology
  // pipeline (wave, construction, labeling, ring relay + handoffs).
  const auto g = layered(8, 5, 11);
  core::single_broadcast_options opt;
  opt.seed = 21;
  opt.prm = core::params::fast();
  opt.fast_forward = false;
  const auto naive = core::run_unknown_cd_single_broadcast(g, 0, opt);
  opt.fast_forward = true;
  const auto ff = core::run_unknown_cd_single_broadcast(g, 0, opt);
  expect_same_result(naive, ff);
  EXPECT_FALSE(naive.energy.empty());
}

TEST(FastForward, Theorem11MultiRingBitIdentical) {
  const auto g = layered(12, 4, 5);
  core::single_broadcast_options opt;
  opt.seed = 3;
  opt.prm = core::params::fast();
  opt.prm.ring_divisor = 3.0;  // several rings => handoff blocks exercised
  opt.fast_forward = false;
  const auto naive = core::run_unknown_cd_single_broadcast(g, 0, opt);
  opt.fast_forward = true;
  const auto ff = core::run_unknown_cd_single_broadcast(g, 0, opt);
  expect_same_result(naive, ff);
}

TEST(FastForward, KnownGstBroadcastBitIdentical) {
  const auto g = layered(10, 5, 7);
  core::single_broadcast_options opt;
  opt.seed = 9;
  opt.prm = core::params::fast();
  opt.fast_forward = false;
  const auto naive = core::run_known_single_broadcast(g, 0, opt);
  opt.fast_forward = true;
  const auto ff = core::run_known_single_broadcast(g, 0, opt);
  expect_same_result(naive, ff);
}

TEST(FastForward, DistributedGstConstructionBitIdentical) {
  for (const bool pipelined : {true, false}) {
    const auto g = layered(6, 4, 13);
    core::distributed_gst_options opt;
    opt.seed = 17;
    opt.prm = core::params::fast();
    opt.pipelined = pipelined;
    opt.fast_forward = false;
    const auto naive = core::build_gst_distributed_single(g, 0, opt);
    opt.fast_forward = true;
    const auto ff = core::build_gst_distributed_single(g, 0, opt);
    EXPECT_EQ(naive.rounds, ff.rounds);
    EXPECT_EQ(naive.transmissions, ff.transmissions);
    EXPECT_EQ(naive.fallback_finalizations, ff.fallback_finalizations);
    EXPECT_EQ(naive.fallback_adoptions, ff.fallback_adoptions);
    EXPECT_EQ(naive.parent_rank, ff.parent_rank);
    EXPECT_EQ(naive.stretch_child, ff.stretch_child);
    ASSERT_EQ(naive.forests.size(), ff.forests.size());
    for (std::size_t j = 0; j < naive.forests.size(); ++j) {
      EXPECT_EQ(naive.forests[j].parent, ff.forests[j].parent);
      EXPECT_EQ(naive.forests[j].rank, ff.forests[j].rank);
      EXPECT_EQ(naive.forests[j].level, ff.forests[j].level);
      EXPECT_EQ(naive.forests[j].member, ff.forests[j].member);
    }
  }
}

TEST(FastForward, MultiMessageBroadcastBitIdentical) {
  const auto g = layered(5, 4, 23);
  const auto msgs = coding::make_test_messages(4, 8, 31);
  core::multi_broadcast_options opt;
  opt.seed = 41;
  opt.prm = core::params::fast();
  opt.payload_size = 8;
  opt.fast_forward = false;
  const auto naive = core::run_unknown_cd_multi_broadcast(g, 0, msgs, opt);
  opt.fast_forward = true;
  const auto ff = core::run_unknown_cd_multi_broadcast(g, 0, msgs, opt);
  expect_same_result(naive.base, ff.base);
  EXPECT_EQ(naive.payloads_verified, ff.payloads_verified);
}

TEST(FastForward, AssignmentProblemBitIdentical) {
  // Bipartite layered instance, as in experiment E7.
  const std::size_t half = 12;
  graph::graph::builder gb(2 * half);
  rng r(77);
  for (node_id red = 0; red < half; ++red)
    for (node_id blue = 0; blue < half; ++blue)
      if (r.bernoulli(0.3))
        gb.add_edge(red, static_cast<node_id>(half + blue));
  const auto g = std::move(gb).build();
  std::vector<node_id> reds, blues;
  for (node_id red = 0; red < half; ++red) reds.push_back(red);
  for (node_id blue = 0; blue < half; ++blue)
    if (g.degree(static_cast<node_id>(half + blue)) > 0)
      blues.push_back(static_cast<node_id>(half + blue));
  const int L = 4;
  const auto naive = core::run_assignment(g, reds, blues, 1, L, 2 * L, 3 * L,
                                          4 * L * L, L, 5, false);
  const auto ff = core::run_assignment(g, reds, blues, 1, L, 2 * L, 3 * L,
                                       4 * L * L, L, 5, true);
  EXPECT_EQ(naive.rounds, ff.rounds);
  EXPECT_EQ(naive.all_assigned, ff.all_assigned);
  EXPECT_EQ(naive.fallback_finalizations, ff.fallback_finalizations);
  EXPECT_EQ(naive.fallback_adoptions, ff.fallback_adoptions);
  EXPECT_EQ(naive.epoch_active_reds, ff.epoch_active_reds);
  EXPECT_EQ(naive.st.parent, ff.st.parent);
  EXPECT_EQ(naive.st.rank, ff.st.rank);
  EXPECT_EQ(naive.st.stretch_child, ff.st.stretch_child);
}

TEST(FastForward, RecruitingBitIdentical) {
  const std::size_t half = 10;
  graph::graph::builder gb(2 * half);
  rng r(3);
  for (node_id red = 0; red < half; ++red)
    for (node_id blue = 0; blue < half; ++blue)
      if (r.bernoulli(0.25))
        gb.add_edge(red, static_cast<node_id>(half + blue));
  const auto g = std::move(gb).build();
  std::vector<node_id> reds, blues;
  for (node_id red = 0; red < half; ++red) reds.push_back(red);
  for (node_id blue = 0; blue < half; ++blue)
    blues.push_back(static_cast<node_id>(half + blue));
  const auto naive = core::run_recruiting(g, reds, blues, 4, 24, 4, 9, false);
  const auto ff = core::run_recruiting(g, reds, blues, 4, 24, 4, 9, true);
  EXPECT_EQ(naive.rounds, ff.rounds);
  EXPECT_EQ(naive.recruited, ff.recruited);
  EXPECT_EQ(naive.properties_ok, ff.properties_ok);
}

TEST(FastForward, RecruitingWithoutRedsIsFullyQuiet) {
  const auto g = layered(2, 3, 1);
  core::recruiting_instance::config cfg;
  cfg.g = &g;
  cfg.blues = {1, 2, 3};
  cfg.L = 3;
  cfg.iterations = 5;
  cfg.exp_step = 2;
  cfg.seed = 4;
  core::recruiting_instance inst(std::move(cfg));
  EXPECT_EQ(inst.quiet_rounds(), inst.rounds_required());
  inst.skip_rounds(inst.quiet_rounds());
  EXPECT_TRUE(inst.finished());
}

// advance() must leave the erasure RNG untouched: after skipping k idle
// rounds, the channel behaves exactly as if those rounds had been stepped
// with an empty transmitter list.
TEST(FastForward, AdvanceKeepsErasureRngAligned) {
  const auto g = layered(1, 6, 2);  // source + one dense layer
  const radio::model m{.collision_detection = true,
                       .erasure_prob = 0.5,
                       .erasure_seed = 1234};
  const radio::round_buffer quiet;
  const radio::packet b0 = radio::packet::make_beacon(0);
  radio::round_buffer busy;
  busy.add(0, b0);
  const auto drop = [](const radio::reception&) {};

  for (const round_t idle : {0, 1, 7, 1000, 1 << 20}) {
    radio::network stepped(g, m);
    radio::network jumped(g, m);
    for (round_t i = 0; i < idle; ++i) stepped.step(quiet, drop);
    jumped.advance(idle);
    EXPECT_EQ(stepped.now(), jumped.now());
    // Several busy rounds afterwards must erase identically.
    for (int i = 0; i < 32; ++i) {
      stepped.step(busy, drop);
      jumped.step(busy, drop);
    }
    EXPECT_EQ(stepped.stats().erasures, jumped.stats().erasures);
    EXPECT_EQ(stepped.stats().deliveries, jumped.stats().deliveries);
    EXPECT_EQ(stepped.stats().rounds, jumped.stats().rounds);
    EXPECT_EQ(stepped.energy(), jumped.energy());
    EXPECT_EQ(jumped.skipped_rounds(), idle);
    EXPECT_EQ(stepped.skipped_rounds(), 0);
  }
}

// --no-fast-forward cross-check for the Decay family: under either coin
// contract, the fast_forward flag only changes whether the provably-idle
// rounds are stepped on the channel or advanced past — results must be
// bit-identical. Batched mode's idle rounds come from its transmit calendar;
// per_round mode's from deferring planned-but-empty rounds (draw order
// unchanged — the "exact where order is preserved" axis).
TEST(FastForward, ClassicDecayBitIdenticalInBothDrawModes) {
  const auto g = layered(10, 5, 31);
  for (const auto draws :
       {baseline::draw_mode::batched, baseline::draw_mode::per_round}) {
    baseline::decay_options opt;
    opt.seed = 7;
    opt.draws = draws;
    opt.fast_forward = false;
    const auto naive = baseline::run_decay_broadcast(g, 0, opt);
    opt.fast_forward = true;
    const auto ff = baseline::run_decay_broadcast(g, 0, opt);
    expect_same_result(naive, ff);
    EXPECT_TRUE(naive.completed);
  }
}

TEST(FastForward, LeveledDecayBitIdenticalWithAndWithoutNoise) {
  const auto g = layered(8, 4, 13);
  const auto levels = graph::bfs(g, 0).level;
  for (const bool mmv : {false, true}) {
    for (const auto draws :
         {baseline::draw_mode::batched, baseline::draw_mode::per_round}) {
      baseline::leveled_decay_options opt;
      opt.seed = 11;
      opt.mmv_noise = mmv;
      opt.draws = draws;
      opt.fast_forward = false;
      const auto naive = baseline::run_leveled_decay_broadcast(g, 0, levels, opt);
      opt.fast_forward = true;
      const auto ff = baseline::run_leveled_decay_broadcast(g, 0, levels, opt);
      expect_same_result(naive, ff);
      EXPECT_TRUE(naive.completed) << "mmv=" << mmv;
    }
  }
}

TEST(FastForward, TunedDecayBitIdentical) {
  const auto g = layered(12, 4, 17);
  for (const auto draws :
       {baseline::draw_mode::batched, baseline::draw_mode::per_round}) {
    baseline::tuned_decay_options opt;
    opt.seed = 3;
    opt.draws = draws;
    opt.fast_forward = false;
    const auto naive = baseline::run_tuned_decay_broadcast(g, 0, opt);
    opt.fast_forward = true;
    const auto ff = baseline::run_tuned_decay_broadcast(g, 0, opt);
    expect_same_result(naive, ff);
  }
}

// Without stop_when_complete the run must execute its full budget in both
// modes, and the fast path must not disturb post-completion rounds.
TEST(FastForward, DecayFullBudgetBitIdentical) {
  const auto g = layered(4, 4, 5);
  baseline::decay_options opt;
  opt.seed = 19;
  opt.max_rounds = 400;
  opt.stop_when_complete = false;
  opt.fast_forward = false;
  const auto naive = baseline::run_decay_broadcast(g, 0, opt);
  opt.fast_forward = true;
  const auto ff = baseline::run_decay_broadcast(g, 0, opt);
  expect_same_result(naive, ff);
  EXPECT_EQ(naive.rounds_executed, 400);
}

TEST(FastForward, AdvanceCountsRoundsAndNothingElse) {
  const auto g = layered(2, 2, 8);
  radio::network net(g, {.collision_detection = true});
  net.advance(123456789);
  EXPECT_EQ(net.now(), 123456789);
  EXPECT_EQ(net.stats().transmissions, 0);
  EXPECT_EQ(net.stats().deliveries, 0);
  EXPECT_EQ(net.stats().collisions_observed, 0);
  EXPECT_EQ(net.max_energy(), 0);
}

}  // namespace
}  // namespace rn
