// Pins the `channel-v1` contract (core/params.h): the block-major reception
// dispatch order and, through it, the per-reception erasure-draw mapping.
//
// The erasure channel consumes one Bernoulli draw per single-transmitter
// reception, in dispatch order. Dispatch order is: blocks of the fixed
// 32-way listener partition in ascending order, first-touch order within a
// block. Any change to the partition, the touch order, or the draw
// discipline re-maps which receptions get erased and silently shifts every
// erasure-channel result — so this file freezes the observable outcomes of
// a fixed workload as golden values. If a change here is intentional, it is
// a new channel contract: bump kChannelContract and re-pin.
//
// The same digest is also checked at forced team sizes 2 and 4, re-asserting
// the thread-count invariance that makes the contract well-defined.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "dist/session.h"
#include "graph/topology.h"
#include "radio/network.h"
#include "radio/packet.h"

namespace rn {
namespace {

/// FNV-1a over the reception/erasure trace.
struct digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
};

struct trace {
  std::uint64_t digest_value = 0;
  std::int64_t deliveries = 0;
  std::int64_t erasures = 0;
  std::int64_t collisions = 0;
};

/// Restores the process-global SIMD kernel level on scope exit.
struct simd_level_guard {
  explicit simd_level_guard(radio::simd_level l)
      : prev_(radio::active_simd_level()) {
    radio::set_simd_level(l);
  }
  ~simd_level_guard() { radio::set_simd_level(prev_); }
  radio::simd_level prev_;
};

/// Runs the fixed workload: 24 rounds on layered:depth=20,width=12 (seed 7),
/// erasure_prob 0.35, transmitters chosen by a fixed modular pattern so each
/// round mixes single-sender receptions (erasure draws) with collisions.
/// The fixed workload's topology: layered:depth=20,width=12 at seed 7.
graph::topology_spec workload_spec() {
  graph::topology_spec spec =
      graph::parse_topology_spec("layered:depth=20,width=12,edge_prob=0.6");
  spec.seed = 7;
  return spec;
}

/// Steps the 24 fixed rounds on `net` and returns the trace.
trace run_rounds(radio::network& net) {
  const radio::packet beacon = radio::packet::make_beacon(0);
  digest d;
  radio::round_buffer txs;
  const std::size_t n = net.node_count();
  for (int round = 0; round < 24; ++round) {
    txs.clear();
    // Round r: nodes with id % (3 + r % 5) == r % 3 transmit — between ~1/7
    // and ~1/3 of the nodes, enough for both deliveries and collisions.
    const std::size_t mod = 3 + static_cast<std::size_t>(round % 5);
    const std::size_t rem = static_cast<std::size_t>(round % 3);
    for (std::size_t v = 0; v < n; ++v)
      if (v % mod == rem) txs.add(static_cast<node_id>(v), beacon);
    net.step(txs, [&](const radio::reception& rx) {
      d.mix(rx.listener);
      d.mix(static_cast<std::uint64_t>(rx.what));
      d.mix(rx.what == radio::observation::message ? rx.from : no_node);
    });
  }
  return {d.h, net.stats().deliveries, net.stats().erasures,
          net.stats().collisions_observed};
}

radio::model workload_model() {
  radio::model m;
  m.collision_detection = true;
  m.erasure_prob = 0.35;
  m.erasure_seed = 99;
  return m;
}

trace run_workload(unsigned team_threads) {
  const graph::graph g = graph::build_topology(workload_spec());
  radio::network net(g, workload_model());
  if (team_threads >= 2) net.enable_intra_trial(team_threads);
  net.set_min_parallel_volume(0);  // shard every round regardless of volume
  return run_rounds(net);
}

/// Same workload on a fork-only distributed fleet: the session arms the
/// remote-walk hook for `g`, so the network delegates every stepped round's
/// reception walk to the rank workers.
trace run_workload_dist(unsigned ranks, unsigned intra_threads) {
  dist::session_options so;
  so.ranks = ranks;
  so.intra_trial_threads = intra_threads;
  dist::session s(so);

  const graph::topology_spec spec = workload_spec();
  const graph::graph g = graph::build_topology(spec);
  s.trial_begin(spec, g);
  trace t;
  {
    radio::network net(g, workload_model());
    t = run_rounds(net);
  }  // the network releases its adoption before the trial tears down
  s.trial_end(g);
  return t;
}

TEST(ChannelContract, NameAndBlockCountArePinned) {
  EXPECT_EQ(core::kChannelContract, "channel-v1");
  EXPECT_EQ(core::kChannelContractBlocks, 32u);
}

// Golden values for the fixed workload above. These freeze channel-v1: the
// listener partition, the first-touch dispatch order, and the one-draw-per-
// reception erasure mapping. Do not update casually — a mismatch means the
// erasure-draw mapping changed and every erasure-channel experiment moved.
TEST(ChannelContract, ErasureOutcomesArePinned) {
  const trace t = run_workload(1);
  EXPECT_EQ(t.digest_value, 14735693317489780001ULL) << "trace digest";
  EXPECT_EQ(t.deliveries, 305);
  EXPECT_EQ(t.erasures, 181);
  EXPECT_EQ(t.collisions, 3918);
}

TEST(ChannelContract, TraceIsThreadCountInvariant) {
  const trace serial = run_workload(1);
  for (const unsigned threads : {2u, 4u}) {
    const trace sharded = run_workload(threads);
    EXPECT_EQ(sharded.digest_value, serial.digest_value) << threads;
    EXPECT_EQ(sharded.deliveries, serial.deliveries) << threads;
    EXPECT_EQ(sharded.erasures, serial.erasures) << threads;
    EXPECT_EQ(sharded.collisions, serial.collisions) << threads;
  }
}

// The vectorized row-walk kernels must reproduce the pinned goldens — not
// merely match whatever the scalar walk currently does — at every team
// size. This is the contract-level statement of SIMD byte identity: the
// kernels preserve first-touch dispatch order and therefore the
// erasure-draw mapping that channel-v1 froze.
TEST(ChannelContract, GoldensHoldUnderEveryKernelLevel) {
  for (const radio::simd_level lvl :
       {radio::simd_level::scalar, radio::simd_level::avx2,
        radio::simd_level::avx512}) {
    if (lvl > radio::detected_simd_level()) continue;
    simd_level_guard guard(lvl);
    for (const unsigned threads : {1u, 2u, 4u}) {
      const trace t = run_workload(threads);
      EXPECT_EQ(t.digest_value, 14735693317489780001ULL)
          << radio::to_string(lvl) << " x team " << threads;
      EXPECT_EQ(t.deliveries, 305) << radio::to_string(lvl);
      EXPECT_EQ(t.erasures, 181) << radio::to_string(lvl);
      EXPECT_EQ(t.collisions, 3918) << radio::to_string(lvl);
    }
  }
}

// The distributed backend must reproduce the pinned goldens at every rank
// count (including non-dividing splits of the 32 blocks) and worker thread
// count. Workers rebuild the topology from the spec and walk only their
// partitioned CSR slices; matching the frozen digest means the rank
// partition preserves the block-major dispatch order and hence the
// erasure-draw mapping — the contract-level statement of the backend's
// byte-identity claim.
TEST(ChannelContract, GoldensHoldUnderDistributedBackend) {
  for (const unsigned ranks : {1u, 2u, 4u}) {
    for (const unsigned intra : {1u, 2u}) {
      const trace t = run_workload_dist(ranks, intra);
      EXPECT_EQ(t.digest_value, 14735693317489780001ULL)
          << "ranks " << ranks << " x intra " << intra;
      EXPECT_EQ(t.deliveries, 305) << ranks;
      EXPECT_EQ(t.erasures, 181) << ranks;
      EXPECT_EQ(t.collisions, 3918) << ranks;
    }
  }
}

}  // namespace
}  // namespace rn
