// Tests for the extensions beyond the paper's core results: beep-wave
// diameter estimation (footnote 2), the erasure-channel robustness model,
// and the RLNC infection property (Definition 3.8 / Proposition 3.9) that
// powers the Theorem 1.2 analysis.
#include <gtest/gtest.h>

#include "baseline/decay.h"
#include "coding/rlnc.h"
#include "core/beep_waves.h"
#include "core/gst_broadcast.h"
#include "core/gst_centralized.h"
#include "core/schedule.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "radio/network.h"

namespace rn::core {
namespace {

class BeepWaveTest : public ::testing::TestWithParam<int> {};

TEST_P(BeepWaveTest, EstimateIsTwoApproximation) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 3 + (seed % 13);
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = seed * 7;
  const auto g = graph::random_layered(lo);
  const auto ecc = graph::bfs(g, 0).max_level;
  const auto est = estimate_eccentricity_beep_waves(g, 0);
  EXPECT_GT(est.estimate, ecc - 1);       // upper bound on ecc
  EXPECT_LE(est.estimate, 2 * ecc);       // 2-approximation
  EXPECT_LE(est.rounds, 16 * (ecc + 2));  // O(D) rounds
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeepWaveTest, ::testing::Range(1, 13));

TEST(BeepWave, PathExact) {
  // Path of length 8: ecc = 8; doubling stops at T = 16 (no node at distance
  // 16), but T = 8 still has a frontier node; estimate = 16.
  const auto g = graph::path(9);
  const auto est = estimate_eccentricity_beep_waves(g, 0);
  EXPECT_GE(est.estimate, 8);
  EXPECT_LE(est.estimate, 16);
}

TEST(BeepWave, SingleNodeAndStar) {
  const auto g1 = graph::path(1);
  EXPECT_GE(estimate_eccentricity_beep_waves(g1, 0).estimate, 0);
  const auto g2 = graph::star(12);
  const auto est = estimate_eccentricity_beep_waves(g2, 0);
  EXPECT_GE(est.estimate, 1);
  EXPECT_LE(est.estimate, 2);
}

TEST(Erasure, ModelDropsDeliveries) {
  const auto g = graph::path(2);
  radio::model m;
  m.collision_detection = false;
  m.erasure_prob = 0.5;
  radio::network net(g, m);
  const radio::packet b0 = radio::packet::make_beacon(0);
  radio::round_buffer txs;
  txs.add(0, b0);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message) ++delivered;
    });
  }
  EXPECT_NEAR(delivered, 1000, 120);
  EXPECT_EQ(net.stats().deliveries + net.stats().erasures, 2000);
}

TEST(Erasure, InvalidProbabilityRejected) {
  const auto g = graph::path(2);
  radio::model m;
  m.erasure_prob = 1.0;
  EXPECT_THROW(radio::network net(g, m), contract_error);
}

class ErasureRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ErasureRobustnessTest, DecayCompletesOnLossyChannel) {
  // Decay's redundancy makes it robust well beyond the paper's reliable
  // model: 30% packet loss only slows it down.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 8;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = seed * 19;
  const auto g = graph::random_layered(lo);
  // Reuse the decay runner on a lossy network via the low-level engine.
  radio::model m;
  m.collision_detection = false;
  m.erasure_prob = 0.3;
  m.erasure_seed = seed;
  radio::network net(g, m);
  std::vector<char> informed(g.node_count(), 0);
  informed[0] = 1;
  std::size_t remaining = g.node_count() - 1;
  std::vector<rng> rngs;
  for (node_id v = 0; v < g.node_count(); ++v)
    rngs.push_back(rng::for_stream(seed, v));
  auto body = std::make_shared<radio::packet_body>();
  body->data = {1};
  const int L = 7;
  const radio::packet data_pkt = radio::packet::make_data(0, body);
  radio::round_buffer txs;
  for (round_t t = 0; t < 20000 && remaining > 0; ++t) {
    txs.clear();
    for (node_id v = 0; v < g.node_count(); ++v)
      if (informed[v] && rngs[v].with_probability_pow2(1 + static_cast<int>(t % L)))
        txs.add(v, data_pkt);
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message && !informed[rx.listener]) {
        informed[rx.listener] = 1;
        --remaining;
      }
    });
  }
  EXPECT_EQ(remaining, 0u) << "seed " << seed;
  EXPECT_GT(net.stats().erasures, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErasureRobustnessTest, ::testing::Range(1, 9));

TEST(Infection, Proposition39RelayProbability) {
  // Prop 3.9: if v is infected by mu and u receives one random combination
  // from v, then u becomes infected by mu with probability >= 1/2.
  const std::size_t k = 8;
  rng r(77);
  int infected = 0, trials = 0;
  for (int t = 0; t < 2000; ++t) {
    // v holds a random non-trivial subspace.
    coding::rlnc_node v(k, 1);
    const int rows = 1 + static_cast<int>(r.uniform(k));
    coding::gf2_decoder src(k, 1);
    for (std::size_t i = 0; i < k; ++i)
      src.insert(coding::gf2_vector::unit(k, i), {0});
    for (int i = 0; i < rows; ++i) {
      auto row = src.random_combination(r);
      v.receive(row.coeffs, row.payload);
    }
    const auto mu = coding::gf2_vector::random(k, r);
    if (mu.is_zero() || !v.decoder().infected_by(mu)) continue;
    ++trials;
    auto pkt = v.encode(r);
    if (pkt.coeffs.dot(mu)) ++infected;  // u receives pkt; infected iff <pkt,mu> != 0
  }
  ASSERT_GT(trials, 400);
  EXPECT_GE(static_cast<double>(infected) / trials, 0.45);
}

TEST(Infection, FullInfectionImpliesDecodability) {
  // Second half of Prop 3.9: infected by all 2^k - 1 vectors <=> full rank.
  const std::size_t k = 5;
  rng r(3);
  coding::gf2_decoder dec(k, 1);
  coding::gf2_decoder src(k, 1);
  for (std::size_t i = 0; i < k; ++i)
    src.insert(coding::gf2_vector::unit(k, i), {0});
  while (!dec.complete()) {
    auto row = src.random_combination(r);
    dec.insert(std::move(row.coeffs), std::move(row.payload));
  }
  for (std::uint32_t bits = 1; bits < (1u << k); ++bits) {
    coding::gf2_vector mu(k);
    for (std::size_t i = 0; i < k; ++i) mu.set(i, (bits >> i) & 1);
    EXPECT_TRUE(dec.infected_by(mu));
  }
}

TEST(Erasure, GstBroadcastSurvivesMildLoss) {
  // The GST schedule retries via slow rounds, so mild erasure only delays.
  graph::layered_options lo;
  lo.depth = 8;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = 5;
  const auto g = graph::random_layered(lo);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  // Run the broadcast manually on a lossy network with generous budget.
  gst_schedule sched(t, d, g.node_count());
  radio::model m;
  m.collision_detection = false;
  m.erasure_prob = 0.15;
  radio::network net(g, m);
  std::vector<char> informed(g.node_count(), 0);
  informed[0] = 1;
  std::size_t remaining = g.node_count() - 1;
  std::vector<rng> rngs;
  for (node_id v = 0; v < g.node_count(); ++v)
    rngs.push_back(rng::for_stream(9, v));
  auto body = std::make_shared<radio::packet_body>();
  body->data = {1};
  const radio::packet data_pkt = radio::packet::make_data(0, body);
  radio::round_buffer txs;
  for (round_t r = 0; r < 20000 && remaining > 0; ++r) {
    txs.clear();
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (!informed[v]) continue;
      if (sched.query(v, r, rngs[v]) != gst_schedule::action::none)
        txs.add(v, data_pkt);
    }
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message && !informed[rx.listener]) {
        informed[rx.listener] = 1;
        --remaining;
      }
    });
  }
  EXPECT_EQ(remaining, 0u);
}

}  // namespace
}  // namespace rn::core
