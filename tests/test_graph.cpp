#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "graph/bfs.h"
#include "graph/dot.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace rn::graph {
namespace {

TEST(Graph, BuilderDeduplicates) {
  graph::builder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const auto g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, SelfLoopsIgnored) {
  graph::builder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, NeighborsSorted) {
  graph::builder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const auto g = std::move(b).build();
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, EdgeOutOfRangeThrows) {
  graph::builder b(2);
  EXPECT_THROW(b.add_edge(0, 2), contract_error);
}

TEST(Graph, Connectivity) {
  graph::builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_FALSE(std::move(b).build().connected());
  EXPECT_TRUE(path(4).connected());
}

TEST(Generators, PathStructure) {
  const auto g = path(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(diameter(g), 4);
}

TEST(Generators, CycleStructure) {
  const auto g = cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (node_id v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter(g), 3);
}

TEST(Generators, StarStructure) {
  const auto g = star(9);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_EQ(diameter(g), 2);
}

TEST(Generators, CompleteStructure) {
  const auto g = complete(7);
  EXPECT_EQ(g.edge_count(), 21u);
  EXPECT_EQ(diameter(g), 1);
}

TEST(Generators, GridStructure) {
  const auto g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 2u * 4);
  EXPECT_EQ(diameter(g), 5);
}

TEST(Generators, BinaryTreeStructure) {
  const auto g = binary_tree(15);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Generators, CaterpillarStructure) {
  const auto g = caterpillar(4, 3);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 1u + 3u);
}

TEST(Generators, CliqueChain) {
  const auto g = clique_chain(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_TRUE(g.connected());
  // Bridge endpoints have clique degree + 1.
  EXPECT_EQ(g.degree(3), 4u);
}

TEST(Generators, Dumbbell) {
  const auto g = dumbbell(5, 3);
  EXPECT_EQ(g.node_count(), 13u);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(diameter(g), 4);
}

class LayeredTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LayeredTest, ExactDepthAndConnected) {
  const auto [depth, width, seed] = GetParam();
  layered_options lo;
  lo.depth = static_cast<std::size_t>(depth);
  lo.width = static_cast<std::size_t>(width);
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed);
  const auto g = random_layered(lo);
  EXPECT_EQ(g.node_count(), 1 + lo.depth * lo.width);
  EXPECT_TRUE(g.connected());
  const auto b = bfs(g, 0);
  EXPECT_EQ(b.max_level, static_cast<level_t>(depth));
  // Every node's BFS level equals its layer index.
  for (std::size_t layer = 1; layer <= lo.depth; ++layer)
    for (std::size_t i = 0; i < lo.width; ++i)
      EXPECT_EQ(b.level[1 + (layer - 1) * lo.width + i],
                static_cast<level_t>(layer));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LayeredTest,
                         ::testing::Combine(::testing::Values(1, 3, 8, 15),
                                            ::testing::Values(1, 4, 9),
                                            ::testing::Values(1, 2, 3)));

TEST(Generators, GnpConnected) {
  const auto g = random_gnp_connected(40, 0.15, 3);
  EXPECT_EQ(g.node_count(), 40u);
  EXPECT_TRUE(g.connected());
}

TEST(Generators, UnitDiskConnected) {
  const auto g = random_unit_disk(50, 0.3, 5);
  EXPECT_EQ(g.node_count(), 50u);
  EXPECT_TRUE(g.connected());
}

TEST(Bfs, LevelsOnPath) {
  const auto g = path(6);
  const auto b = bfs(g, 0);
  for (node_id v = 0; v < 6; ++v) EXPECT_EQ(b.level[v], static_cast<level_t>(v));
  EXPECT_EQ(b.parent[3], 2u);
  EXPECT_EQ(b.parent[0], no_node);
}

TEST(Bfs, MultiSource) {
  const auto g = path(7);
  const auto b = bfs_multi(g, {0, 6});
  EXPECT_EQ(b.level[3], 3);
  EXPECT_EQ(b.level[5], 1);
  EXPECT_EQ(b.max_level, 3);
}

TEST(Bfs, MaskRestricts) {
  const auto g = path(5);
  std::vector<char> mask{1, 1, 0, 1, 1};
  const auto b = bfs_multi(g, {0}, &mask);
  EXPECT_EQ(b.level[1], 1);
  EXPECT_EQ(b.level[3], no_level);  // cut off by the mask
}

TEST(Bfs, MinIdParentIsDeterministic) {
  // Node 3 reachable via 1 and 2 at the same level; parent must be 1.
  graph::builder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const auto g = std::move(b).build();
  EXPECT_EQ(bfs(g, 0).parent[3], 1u);
}

TEST(Dot, ContainsNodesAndTree) {
  const auto g = path(3);
  const auto s = to_dot(g, {}, {{0, 1, "green"}});
  EXPECT_NE(s.find("n0 -- n1 [color=green"), std::string::npos);
  EXPECT_NE(s.find("n1 -- n2"), std::string::npos);
}

}  // namespace
}  // namespace rn::graph
