#include <gtest/gtest.h>

#include "core/gst.h"
#include "core/gst_centralized.h"
#include "core/virtual_distance.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

// Runs the distributed labeling protocol on a centrally built (hence
// known-valid) GST and compares against the centrally computed distances.
class VdistAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(VdistAgreementTest, LabelsEqualTrueVirtualDistances) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 7;
  lo.width = 4;
  lo.edge_prob = 0.45;
  lo.intra_prob = 0.2;
  lo.seed = seed * 13;
  const auto g = graph::random_layered(lo);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);

  // Local knowledge as the distributed construction would provide it.
  std::vector<rank_t> parent_rank(g.node_count(), no_rank);
  for (node_id v = 0; v < g.node_count(); ++v)
    if (t.parent[v] != no_node) parent_rank[v] = t.rank[t.parent[v]];

  const auto lab = run_vdist_labeling(g, t, parent_rank, d.stretch_child,
                                      g.node_count(), params::paper(), seed);
  EXPECT_EQ(lab.unlabeled, 0u);
  for (node_id v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(lab.vdist[v], d.virtual_distance[v]) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VdistAgreementTest, ::testing::Range(1, 13));

TEST(Vdist, PathIsOneFastHop) {
  const auto g = graph::path(12);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  std::vector<rank_t> parent_rank(g.node_count(), no_rank);
  for (node_id v = 0; v < g.node_count(); ++v)
    if (t.parent[v] != no_node) parent_rank[v] = t.rank[t.parent[v]];
  const auto lab = run_vdist_labeling(g, t, parent_rank, d.stretch_child,
                                      g.node_count(), params::paper(), 3);
  EXPECT_EQ(lab.vdist[0], 0);
  for (node_id v = 1; v < 12; ++v) EXPECT_EQ(lab.vdist[v], 1);
}

TEST(Vdist, StarIsGraphDistance) {
  const auto g = graph::star(9);  // no stretches at all
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  std::vector<rank_t> parent_rank(g.node_count(), no_rank);
  for (node_id v = 0; v < g.node_count(); ++v)
    if (t.parent[v] != no_node) parent_rank[v] = t.rank[t.parent[v]];
  const auto lab = run_vdist_labeling(g, t, parent_rank, d.stretch_child,
                                      g.node_count(), params::paper(), 4);
  EXPECT_EQ(lab.vdist[0], 0);
  for (node_id v = 1; v < 9; ++v) EXPECT_EQ(lab.vdist[v], 1);
}

}  // namespace
}  // namespace rn::core
