// Distributed backend: the hit-word merge monoid, streamed-vs-filtered
// partitioned views, partition_walker identity against a serial reference
// at every rank/thread split, fork-only session byte-identity through the
// declarative runner, and the crashed-rank structured error.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/params.h"
#include "dist/merge.h"
#include "dist/session.h"
#include "dist/worker.h"
#include "graph/generators.h"
#include "graph/partitioned.h"
#include "graph/topology.h"
#include "sim/adhoc.h"
#include "sim/experiment.h"
#include "sim/json.h"

namespace rn::dist {
namespace {

constexpr unsigned kBlocks = core::kChannelContractBlocks;

// --- hit-word merge monoid ------------------------------------------------

/// The serial walk's per-reception update: transmitter index i touches the
/// listener holding word hs.
std::uint64_t serial_update(std::uint64_t hs, std::uint32_t i) {
  return ((hs + (std::uint64_t{1} << 32)) & 0xffffffff00000000ULL) | i;
}

TEST(MergeHitWords, MonoidLaws) {
  std::mt19937_64 r(1234);
  std::vector<std::uint64_t> words = {0, 1, (std::uint64_t{1} << 32) | 7};
  for (int k = 0; k < 64; ++k) words.push_back(r());
  for (const std::uint64_t a : words) {
    EXPECT_EQ(merge_hit_words(a, 0), a);  // 0 is the identity
    EXPECT_EQ(merge_hit_words(0, a), a);
    for (const std::uint64_t b : words) {
      EXPECT_EQ(merge_hit_words(a, b), merge_hit_words(b, a));
      for (const std::uint64_t c : words)
        EXPECT_EQ(merge_hit_words(merge_hit_words(a, b), c),
                  merge_hit_words(a, merge_hit_words(b, c)));
    }
  }
}

TEST(MergeHitWords, CountWrapsLikeTheSerialWalk) {
  // The serial update accumulates the count mod 2^32; the merge has to wrap
  // identically for bit-equality, not merely equivalence.
  const std::uint64_t a = (0xffffffffULL << 32) | 5;  // count 2^32 - 1
  const std::uint64_t b = (std::uint64_t{2} << 32) | 7;
  EXPECT_EQ(merge_hit_words(a, b), (std::uint64_t{1} << 32) | 7);
}

TEST(MergeHitWords, AnyTransmitterPartitionRecoversTheSerialWord) {
  // One listener, m transmitters with global indices 0..m-1, a random
  // subset of which touch it. Split the index set across ranks arbitrarily
  // (each rank walks its own indices in ascending order, as the walker
  // does), then merge the partial words in a shuffled rank order: the
  // result must be bit-equal to the serial left-to-right walk.
  std::mt19937_64 r(99);
  for (int rep = 0; rep < 200; ++rep) {
    const unsigned m = 1 + unsigned(r() % 40);
    std::vector<std::uint32_t> touching;
    for (std::uint32_t i = 0; i < m; ++i)
      if (r() % 2 == 0) touching.push_back(i);

    std::uint64_t serial = 0;
    for (const std::uint32_t i : touching) serial = serial_update(serial, i);

    const unsigned ranks = 1 + unsigned(r() % 5);
    std::vector<unsigned> owner(m);
    for (auto& o : owner) o = unsigned(r() % ranks);
    std::vector<std::uint64_t> partial(ranks, 0);
    for (const std::uint32_t i : touching)
      partial[owner[i]] = serial_update(partial[owner[i]], i);

    std::vector<unsigned> order(ranks);
    for (unsigned k = 0; k < ranks; ++k) order[k] = k;
    std::shuffle(order.begin(), order.end(), r);
    std::uint64_t merged = 0;
    for (const unsigned k : order)
      merged = merge_hit_words(merged, partial[k]);
    ASSERT_EQ(merged, serial) << "rep " << rep;
  }
}

TEST(MergeHitWords, BoundaryListenerWithTransmittersInTwoRanks) {
  // The concrete boundary shape: a listener sits in the last block of rank
  // A's range; its transmitting neighbors hold global indices {2, 5} on one
  // rank and {3, 9} on the other. Each rank's partial word walks its own
  // indices in ascending order; the merge recovers the serial word over
  // {2, 3, 5, 9} — count 4, last transmitter 9 — in either merge order.
  std::uint64_t rank_a = 0, rank_b = 0;
  for (const std::uint32_t i : {2u, 5u}) rank_a = serial_update(rank_a, i);
  for (const std::uint32_t i : {3u, 9u}) rank_b = serial_update(rank_b, i);
  std::uint64_t serial = 0;
  for (const std::uint32_t i : {2u, 3u, 5u, 9u})
    serial = serial_update(serial, i);
  EXPECT_EQ(merge_hit_words(rank_a, rank_b), serial);
  EXPECT_EQ(merge_hit_words(rank_b, rank_a), serial);
  EXPECT_EQ(serial, (std::uint64_t{4} << 32) | 9);
}

// --- partitioned views ----------------------------------------------------

graph::block_plan plan_of(const graph::graph& g) {
  std::vector<std::uint32_t> prefix(g.node_count() + 1, 0);
  for (node_id v = 0; v < g.node_count(); ++v)
    prefix[v + 1] = prefix[v] + std::uint32_t(g.degree(v));
  return graph::compute_block_plan(prefix, kBlocks);
}

TEST(PartitionedView, StreamedLayeredBuildEqualsFilteredBuild) {
  graph::layered_options opt;
  opt.depth = 7;
  opt.width = 23;
  opt.edge_prob = 0.2;
  opt.seed = 31;
  const graph::graph g = graph::random_layered(opt);
  const graph::block_plan plan = plan_of(g);

  for (const auto& [first, last] :
       {std::pair{0u, kBlocks}, {0u, 11u}, {11u, 21u}, {21u, kBlocks}}) {
    const auto filtered = graph::partitioned_view::from_graph(
        g, plan, first, last);
    const auto streamed = graph::partitioned_view::from_edge_source(
        g.node_count(),
        [&](const graph::edge_sink& sink) {
          graph::for_each_layered_edge(
              opt, [&](node_id u, node_id v) { sink(u, v); });
        },
        kBlocks, first, last);
    ASSERT_EQ(streamed.plan().bounds, plan.bounds)
        << "streamed degree pass disagreed with the resident graph";
    EXPECT_EQ(streamed.row_start(), filtered.row_start());
    EXPECT_EQ(streamed.adjacency(), filtered.adjacency());
    EXPECT_EQ(streamed.owned_begin(), filtered.owned_begin());
    EXPECT_EQ(streamed.owned_end(), filtered.owned_end());
  }
}

// --- partition walker vs serial reference ---------------------------------

struct reference_walk {
  std::vector<std::uint64_t> words;             ///< indexed by node id
  std::vector<std::vector<node_id>> touched;    ///< per block, touch order
};

reference_walk serial_reference(const graph::graph& g,
                                const graph::block_plan& plan,
                                std::span<const node_id> tx_ids) {
  reference_walk ref;
  ref.words.assign(g.node_count(), 0);
  ref.touched.resize(plan.blocks());
  const auto block_of = [&](node_id v) {
    return unsigned(std::upper_bound(plan.bounds.begin(), plan.bounds.end(),
                                     v) -
                    plan.bounds.begin()) -
           1;
  };
  for (std::size_t i = 0; i < tx_ids.size(); ++i)
    for (const node_id v : g.neighbors(tx_ids[i])) {
      std::uint64_t& hs = ref.words[v];
      if (hs == 0) ref.touched[block_of(v)].push_back(v);
      hs = serial_update(hs, std::uint32_t(i));
    }
  return ref;
}

TEST(PartitionWalker, MatchesSerialReferenceAtEveryRankAndThreadSplit) {
  graph::layered_options opt;
  opt.depth = 6;
  opt.width = 40;
  opt.edge_prob = 0.15;
  opt.seed = 8;
  const graph::graph g = graph::random_layered(opt);
  const graph::block_plan plan = plan_of(g);
  std::mt19937_64 r(5);

  // Rank count 3 exercises the non-dividing split (32 = 11 + 10 + 11).
  for (const unsigned ranks : {1u, 2u, 3u, 4u}) {
    std::vector<graph::partitioned_view> views;
    std::vector<partition_walker> walkers(ranks);
    views.reserve(ranks);
    for (unsigned rk = 0; rk < ranks; ++rk)
      views.push_back(graph::partitioned_view::from_graph(
          g, plan, kBlocks * rk / ranks, kBlocks * (rk + 1) / ranks));

    for (const unsigned threads : {1u, 3u}) {
      for (unsigned rk = 0; rk < ranks; ++rk)
        walkers[rk].bind(&views[rk], threads);
      for (int round = 0; round < 6; ++round) {
        std::vector<node_id> txs;
        for (node_id v = 0; v < g.node_count(); ++v)
          if (r() % 4 == 0) txs.push_back(v);
        std::shuffle(txs.begin(), txs.end(), r);  // dispatch order, not id order

        const reference_walk ref = serial_reference(g, plan, txs);
        for (unsigned rk = 0; rk < ranks; ++rk) {
          walkers[rk].walk(txs);
          for (unsigned b = views[rk].first_block();
               b < views[rk].last_block(); ++b) {
            const auto got = walkers[rk].touched(b);
            ASSERT_EQ(std::vector<node_id>(got.begin(), got.end()),
                      ref.touched[b])
                << "ranks=" << ranks << " threads=" << threads
                << " round=" << round << " block=" << b;
            for (const node_id v : got)
              ASSERT_EQ(walkers[rk].hit_word(v), ref.words[v]) << "v=" << v;
          }
          walkers[rk].clear_round();
        }
      }
      for (unsigned rk = 0; rk < ranks; ++rk) walkers[rk].unbind();
    }
  }
}

// --- fork-only session through the declarative runner ---------------------

TEST(DistSession, ForkOnlyRunIsByteIdenticalToLocal) {
  // Spawn the fleet before anything in this test grows threads.
  session_options so;
  so.ranks = 3;  // non-dividing block split on a real fleet
  so.intra_trial_threads = 2;
  session s(so);

  sim::adhoc_spec spec;
  spec.topology = "layered:depth=6,width=9,edge_prob=0.3";
  spec.protocols = "decay,gst-known";
  const sim::experiment e = sim::make_adhoc_experiment(spec);
  sim::run_config rc;
  rc.trials = 2;
  rc.seed = 11;

  const sim::experiment_result local = sim::run_experiment(e, rc);
  const std::string local_json = sim::to_json(e, local).dump(2);

  s.install();
  const sim::experiment_result dist = sim::run_experiment(e, rc);
  s.uninstall();
  EXPECT_EQ(sim::to_json(e, dist).dump(2), local_json);

  const session_totals t = s.totals();
  EXPECT_EQ(t.trials, 2u);
  EXPECT_GT(t.bytes_sent, 0u);
  EXPECT_GT(t.bytes_received, 0u);
  ASSERT_EQ(t.peak_rss_kb_per_rank.size(), 3u);
  for (const std::int64_t kb : t.peak_rss_kb_per_rank) EXPECT_GT(kb, 0);
}

TEST(DistSession, CrashedWorkerRaisesStructuredError) {
  // fork+exec of a binary that does not exist: every child _exits(127)
  // before speaking the protocol, so the first setup round-trip must fail
  // with a contract_error naming a rank and its wait status — not hang.
  session_options so;
  so.ranks = 2;
  so.worker_exec = "/nonexistent/rn-dist-worker";
  session s(so);

  graph::topology_spec spec =
      graph::parse_topology_spec("layered:depth=3,width=4,edge_prob=0.5");
  spec.seed = 42;
  const graph::graph g = graph::build_topology(spec);
  try {
    s.trial_begin(spec, g);
    FAIL() << "trial_begin succeeded against a dead fleet";
  } catch (const contract_error& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
    EXPECT_NE(what.find("exit status 127"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace rn::dist
