// Distributed backend: the hit-word merge monoid, streamed-vs-filtered
// partitioned views, partition_walker identity against a serial reference
// at every rank/thread split, fork-only session byte-identity through the
// declarative runner, wire-level fuzz of the framing error paths, and the
// fault matrix — injected crashes, wedges, truncations, and delays must
// recover (respawn or degrade) with byte-identical results JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/check.h"
#include "core/params.h"
#include "dist/fault.h"
#include "dist/merge.h"
#include "dist/session.h"
#include "dist/supervisor.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "graph/generators.h"
#include "graph/partitioned.h"
#include "graph/topology.h"
#include "sim/adhoc.h"
#include "sim/experiment.h"
#include "sim/json.h"

namespace rn::dist {
namespace {

constexpr unsigned kBlocks = core::kChannelContractBlocks;

// --- hit-word merge monoid ------------------------------------------------

/// The serial walk's per-reception update: transmitter index i touches the
/// listener holding word hs.
std::uint64_t serial_update(std::uint64_t hs, std::uint32_t i) {
  return ((hs + (std::uint64_t{1} << 32)) & 0xffffffff00000000ULL) | i;
}

TEST(MergeHitWords, MonoidLaws) {
  std::mt19937_64 r(1234);
  std::vector<std::uint64_t> words = {0, 1, (std::uint64_t{1} << 32) | 7};
  for (int k = 0; k < 64; ++k) words.push_back(r());
  for (const std::uint64_t a : words) {
    EXPECT_EQ(merge_hit_words(a, 0), a);  // 0 is the identity
    EXPECT_EQ(merge_hit_words(0, a), a);
    for (const std::uint64_t b : words) {
      EXPECT_EQ(merge_hit_words(a, b), merge_hit_words(b, a));
      for (const std::uint64_t c : words)
        EXPECT_EQ(merge_hit_words(merge_hit_words(a, b), c),
                  merge_hit_words(a, merge_hit_words(b, c)));
    }
  }
}

TEST(MergeHitWords, CountWrapsLikeTheSerialWalk) {
  // The serial update accumulates the count mod 2^32; the merge has to wrap
  // identically for bit-equality, not merely equivalence.
  const std::uint64_t a = (0xffffffffULL << 32) | 5;  // count 2^32 - 1
  const std::uint64_t b = (std::uint64_t{2} << 32) | 7;
  EXPECT_EQ(merge_hit_words(a, b), (std::uint64_t{1} << 32) | 7);
}

TEST(MergeHitWords, AnyTransmitterPartitionRecoversTheSerialWord) {
  // One listener, m transmitters with global indices 0..m-1, a random
  // subset of which touch it. Split the index set across ranks arbitrarily
  // (each rank walks its own indices in ascending order, as the walker
  // does), then merge the partial words in a shuffled rank order: the
  // result must be bit-equal to the serial left-to-right walk.
  std::mt19937_64 r(99);
  for (int rep = 0; rep < 200; ++rep) {
    const unsigned m = 1 + unsigned(r() % 40);
    std::vector<std::uint32_t> touching;
    for (std::uint32_t i = 0; i < m; ++i)
      if (r() % 2 == 0) touching.push_back(i);

    std::uint64_t serial = 0;
    for (const std::uint32_t i : touching) serial = serial_update(serial, i);

    const unsigned ranks = 1 + unsigned(r() % 5);
    std::vector<unsigned> owner(m);
    for (auto& o : owner) o = unsigned(r() % ranks);
    std::vector<std::uint64_t> partial(ranks, 0);
    for (const std::uint32_t i : touching)
      partial[owner[i]] = serial_update(partial[owner[i]], i);

    std::vector<unsigned> order(ranks);
    for (unsigned k = 0; k < ranks; ++k) order[k] = k;
    std::shuffle(order.begin(), order.end(), r);
    std::uint64_t merged = 0;
    for (const unsigned k : order)
      merged = merge_hit_words(merged, partial[k]);
    ASSERT_EQ(merged, serial) << "rep " << rep;
  }
}

TEST(MergeHitWords, BoundaryListenerWithTransmittersInTwoRanks) {
  // The concrete boundary shape: a listener sits in the last block of rank
  // A's range; its transmitting neighbors hold global indices {2, 5} on one
  // rank and {3, 9} on the other. Each rank's partial word walks its own
  // indices in ascending order; the merge recovers the serial word over
  // {2, 3, 5, 9} — count 4, last transmitter 9 — in either merge order.
  std::uint64_t rank_a = 0, rank_b = 0;
  for (const std::uint32_t i : {2u, 5u}) rank_a = serial_update(rank_a, i);
  for (const std::uint32_t i : {3u, 9u}) rank_b = serial_update(rank_b, i);
  std::uint64_t serial = 0;
  for (const std::uint32_t i : {2u, 3u, 5u, 9u})
    serial = serial_update(serial, i);
  EXPECT_EQ(merge_hit_words(rank_a, rank_b), serial);
  EXPECT_EQ(merge_hit_words(rank_b, rank_a), serial);
  EXPECT_EQ(serial, (std::uint64_t{4} << 32) | 9);
}

// --- partitioned views ----------------------------------------------------

graph::block_plan plan_of(const graph::graph& g) {
  std::vector<std::uint32_t> prefix(g.node_count() + 1, 0);
  for (node_id v = 0; v < g.node_count(); ++v)
    prefix[v + 1] = prefix[v] + std::uint32_t(g.degree(v));
  return graph::compute_block_plan(prefix, kBlocks);
}

TEST(PartitionedView, StreamedLayeredBuildEqualsFilteredBuild) {
  graph::layered_options opt;
  opt.depth = 7;
  opt.width = 23;
  opt.edge_prob = 0.2;
  opt.seed = 31;
  const graph::graph g = graph::random_layered(opt);
  const graph::block_plan plan = plan_of(g);

  for (const auto& [first, last] :
       {std::pair{0u, kBlocks}, {0u, 11u}, {11u, 21u}, {21u, kBlocks}}) {
    const auto filtered = graph::partitioned_view::from_graph(
        g, plan, first, last);
    const auto streamed = graph::partitioned_view::from_edge_source(
        g.node_count(),
        [&](const graph::edge_sink& sink) {
          graph::for_each_layered_edge(
              opt, [&](node_id u, node_id v) { sink(u, v); });
        },
        kBlocks, first, last);
    ASSERT_EQ(streamed.plan().bounds, plan.bounds)
        << "streamed degree pass disagreed with the resident graph";
    EXPECT_EQ(streamed.row_start(), filtered.row_start());
    EXPECT_EQ(streamed.adjacency(), filtered.adjacency());
    EXPECT_EQ(streamed.owned_begin(), filtered.owned_begin());
    EXPECT_EQ(streamed.owned_end(), filtered.owned_end());
  }
}

// --- partition walker vs serial reference ---------------------------------

struct reference_walk {
  std::vector<std::uint64_t> words;             ///< indexed by node id
  std::vector<std::vector<node_id>> touched;    ///< per block, touch order
};

reference_walk serial_reference(const graph::graph& g,
                                const graph::block_plan& plan,
                                std::span<const node_id> tx_ids) {
  reference_walk ref;
  ref.words.assign(g.node_count(), 0);
  ref.touched.resize(plan.blocks());
  const auto block_of = [&](node_id v) {
    return unsigned(std::upper_bound(plan.bounds.begin(), plan.bounds.end(),
                                     v) -
                    plan.bounds.begin()) -
           1;
  };
  for (std::size_t i = 0; i < tx_ids.size(); ++i)
    for (const node_id v : g.neighbors(tx_ids[i])) {
      std::uint64_t& hs = ref.words[v];
      if (hs == 0) ref.touched[block_of(v)].push_back(v);
      hs = serial_update(hs, std::uint32_t(i));
    }
  return ref;
}

TEST(PartitionWalker, MatchesSerialReferenceAtEveryRankAndThreadSplit) {
  graph::layered_options opt;
  opt.depth = 6;
  opt.width = 40;
  opt.edge_prob = 0.15;
  opt.seed = 8;
  const graph::graph g = graph::random_layered(opt);
  const graph::block_plan plan = plan_of(g);
  std::mt19937_64 r(5);

  // Rank count 3 exercises the non-dividing split (32 = 11 + 10 + 11).
  for (const unsigned ranks : {1u, 2u, 3u, 4u}) {
    std::vector<graph::partitioned_view> views;
    std::vector<partition_walker> walkers(ranks);
    views.reserve(ranks);
    for (unsigned rk = 0; rk < ranks; ++rk)
      views.push_back(graph::partitioned_view::from_graph(
          g, plan, kBlocks * rk / ranks, kBlocks * (rk + 1) / ranks));

    for (const unsigned threads : {1u, 3u}) {
      for (unsigned rk = 0; rk < ranks; ++rk)
        walkers[rk].bind(&views[rk], threads);
      for (int round = 0; round < 6; ++round) {
        std::vector<node_id> txs;
        for (node_id v = 0; v < g.node_count(); ++v)
          if (r() % 4 == 0) txs.push_back(v);
        std::shuffle(txs.begin(), txs.end(), r);  // dispatch order, not id order

        const reference_walk ref = serial_reference(g, plan, txs);
        for (unsigned rk = 0; rk < ranks; ++rk) {
          walkers[rk].walk(txs);
          for (unsigned b = views[rk].first_block();
               b < views[rk].last_block(); ++b) {
            const auto got = walkers[rk].touched(b);
            ASSERT_EQ(std::vector<node_id>(got.begin(), got.end()),
                      ref.touched[b])
                << "ranks=" << ranks << " threads=" << threads
                << " round=" << round << " block=" << b;
            for (const node_id v : got)
              ASSERT_EQ(walkers[rk].hit_word(v), ref.words[v]) << "v=" << v;
          }
          walkers[rk].clear_round();
        }
      }
      for (unsigned rk = 0; rk < ranks; ++rk) walkers[rk].unbind();
    }
  }
}

// --- fork-only session through the declarative runner ---------------------

TEST(DistSession, ForkOnlyRunIsByteIdenticalToLocal) {
  // Spawn the fleet before anything in this test grows threads.
  session_options so;
  so.ranks = 3;  // non-dividing block split on a real fleet
  so.intra_trial_threads = 2;
  session s(so);

  sim::adhoc_spec spec;
  spec.topology = "layered:depth=6,width=9,edge_prob=0.3";
  spec.protocols = "decay,gst-known";
  const sim::experiment e = sim::make_adhoc_experiment(spec);
  sim::run_config rc;
  rc.trials = 2;
  rc.seed = 11;

  const sim::experiment_result local = sim::run_experiment(e, rc);
  const std::string local_json = sim::to_json(e, local).dump(2);

  s.install();
  const sim::experiment_result dist = sim::run_experiment(e, rc);
  s.uninstall();
  EXPECT_EQ(sim::to_json(e, dist).dump(2), local_json);

  const session_totals t = s.totals();
  EXPECT_EQ(t.trials, 2u);
  EXPECT_GT(t.bytes_sent, 0u);
  EXPECT_GT(t.bytes_received, 0u);
  ASSERT_EQ(t.peak_rss_kb_per_rank.size(), 3u);
  for (const std::int64_t kb : t.peak_rss_kb_per_rank) EXPECT_GT(kb, 0);
}

// --- wire-level fuzz: framing failures are structured, never hangs --------

TEST(WireFuzz, TruncatedLengthPrefixIsStructuredClosed) {
  auto [a, b] = make_channel_pair();
  const std::uint8_t partial[2] = {9, 0};  // 2 of the 4 length bytes, then EOF
  ASSERT_EQ(::write(a.fd(), partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  a.close();
  b.set_deadline_ms(2000);
  std::vector<std::uint8_t> payload;
  try {
    (void)b.recv(payload);
    FAIL() << "recv accepted a truncated length prefix";
  } catch (const wire_error& e) {
    EXPECT_EQ(e.kind(), wire_errc::closed);
  }
}

TEST(WireFuzz, OversizedLengthPrefixIsStructuredCorrupt) {
  auto [a, b] = make_channel_pair();
  b.set_max_frame_bytes(1024);
  std::uint8_t header[5];
  const std::uint32_t body = 1u << 20;  // claims 1 MiB against a 1 KiB cap
  std::memcpy(header, &body, 4);
  header[4] = static_cast<std::uint8_t>(msg_type::round);
  ASSERT_EQ(::write(a.fd(), header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  b.set_deadline_ms(2000);
  std::vector<std::uint8_t> payload;
  try {
    (void)b.recv(payload);
    FAIL() << "recv accepted an oversized length prefix";
  } catch (const wire_error& e) {
    EXPECT_EQ(e.kind(), wire_errc::corrupt);
  }
}

TEST(WireFuzz, ZeroLengthFrameIsStructuredCorrupt) {
  auto [a, b] = make_channel_pair();
  std::uint8_t header[5] = {0, 0, 0, 0, 0};  // body 0: no room for a type byte
  ASSERT_EQ(::write(a.fd(), header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  b.set_deadline_ms(2000);
  std::vector<std::uint8_t> payload;
  try {
    (void)b.recv(payload);
    FAIL() << "recv accepted a zero-length frame";
  } catch (const wire_error& e) {
    EXPECT_EQ(e.kind(), wire_errc::corrupt);
  }
}

TEST(WireFuzz, MidFrameEofIsStructuredClosed) {
  auto [a, b] = make_channel_pair();
  wire_writer w;
  for (std::uint32_t i = 0; i < 64; ++i) w.u32(i);
  a.send_truncated(msg_type::round_results, w, w.bytes.size() / 2);
  a.close();  // peer died mid-write
  b.set_deadline_ms(2000);
  std::vector<std::uint8_t> payload;
  try {
    (void)b.recv(payload);
    FAIL() << "recv accepted a frame shorter than its length prefix";
  } catch (const wire_error& e) {
    EXPECT_EQ(e.kind(), wire_errc::closed);
    EXPECT_NE(std::string(e.what()).find("mid-frame"), std::string::npos);
  }
}

TEST(WireFuzz, RecvDeadlineExpiresInsteadOfHanging) {
  auto [a, b] = make_channel_pair();
  b.set_deadline_ms(100);
  const auto t0 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) measures that the recv deadline actually expired (test-only timing)
  std::vector<std::uint8_t> payload;
  try {
    (void)b.recv(payload);  // nothing will ever arrive
    FAIL() << "recv returned without data";
  } catch (const wire_error& e) {
    EXPECT_EQ(e.kind(), wire_errc::timeout);
  }
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)  // rn-lint: allow(R1) measures that the recv deadline actually expired (test-only timing)
                      .count();
  EXPECT_GE(ms, 90) << "deadline fired early";
  EXPECT_LT(ms, 5000) << "deadline overshot by far too much";
  a.close();
}

// --- fault plan + supervision policy units --------------------------------

TEST(FaultPlan, ParsesAndFiresEachEntryOnce) {
  fault_plan p = fault_plan::parse(
      "kill:rank=1,trial=0,round=4;delay:rank=0,trial=1,round=2,ms=50");
  EXPECT_EQ(p.take(0, 0, 4), nullptr);  // wrong rank
  EXPECT_EQ(p.take(1, 0, 3), nullptr);  // wrong round
  const fault_spec* f = p.take(1, 0, 4);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, fault_kind::kill);
  EXPECT_EQ(p.take(1, 0, 4), nullptr);  // one-shot: consumed at send time
  const fault_spec* d = p.take(0, 1, 2);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, fault_kind::delay);
  EXPECT_EQ(d->arg_ms, 50u);
  EXPECT_TRUE(fault_plan::parse("").empty());
}

TEST(FaultPlan, RejectsMalformedEntries) {
  EXPECT_THROW((void)fault_plan::parse("explode:rank=0,trial=0,round=0"),
               contract_error);
  EXPECT_THROW((void)fault_plan::parse("kill:rank=0"), contract_error);
  EXPECT_THROW((void)fault_plan::parse("kill:rank=0,trial=0,round=0,bogus=1"),
               contract_error);
  EXPECT_THROW((void)fault_plan::parse("kill:rank=x,trial=0,round=0"),
               contract_error);
  EXPECT_THROW((void)fault_plan::parse("delay:rank=0,trial=0,round=0"),
               contract_error);  // delay needs ms=
}

TEST(SupervisePolicy, BackoffIsBoundedExponential) {
  supervise_policy p;
  p.backoff_base_ms = 100;
  p.backoff_cap_ms = 5000;
  EXPECT_EQ(backoff_delay_ms(p, 0), 100u);
  EXPECT_EQ(backoff_delay_ms(p, 1), 200u);
  EXPECT_EQ(backoff_delay_ms(p, 2), 400u);
  EXPECT_EQ(backoff_delay_ms(p, 10), 5000u);   // capped
  EXPECT_EQ(backoff_delay_ms(p, 63), 5000u);   // shift clamp: no overflow
}

// --- fault matrix: recovery is byte-identical ------------------------------

struct run_outcome {
  std::string json;
  session_totals totals;
};

/// Runs the experiment through a fresh fleet and returns the results JSON
/// plus the session counters. rc must be effectively single-threaded: the
/// fork-only fleet respawns ranks mid-run, and forking a multithreaded
/// driver is not safe.
run_outcome run_dist(const sim::experiment& e, const sim::run_config& rc,
                     session_options so) {
  session s(std::move(so));
  s.install();
  const sim::experiment_result res = sim::run_experiment(e, rc);
  s.uninstall();
  return {sim::to_json(e, res).dump(2), s.totals()};
}

struct fault_fixture {
  sim::experiment e;
  sim::run_config rc;
  std::string local_json;

  fault_fixture() {
    sim::adhoc_spec spec;
    spec.topology = "layered:depth=6,width=9,edge_prob=0.3";
    spec.protocols = "decay,gst-known";
    e = sim::make_adhoc_experiment(spec);
    rc.trials = 1;
    rc.threads = 1;  // single-threaded driver: fork-only respawn is safe
    rc.seed = 11;
    local_json =
        sim::to_json(e, sim::run_experiment(e, rc)).dump(2);
  }
};

session_options fast_recovery_options(unsigned ranks) {
  session_options so;
  so.ranks = ranks;
  so.policy.round_deadline_ms = 500;  // wedge detection the tests can afford
  so.policy.backoff_base_ms = 1;
  so.policy.backoff_cap_ms = 4;
  return so;
}

TEST(DistFaultMatrix, KilledRankIsByteIdenticalAtEveryRoundAndVictim) {
  const fault_fixture fx;

  // Learn the trial's stepped-round count from a fault-free fleet run
  // (default deadlines: a loaded CI runner must not trip a spurious
  // respawn here — the counters are asserted exactly).
  std::uint64_t rounds = 0;
  {
    session_options clean_so;
    clean_so.ranks = 2;
    const run_outcome clean = run_dist(fx.e, fx.rc, clean_so);
    ASSERT_EQ(clean.json, fx.local_json);
    EXPECT_EQ(clean.totals.rank_restarts, 0u);
    EXPECT_EQ(clean.totals.reassigned_blocks, 0u);
    rounds = clean.totals.rounds;
  }
  ASSERT_GE(rounds, 3u) << "fixture too small to probe first/middle/last";

  const std::uint32_t probes[3] = {0u, static_cast<std::uint32_t>(rounds / 2),
                                   static_cast<std::uint32_t>(rounds - 1)};
  for (const unsigned ranks : {2u, 4u}) {
    for (unsigned victim = 0; victim < ranks; ++victim) {
      for (const std::uint32_t round : probes) {
        session_options so = fast_recovery_options(ranks);
        so.fault_plan = "kill:rank=" + std::to_string(victim) +
                        ",trial=0,round=" + std::to_string(round);
        const run_outcome got = run_dist(fx.e, fx.rc, so);
        ASSERT_EQ(got.json, fx.local_json)
            << "ranks=" << ranks << " victim=" << victim
            << " round=" << round;
        EXPECT_GE(got.totals.rank_restarts, 1u);
        EXPECT_EQ(got.totals.degraded_ranks, 0u);
        EXPECT_GT(got.totals.recovery_wall_ms, 0.0);
      }
    }
  }
}

TEST(DistFaultMatrix, WedgedRankIsDetectedByDeadlineAndRecovers) {
  const fault_fixture fx;
  session_options so = fast_recovery_options(2);
  so.policy.round_deadline_ms = 200;
  so.fault_plan = "drop:rank=1,trial=0,round=1";
  const run_outcome got = run_dist(fx.e, fx.rc, so);
  EXPECT_EQ(got.json, fx.local_json);
  EXPECT_GE(got.totals.rank_restarts, 1u);
  EXPECT_EQ(got.totals.degraded_ranks, 0u);
}

TEST(DistFaultMatrix, TruncatedResultFrameRecovers) {
  const fault_fixture fx;
  session_options so = fast_recovery_options(2);
  so.fault_plan = "truncate:rank=0,trial=0,round=1";
  const run_outcome got = run_dist(fx.e, fx.rc, so);
  EXPECT_EQ(got.json, fx.local_json);
  EXPECT_GE(got.totals.rank_restarts, 1u);
  EXPECT_EQ(got.totals.degraded_ranks, 0u);
}

TEST(DistFaultMatrix, DelayUnderTheDeadlineIsSurvivableLatency) {
  const fault_fixture fx;
  session_options so = fast_recovery_options(2);
  so.policy.round_deadline_ms = 60'000;
  so.fault_plan = "delay:rank=1,trial=0,round=1,ms=20";
  const run_outcome got = run_dist(fx.e, fx.rc, so);
  EXPECT_EQ(got.json, fx.local_json);
  EXPECT_EQ(got.totals.rank_restarts, 0u);  // latency, not a fault
  EXPECT_EQ(got.totals.degraded_ranks, 0u);
}

TEST(DistFaultMatrix, DelayPastTheDeadlineTriggersRespawn) {
  const fault_fixture fx;
  session_options so = fast_recovery_options(2);
  so.policy.round_deadline_ms = 100;
  so.fault_plan = "delay:rank=1,trial=0,round=1,ms=2000";
  const run_outcome got = run_dist(fx.e, fx.rc, so);
  EXPECT_EQ(got.json, fx.local_json);
  EXPECT_GE(got.totals.rank_restarts, 1u);
}

// --- degradation: reassignment stays byte-identical ------------------------

TEST(DistDegrade, ExhaustedBudgetReassignsBlocksAndStaysIdentical) {
  sim::adhoc_spec spec;
  spec.topology = "layered:depth=6,width=9,edge_prob=0.3";
  spec.protocols = "decay,gst-known";
  const sim::experiment e = sim::make_adhoc_experiment(spec);
  sim::run_config rc;
  rc.trials = 2;  // trial 1 runs on the shrunken fleet end to end
  rc.threads = 1;
  rc.seed = 11;
  const std::string local_json =
      sim::to_json(e, sim::run_experiment(e, rc)).dump(2);

  session_options so = fast_recovery_options(3);
  so.policy.max_respawns = 0;  // first failure degrades immediately
  so.fault_plan = "kill:rank=1,trial=0,round=0";
  const run_outcome got = run_dist(e, rc, so);
  EXPECT_EQ(got.json, local_json);
  EXPECT_EQ(got.totals.rank_restarts, 0u);
  EXPECT_EQ(got.totals.degraded_ranks, 1u);
  // Rank 1 of 3 owned blocks [10, 21) of the 32.
  EXPECT_EQ(got.totals.reassigned_blocks,
            kBlocks * 2 / 3 - kBlocks * 1 / 3);
  EXPECT_EQ(got.totals.trials, 2u);
}

TEST(DistSession, DeadFleetDegradesToLocalExecution) {
  // fork+exec of a binary that does not exist: every child _exits(127)
  // before speaking the protocol, and every respawn does the same. The
  // supervisor must degrade the whole fleet and finish the run locally with
  // byte-identical results — not hang, not throw.
  sim::adhoc_spec spec;
  spec.topology = "layered:depth=4,width=6,edge_prob=0.4";
  spec.protocols = "decay";
  const sim::experiment e = sim::make_adhoc_experiment(spec);
  sim::run_config rc;
  rc.trials = 1;
  rc.threads = 1;
  rc.seed = 42;
  const std::string local_json =
      sim::to_json(e, sim::run_experiment(e, rc)).dump(2);

  session_options so = fast_recovery_options(2);
  so.worker_exec = "/nonexistent/rn-dist-worker";
  so.policy.max_respawns = 1;
  const run_outcome got = run_dist(e, rc, so);
  EXPECT_EQ(got.json, local_json);
  EXPECT_EQ(got.totals.degraded_ranks, 2u);
  EXPECT_EQ(got.totals.reassigned_blocks, kBlocks);
  EXPECT_GE(got.totals.rank_restarts, 2u);
}

}  // namespace
}  // namespace rn::dist
