#include <gtest/gtest.h>

#include "baseline/decay.h"
#include "core/single_broadcast.h"
#include "graph/bfs.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

class DecayFamilyTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecayFamilyTest, ClassicDecayCompletes) {
  const auto [family, seed] = GetParam();
  graph::graph g;
  switch (family) {
    case 0: g = graph::path(20); break;
    case 1: g = graph::clique_chain(4, 5); break;
    case 2: g = graph::random_gnp_connected(40, 0.12, static_cast<std::uint64_t>(seed)); break;
    default: g = graph::grid(5, 6); break;
  }
  baseline::decay_options opt;
  opt.seed = static_cast<std::uint64_t>(seed) * 31 + 1;
  const auto res = baseline::run_decay_broadcast(g, 0, opt);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.rounds_to_complete, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecayFamilyTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(1, 6)));

TEST(Decay, TunedDecayCompletes) {
  graph::layered_options lo;
  lo.depth = 16;
  lo.width = 4;
  lo.edge_prob = 0.5;
  lo.seed = 2;
  const auto g = graph::random_layered(lo);
  baseline::tuned_decay_options opt;
  opt.seed = 5;
  const auto res = baseline::run_tuned_decay_broadcast(g, 0, opt);
  EXPECT_TRUE(res.completed);
}

class LeveledDecayMmvTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LeveledDecayMmvTest, Lemma32CompletesEvenUnderNoise) {
  // Lemma 3.2: the leveled Decay schedule is MMV — it completes even when
  // prompted uninformed nodes jam.
  const auto [seed, mmv] = GetParam();
  graph::layered_options lo;
  lo.depth = 10;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed) * 7;
  const auto g = graph::random_layered(lo);
  const auto levels = graph::bfs(g, 0).level;
  baseline::leveled_decay_options opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.mmv_noise = mmv;
  const auto res = baseline::run_leveled_decay_broadcast(g, 0, levels, opt);
  EXPECT_TRUE(res.completed) << "seed=" << seed << " mmv=" << mmv;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeveledDecayMmvTest,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Bool()));

TEST(KnownSingle, CompletesOnFamilies) {
  for (int family = 0; family < 3; ++family) {
    graph::graph g;
    switch (family) {
      case 0: g = graph::path(30); break;
      case 1: g = graph::grid(5, 8); break;
      default: g = graph::clique_chain(5, 4); break;
    }
    single_broadcast_options opt;
    opt.seed = 11 + static_cast<std::uint64_t>(family);
    const auto res = run_known_single_broadcast(g, 0, opt);
    EXPECT_TRUE(res.completed) << "family " << family;
  }
}

class Theorem11Test : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(Theorem11Test, UnknownTopologyCdBroadcastCompletes) {
  const auto [seed, multi_ring] = GetParam();
  graph::layered_options lo;
  lo.depth = multi_ring ? 12 : 5;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed) * 41;
  const auto g = graph::random_layered(lo);
  single_broadcast_options opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.prm = params::fast();
  if (multi_ring) opt.prm.ring_divisor = 3.0;  // force several rings
  const auto res = run_unknown_cd_single_broadcast(g, 0, opt);
  EXPECT_TRUE(res.completed) << "seed=" << seed << " rings=" << multi_ring;
  ASSERT_EQ(res.phase_rounds.size(), 4u);
  EXPECT_STREQ(res.phase_rounds[0].first, "bfs_wave");
  // Wave phase is exactly D rounds.
  EXPECT_EQ(res.phase_rounds[0].second, static_cast<round_t>(lo.depth));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem11Test,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Bool()));

TEST(Theorem11, SetupProducesValidForests) {
  graph::layered_options lo;
  lo.depth = 12;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = 77;
  const auto g = graph::random_layered(lo);
  single_broadcast_options opt;
  opt.seed = 3;
  opt.prm = params::fast();
  opt.prm.ring_divisor = 3.0;
  const auto setup = prepare_unknown_topology(g, 0, opt);
  EXPECT_GE(setup.rings.rings.size(), 2u);
  EXPECT_EQ(setup.unlabeled, 0u);
  for (std::size_t j = 0; j < setup.forests.size(); ++j) {
    const auto errs = validate_gst(g, setup.forests[j]);
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    // Virtual distances must exist for every member.
    for (node_id v = 0; v < g.node_count(); ++v)
      if (setup.forests[j].member[v])
        EXPECT_NE(setup.derived[j].virtual_distance[v], no_level);
  }
}

TEST(Theorem11, PhaseAccountingAddsUp) {
  const auto g = graph::grid(4, 6);
  single_broadcast_options opt;
  opt.seed = 5;
  opt.prm = params::fast();
  const auto res = run_unknown_cd_single_broadcast(g, 0, opt);
  round_t sum = 0;
  for (const auto& [name, r] : res.phase_rounds) sum += r;
  EXPECT_EQ(sum, res.rounds_executed);
}

}  // namespace
}  // namespace rn::core
