#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/decay.h"
#include "core/single_broadcast.h"
#include "graph/bfs.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

// Completion-round quantiles over many seeds for one Decay draw mode.
struct quantiles {
  double p10, p50, p90;
};

template <class RunFn>
quantiles completion_quantiles(std::size_t trials, RunFn&& run) {
  std::vector<double> rounds;
  rounds.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto res = run(t);
    EXPECT_TRUE(res.completed);
    rounds.push_back(static_cast<double>(res.rounds_to_complete));
  }
  std::sort(rounds.begin(), rounds.end());
  auto q = [&](double p) {
    return rounds[static_cast<std::size_t>(p * static_cast<double>(rounds.size() - 1))];
  };
  return {q(0.1), q(0.5), q(0.9)};
}

void expect_close(double a, double b, double rel_tol, const char* what) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  EXPECT_LE(hi, lo * (1.0 + rel_tol)) << what << ": " << a << " vs " << b;
}

class DecayFamilyTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecayFamilyTest, ClassicDecayCompletes) {
  const auto [family, seed] = GetParam();
  graph::graph g;
  switch (family) {
    case 0: g = graph::path(20); break;
    case 1: g = graph::clique_chain(4, 5); break;
    case 2: g = graph::random_gnp_connected(40, 0.12, static_cast<std::uint64_t>(seed)); break;
    default: g = graph::grid(5, 6); break;
  }
  baseline::decay_options opt;
  opt.seed = static_cast<std::uint64_t>(seed) * 31 + 1;
  const auto res = baseline::run_decay_broadcast(g, 0, opt);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.rounds_to_complete, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecayFamilyTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(1, 6)));

TEST(Decay, TunedDecayCompletes) {
  graph::layered_options lo;
  lo.depth = 16;
  lo.width = 4;
  lo.edge_prob = 0.5;
  lo.seed = 2;
  const auto g = graph::random_layered(lo);
  baseline::tuned_decay_options opt;
  opt.seed = 5;
  const auto res = baseline::run_tuned_decay_broadcast(g, 0, opt);
  EXPECT_TRUE(res.completed);
}

class LeveledDecayMmvTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LeveledDecayMmvTest, Lemma32CompletesEvenUnderNoise) {
  // Lemma 3.2: the leveled Decay schedule is MMV — it completes even when
  // prompted uninformed nodes jam.
  const auto [seed, mmv] = GetParam();
  graph::layered_options lo;
  lo.depth = 10;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed) * 7;
  const auto g = graph::random_layered(lo);
  const auto levels = graph::bfs(g, 0).level;
  baseline::leveled_decay_options opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.mmv_noise = mmv;
  const auto res = baseline::run_leveled_decay_broadcast(g, 0, levels, opt);
  EXPECT_TRUE(res.completed) << "seed=" << seed << " mmv=" << mmv;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeveledDecayMmvTest,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Bool()));

// The batched counter-based coin contract changes per-node draw order, so
// equivalence with the historical per-round streams is distributional: the
// completion-round law must match. 240 independent trials per mode; the
// p10/p50/p90 quantiles must agree within a tolerance far tighter than the
// ~2x spread a wrong coin bias (e.g. an off-by-one exponent) would produce.
TEST(Decay, BatchedCoinsMatchPerRoundDistribution) {
  graph::layered_options lo;
  lo.depth = 8;
  lo.width = 6;
  lo.edge_prob = 0.35;
  lo.seed = 12;
  const auto g = graph::random_layered(lo);
  const std::size_t trials = 240;
  auto run_mode = [&](baseline::draw_mode draws) {
    return completion_quantiles(trials, [&](std::size_t t) {
      baseline::decay_options opt;
      opt.seed = 1000 + t;
      opt.draws = draws;
      opt.fast_forward = true;
      return baseline::run_decay_broadcast(g, 0, opt);
    });
  };
  const auto batched = run_mode(baseline::draw_mode::batched);
  const auto oracle = run_mode(baseline::draw_mode::per_round);
  expect_close(batched.p10, oracle.p10, 0.30, "p10");
  expect_close(batched.p50, oracle.p50, 0.25, "p50");
  expect_close(batched.p90, oracle.p90, 0.30, "p90");
}

TEST(Decay, LeveledBatchedCoinsMatchPerRoundDistribution) {
  graph::layered_options lo;
  lo.depth = 8;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.seed = 4;
  const auto g = graph::random_layered(lo);
  const auto levels = graph::bfs(g, 0).level;
  const std::size_t trials = 400;  // completion rounds are lumpy (level mod 3)
  auto run_mode = [&](baseline::draw_mode draws, bool mmv) {
    return completion_quantiles(trials, [&](std::size_t t) {
      baseline::leveled_decay_options opt;
      opt.seed = 500 + t;
      opt.draws = draws;
      opt.mmv_noise = mmv;
      opt.fast_forward = true;
      return baseline::run_leveled_decay_broadcast(g, 0, levels, opt);
    });
  };
  for (const bool mmv : {false, true}) {
    const auto batched = run_mode(baseline::draw_mode::batched, mmv);
    const auto oracle = run_mode(baseline::draw_mode::per_round, mmv);
    expect_close(batched.p50, oracle.p50, 0.25, mmv ? "p50+noise" : "p50");
    expect_close(batched.p90, oracle.p90, 0.30, mmv ? "p90+noise" : "p90");
  }
}

// Degenerate single-node broadcast: complete before any round runs, in both
// draw modes (the source is the only tracked node).
TEST(Decay, SingleNodeCompletesInZeroRoundsInBothDrawModes) {
  const auto g = graph::path(1);
  for (const auto draws :
       {baseline::draw_mode::batched, baseline::draw_mode::per_round}) {
    baseline::decay_options opt;
    opt.seed = 3;
    opt.draws = draws;
    const auto res = baseline::run_decay_broadcast(g, 0, opt);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.rounds_to_complete, 0);
    EXPECT_EQ(res.rounds_executed, 0);
  }
}

TEST(KnownSingle, CompletesOnFamilies) {
  for (int family = 0; family < 3; ++family) {
    graph::graph g;
    switch (family) {
      case 0: g = graph::path(30); break;
      case 1: g = graph::grid(5, 8); break;
      default: g = graph::clique_chain(5, 4); break;
    }
    single_broadcast_options opt;
    opt.seed = 11 + static_cast<std::uint64_t>(family);
    const auto res = run_known_single_broadcast(g, 0, opt);
    EXPECT_TRUE(res.completed) << "family " << family;
  }
}

class Theorem11Test : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(Theorem11Test, UnknownTopologyCdBroadcastCompletes) {
  const auto [seed, multi_ring] = GetParam();
  graph::layered_options lo;
  lo.depth = multi_ring ? 12 : 5;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed) * 41;
  const auto g = graph::random_layered(lo);
  single_broadcast_options opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.prm = params::fast();
  if (multi_ring) opt.prm.ring_divisor = 3.0;  // force several rings
  const auto res = run_unknown_cd_single_broadcast(g, 0, opt);
  EXPECT_TRUE(res.completed) << "seed=" << seed << " rings=" << multi_ring;
  ASSERT_EQ(res.phase_rounds.size(), 4u);
  EXPECT_STREQ(res.phase_rounds[0].first, "bfs_wave");
  // Wave phase is exactly D rounds.
  EXPECT_EQ(res.phase_rounds[0].second, static_cast<round_t>(lo.depth));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem11Test,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Bool()));

TEST(Theorem11, SetupProducesValidForests) {
  graph::layered_options lo;
  lo.depth = 12;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = 77;
  const auto g = graph::random_layered(lo);
  single_broadcast_options opt;
  opt.seed = 3;
  opt.prm = params::fast();
  opt.prm.ring_divisor = 3.0;
  const auto setup = prepare_unknown_topology(g, 0, opt);
  EXPECT_GE(setup.rings.rings.size(), 2u);
  EXPECT_EQ(setup.unlabeled, 0u);
  for (std::size_t j = 0; j < setup.forests.size(); ++j) {
    const auto errs = validate_gst(g, setup.forests[j]);
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    // Virtual distances must exist for every member.
    for (node_id v = 0; v < g.node_count(); ++v)
      if (setup.forests[j].member[v])
        EXPECT_NE(setup.derived[j].virtual_distance[v], no_level);
  }
}

TEST(Theorem11, PhaseAccountingAddsUp) {
  const auto g = graph::grid(4, 6);
  single_broadcast_options opt;
  opt.seed = 5;
  opt.prm = params::fast();
  const auto res = run_unknown_cd_single_broadcast(g, 0, opt);
  round_t sum = 0;
  for (const auto& [name, r] : res.phase_rounds) sum += r;
  EXPECT_EQ(sum, res.rounds_executed);
}

}  // namespace
}  // namespace rn::core
