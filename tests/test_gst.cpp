#include <gtest/gtest.h>

#include "common/math.h"
#include "core/gst.h"
#include "core/gst_centralized.h"
#include "graph/bfs.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

TEST(RankedBfs, PathRanksAreAllOne) {
  const auto g = graph::path(6);
  const auto t = ranked_bfs(g, 0);
  for (node_id v = 0; v < 6; ++v) EXPECT_EQ(t.rank[v], 1);
}

TEST(RankedBfs, StarHubRankTwo) {
  const auto g = graph::star(5);
  const auto t = ranked_bfs(g, 0);
  EXPECT_EQ(t.rank[0], 2);  // >= 2 rank-1 children
  for (node_id v = 1; v < 5; ++v) EXPECT_EQ(t.rank[v], 1);
}

TEST(RankedBfs, BinaryTreeRankIsHeightLog) {
  const auto g = graph::binary_tree(31);  // complete depth-4 tree
  const auto t = ranked_bfs(g, 0);
  EXPECT_EQ(t.rank[0], 5);  // rank grows by 1 per perfect level
  EXPECT_LE(t.max_rank(), static_cast<rank_t>(ceil_log2(31)) + 1);
}

TEST(ComputeRanks, RuleOnHandTree) {
  // 0 -> {1,2}; 1 -> {3}; ranks: 3:1, 2:1, 1:1 (one child at max), 0:2.
  graph::graph::builder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  const auto g = std::move(b).build();
  const auto t = ranked_bfs(g, 0);
  EXPECT_EQ(t.rank[3], 1);
  EXPECT_EQ(t.rank[1], 1);
  EXPECT_EQ(t.rank[2], 1);
  EXPECT_EQ(t.rank[0], 2);
}

TEST(Validate, AcceptsValidTree) {
  const auto g = graph::path(5);
  const auto t = ranked_bfs(g, 0);
  EXPECT_TRUE(validate_gst(g, t).empty());
}

TEST(Validate, DetectsWrongRank) {
  const auto g = graph::path(5);
  auto t = ranked_bfs(g, 0);
  t.rank[2] = 3;
  const auto errs = validate_gst(g, t);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("ranking rule"), std::string::npos);
}

TEST(Validate, DetectsBadParentLevel) {
  const auto g = graph::complete(4);
  auto t = ranked_bfs(g, 0);
  t.parent[3] = 2;  // 2 is at the same level as 3 in a K4 BFS from 0
  t.level[3] = t.level[2] + 1;
  EXPECT_FALSE(validate_gst(g, t).empty());
}

TEST(Validate, DetectsNonTreeEdgeParent) {
  const auto g = graph::path(4);
  auto t = ranked_bfs(g, 0);
  t.parent[3] = 1;  // 1-3 is not an edge
  EXPECT_FALSE(validate_gst(g, t).empty());
}

TEST(Validate, DetectsCollisionFreenessViolation) {
  // Figure-1 style: two same-rank parents v1=1, v2=2 at level 1, each with a
  // same-rank child (3 resp. 4), plus the violating cross edge 1-4.
  // To force ranks: each of 1 and 2 also needs its child to have rank 1 and
  // exactly one of them, so rank(1)=rank(3)=1 requires nothing extra.
  graph::graph::builder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 4);
  b.add_edge(1, 4);  // cross edge
  const auto g = std::move(b).build();
  gst t;
  t.roots = {0};
  t.member.assign(5, 1);
  t.level = {0, 1, 1, 2, 2};
  t.parent = {no_node, 0, 0, 1, 2};
  t.rank.assign(5, no_rank);
  t.rank = compute_ranks(t);
  ASSERT_EQ(t.rank[1], t.rank[4]);  // both rank 1: M-edges (1,3) and (2,4)
  const auto errs = validate_gst(g, t);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("collision-freeness"), std::string::npos);
}

TEST(Derive, StretchChainOnPath) {
  const auto g = graph::path(5);
  const auto t = ranked_bfs(g, 0);
  const auto d = derive(g, t);
  EXPECT_TRUE(d.is_stretch_head[0]);
  for (node_id v = 0; v < 4; ++v) EXPECT_EQ(d.stretch_child[v], v + 1);
  EXPECT_EQ(d.stretch_child[4], no_node);
  for (node_id v = 1; v < 5; ++v) EXPECT_FALSE(d.is_stretch_head[v]);
}

TEST(Derive, VirtualDistanceUsesFastEdges) {
  // On a path the whole tree is one stretch: everything is at vdist <= 2.
  const auto g = graph::path(9);
  const auto t = ranked_bfs(g, 0);
  const auto d = derive(g, t);
  EXPECT_EQ(d.virtual_distance[0], 0);
  for (node_id v = 1; v < 9; ++v) EXPECT_EQ(d.virtual_distance[v], 1);
}

class VdistBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(VdistBoundTest, Lemma34Bound) {
  // Lemma 3.4: du <= 2 ceil(log2 n) (+1 slack for the multi-stretch hop off
  // the root stretch).
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 10;
  lo.width = 6;
  lo.edge_prob = 0.35;
  lo.seed = seed;
  const auto g = graph::random_layered(lo);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  const level_t bound =
      2 * static_cast<level_t>(ceil_log2(g.node_count())) + 1;
  for (node_id v = 0; v < g.node_count(); ++v) {
    ASSERT_NE(d.virtual_distance[v], no_level) << "node " << v;
    EXPECT_LE(d.virtual_distance[v], bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VdistBoundTest, ::testing::Range(1, 13));

TEST(Derive, MultiRootForest) {
  const auto g = graph::path(6);
  gst t;
  t.roots = {0, 5};
  t.member.assign(6, 1);
  t.level = {0, 1, 2, 2, 1, 0};
  t.parent = {no_node, 0, 1, 4, 5, no_node};
  t.rank.assign(6, no_rank);
  t.rank = compute_ranks(t);
  EXPECT_TRUE(validate_gst(g, t).empty());
  const auto d = derive(g, t);
  EXPECT_EQ(d.virtual_distance[0], 0);
  EXPECT_EQ(d.virtual_distance[5], 0);
}

TEST(Gst, MemberCountAndMax) {
  const auto g = graph::star(6);
  const auto t = ranked_bfs(g, 0);
  EXPECT_EQ(t.member_count(), 6u);
  EXPECT_EQ(t.max_level(), 1);
  EXPECT_EQ(t.max_rank(), 2);
}

}  // namespace
}  // namespace rn::core
