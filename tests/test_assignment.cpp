#include <gtest/gtest.h>

#include "common/math.h"
#include "core/assignment.h"
#include "graph/graph.h"

namespace rn::core {
namespace {

template <typename EdgeFn>
graph::graph bipartite(std::size_t r, std::size_t b, EdgeFn has_edge) {
  graph::graph::builder gb(r + b);
  for (node_id i = 0; i < r; ++i)
    for (node_id j = 0; j < b; ++j)
      if (has_edge(i, j)) gb.add_edge(i, static_cast<node_id>(r + j));
  return std::move(gb).build();
}

std::vector<node_id> range(node_id from, node_id count) {
  std::vector<node_id> v(count);
  for (node_id i = 0; i < count; ++i) v[i] = from + i;
  return v;
}

// Checks the six properties of the bipartite assignment problem (paper
// section 2.2.2) against the blackboard.
void check_assignment(const graph::graph& g, const build_state& st,
                      const std::vector<node_id>& reds,
                      const std::vector<node_id>& blues, rank_t i) {
  std::vector<std::size_t> child_count(g.node_count(), 0);
  std::vector<std::size_t> rank_i_children(g.node_count(), 0);
  for (node_id u : blues) {
    // (1) every blue has a red parent adjacent to it.
    ASSERT_TRUE(st.assigned[u]) << "blue " << u;
    const node_id p = st.parent[u];
    ASSERT_NE(p, no_node);
    EXPECT_TRUE(g.has_edge(u, p));
    child_count[p] += 1;
    if (st.rank[u] == i) rank_i_children[p] += 1;
    // (5)+(6): the blue knows its parent and the parent's rank.
    EXPECT_EQ(st.parent_rank[u], st.rank[p]);
  }
  // (2)+(4): red ranks follow the ranking rule over their children.
  for (node_id v : reds) {
    if (child_count[v] == 0) {
      EXPECT_EQ(st.rank[v], no_rank);
      continue;
    }
    if (rank_i_children[v] == 1)
      EXPECT_EQ(st.rank[v], i) << "red " << v;
    else if (rank_i_children[v] >= 2)
      EXPECT_EQ(st.rank[v], i + 1) << "red " << v;
  }
  // (3) collision-freeness: a rank-i blue with rank-i parent must not be
  // adjacent to another rank-i red that also has a rank-i child.
  for (node_id u : blues) {
    const node_id p = st.parent[u];
    if (st.rank[u] != i || st.rank[p] != i) continue;
    for (node_id w : g.neighbors(u)) {
      if (w == p || st.rank[w] != i) continue;
      EXPECT_EQ(rank_i_children[w], 0u)
          << "collision: blue " << u << " parent " << p << " vs red " << w;
    }
  }
}

struct Params {
  int L, dp, epochs, iters, step;
};

Params params_for(std::size_t n) {
  const int L = log_range(n) + 1;
  return {L, 2 * L, 3 * L, 2 * L * L, L};
}

TEST(Assignment, RoundsFormula) {
  const auto r = assignment_problem::rounds_required(3, 2, 4, 5);
  // decay = 2*4 = 8; part = 5*8 = 40; per epoch = 1 + 8 + 120 + 8 = 137.
  EXPECT_EQ(r, 8 + 4 * 137);
}

TEST(Assignment, SingleRedStar) {
  const std::size_t m = 6;
  const auto g = bipartite(1, m, [](node_id, node_id) { return true; });
  const auto p = params_for(g.node_count());
  const auto res = run_assignment(g, {0}, range(1, m), 1, p.L, p.dp, p.epochs,
                                  p.iters, p.step, 3);
  EXPECT_TRUE(res.all_assigned);
  check_assignment(g, res.st, {0}, range(1, m), 1);
  EXPECT_EQ(res.st.rank[0], 2);  // many children of rank 1
}

TEST(Assignment, PerfectMatchingGivesRankI) {
  const std::size_t m = 5;
  const auto g = bipartite(m, m, [](node_id i, node_id j) { return i == j; });
  const auto p = params_for(g.node_count());
  const auto res = run_assignment(g, range(0, m), range(m, m), 2, p.L, p.dp,
                                  p.epochs, p.iters, p.step, 5);
  EXPECT_TRUE(res.all_assigned);
  check_assignment(g, res.st, range(0, m), range(m, m), 2);
  for (node_id v = 0; v < m; ++v) {
    EXPECT_EQ(res.st.rank[v], 2);
    EXPECT_EQ(res.st.stretch_child[v], m + v);
  }
}

class AssignmentRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AssignmentRandomTest, RandomBipartiteAssignsEverything) {
  const auto [seed, ri] = GetParam();
  rng prob(static_cast<std::uint64_t>(seed) * 99);
  const std::size_t R = 7, B = 12;
  const auto g = bipartite(R, B, [&](node_id, node_id) {
    return prob.bernoulli(0.35);
  });
  std::vector<node_id> blues;
  for (node_id j = 0; j < B; ++j)
    if (g.degree(static_cast<node_id>(R + j)) > 0)
      blues.push_back(static_cast<node_id>(R + j));
  if (blues.empty()) GTEST_SKIP();
  const auto p = params_for(g.node_count());
  const auto res =
      run_assignment(g, range(0, R), blues, static_cast<rank_t>(ri), p.L, p.dp,
                     p.epochs, p.iters, p.step, static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(res.all_assigned) << "seed " << seed;
  check_assignment(g, res.st, range(0, R), blues, static_cast<rank_t>(ri));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AssignmentRandomTest,
                         ::testing::Combine(::testing::Range(1, 16),
                                            ::testing::Values(1, 3)));

TEST(Assignment, EpochActiveRedsShrink) {
  // Lemma 2.4: active reds decay geometrically (here: just monotone + reach 0).
  rng prob(7);
  const std::size_t R = 20, B = 30;
  const auto g = bipartite(R, B, [&](node_id, node_id) {
    return prob.bernoulli(0.25);
  });
  std::vector<node_id> blues;
  for (node_id j = 0; j < B; ++j)
    if (g.degree(static_cast<node_id>(R + j)) > 0)
      blues.push_back(static_cast<node_id>(R + j));
  const auto p = params_for(g.node_count());
  const auto res = run_assignment(g, range(0, R), blues, 1, p.L, p.dp,
                                  p.epochs, p.iters, p.step, 11);
  ASSERT_FALSE(res.epoch_active_reds.empty());
  EXPECT_EQ(res.epoch_active_reds.back(), 0u)
      << "all reds should retire by the last epoch";
  EXPECT_TRUE(res.all_assigned);
}

TEST(Assignment, FallbacksStayRare) {
  int fallbacks = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng prob(seed * 3);
    const std::size_t R = 6, B = 10;
    const auto g = bipartite(R, B, [&](node_id, node_id) {
      return prob.bernoulli(0.4);
    });
    std::vector<node_id> blues;
    for (node_id j = 0; j < B; ++j)
      if (g.degree(static_cast<node_id>(R + j)) > 0)
        blues.push_back(static_cast<node_id>(R + j));
    const auto p = params_for(g.node_count());
    const auto res = run_assignment(g, range(0, R), blues, 1, p.L, p.dp,
                                    p.epochs, p.iters, p.step, seed);
    EXPECT_TRUE(res.all_assigned);
    fallbacks += res.fallback_finalizations + res.fallback_adoptions;
  }
  // [DEV-9]: with paper-grade constants the safety net should be idle.
  EXPECT_LE(fallbacks, 1);
}

}  // namespace
}  // namespace rn::core
