#include <gtest/gtest.h>

#include <set>

#include "common/math.h"
#include "common/rng.h"
#include "core/gst.h"
#include "core/gst_broadcast.h"
#include "core/gst_centralized.h"
#include "core/schedule.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

TEST(Schedule, FastSlotsOnlyForStretchParents) {
  const auto g = graph::star(6);  // hub rank 2, leaves rank 1: no stretches
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_schedule sched(t, d, g.node_count());
  rng r(1);
  for (round_t tt = 0; tt < 200; tt += 2)
    for (node_id v = 0; v < 6; ++v)
      EXPECT_NE(sched.query(v, tt, r), gst_schedule::action::fast);
}

TEST(Schedule, FastPeriodicityOnPath) {
  const auto g = graph::path(8);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_schedule sched(t, d, g.node_count());
  rng r(1);
  // Node v (level v, rank 1) fires fast iff t == 2(v + 3) mod 6L.
  const round_t period = sched.fast_period();
  for (node_id v = 0; v + 1 < 8; ++v) {  // 7 is the stretch tail: never fast
    std::set<round_t> fires;
    for (round_t tt = 0; tt < 4 * period; ++tt)
      if (sched.query(v, tt, r) == gst_schedule::action::fast)
        fires.insert(tt % period);
    ASSERT_EQ(fires.size(), 1u) << "node " << v;
    EXPECT_EQ(*fires.begin(), (2 * (static_cast<round_t>(v) + 3)) % period);
  }
}

TEST(Schedule, SlowSlotsAreOddAndResidueKeyed) {
  const auto g = graph::path(6);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_schedule sched(t, d, g.node_count());
  rng r(2);
  for (round_t tt = 0; tt < 600; ++tt) {
    for (node_id v = 0; v < 6; ++v) {
      const auto a = sched.query(v, tt, r);
      if (a == gst_schedule::action::slow_prompt) {
        EXPECT_EQ(tt % 2, 1);
        const auto key = d.virtual_distance[v];
        EXPECT_EQ((tt - 1 - 2 * key) % 6, 0);
      }
    }
  }
}

class FastCollisionFreeTest : public ::testing::TestWithParam<int> {};

TEST_P(FastCollisionFreeTest, StretchChildrenAlwaysHearTheirParent) {
  // Lemma 3.5 (with [DEV-3]): fast transmissions never collide *at their
  // intended receivers* — every stretch child whose parent fires must have
  // that parent as its only fast-transmitting neighbor. (Listeners at the
  // transmitter's own level may legitimately observe collisions.)
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 8;
  lo.width = 5;
  lo.edge_prob = 0.5;
  lo.intra_prob = 0.3;
  lo.seed = seed;
  const auto g = graph::random_layered(lo);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_schedule sched(t, d, g.node_count());
  rng r(3);
  for (round_t tt = 0; tt < 2 * sched.fast_period(); tt += 2) {
    std::vector<char> fast(g.node_count(), 0);
    std::vector<node_id> fast_list;
    for (node_id v = 0; v < g.node_count(); ++v)
      if (sched.query(v, tt, r) == gst_schedule::action::fast) {
        fast[v] = 1;
        fast_list.push_back(v);
      }
    for (node_id v : fast_list) {
      const node_id c = d.stretch_child[v];
      ASSERT_NE(c, no_node);  // [DEV-3]: only stretch parents fire
      EXPECT_FALSE(fast[c]);  // the child itself listens in this round
      int tx_neighbors = 0;
      for (node_id w : g.neighbors(c)) tx_neighbors += fast[w] ? 1 : 0;
      EXPECT_EQ(tx_neighbors, 1) << "round " << tt << " child " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastCollisionFreeTest, ::testing::Range(1, 11));

class GstBroadcastTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(GstBroadcastTest, SingleMessageCompletes) {
  const auto [depth, seed, mmv] = GetParam();
  graph::layered_options lo;
  lo.depth = static_cast<std::size_t>(depth);
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed);
  const auto g = graph::random_layered(lo);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_broadcast_options opt;
  opt.seed = 1000 + static_cast<std::uint64_t>(seed);
  opt.mmv_noise = mmv;
  const auto res = run_gst_single_broadcast(g, t, d, {0}, opt);
  EXPECT_TRUE(res.completed) << "depth=" << depth << " mmv=" << mmv;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GstBroadcastTest,
                         ::testing::Combine(::testing::Values(3, 8, 14),
                                            ::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

TEST(GstBroadcast, RespectsExplicitBudget) {
  const auto g = graph::path(10);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_broadcast_options opt;
  opt.max_rounds = 7;
  opt.stop_when_complete = false;
  const auto res = run_gst_single_broadcast(g, t, d, {0}, opt);
  EXPECT_EQ(res.rounds_executed, 7);
}

TEST(GstBroadcast, MultiRootInformedSet) {
  // Both endpoints of a path start informed; middle gets it fast.
  const auto g = graph::path(11);
  gst t;
  t.roots = {0, 10};
  t.member.assign(11, 1);
  t.level.resize(11);
  t.parent.assign(11, no_node);
  for (node_id v = 0; v < 11; ++v) t.level[v] = std::min<level_t>(v, 10 - v);
  for (node_id v = 1; v <= 4; ++v) t.parent[v] = v - 1;
  t.parent[5] = 4;
  for (node_id v = 6; v <= 9; ++v) t.parent[v] = v + 1;
  t.rank = compute_ranks(t);
  ASSERT_TRUE(validate_gst(g, t).empty());
  const auto d = derive(g, t);
  gst_broadcast_options opt;
  const auto res = run_gst_single_broadcast(g, t, d, {0, 10}, opt);
  EXPECT_TRUE(res.completed);
}

TEST(Schedule, ClassicLevelKeyDiffers) {
  // In the classic ablation the slow key is the level, not vdist.
  const auto g = graph::path(40);
  const auto t = build_gst_centralized(g, 0);
  const auto d = derive(g, t);
  gst_schedule vd(t, d, g.node_count(), true);
  gst_schedule lv(t, d, g.node_count(), false);
  // Node 30: vdist 1 but level 30; its first possible slow round differs.
  rng r1(1), r2(1);
  bool vd_prompted_early = false, lv_prompted_early = false;
  for (round_t tt = 1; tt < 40; ++tt) {
    if (vd.query(30, tt, r1) == gst_schedule::action::slow_prompt)
      vd_prompted_early = true;
    if (lv.query(30, tt, r2) == gst_schedule::action::slow_prompt)
      lv_prompted_early = true;
  }
  EXPECT_TRUE(vd_prompted_early);   // vdist key: starts at round 3
  EXPECT_FALSE(lv_prompted_early);  // level key: starts at round 61
}

}  // namespace
}  // namespace rn::core
