#include <gtest/gtest.h>

#include "common/math.h"
#include "core/gst.h"
#include "core/gst_distributed.h"
#include "graph/bfs.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

void expect_valid(const graph::graph& g, const gst& t, const char* what) {
  const auto errs = validate_gst(g, t);
  EXPECT_TRUE(errs.empty()) << what << ": "
                            << (errs.empty() ? "" : errs.front());
}

distributed_gst_outcome build_single(const graph::graph& g, node_id source,
                                     std::uint64_t seed, bool pipelined,
                                     params prm = params::fast()) {
  distributed_gst_options opt;
  opt.seed = seed;
  opt.prm = prm;
  opt.pipelined = pipelined;
  return build_gst_distributed_single(g, source, opt);
}

TEST(Distributed, Path) {
  const auto g = graph::path(10);
  const auto out = build_single(g, 0, 1, true);
  expect_valid(g, out.forests[0], "path");
}

TEST(Distributed, Star) {
  const auto g = graph::star(10);
  const auto out = build_single(g, 0, 2, true);
  expect_valid(g, out.forests[0], "star");
  EXPECT_EQ(out.forests[0].rank[0], 2);
}

TEST(Distributed, CliqueChain) {
  const auto g = graph::clique_chain(3, 5);
  const auto out = build_single(g, 0, 3, true);
  expect_valid(g, out.forests[0], "clique chain");
}

TEST(Distributed, Grid) {
  const auto g = graph::grid(4, 5);
  const auto out = build_single(g, 0, 4, true);
  expect_valid(g, out.forests[0], "grid");
}

class DistributedPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(DistributedPropertyTest, ValidOnRandomLayered) {
  const auto [seed, pipelined] = GetParam();
  graph::layered_options lo;
  lo.depth = 5;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.intra_prob = 0.2;
  // Checked-in instance seeds (re-picked when the generator moved to
  // geometric skip-sampling and every sampled graph changed).
  lo.seed = static_cast<std::uint64_t>(seed) * 19;
  const auto g = graph::random_layered(lo);
  // Validity is a w.h.p. guarantee: use the paper-grade constants.
  const auto out = build_single(g, 0, static_cast<std::uint64_t>(seed),
                                pipelined, params::paper());
  expect_valid(g, out.forests[0], pipelined ? "pipelined" : "sequential");
  EXPECT_EQ(out.forests[0].member_count(), g.node_count());
  // Local knowledge must be self-consistent with the forest.
  const auto& t = out.forests[0];
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (t.parent[v] != no_node)
      EXPECT_EQ(out.parent_rank[v], t.rank[t.parent[v]]) << "node " << v;
    const node_id sc = out.stretch_child[v];
    if (sc != no_node) {
      EXPECT_EQ(t.parent[sc], v);
      EXPECT_EQ(t.rank[sc], t.rank[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedPropertyTest,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Bool()));

TEST(Distributed, PipelinedFasterThanSequentialForDeepGraphs) {
  // Pipelining turns the (depth x rank) slot product into a sum, at a x3
  // round-class cost: rounds are (2w + L - 2) * 3R vs w * L * R. The win
  // factor is ~L/6, so it only shows on deep graphs; asymptotically it is
  // the paper's O(D log^4) vs O(D log^5).
  graph::layered_options lo;
  lo.depth = 40;
  lo.width = 2;
  lo.edge_prob = 0.5;
  lo.seed = 5;
  const auto g = graph::random_layered(lo);
  const auto pip = build_single(g, 0, 9, true);
  const auto seq = build_single(g, 0, 9, false);
  expect_valid(g, pip.forests[0], "pipelined");
  expect_valid(g, seq.forests[0], "sequential");
  EXPECT_LT(pip.rounds, seq.rounds);
}

class DistributedRingsTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedRingsTest, ParallelRingConstructionsAreValid) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 12;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = seed * 23;
  const auto g = graph::random_layered(lo);
  const auto b = graph::bfs(g, 0);
  const auto rd = decompose_rings(b.level, 4);
  ASSERT_GE(rd.rings.size(), 3u);
  distributed_gst_options opt;
  opt.seed = seed;
  opt.prm = params::paper();
  const auto out = build_gst_distributed(g, rd, opt);
  std::size_t covered = 0;
  for (std::size_t j = 0; j < rd.rings.size(); ++j) {
    expect_valid(g, out.forests[j], "ring forest");
    covered += out.forests[j].member_count();
  }
  EXPECT_EQ(covered, g.node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedRingsTest, ::testing::Range(1, 9));

TEST(Distributed, FallbacksRareAtPaperParams) {
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    graph::layered_options lo;
    lo.depth = 4;
    lo.width = 4;
    lo.edge_prob = 0.4;
    lo.seed = seed * 31;
    const auto g = graph::random_layered(lo);
    const auto out = build_single(g, 0, seed, true, params::paper());
    expect_valid(g, out.forests[0], "paper params");
    total += out.fallback_finalizations + out.fallback_adoptions;
  }
  EXPECT_EQ(total, 0);
}

TEST(Distributed, RoundCountMatchesSlotBudget) {
  const auto g = graph::path(6);
  distributed_gst_options opt;
  opt.prm = params::fast();
  opt.pipelined = true;
  const auto out = build_gst_distributed(
      g, decompose_rings(graph::bfs(g, 0).level, 6), opt);
  const std::size_t n_hat = g.node_count();
  const int L = log_range(n_hat);
  const round_t R = assignment_problem::rounds_required(
      L, opt.prm.decay_phases(n_hat), opt.prm.epochs(n_hat),
      opt.prm.recruit_iterations(n_hat));
  const round_t max_slot = 2 * (5 - 1) + (L + 1 - 1);
  EXPECT_EQ(out.rounds, (max_slot + 1) * 3 * R);
}

}  // namespace
}  // namespace rn::core
