#include <gtest/gtest.h>

#include "common/math.h"
#include "core/gst.h"
#include "core/gst_centralized.h"
#include "core/rings.h"
#include "graph/bfs.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

void expect_valid(const graph::graph& g, const gst& t) {
  const auto errs = validate_gst(g, t);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
}

TEST(Centralized, Path) { expect_valid(graph::path(12), build_gst_centralized(graph::path(12), 0)); }
TEST(Centralized, Star) { expect_valid(graph::star(12), build_gst_centralized(graph::star(12), 0)); }
TEST(Centralized, Complete) {
  const auto g = graph::complete(10);
  expect_valid(g, build_gst_centralized(g, 0));
}
TEST(Centralized, Cycle) {
  const auto g = graph::cycle(15);
  expect_valid(g, build_gst_centralized(g, 3));
}
TEST(Centralized, Grid) {
  const auto g = graph::grid(6, 7);
  expect_valid(g, build_gst_centralized(g, 0));
}
TEST(Centralized, BinaryTree) {
  const auto g = graph::binary_tree(63);
  expect_valid(g, build_gst_centralized(g, 0));
}
TEST(Centralized, Caterpillar) {
  const auto g = graph::caterpillar(8, 4);
  expect_valid(g, build_gst_centralized(g, 0));
}
TEST(Centralized, CliqueChain) {
  const auto g = graph::clique_chain(5, 6);
  expect_valid(g, build_gst_centralized(g, 0));
}
TEST(Centralized, Dumbbell) {
  const auto g = graph::dumbbell(8, 5);
  expect_valid(g, build_gst_centralized(g, 0));
}

TEST(Centralized, CoversAllReachableNodes) {
  const auto g = graph::grid(5, 5);
  const auto t = build_gst_centralized(g, 12);
  EXPECT_EQ(t.member_count(), 25u);
}

TEST(Centralized, MaxRankBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = graph::random_gnp_connected(60, 0.12, seed);
    const auto t = build_gst_centralized(g, 0);
    EXPECT_LE(t.max_rank(), static_cast<rank_t>(ceil_log2(60)) + 1);
  }
}

struct Family {
  const char* name;
  graph::graph (*make)(std::uint64_t seed);
};

graph::graph make_layered(std::uint64_t s) {
  graph::layered_options lo;
  lo.depth = 7;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.intra_prob = 0.2;
  lo.seed = s;
  return graph::random_layered(lo);
}
graph::graph make_gnp(std::uint64_t s) {
  return graph::random_gnp_connected(48, 0.12, s);
}
graph::graph make_disk(std::uint64_t s) {
  return graph::random_unit_disk(48, 0.28, s);
}

class CentralizedPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CentralizedPropertyTest, ValidOnRandomFamilies) {
  const auto [family, seed] = GetParam();
  static const Family families[] = {
      {"layered", make_layered}, {"gnp", make_gnp}, {"disk", make_disk}};
  const auto g = families[family].make(static_cast<std::uint64_t>(seed));
  const auto t = build_gst_centralized(g, 0);
  expect_valid(g, t);
  // Levels must match true BFS distances.
  const auto b = graph::bfs(g, 0);
  for (node_id v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(t.level[v], b.level[v]);
}

INSTANTIATE_TEST_SUITE_P(Families, CentralizedPropertyTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Range(1, 11)));

class MultiRootTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiRootTest, RingForestsAreValid) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 12;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = seed;
  const auto g = graph::random_layered(lo);
  const auto b = graph::bfs(g, 0);
  const auto rd = decompose_rings(b.level, 4);
  ASSERT_GE(rd.rings.size(), 3u);
  for (const auto& ring : rd.rings) {
    std::vector<char> mask(g.node_count(), 0);
    for (node_id v : ring.members) mask[v] = 1;
    const auto t = build_gst_centralized_multi(g, ring.roots, &mask);
    const auto errs = validate_gst(g, t);
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    EXPECT_EQ(t.member_count(), ring.members.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRootTest, ::testing::Range(1, 9));

TEST(Rings, DecomposeBasics) {
  std::vector<level_t> levels{0, 1, 1, 2, 3, 4, 5};
  const auto rd = decompose_rings(levels, 3);
  ASSERT_EQ(rd.rings.size(), 2u);
  EXPECT_EQ(rd.rings[0].first_layer, 0);
  EXPECT_EQ(rd.rings[1].first_layer, 3);
  EXPECT_EQ(rd.ring_of[4], 1);
  EXPECT_EQ(rd.rel_level[4], 0);
  EXPECT_EQ(rd.rings[1].roots.size(), 1u);
  EXPECT_EQ(rd.rings[0].depth, 2);
}

TEST(Rings, WidthClamp) {
  EXPECT_EQ(ring_width_for(100, 0.0), 101);  // single ring
  EXPECT_EQ(ring_width_for(100, 10.0), 10);
  EXPECT_EQ(ring_width_for(100, 1000.0), 3);  // clamped to >= 3 [DEV-6]
  EXPECT_EQ(ring_width_for(4, 2.0), 3);
}

}  // namespace
}  // namespace rn::core
