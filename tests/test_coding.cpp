#include <gtest/gtest.h>

#include "coding/gf2.h"
#include "coding/rlnc.h"
#include "common/check.h"
#include "common/rng.h"

namespace rn::coding {
namespace {

TEST(Gf2Vector, SetGet) {
  gf2_vector v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
}

TEST(Gf2Vector, AddIsXor) {
  auto a = gf2_vector::unit(10, 3);
  auto b = gf2_vector::unit(10, 3);
  a.add(b);
  EXPECT_TRUE(a.is_zero());
}

TEST(Gf2Vector, DotProduct) {
  gf2_vector a(8), b(8);
  a.set(1, true);
  a.set(3, true);
  b.set(3, true);
  EXPECT_TRUE(a.dot(b));
  b.set(1, true);
  EXPECT_FALSE(a.dot(b));  // two overlaps -> even parity
}

TEST(Gf2Vector, DotBilinear) {
  rn::rng r(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = gf2_vector::random(67, r);
    auto b = gf2_vector::random(67, r);
    auto c = gf2_vector::random(67, r);
    auto bc = b;
    bc.add(c);
    EXPECT_EQ(a.dot(bc), a.dot(b) != a.dot(c));
  }
}

TEST(Gf2Vector, LeadingBit) {
  gf2_vector v(100);
  EXPECT_EQ(v.leading_bit(), 100u);
  v.set(77, true);
  EXPECT_EQ(v.leading_bit(), 77u);
  v.set(5, true);
  EXPECT_EQ(v.leading_bit(), 5u);
}

TEST(Gf2Vector, RandomRespectsLength) {
  rn::rng r(6);
  for (int t = 0; t < 20; ++t) {
    auto v = gf2_vector::random(70, r);
    auto u = gf2_vector::unit(70, 69);
    v.add(u);  // must not throw and must stay consistent
    EXPECT_EQ(v.size(), 70u);
  }
}

TEST(Decoder, DecodesAtFullRank) {
  const std::size_t k = 5, sz = 8;
  const auto msgs = make_test_messages(k, sz, 42);
  gf2_decoder dec(k, sz);
  rn::rng r(1);
  // Feed random combinations until complete.
  gf2_decoder source(k, sz);
  for (std::size_t i = 0; i < k; ++i)
    source.insert(gf2_vector::unit(k, i), msgs[i]);
  int packets = 0;
  while (!dec.complete() && packets < 200) {
    auto row = source.random_combination(r);
    dec.insert(std::move(row.coeffs), std::move(row.payload));
    ++packets;
  }
  ASSERT_TRUE(dec.complete());
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(dec.decode(i), msgs[i]);
  // Coupon-collector-free: random GF(2) combos need only k + O(1) packets.
  EXPECT_LT(packets, 40);
}

TEST(Decoder, RejectsDependentRows) {
  gf2_decoder dec(3, 1);
  EXPECT_TRUE(dec.insert(gf2_vector::unit(3, 0), {1}));
  EXPECT_FALSE(dec.insert(gf2_vector::unit(3, 0), {1}));
  auto v = gf2_vector::unit(3, 0);
  v.add(gf2_vector::unit(3, 1));
  EXPECT_TRUE(dec.insert(v, {7}));
  EXPECT_EQ(dec.rank(), 2u);
}

TEST(Decoder, InSpan) {
  gf2_decoder dec(4, 1);
  dec.insert(gf2_vector::unit(4, 0), {0});
  dec.insert(gf2_vector::unit(4, 1), {0});
  auto v = gf2_vector::unit(4, 0);
  v.add(gf2_vector::unit(4, 1));
  EXPECT_TRUE(dec.in_span(v));
  EXPECT_FALSE(dec.in_span(gf2_vector::unit(4, 2)));
}

TEST(Decoder, InfectionDefinition) {
  // Definition 3.8: infected by mu iff some received coeff is non-orthogonal.
  gf2_decoder dec(3, 1);
  auto mu = gf2_vector::unit(3, 2);
  EXPECT_FALSE(dec.infected_by(mu));
  dec.insert(gf2_vector::unit(3, 0), {0});
  EXPECT_FALSE(dec.infected_by(mu));
  auto v = gf2_vector::unit(3, 1);
  v.add(gf2_vector::unit(3, 2));
  dec.insert(v, {0});
  EXPECT_TRUE(dec.infected_by(mu));
}

TEST(Decoder, PayloadFollowsCoefficients) {
  // payload(a ^ b) must equal payload(a) ^ payload(b).
  const auto msgs = make_test_messages(2, 4, 9);
  gf2_decoder src(2, 4);
  src.insert(gf2_vector::unit(2, 0), msgs[0]);
  src.insert(gf2_vector::unit(2, 1), msgs[1]);
  rn::rng r(3);
  for (int t = 0; t < 30; ++t) {
    auto row = src.random_combination(r);
    std::vector<std::uint8_t> expect(4, 0);
    if (row.coeffs.get(0)) xor_bytes(expect, msgs[0]);
    if (row.coeffs.get(1)) xor_bytes(expect, msgs[1]);
    // expect currently holds the xor; compare
    EXPECT_EQ(row.payload, expect);
  }
}

TEST(Decoder, SizeMismatchThrows) {
  gf2_decoder dec(3, 2);
  EXPECT_THROW(dec.insert(gf2_vector(4), {0, 0}), rn::contract_error);
  EXPECT_THROW(dec.insert(gf2_vector(3), {0}), rn::contract_error);
  EXPECT_THROW(dec.decode(0), rn::contract_error);  // not complete
}

class RlncDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(RlncDimsTest, EndToEndRelayChain) {
  // source -> relay -> sink, all over re-encoded packets only.
  const std::size_t k = static_cast<std::size_t>(GetParam());
  const std::size_t sz = 16;
  const auto msgs = make_test_messages(k, sz, 100 + k);
  rlnc_node source(k, sz), relay(k, sz), sink(k, sz);
  for (std::size_t i = 0; i < k; ++i) source.load_source_message(i, msgs[i]);
  rn::rng r(17);
  int steps = 0;
  while (!sink.can_decode() && steps < 500) {
    auto a = source.encode(r);
    relay.receive(a.coeffs, a.payload);
    if (relay.has_anything()) {
      auto b = relay.encode(r);
      sink.receive(b.coeffs, b.payload);
    }
    ++steps;
  }
  ASSERT_TRUE(sink.can_decode());
  const auto got = sink.decode_all();
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(got[i], msgs[i]);
}

INSTANTIATE_TEST_SUITE_P(Dims, RlncDimsTest, ::testing::Values(1, 2, 3, 8, 20, 64));

TEST(Rlnc, SourceDoubleLoadThrows) {
  rlnc_node n(2, 4);
  n.load_source_message(0, {1, 2, 3, 4});
  EXPECT_THROW(n.load_source_message(0, {1, 2, 3, 4}), rn::contract_error);
}

TEST(BatchLayout, SplitsEvenly) {
  batch_layout bl{10, 4};
  EXPECT_EQ(bl.batch_count(), 3u);
  EXPECT_EQ(bl.size_of(0), 4u);
  EXPECT_EQ(bl.size_of(2), 2u);
  EXPECT_EQ(bl.batch_begin(1), 4u);
  EXPECT_EQ(bl.batch_end(2), 10u);
}

TEST(Messages, DistinctAndSized) {
  const auto m = make_test_messages(8, 32, 1);
  EXPECT_EQ(m.size(), 8u);
  for (const auto& x : m) EXPECT_EQ(x.size(), 32u);
  EXPECT_NE(m[0], m[1]);
  EXPECT_EQ(m[3][0], 3);  // index stamp
}

}  // namespace
}  // namespace rn::coding
