#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace rn {
namespace {

TEST(Math, CeilLog2Values) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_EQ(ceil_log2(1ULL << 62), 62);
}

TEST(Math, CeilLog2RejectsZero) {
  EXPECT_THROW(static_cast<void>(ceil_log2(0)), contract_error);
}

TEST(Math, FloorLog2Values) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(7), 2);
  EXPECT_EQ(floor_log2(8), 3);
}

TEST(Math, LogRangeNeverZero) {
  EXPECT_EQ(log_range(0), 1);
  EXPECT_EQ(log_range(1), 1);
  EXPECT_EQ(log_range(2), 1);
  EXPECT_EQ(log_range(3), 2);
  EXPECT_EQ(log_range(256), 8);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_THROW(static_cast<void>(ceil_div(-1, 3)), contract_error);
}

TEST(Rng, Deterministic) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDiffer) {
  rng a = rng::for_stream(1, 0);
  rng b = rng::for_stream(1, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInBounds) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(17), 17u);
  EXPECT_THROW(r.uniform(0), contract_error);
}

TEST(Rng, Uniform01Range) {
  rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Pow2ProbabilityIsCalibrated) {
  rng r(11);
  const int trials = 200000;
  int hits = 0;
  for (int i = 0; i < trials; ++i)
    if (r.with_probability_pow2(3)) ++hits;
  const double p = static_cast<double>(hits) / trials;
  EXPECT_NEAR(p, 0.125, 0.01);
}

TEST(Rng, Pow2Extremes) {
  rng r(13);
  EXPECT_TRUE(r.with_probability_pow2(0));
  EXPECT_FALSE(r.with_probability_pow2(64));
  EXPECT_THROW(r.with_probability_pow2(-1), contract_error);
}

TEST(Rng, BernoulliExtremes) {
  rng r(15);
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(0.0));
}

TEST(Stats, MeanStdDev) {
  sample_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Percentiles) {
  sample_stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Stats, EmptyThrows) {
  sample_stats s;
  EXPECT_THROW(static_cast<void>(s.mean()), contract_error);
  EXPECT_THROW(static_cast<void>(s.percentile(0.5)), contract_error);
}

TEST(Table, AlignsColumns) {
  text_table t({"a", "long-header"});
  t.add_row({"1234", "x"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsBadRow) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}

TEST(Check, RequireThrowsWithMessage) {
  try {
    RN_REQUIRE(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
}

}  // namespace
}  // namespace rn
