#include <gtest/gtest.h>

#include "core/bfs_protocols.h"
#include "graph/bfs.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

class WaveTest : public ::testing::TestWithParam<int> {};

TEST_P(WaveTest, CollisionWaveMatchesTrueBfs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 9;
  lo.width = 5;
  lo.edge_prob = 0.4;
  lo.intra_prob = 0.3;
  lo.seed = seed;
  const auto g = graph::random_layered(lo);
  const auto truth = graph::bfs(g, 0);
  const auto wave = run_collision_wave_bfs(g, 0, truth.max_level);
  EXPECT_EQ(wave.rounds, truth.max_level);  // exactly D rounds
  for (node_id v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(wave.level[v], truth.level[v]) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveTest, ::testing::Range(1, 11));

TEST(Wave, DeterministicNoRandomness) {
  // The collision wave is deterministic: identical runs, any "seed".
  const auto g = graph::clique_chain(4, 4);
  const auto a = run_collision_wave_bfs(g, 0, 20);
  const auto b = run_collision_wave_bfs(g, 0, 20);
  EXPECT_EQ(a.level, b.level);
}

TEST(Wave, GenerousDhatOnlyCostsRounds) {
  const auto g = graph::path(5);
  const auto wave = run_collision_wave_bfs(g, 0, 17);  // d_hat >> D
  EXPECT_EQ(wave.rounds, 17);
  for (node_id v = 0; v < 5; ++v)
    EXPECT_EQ(wave.level[v], static_cast<level_t>(v));
}

TEST(Wave, CollisionsStillPropagate) {
  // In a complete bipartite-ish blob every reception is a collision, yet the
  // wave must advance one layer per round — the point of collision detection.
  const auto g = graph::complete(8);
  const auto wave = run_collision_wave_bfs(g, 0, 3);
  for (node_id v = 1; v < 8; ++v) EXPECT_EQ(wave.level[v], 1);
}

class DecayBfsTest : public ::testing::TestWithParam<int> {};

TEST_P(DecayBfsTest, DecayEpochsMatchTrueBfs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  graph::layered_options lo;
  lo.depth = 6;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = seed * 7;
  const auto g = graph::random_layered(lo);
  const auto truth = graph::bfs(g, 0);
  const auto lay = run_decay_epoch_bfs(g, 0, truth.max_level, g.node_count(),
                                       params::paper(), seed);
  for (node_id v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(lay.level[v], truth.level[v]) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecayBfsTest, ::testing::Range(1, 11));

TEST(DecayBfs, RoundCountFormula) {
  const auto g = graph::path(4);
  const auto prm = params::paper();
  const auto lay = run_decay_epoch_bfs(g, 0, 3, 4, prm, 1);
  const int L = 1;  // log_range(4) = 2... computed below instead
  (void)L;
  const round_t per_epoch =
      static_cast<round_t>(prm.decay_phases(4)) * (log_range(4) + 1);
  EXPECT_EQ(lay.rounds, 3 * per_epoch);
}

}  // namespace
}  // namespace rn::core
