// lint-fixture-place: src/core/r5_reasonless.cpp
// lint-fixture-expect: R5 R5
//
// R5 suppression-needs-reason: a reasonless suppression still suppresses its
// target rule (so R1 must NOT fire here) but is itself a finding.  Same for
// a clang-tidy NOLINT with no check list.
#include <cstdlib>

namespace rn {

int lazy_suppression() {
  int x = std::rand();  // rn-lint: allow(R1)
  // NOLINTNEXTLINE
  int y = x + 1;
  return y;
}

}  // namespace rn
