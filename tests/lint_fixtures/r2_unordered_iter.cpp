// lint-fixture-place: src/sim/r2_unordered_iter.cpp
// lint-fixture-expect: R2 R2
//
// R2 no-unordered-iteration: iterating an unordered container in a TU that
// feeds results JSON.  Keyed lookup (no iteration) is legal and must NOT be
// reported.
#include <string>
#include <unordered_map>

namespace rn {

double sum_all(const std::unordered_map<std::string, double>& stats_in) {
  std::unordered_map<std::string, double> stats = stats_in;
  double total = 0.0;
  for (const auto& [key, value] : stats) {  // finding: order feeds output
    total += value;
    (void)key;
  }
  for (auto it = stats.begin(); it != stats.end(); ++it) {  // finding
    total += it->second;
  }
  return total + stats.count("ok");  // keyed lookup: not a finding
}

}  // namespace rn
