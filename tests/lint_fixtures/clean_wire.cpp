// lint-fixture-place: src/dist/wire.cpp
// lint-fixture-expect: none
//
// Clean counterexample: src/dist/wire.cpp is the R3 allowlist — the deadline
// engine itself is the one dist TU allowed to touch raw fds.
#include <poll.h>
#include <unistd.h>

#include <cstdint>

namespace rn::dist {

int deadline_read(int fd, std::uint8_t* buf, int len, int budget_ms) {
  pollfd p{fd, POLLIN, 0};
  if (::poll(&p, 1, budget_ms) <= 0) return -1;  // allowlisted file
  return int(::read(fd, buf, unsigned(len)));    // allowlisted file
}

}  // namespace rn::dist
