// lint-fixture-place: src/common/rng.fixture.cpp
// lint-fixture-expect: none
//
// Clean counterexample: the deterministic-RNG implementation files
// (src/common/rng.*) are R1-allowlisted — the one place entropy plumbing is
// allowed to live.
#include <chrono>
#include <random>

namespace rn {

unsigned long hardware_seed_escape_hatch() {
  std::random_device rd;  // allowlisted file: not a finding
  const auto t = std::chrono::steady_clock::now();  // allowlisted file
  return rd() ^ (unsigned long)(t.time_since_epoch().count());
}

}  // namespace rn
