// lint-fixture-place: src/core/r1_entropy.cpp
// lint-fixture-expect: R1 R1 R1
//
// R1 no-wallclock-entropy: wall clocks and OS entropy in a result-path TU.
// Each of the three sites below must be reported; nothing else may fire.
#include <chrono>
#include <cstdlib>
#include <random>

namespace rn {

int nondeterministic_seed() {
  std::random_device rd;  // finding: OS entropy source
  return int(rd());
}

long entropy_mix() {
  long x = std::rand();  // finding: libc PRNG, process-global state
  auto t = std::chrono::steady_clock::now();  // finding: wall-clock read
  return x + t.time_since_epoch().count();
}

}  // namespace rn
