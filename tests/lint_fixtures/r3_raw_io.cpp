// lint-fixture-place: src/dist/r3_raw_io.cpp
// lint-fixture-expect: R3 R3 R3
//
// R3 wire-only-dist-io: raw fd I/O inside src/dist/ outside the wire API.
// Method calls on a channel object are the wire API itself and must NOT be
// reported.
#include <poll.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

namespace rn::dist {

struct fake_channel {
  void send(const std::vector<std::uint8_t>&) {}
  int recv(std::vector<std::uint8_t>&) { return 0; }
};

int drain(int fd, fake_channel& ch) {
  std::uint8_t buf[16];
  pollfd p{fd, POLLIN, 0};
  int rc = ::poll(&p, 1, -1);      // finding: unbounded block, no deadline
  rc += int(read(fd, buf, 16));    // finding: bypasses channel framing
  rc += int(::write(fd, buf, 1));  // finding: bypasses channel framing
  std::vector<std::uint8_t> payload;
  ch.send(payload);       // wire API: not a finding
  return rc + ch.recv(payload);  // wire API: not a finding
}

}  // namespace rn::dist
