// lint-fixture-place: src/core/clean_suppressed.cpp
// lint-fixture-expect: none
//
// Clean counterexample: properly-reasoned suppressions and ordered-container
// iteration produce zero findings in a result-path TU.
#include <chrono>
#include <map>
#include <string>

namespace rn {

double ordered_sum(const std::map<std::string, double>& stats) {
  double total = 0.0;
  for (const auto& [key, value] : stats) {  // ordered: deterministic output
    total += value;
    (void)key;
  }
  return total;
}

double sidecar_wall_ms() {
  // rn-lint: allow(R1) timing sidecar measurement, never results JSON
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t0.time_since_epoch())
      .count();
}

}  // namespace rn
