// lint-fixture-place: src/svc/r4_throw.cpp
// lint-fixture-expect: R4 R4
//
// R4 contract-error-throws: exceptions in src/svc/ (and src/dist/) must
// derive from contract_error.  Throwing contract_error/wire_error and bare
// rethrow are legal and must NOT be reported.
#include <stdexcept>
#include <string>

namespace rn {

struct contract_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};
struct wire_error : contract_error {
  using contract_error::contract_error;
};

void reject(const std::string& what, int kind) {
  if (kind == 0) throw std::runtime_error(what);  // finding
  if (kind == 1) throw std::invalid_argument(what);  // finding
  if (kind == 2) throw contract_error(what);  // legal
  if (kind == 3) throw wire_error(what);  // legal
  try {
    throw contract_error(what);  // legal
  } catch (...) {
    throw;  // bare rethrow: legal
  }
}

}  // namespace rn
