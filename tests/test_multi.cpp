#include <gtest/gtest.h>

#include "baseline/multi_baselines.h"
#include "core/multi_broadcast.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

class KnownMultiTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnownMultiTest, Theorem12DecodesExactPayloads) {
  const auto [k, seed] = GetParam();
  graph::layered_options lo;
  lo.depth = 6;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed) * 3;
  const auto g = graph::random_layered(lo);
  const auto msgs = coding::make_test_messages(static_cast<std::size_t>(k), 16,
                                               static_cast<std::uint64_t>(seed));
  multi_broadcast_options opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.payload_size = 16;
  const auto res = run_known_multi_broadcast(g, 0, msgs, opt);
  EXPECT_TRUE(res.base.completed) << "k=" << k << " seed=" << seed;
  EXPECT_TRUE(res.payloads_verified);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnownMultiTest,
                         ::testing::Combine(::testing::Values(1, 2, 5, 12, 24),
                                            ::testing::Values(1, 2, 3)));

TEST(KnownMulti, ThroughputScalesWithLogNotD) {
  // Doubling k adds ~6L rounds per extra message (one fresh wave per 6L-round
  // schedule period) — independent of D and far below sequential Decay's
  // ~D log n per message. Completion rounds jitter by about one wave period,
  // so slopes are averaged over seeds.
  auto mean_extra = [](std::size_t depth) {
    graph::layered_options lo;
    lo.depth = depth;
    lo.width = 3;
    lo.edge_prob = 0.5;
    lo.seed = 5;
    const auto g = graph::random_layered(lo);
    const auto m8 = coding::make_test_messages(8, 8, 1);
    const auto m16 = coding::make_test_messages(16, 8, 1);
    double total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      multi_broadcast_options opt;
      opt.seed = seed;
      opt.payload_size = 8;
      const auto r8 = run_known_multi_broadcast(g, 0, m8, opt);
      const auto r16 = run_known_multi_broadcast(g, 0, m16, opt);
      EXPECT_TRUE(r8.base.completed && r16.base.completed);
      total += static_cast<double>(r16.base.rounds_to_complete -
                                   r8.base.rounds_to_complete);
    }
    return total / 5.0;
  };
  const double deep = mean_extra(24);
  const double shallow = mean_extra(6);
  EXPECT_LT(deep, 8 * 24 * 3);  // well below 8 extra D-trips
  EXPECT_LT(deep, 3.0 * std::max(shallow, 42.0));  // slope independent of D
}

class UnknownMultiTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(UnknownMultiTest, Theorem13DecodesExactPayloads) {
  const auto [seed, multi_ring] = GetParam();
  graph::layered_options lo;
  lo.depth = multi_ring ? 10 : 5;
  lo.width = 4;
  lo.edge_prob = 0.4;
  lo.seed = static_cast<std::uint64_t>(seed) * 11;
  const auto g = graph::random_layered(lo);
  const std::size_t k = 10;
  const auto msgs =
      coding::make_test_messages(k, 16, static_cast<std::uint64_t>(seed));
  multi_broadcast_options opt;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.payload_size = 16;
  opt.prm = params::fast();
  if (multi_ring) opt.prm.ring_divisor = 3.0;
  const auto res = run_unknown_cd_multi_broadcast(g, 0, msgs, opt);
  EXPECT_TRUE(res.base.completed) << "seed=" << seed;
  EXPECT_TRUE(res.payloads_verified);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnknownMultiTest,
                         ::testing::Combine(::testing::Range(1, 6),
                                            ::testing::Bool()));

TEST(Baselines, SequentialDecayDeliversAll) {
  const auto g = graph::grid(4, 5);
  baseline::multi_options opt;
  opt.k = 5;
  opt.seed = 3;
  const auto res = baseline::run_sequential_decay_multi(g, 0, opt);
  EXPECT_TRUE(res.completed);
}

TEST(Baselines, RoutingDeliversAll) {
  const auto g = graph::grid(4, 5);
  baseline::multi_options opt;
  opt.k = 5;
  opt.seed = 3;
  const auto res = baseline::run_routing_multi(g, 0, opt);
  EXPECT_TRUE(res.completed);
}

TEST(Baselines, SequentialSlowerThanCodingOnDeepGraphs) {
  graph::layered_options lo;
  lo.depth = 16;
  lo.width = 3;
  lo.edge_prob = 0.5;
  lo.seed = 4;
  const auto g = graph::random_layered(lo);
  const std::size_t k = 10;
  baseline::multi_options bopt;
  bopt.k = k;
  bopt.seed = 6;
  const auto seq = baseline::run_sequential_decay_multi(g, 0, bopt);
  multi_broadcast_options copt;
  copt.seed = 6;
  copt.payload_size = 8;
  const auto rlnc = run_known_multi_broadcast(
      g, 0, coding::make_test_messages(k, 8, 2), copt);
  ASSERT_TRUE(seq.completed && rlnc.base.completed);
  EXPECT_GT(seq.rounds_to_complete, rlnc.base.rounds_to_complete);
}

}  // namespace
}  // namespace rn::core
