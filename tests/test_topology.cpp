#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/topology.h"

namespace rn::graph {
namespace {

// --- generator invariants ----------------------------------------------------

TEST(PowerLaw, SizeEdgeCountAndConnectivity) {
  const std::size_t n = 500, m = 2;
  const auto g = power_law(n, m, 42);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_TRUE(g.connected());
  // Node v attaches min(m, v) distinct edges to earlier nodes, all new.
  std::size_t expected = 0;
  for (std::size_t v = 1; v < n; ++v) expected += std::min(m, v);
  EXPECT_EQ(g.edge_count(), expected);
}

TEST(PowerLaw, DegreeDistributionHasHubTail) {
  const auto g = power_law(2000, 2, 7);
  std::vector<std::size_t> degrees;
  for (node_id v = 0; v < g.node_count(); ++v) degrees.push_back(g.degree(v));
  std::sort(degrees.begin(), degrees.end());
  const std::size_t median = degrees[degrees.size() / 2];
  const std::size_t max = degrees.back();
  // Preferential attachment: a hub far above the median (uniform attachment
  // would keep max within a small constant of it).
  EXPECT_LE(median, 4u);
  EXPECT_GE(max, 10 * median);
}

TEST(PowerLaw, SeedDeterminism) {
  const auto a = power_law(300, 3, 5);
  const auto b = power_law(300, 3, 5);
  const auto c = power_law(300, 3, 6);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges());
}

TEST(UnitDisk, GridMatchesBruteForceEdgeSet) {
  // The cell-grid edge discovery must reproduce the O(n^2) definition:
  // edge iff euclidean distance <= radius. Replays the generator's point
  // draws (first 2n uniform01 values of rng(seed); radius is generous so
  // attempt 0 connects) and compares the full pairwise edge set.
  const std::size_t n = 150;
  const double radius = 0.25;
  const std::uint64_t seed = 11;
  const auto g = random_unit_disk(n, radius, seed);
  ASSERT_EQ(g.node_count(), n);
  ASSERT_TRUE(g.connected());

  rng r(seed);
  std::vector<std::pair<double, double>> pts(n);
  for (auto& pt : pts) pt = {r.uniform01(), r.uniform01()};
  std::vector<std::pair<node_id, node_id>> brute;
  for (node_id i = 0; i < n; ++i) {
    for (node_id j = i + 1; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      if (std::sqrt(dx * dx + dy * dy) <= radius) brute.emplace_back(i, j);
    }
  }
  EXPECT_EQ(g.edges(), brute);
}

TEST(UnitDisk, LargeRadiusIsComplete) {
  // radius >= sqrt(2) covers the unit square: every pair is an edge, and the
  // single-cell code path is exercised.
  const std::size_t n = 40;
  const auto g = random_unit_disk(n, 1.5, 3);
  EXPECT_EQ(g.edge_count(), n * (n - 1) / 2);
}

TEST(UnitDisk, TinyRadiusFailsCleanlyWithoutHugeGrid) {
  // cells per axis is clamped to ~sqrt(n): a microscopic radius must walk
  // its 64 disconnected attempts and throw, not allocate a 1/radius^2 grid.
  EXPECT_THROW(static_cast<void>(random_unit_disk(20, 1e-6, 1)),
               contract_error);
}

TEST(UnitDisk, SeedDeterminism) {
  const auto a = random_unit_disk(200, 0.15, 21);
  const auto b = random_unit_disk(200, 0.15, 21);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Gnp, ConnectivityAndDeterminism) {
  const auto a = random_gnp_connected(80, 0.1, 13);
  EXPECT_EQ(a.node_count(), 80u);
  EXPECT_TRUE(a.connected());
  const auto b = random_gnp_connected(80, 0.1, 13);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), random_gnp_connected(80, 0.1, 14).edges());
}

// --- topology specs ----------------------------------------------------------

TEST(TopologySpec, ParsePrintRoundTrip) {
  const auto spec =
      parse_topology_spec("layered:depth=12,width=8,edge_prob=0.4");
  EXPECT_EQ(spec.kind, "layered");
  EXPECT_DOUBLE_EQ(spec.param("depth", 0), 12.0);
  EXPECT_DOUBLE_EQ(spec.param("edge_prob", 0), 0.4);
  EXPECT_DOUBLE_EQ(spec.param("absent", 7.5), 7.5);
  EXPECT_EQ(spec.to_string(), "layered:depth=12,width=8,edge_prob=0.4");
  EXPECT_EQ(parse_topology_spec(spec.to_string()), spec);
  // Bare kind, no params.
  EXPECT_EQ(parse_topology_spec("complete").to_string(), "complete");
}

TEST(TopologySpec, ParseRejectsGarbage) {
  EXPECT_THROW(static_cast<void>(parse_topology_spec("")), contract_error);
  EXPECT_THROW(static_cast<void>(parse_topology_spec("layered:depth")),
               contract_error);
  EXPECT_THROW(static_cast<void>(parse_topology_spec("layered:=3")),
               contract_error);
  EXPECT_THROW(static_cast<void>(parse_topology_spec("layered:depth=abc")),
               contract_error);
}

TEST(TopologyRegistry, BuildIsSeedDeterministic) {
  topology_spec spec = parse_topology_spec("unit_disk:n=60,radius=0.3");
  spec.seed = 17;
  const auto a = build_topology(spec);
  const auto b = build_topology(spec);
  EXPECT_EQ(a.edges(), b.edges());
  spec.seed = 18;
  EXPECT_NE(a.edges(), build_topology(spec).edges());
}

TEST(TopologyRegistry, EveryBuiltinKindBuilds) {
  for (const auto& kind : topology_registry::instance().kinds()) {
    topology_spec spec;
    spec.kind = kind;
    spec.seed = 5;
    const auto g = build_topology(spec);  // defaults must be valid
    EXPECT_GE(g.node_count(), 2u) << kind;
    EXPECT_TRUE(g.connected()) << kind;
  }
}

TEST(TopologyRegistry, SpecParamsReachTheGenerator) {
  const auto g =
      build_topology(parse_topology_spec("grid:rows=3,cols=7"));
  EXPECT_EQ(g.node_count(), 21u);
  const auto pl = build_topology(parse_topology_spec("power_law:n=64"));
  EXPECT_EQ(pl.node_count(), 64u);
  // Layered depth is exact by construction.
  auto spec = parse_topology_spec("layered:depth=9,width=4");
  spec.seed = 2;
  const auto lg = build_topology(spec);
  const auto bfs_result = bfs(lg, 0);
  EXPECT_EQ(*std::max_element(bfs_result.level.begin(),
                              bfs_result.level.end()),
            9);
}

TEST(TopologyRegistry, UnknownKindAndParamFail) {
  EXPECT_THROW(static_cast<void>(build_topology({"no_such_kind", {}, 1})),
               contract_error);
  EXPECT_THROW(static_cast<void>(build_topology(
                   parse_topology_spec("layered:depht=9"))),  // typo
               contract_error);
  EXPECT_THROW(static_cast<void>(build_topology(
                   parse_topology_spec("grid:rows=2.5"))),  // non-integer
               contract_error);
}

}  // namespace
}  // namespace rn::graph
