#include <gtest/gtest.h>

#include "common/math.h"
#include "core/recruiting.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace rn::core {
namespace {

// Builds a bipartite graph: reds 0..r-1, blues r..r+b-1, with edges from a
// closure.
template <typename EdgeFn>
graph::graph bipartite(std::size_t r, std::size_t b, EdgeFn has_edge) {
  graph::graph::builder gb(r + b);
  for (node_id i = 0; i < r; ++i)
    for (node_id j = 0; j < b; ++j)
      if (has_edge(i, j)) gb.add_edge(i, static_cast<node_id>(r + j));
  return std::move(gb).build();
}

std::vector<node_id> range(node_id from, node_id count) {
  std::vector<node_id> v(count);
  for (node_id i = 0; i < count; ++i) v[i] = from + i;
  return v;
}

TEST(Recruiting, RoundsFormula) {
  EXPECT_EQ(recruiting_instance::rounds_required(5, 10), 100);
  EXPECT_EQ(recruiting_instance::rounds_required(1, 1), 6);
}

TEST(Recruiting, SingleRedSingleBlue) {
  const auto g = bipartite(1, 1, [](node_id, node_id) { return true; });
  const auto res = run_recruiting(g, {0}, {1}, 3, 30, 3, 7);
  EXPECT_EQ(res.recruited, 1u);
  EXPECT_TRUE(res.properties_ok);
}

class RecruitingStarTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RecruitingStarTest, RedStarRecruitsAllBlues) {
  // One red adjacent to m blues: all must be recruited (via sigma batches
  // and the [DEV-2] grow handshake after a lone echo).
  const auto [m, seed] = GetParam();
  const auto g = bipartite(1, static_cast<std::size_t>(m),
                           [](node_id, node_id) { return true; });
  // w.h.p.-in-n guarantees need a floor on the ladder size for tiny n.
  const int L = std::max(4, log_range(static_cast<std::size_t>(m) + 1) + 1);
  const auto res = run_recruiting(g, {0}, range(1, static_cast<node_id>(m)), L,
                                  5 * L * L, L, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(res.recruited, static_cast<std::size_t>(m));
  EXPECT_TRUE(res.properties_ok);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecruitingStarTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 7, 16),
                                            ::testing::Range(1, 6)));

class RecruitingRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RecruitingRandomTest, PropertiesHoldOnRandomBipartite) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  rng prob(seed);
  const std::size_t R = 8, B = 14;
  const auto g = bipartite(
      R, B, [&](node_id, node_id) { return prob.bernoulli(0.4); });
  // Keep only blues with at least one red neighbor (others cannot recruit).
  std::vector<node_id> blues;
  for (node_id j = 0; j < B; ++j)
    if (g.degree(static_cast<node_id>(R + j)) > 0)
      blues.push_back(static_cast<node_id>(R + j));
  const int L = log_range(R + B) + 1;
  const auto res =
      run_recruiting(g, range(0, R), blues, L, 6 * L * L, L, seed * 13);
  // Lemma 2.3(a): every blue with a participating neighbor recruited w.h.p.
  EXPECT_EQ(res.recruited, blues.size()) << "seed " << seed;
  // Properties (b)/(c) must hold unconditionally [DEV-2].
  EXPECT_TRUE(res.properties_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecruitingRandomTest, ::testing::Range(1, 21));

TEST(Recruiting, PerfectMatchingAllSolo) {
  // Disjoint red-blue pairs: every red must end class solo with its own blue.
  const std::size_t m = 6;
  const auto g =
      bipartite(m, m, [](node_id i, node_id j) { return i == j; });
  recruiting_instance::config cfg;
  cfg.g = &g;
  cfg.reds = range(0, m);
  cfg.blues = range(m, m);
  cfg.L = 4;
  cfg.iterations = 48;
  cfg.exp_step = 4;
  cfg.seed = 5;
  recruiting_instance inst(std::move(cfg));
  radio::network net(g, {.collision_detection = false});
  radio::round_buffer txs;
  while (!inst.finished()) {
    txs.clear();
    inst.plan(txs);
    net.step(txs, [&](const radio::reception& rx) { inst.on_reception(rx); });
    inst.end_round();
  }
  for (node_id v = 0; v < m; ++v) {
    const auto r = inst.red(v);
    EXPECT_EQ(r.k, recruiting_instance::klass::solo);
    EXPECT_EQ(r.solo_child, m + v);
    const auto b = inst.blue(static_cast<node_id>(m + v));
    EXPECT_TRUE(b.recruited);
    EXPECT_EQ(b.parent, v);
    EXPECT_EQ(b.parent_class, recruiting_instance::klass::solo);
  }
}

TEST(Recruiting, IsolatedBlueStaysUnrecruited) {
  // A blue with no red neighbor must simply remain unrecruited.
  graph::graph::builder gb(3);
  gb.add_edge(0, 1);  // red 0 - blue 1; blue 2 isolated
  const auto g = std::move(gb).build();
  const auto res = run_recruiting(g, {0}, {1, 2}, 3, 30, 3, 3);
  EXPECT_EQ(res.recruited, 1u);
  EXPECT_TRUE(res.properties_ok);
}

TEST(Recruiting, NodeBothColorsRejected) {
  const auto g = graph::path(2);
  recruiting_instance::config cfg;
  cfg.g = &g;
  cfg.reds = {0};
  cfg.blues = {0};
  cfg.L = 2;
  cfg.iterations = 2;
  cfg.exp_step = 1;
  EXPECT_THROW(recruiting_instance inst(std::move(cfg)), contract_error);
}

TEST(Recruiting, UnrecruitedCountTracks) {
  const auto g = bipartite(1, 3, [](node_id, node_id) { return true; });
  recruiting_instance::config cfg;
  cfg.g = &g;
  cfg.reds = {0};
  cfg.blues = range(1, 3);
  cfg.L = 3;
  cfg.iterations = 40;
  cfg.exp_step = 3;
  cfg.seed = 11;
  recruiting_instance inst(std::move(cfg));
  EXPECT_EQ(inst.unrecruited_count(), 3u);
  radio::network net(g, {.collision_detection = false});
  radio::round_buffer txs;
  while (!inst.finished()) {
    txs.clear();
    inst.plan(txs);
    net.step(txs, [&](const radio::reception& rx) { inst.on_reception(rx); });
    inst.end_round();
  }
  EXPECT_EQ(inst.unrecruited_count(), 0u);
}

}  // namespace
}  // namespace rn::core
