#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/api.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

class ProtocolSingleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProtocolSingleTest, AllSingleProtocolsCompleteOnUnitDisk) {
  const auto g = graph::random_unit_disk(40, 0.32, 9);
  options opt;
  opt.seed = 21;
  opt.prm = params::fast();
  const auto res = run_broadcast(g, GetParam(), {0, 1}, opt);
  EXPECT_TRUE(res.base.completed) << GetParam();
  EXPECT_TRUE(res.payloads_verified);
}

INSTANTIATE_TEST_SUITE_P(All, ProtocolSingleTest,
                         ::testing::Values("decay", "tuned-decay", "gst-known",
                                           "gst-unknown-cd"),
                         [](const auto& info) {
                           std::string s = info.param;
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

class ProtocolMultiTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProtocolMultiTest, AllMultiProtocolsCompleteOnGrid) {
  const auto g = graph::grid(4, 6);
  options opt;
  opt.seed = 22;
  opt.prm = params::fast();
  const auto res = run_broadcast(g, GetParam(), {0, 6}, opt);
  EXPECT_TRUE(res.base.completed) << GetParam();
  EXPECT_TRUE(res.payloads_verified) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All, ProtocolMultiTest,
                         ::testing::Values("seq-decay", "routing",
                                           "rlnc-known", "rlnc-unknown-cd"),
                         [](const auto& info) {
                           std::string s = info.param;
                           std::replace(s.begin(), s.end(), '-', '_');
                           return s;
                         });

TEST(ProtocolRegistry, ListsAllBuiltinsInRegistrationOrder) {
  const auto ids = protocol_registry::instance().ids();
  const std::vector<std::string> expected{
      "decay",   "tuned-decay", "gst-known",  "gst-unknown-cd",
      "seq-decay", "routing",   "rlnc-known", "rlnc-unknown-cd"};
  EXPECT_EQ(ids, expected);
  for (const auto& id : ids) {
    const auto* e = protocol_registry::instance().find(id);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->summary.empty()) << id;
  }
}

TEST(ProtocolRegistry, UnknownIdFailsWithKnownIdsInMessage) {
  const auto g = graph::grid(2, 2);
  try {
    static_cast<void>(run_broadcast(g, "no-such-protocol", {0, 1}, {}));
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-protocol"), std::string::npos);
    EXPECT_NE(what.find("rlnc-known"), std::string::npos);
  }
}

TEST(ProtocolRegistry, SingleMessageProtocolRejectsMultiWorkload) {
  const auto g = graph::grid(2, 2);
  EXPECT_THROW(static_cast<void>(run_broadcast(g, "decay", {0, 3}, {})),
               contract_error);
  EXPECT_THROW(static_cast<void>(run_broadcast(g, "decay", {0, 0}, {})),
               contract_error);
}

TEST(Api, DeterministicUnderSeed) {
  const auto g = graph::clique_chain(4, 4);
  options opt;
  opt.seed = 33;
  const auto a = run_broadcast(g, "decay", {0, 1}, opt);
  const auto b = run_broadcast(g, "decay", {0, 1}, opt);
  EXPECT_EQ(a.base.rounds_to_complete, b.base.rounds_to_complete);
  EXPECT_EQ(a.base.transmissions, b.base.transmissions);
}

TEST(Api, SeedsActuallyVaryOutcomes) {
  const auto g = graph::random_gnp_connected(40, 0.15, 2);
  options a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_broadcast(g, "decay", {0, 1}, a);
  const auto rb = run_broadcast(g, "decay", {0, 1}, b);
  // Not a hard guarantee per-pair, but these seeds are checked-in constants.
  EXPECT_NE(ra.base.transmissions, rb.base.transmissions);
}

TEST(Api, SourceMayBeAnyNode) {
  const auto g = graph::grid(4, 4);
  options opt;
  opt.seed = 44;
  const auto res = run_broadcast(g, "gst-known", {10, 1}, opt);
  EXPECT_TRUE(res.base.completed);
}

// The fast-forward flag must never change protocol results; the Decay
// baselines ride the batched coin calendar in both modes (see
// baseline/decay.h), the GST pipelines skip proven-idle schedule rounds.
TEST(Api, FastForwardFlagIsResultInvariant) {
  const auto g = graph::random_unit_disk(30, 0.35, 4);
  for (const char* id : {"decay", "tuned-decay", "gst-known"}) {
    options opt;
    opt.seed = 55;
    opt.prm = params::fast();
    opt.fast_forward = false;
    const auto naive = run_broadcast(g, id, {0, 1}, opt);
    opt.fast_forward = true;
    const auto ff = run_broadcast(g, id, {0, 1}, opt);
    EXPECT_EQ(naive.base.rounds_to_complete, ff.base.rounds_to_complete) << id;
    EXPECT_EQ(naive.base.rounds_executed, ff.base.rounds_executed) << id;
    EXPECT_EQ(naive.base.transmissions, ff.base.transmissions) << id;
    EXPECT_EQ(naive.base.energy, ff.base.energy) << id;
  }
}

}  // namespace
}  // namespace rn::core
