#include <gtest/gtest.h>

#include "core/api.h"
#include "graph/generators.h"

namespace rn::core {
namespace {

class ApiSingleTest : public ::testing::TestWithParam<single_algorithm> {};

TEST_P(ApiSingleTest, AllSingleAlgorithmsCompleteOnUnitDisk) {
  const auto g = graph::random_unit_disk(40, 0.32, 9);
  run_options opt;
  opt.seed = 21;
  opt.prm = params::fast();
  const auto res = run_single(g, 0, GetParam(), opt);
  EXPECT_TRUE(res.completed) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, ApiSingleTest,
    ::testing::Values(single_algorithm::decay, single_algorithm::tuned_decay,
                      single_algorithm::gst_known,
                      single_algorithm::gst_unknown_cd),
    [](const auto& info) {
      auto s = to_string(info.param);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

class ApiMultiTest : public ::testing::TestWithParam<multi_algorithm> {};

TEST_P(ApiMultiTest, AllMultiAlgorithmsCompleteOnGrid) {
  const auto g = graph::grid(4, 6);
  run_options opt;
  opt.seed = 22;
  opt.prm = params::fast();
  const auto res = run_multi(g, 0, 6, GetParam(), opt);
  EXPECT_TRUE(res.completed) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, ApiMultiTest,
    ::testing::Values(multi_algorithm::sequential_decay,
                      multi_algorithm::routing, multi_algorithm::rlnc_known,
                      multi_algorithm::rlnc_unknown_cd),
    [](const auto& info) {
      auto s = to_string(info.param);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(Api, DeterministicUnderSeed) {
  const auto g = graph::clique_chain(4, 4);
  run_options opt;
  opt.seed = 33;
  const auto a = run_single(g, 0, single_algorithm::decay, opt);
  const auto b = run_single(g, 0, single_algorithm::decay, opt);
  EXPECT_EQ(a.rounds_to_complete, b.rounds_to_complete);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(Api, SeedsActuallyVaryOutcomes) {
  const auto g = graph::random_gnp_connected(40, 0.15, 2);
  run_options a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_single(g, 0, single_algorithm::decay, a);
  const auto rb = run_single(g, 0, single_algorithm::decay, b);
  // Not a hard guarantee per-pair, but these seeds are checked-in constants.
  EXPECT_NE(ra.transmissions, rb.transmissions);
}

TEST(Api, ToStringRoundTrip) {
  EXPECT_EQ(to_string(single_algorithm::gst_unknown_cd), "gst-unknown-cd");
  EXPECT_EQ(to_string(multi_algorithm::rlnc_known), "rlnc-known");
}

TEST(Api, SourceMayBeAnyNode) {
  const auto g = graph::grid(4, 4);
  run_options opt;
  opt.seed = 44;
  const auto res = run_single(g, 10, single_algorithm::gst_known, opt);
  EXPECT_TRUE(res.completed);
}

}  // namespace
}  // namespace rn::core
