// core::options canonical text form (opt-v1): print/parse round-trip,
// default elision, and structured rejection of malformed strings.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/api.h"
#include "core/options.h"

namespace rn::core {
namespace {

TEST(Options, DefaultPrintsAsBareVersionTag) {
  EXPECT_EQ(options{}.to_string(), "opt-v1");
  EXPECT_EQ(parse_options("opt-v1"), options{});
}

TEST(Options, NonDefaultFieldsRoundTrip) {
  options o;
  o.n_hat = 4096;
  o.d_hat = 12;
  o.payload_size = 64;
  o.message_seed = 0xdeadbeefcafef00dULL;
  o.prm = params::fast();
  o.prm.schedule_slack = 3.5;

  const options back = parse_options(o.to_string());
  EXPECT_EQ(back, o);
  // Canonical form is a fixed point: printing the parse re-produces it.
  EXPECT_EQ(back.to_string(), o.to_string());
}

TEST(Options, OmittedKeysKeepDefaults) {
  const options o = parse_options("opt-v1:n_hat=100");
  EXPECT_EQ(o.n_hat, 100u);
  EXPECT_EQ(o.payload_size, options{}.payload_size);
  EXPECT_EQ(o.prm, params::paper());
}

TEST(Options, ExecutionFieldsAreExcludedFromTheString) {
  options o;
  o.seed = 42;
  o.fast_forward = true;
  // seed/fast_forward ride outside the canonical string (see options.h);
  // equality still sees them, the text form never does.
  EXPECT_EQ(o.to_string(), "opt-v1");
  const options back = parse_options(o.to_string());
  EXPECT_EQ(back.seed, options{}.seed);
  EXPECT_FALSE(back.fast_forward);
}

TEST(Options, RejectsMalformedStrings) {
  EXPECT_THROW(static_cast<void>(parse_options("")), contract_error);
  EXPECT_THROW(static_cast<void>(parse_options("opt-v0:n_hat=1")),
               contract_error);
  EXPECT_THROW(static_cast<void>(parse_options("opt-v1:bogus_key=1")),
               contract_error);
  EXPECT_THROW(static_cast<void>(parse_options("opt-v1:n_hat")),
               contract_error);
  EXPECT_THROW(static_cast<void>(parse_options("opt-v1:n_hat=abc")),
               contract_error);
  EXPECT_THROW(static_cast<void>(parse_options("opt-v1:=3")), contract_error);
}

TEST(Options, RunOptionsAliasStillCompiles) {
  // The deprecated alias from the pre-consolidation API keeps old call sites
  // building; it is the same type.
  static_assert(std::is_same_v<options, run_options>);
}

}  // namespace
}  // namespace rn::core
