// Broadcast service: request validation error paths, result-cache behavior,
// serve-vs-batch byte identity (including concurrent in-flight requests),
// and the Prometheus metrics exposition.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "sim/adhoc.h"
#include "sim/experiment.h"
#include "sim/json.h"
#include "svc/cache.h"
#include "svc/metrics.h"
#include "svc/service.h"

namespace rn::svc {
namespace {

using sim::json_value;
using sim::parse_json;

/// Parses a response line and returns the named string field ("" if absent).
std::string field(const json_value& doc, const char* key) {
  const json_value* v = doc.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

json_value respond(service& svc, const std::string& line) {
  return parse_json(svc.handle(line));
}

// --- request validation: every bad input is a structured error line -------

class ServiceErrors : public ::testing::Test {
 protected:
  service svc_{service_config{.workers = 1, .cache_entries = 4}};

  void expect_error(const std::string& line, const std::string& code) {
    const json_value doc = respond(svc_, line);
    EXPECT_EQ(field(doc, "status"), "error") << line;
    EXPECT_EQ(field(doc, "code"), code) << line;
    EXPECT_FALSE(field(doc, "error").empty()) << line;
  }
};

TEST_F(ServiceErrors, MalformedJsonLine) {
  expect_error("{\"id\": 1, ", kBadJson);
  expect_error("not json at all", kBadJson);
}

TEST_F(ServiceErrors, NonObjectOrBadShape) {
  expect_error("[1, 2, 3]", kBadRequest);          // not an object
  expect_error("{\"method\": \"frobnicate\"}", kBadRequest);  // unknown method
  expect_error("{\"id\": \"one\"}", kBadRequest);  // mistyped field
  expect_error("{}", kBadRequest);                 // no workload at all
  expect_error(
      "{\"experiment\": \"e1\", \"topology\": \"path:n=8\", "
      "\"protocols\": \"decay\"}",
      kBadRequest);  // both workload forms at once
}

TEST_F(ServiceErrors, RegistryValidationBecomesStructuredErrors) {
  // Unknown topology kind.
  expect_error(
      "{\"topology\": \"moebius:n=8\", \"protocols\": \"decay\"}",
      kBadRequest);
  // Malformed topology parameter string.
  expect_error("{\"topology\": \"path:n\", \"protocols\": \"decay\"}",
               kBadRequest);
  // Unknown parameter name for a known kind.
  expect_error("{\"topology\": \"path:hops=8\", \"protocols\": \"decay\"}",
               kBadRequest);
  // Unknown protocol id.
  expect_error("{\"topology\": \"path:n=8\", \"protocols\": \"warp\"}",
               kBadRequest);
  // Protocol/option mismatch: decay is single-message, messages > 1.
  expect_error(
      "{\"topology\": \"path:n=8\", \"protocols\": \"decay\", "
      "\"messages\": 4}",
      kBadRequest);
  // Malformed options string.
  expect_error(
      "{\"topology\": \"path:n=8\", \"protocols\": \"decay\", "
      "\"options\": \"opt-v1:bogus=1\"}",
      kBadRequest);
  // Unknown registered experiment (tests link no experiment definitions).
  expect_error("{\"experiment\": \"e1\"}", kBadRequest);
}

TEST_F(ServiceErrors, TrialBudgetIsEnforced) {
  service svc(service_config{.workers = 1, .max_trials = 4});
  const json_value doc = parse_json(svc.handle(
      "{\"topology\": \"path:n=8\", \"protocols\": \"decay\", "
      "\"trials\": 5}"));
  EXPECT_EQ(field(doc, "status"), "error");
  EXPECT_EQ(field(doc, "code"), kOverBudget);
}

// --- runs, cache, and byte identity with the batch path -------------------

/// The exact bytes `bench_suite --json` writes for this ad-hoc workload
/// (same builder, same renderer — see sim/cli.cpp).
std::string batch_payload(const std::string& topology,
                          const std::string& protocols, std::size_t trials,
                          std::uint64_t seed) {
  sim::adhoc_spec spec;
  spec.topology = topology;
  spec.protocols = protocols;
  const sim::experiment e = sim::make_adhoc_experiment(spec);
  sim::run_config cfg;
  cfg.trials = trials;
  cfg.seed = seed;
  const sim::experiment_result r = sim::run_experiment(e, cfg);
  json_value all = json_value::array();
  all.push_back(sim::to_json(e, r));
  return all.dump(2) + "\n";
}

TEST(ServiceRuns, CacheHitReturnsByteIdenticalPayload) {
  service svc(service_config{.workers = 1, .cache_entries = 4});
  const std::string line =
      "{\"id\": 7, \"topology\": \"path:n=16\", \"protocols\": \"decay\", "
      "\"trials\": 3, \"seed\": 5}";
  const json_value first = respond(svc, line);
  ASSERT_EQ(field(first, "status"), "ok");
  EXPECT_EQ(field(first, "cache"), "miss");
  const json_value second = respond(svc, line);
  EXPECT_EQ(field(second, "cache"), "hit");
  EXPECT_EQ(field(second, "key"), field(first, "key"));
  EXPECT_EQ(field(second, "payload"), field(first, "payload"));
  EXPECT_EQ(field(first, "payload"), batch_payload("path:n=16", "decay", 3, 5));
}

TEST(ServiceRuns, EquivalentSpecSpellingsShareOneCacheEntry) {
  service svc(service_config{.workers = 1, .cache_entries = 4});
  // Different spelling, same canonical workload: topology params in a
  // different order, options keys scrambled but spelling the same values as
  // the empty-options default (the historical fast profile — note an
  // *explicit* "opt-v1" means core defaults, i.e. the paper profile, and
  // would be a different workload).
  const json_value a = respond(
      svc,
      "{\"topology\": \"grid:rows=4,cols=5\", \"protocols\": \"decay\", "
      "\"trials\": 2}");
  const json_value b = respond(
      svc,
      "{\"topology\": \"grid:cols=5,rows=4\", \"protocols\": \"decay\", "
      "\"trials\": 2, \"options\": "
      "\"opt-v1:schedule_slack=2,fec_overhead=2,epoch_mult=2,"
      "decay_phase_mult=1,recruit_iter_mult=1,recruit_exp_step_mult=1\"}");
  ASSERT_EQ(field(a, "status"), "ok");
  ASSERT_EQ(field(b, "status"), "ok");
  EXPECT_EQ(field(a, "cache"), "miss");
  EXPECT_EQ(field(b, "cache"), "hit");
  EXPECT_EQ(field(a, "key"), field(b, "key"));
}

TEST(ServiceRuns, ConcurrentInFlightRequestsStayByteIdentical) {
  // Two workers, four requests submitted without waiting: two distinct
  // workloads, each twice. However the pool interleaves them, every payload
  // must equal the single-threaded batch rendering of its workload.
  service svc(service_config{.workers = 2, .cache_entries = 8});
  const std::string w1 =
      "{\"topology\": \"path:n=24\", \"protocols\": \"decay\", "
      "\"trials\": 3, \"seed\": 2}";
  const std::string w2 =
      "{\"topology\": \"star:n=24\", \"protocols\": \"decay\", "
      "\"trials\": 3, \"seed\": 2}";

  std::vector<std::string> lines = {w1, w2, w1, w2};
  std::vector<std::future<std::string>> replies;
  std::vector<std::shared_ptr<std::promise<std::string>>> slots;
  for (const auto& line : lines) {
    auto p = std::make_shared<std::promise<std::string>>();
    replies.push_back(p->get_future());
    slots.push_back(p);
    svc.submit(line, [p](const std::string& s) { p->set_value(s); });
  }
  svc.drain();

  const std::string expect1 = batch_payload("path:n=24", "decay", 3, 2);
  const std::string expect2 = batch_payload("star:n=24", "decay", 3, 2);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const json_value doc = parse_json(replies[i].get());
    ASSERT_EQ(field(doc, "status"), "ok") << i;
    EXPECT_EQ(field(doc, "payload"), i % 2 == 0 ? expect1 : expect2) << i;
  }
}

// --- LRU cache ------------------------------------------------------------

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  result_cache cache(2);
  cache.put("a", "A");
  cache.put("b", "B");
  EXPECT_TRUE(cache.get("a").has_value());  // refresh a; b is now LRU
  cache.put("c", "C");                      // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.get("a").value_or(""), "A");
  EXPECT_EQ(cache.get("c").value_or(""), "C");
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
}

// --- snapshot persistence -------------------------------------------------

TEST(ResultCache, SnapshotRoundTripPreservesEntriesAndRecency) {
  const std::string path = ::testing::TempDir() + "rn_cache_roundtrip.snap";
  result_cache a(3);
  a.put("a", "A");
  a.put("b", "B");
  a.put("c", "C");
  EXPECT_TRUE(a.get("a").has_value());  // recency now a > c > b
  ASSERT_TRUE(a.save(path));

  result_cache b(3);
  ASSERT_TRUE(b.load(path));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.get("a").value_or(""), "A");
  EXPECT_EQ(b.get("b").value_or(""), "B");
  EXPECT_EQ(b.get("c").value_or(""), "C");

  // Recency survived the round trip: "b" was coldest at save time, so with
  // no post-load touches it is the entry a fresh insert evicts.
  result_cache c(3);
  ASSERT_TRUE(c.load(path));
  c.put("d", "D");
  EXPECT_FALSE(c.get("b").has_value());
  EXPECT_TRUE(c.get("a").has_value());
  EXPECT_TRUE(c.get("c").has_value());
  std::remove(path.c_str());
}

TEST(ResultCache, SnapshotIntoSmallerCacheKeepsHottest) {
  const std::string path = ::testing::TempDir() + "rn_cache_shrink.snap";
  result_cache big(4);
  big.put("w", "1");
  big.put("x", "2");
  big.put("y", "3");
  big.put("z", "4");  // recency z > y > x > w
  ASSERT_TRUE(big.save(path));

  result_cache small(2);
  ASSERT_TRUE(small.load(path));
  EXPECT_EQ(small.size(), 2u);
  EXPECT_TRUE(small.get("z").has_value());
  EXPECT_TRUE(small.get("y").has_value());
  EXPECT_FALSE(small.get("x").has_value());
  EXPECT_FALSE(small.get("w").has_value());
  std::remove(path.c_str());
}

TEST(ResultCache, CorruptOrMissingSnapshotColdStarts) {
  const std::string path = ::testing::TempDir() + "rn_cache_corrupt.snap";
  std::remove(path.c_str());

  result_cache missing(2);
  EXPECT_FALSE(missing.load(path));  // no file at all
  EXPECT_EQ(missing.size(), 0u);

  {  // wrong version header
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "rn-cache-snapshot-v9\n";
  }
  result_cache wrong_version(2);
  EXPECT_FALSE(wrong_version.load(path));
  EXPECT_EQ(wrong_version.size(), 0u);

  {  // valid header, then a record whose lengths point past EOF
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "rn-cache-snapshot-v1\n";
    const char rec[] = {8, 0, 0, 0, 127, 0, 0, 0, 'k'};
    out.write(rec, sizeof(rec));
  }
  result_cache truncated(2);
  truncated.put("warm", "W");  // load replaces, never merges
  EXPECT_FALSE(truncated.load(path));
  EXPECT_EQ(truncated.size(), 0u);
  std::remove(path.c_str());
}

TEST(ServiceRuns, CacheFileCarriesHitsAcrossRestart) {
  const std::string path = ::testing::TempDir() + "rn_svc_restart.snap";
  std::remove(path.c_str());
  const std::string line =
      "{\"topology\": \"path:n=16\", \"protocols\": \"decay\", "
      "\"trials\": 2, \"seed\": 9}";
  std::string first_payload;
  {
    service svc(service_config{.workers = 1, .cache_entries = 4,
                               .cache_file = path});
    const json_value doc = respond(svc, line);
    ASSERT_EQ(field(doc, "status"), "ok");
    EXPECT_EQ(field(doc, "cache"), "miss");
    first_payload = field(doc, "payload");
  }  // dtor snapshots to `path`
  {
    service svc(service_config{.workers = 1, .cache_entries = 4,
                               .cache_file = path});
    const json_value doc = respond(svc, line);
    ASSERT_EQ(field(doc, "status"), "ok");
    EXPECT_EQ(field(doc, "cache"), "hit") << "warm start lost the snapshot";
    EXPECT_EQ(field(doc, "payload"), first_payload);
  }
  std::remove(path.c_str());
}

// --- metrics --------------------------------------------------------------

/// Checks Prometheus text exposition: HELP/TYPE headers followed by a
/// sample, one metric per triple.
void expect_prometheus_text(const std::string& text) {
  std::size_t pos = 0;
  int samples = 0;
  while (pos < text.size()) {
    const auto help_end = text.find('\n', pos);
    ASSERT_NE(help_end, std::string::npos);
    ASSERT_EQ(text.compare(pos, 7, "# HELP "), 0) << text.substr(pos, 40);
    const auto type_end = text.find('\n', help_end + 1);
    ASSERT_NE(type_end, std::string::npos);
    ASSERT_EQ(text.compare(help_end + 1, 7, "# TYPE "), 0);
    const std::string type_line =
        text.substr(help_end + 1, type_end - help_end - 1);
    ASSERT_TRUE(type_line.ends_with(" counter") ||
                type_line.ends_with(" gauge"))
        << type_line;
    const auto sample_end = text.find('\n', type_end + 1);
    ASSERT_NE(sample_end, std::string::npos);
    const std::string sample =
        text.substr(type_end + 1, sample_end - type_end - 1);
    const auto space = sample.find(' ');
    ASSERT_NE(space, std::string::npos) << sample;
    // Value parses as a number.
    ASSERT_NO_THROW(static_cast<void>(std::stod(sample.substr(space + 1))))
        << sample;
    pos = sample_end + 1;
    ++samples;
  }
  EXPECT_GE(samples, 10);
}

TEST(ServiceMetrics, ExpositionParsesAndCountsCacheTraffic) {
  service svc(service_config{.workers = 1, .cache_entries = 4});
  const std::string line =
      "{\"topology\": \"path:n=12\", \"protocols\": \"decay\", "
      "\"trials\": 2}";
  ASSERT_EQ(field(respond(svc, line), "cache"), "miss");
  ASSERT_EQ(field(respond(svc, line), "cache"), "hit");
  static_cast<void>(svc.handle("{\"method\": \"metrics\"}"));  // also counted

  const std::string text = svc.metrics_text();
  expect_prometheus_text(text);
  EXPECT_NE(text.find("rn_cache_hits_total 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("rn_cache_misses_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("rn_runs_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("rn_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("rn_requests_error_total 0\n"), std::string::npos);
}

TEST(ServiceMetrics, MetricsMethodReturnsTheExposition) {
  service svc(service_config{.workers = 1});
  const json_value doc = respond(svc, "{\"id\": 3, \"method\": \"metrics\"}");
  EXPECT_EQ(field(doc, "status"), "ok");
  expect_prometheus_text(field(doc, "metrics"));
}

TEST(ServiceMethods, ListAndShutdown) {
  service svc(service_config{.workers = 1});
  const json_value listed = respond(svc, "{\"method\": \"list\"}");
  EXPECT_EQ(field(listed, "status"), "ok");
  EXPECT_NE(listed.find("experiments"), nullptr);

  EXPECT_FALSE(svc.shutdown_requested());
  const json_value down = respond(svc, "{\"id\": 9, \"method\": \"shutdown\"}");
  EXPECT_EQ(field(down, "status"), "ok");
  EXPECT_TRUE(svc.shutdown_requested());
}

}  // namespace
}  // namespace rn::svc
