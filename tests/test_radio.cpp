#include <gtest/gtest.h>

#include <initializer_list>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "radio/network.h"
#include "radio/result.h"

namespace rn::radio {
namespace {

using graph::path;
using graph::star;

packet beacon(node_id v) { return packet::make_beacon(v); }

struct observed {
  std::map<node_id, observation> what;
  std::map<node_id, node_id> from;
};

observed run_round(network& net,
                   std::initializer_list<std::pair<node_id, packet>> txs) {
  round_buffer buf;
  for (const auto& [from, pkt] : txs) buf.add_owned(from, pkt);
  observed o;
  net.step(buf, [&](const reception& rx) {
    o.what[rx.listener] = rx.what;
    if (rx.what == observation::message) o.from[rx.listener] = rx.from;
  });
  return o;
}

TEST(Network, SingleTransmitterDelivers) {
  const auto g = path(3);  // 0-1-2
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{1, beacon(1)}});
  EXPECT_EQ(o.what.at(0), observation::message);
  EXPECT_EQ(o.what.at(2), observation::message);
  EXPECT_EQ(o.from.at(0), 1u);
}

TEST(Network, TwoTransmittersCollideWithCd) {
  const auto g = star(4);  // hub 0, leaves 1..3
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{1, beacon(1)}, {2, beacon(2)}});
  EXPECT_EQ(o.what.at(0), observation::collision);
  EXPECT_EQ(o.what.count(3), 0u);  // leaf 3 has no transmitting neighbor
}

TEST(Network, TwoTransmittersSilentWithoutCd) {
  const auto g = star(4);
  network net(g, {.collision_detection = false});
  const auto o = run_round(net, {{1, beacon(1)}, {2, beacon(2)}});
  EXPECT_EQ(o.what.count(0), 0u);  // indistinguishable from silence
}

TEST(Network, TransmitterDoesNotHear) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{0, beacon(0)}, {1, beacon(1)}});
  // Both transmit; neither receives anything (half duplex).
  EXPECT_TRUE(o.what.empty());
}

TEST(Network, NonNeighborUnaffected) {
  const auto g = path(4);  // 0-1-2-3
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{0, beacon(0)}});
  EXPECT_EQ(o.what.count(2), 0u);
  EXPECT_EQ(o.what.count(3), 0u);
}

TEST(Network, CollisionThenCleanRound) {
  const auto g = star(4);
  network net(g, {.collision_detection = true});
  run_round(net, {{1, beacon(1)}, {2, beacon(2)}});
  const auto o = run_round(net, {{3, beacon(3)}});
  EXPECT_EQ(o.what.at(0), observation::message);
  EXPECT_EQ(o.from.at(0), 3u);
}

TEST(Network, DoubleTransmitIsContractError) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  round_buffer txs;
  const packet b = beacon(0);
  txs.add(0, b);
  txs.add(0, b);
  EXPECT_THROW(net.step(txs, [](const reception&) {}), contract_error);
}

TEST(Network, StatsCount) {
  const auto g = star(5);
  network net(g, {.collision_detection = true});
  run_round(net, {{1, beacon(1)}, {2, beacon(2)}});  // collision at hub
  run_round(net, {{1, beacon(1)}});                  // delivery to hub
  run_round(net, {});                                // silence
  EXPECT_EQ(net.stats().rounds, 3);
  EXPECT_EQ(net.stats().transmissions, 3);
  EXPECT_EQ(net.stats().deliveries, 1);
  EXPECT_EQ(net.stats().collisions_observed, 1);
}

TEST(Network, PacketContentRoundTrips) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  auto body = std::make_shared<packet_body>();
  body->data = {1, 2, 3};
  const packet p = packet::make_data(7, body);
  round_buffer txs;
  txs.add(0, p);
  packet received;
  net.step(txs, [&](const reception& rx) {
    ASSERT_EQ(rx.what, observation::message);
    received = *rx.pkt;
  });
  EXPECT_EQ(received.kind, packet_kind::data);
  EXPECT_EQ(received.a, 7u);
  EXPECT_EQ(received.body->data, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Network, PacketFactories) {
  EXPECT_EQ(packet::make_pair(3, 4).kind, packet_kind::pair);
  EXPECT_EQ(packet::make_pair(3, 4).a, 3u);
  EXPECT_EQ(packet::make_pair(3, 4).b, 4u);
  EXPECT_EQ(packet::make_sigma(2).a, 2u);
  EXPECT_EQ(packet::make_rank(5, 3).x, 3u);
  EXPECT_EQ(packet::make_noise().kind, packet_kind::noise);
  EXPECT_EQ(packet::make_ack(1, 2).b, 2u);
}

TEST(Network, EnergyAccounting) {
  const auto g = path(3);
  network net(g, {.collision_detection = true});
  run_round(net, {{0, beacon(0)}, {1, beacon(1)}});
  run_round(net, {{1, beacon(1)}});
  EXPECT_EQ(net.energy()[0], 1);
  EXPECT_EQ(net.energy()[1], 2);
  EXPECT_EQ(net.energy()[2], 0);
  EXPECT_EQ(net.max_energy(), 2);
}

TEST(Network, FlushTotalsOnDemandNeverDoubleCounts) {
  const auto g = path(3);
  const engine_totals before = network::process_totals();
  {
    network net(g, {.collision_detection = true});
    run_round(net, {{1, beacon(1)}});
    run_round(net, {});
    net.advance(10);
    // A live network publishes on demand...
    net.flush_totals();
    engine_totals t = network::process_totals();
    EXPECT_EQ(t.stepped_rounds - before.stepped_rounds, 2);
    EXPECT_EQ(t.skipped_rounds - before.skipped_rounds, 10);
    // ...idempotently (only deltas since the last flush are added)...
    net.flush_totals();
    t = network::process_totals();
    EXPECT_EQ(t.stepped_rounds - before.stepped_rounds, 2);
    EXPECT_EQ(t.skipped_rounds - before.skipped_rounds, 10);
    run_round(net, {{1, beacon(1)}});
  }
  // ...and the destructor flushes exactly the remainder.
  const engine_totals t = network::process_totals();
  EXPECT_EQ(t.stepped_rounds - before.stepped_rounds, 3);
  EXPECT_EQ(t.skipped_rounds - before.skipped_rounds, 10);
}

TEST(RoundBuffer, FlyweightAndOwnedPacketsDeliver) {
  const auto g = path(3);  // 0-1-2
  network net(g, {.collision_detection = true});
  const packet flyweight = packet::make_beacon(0);
  round_buffer txs;
  std::map<node_id, node_id> from;
  const auto record = [&](const reception& rx) {
    ASSERT_EQ(rx.what, observation::message);
    from[rx.listener] = rx.pkt->a;
  };
  txs.add(0, flyweight);  // referenced, caller-owned
  net.step(txs, record);
  EXPECT_EQ(from.at(1), 0u);
  txs.clear();
  txs.add_owned(2, packet::make_beacon(2));  // copied into the arena
  net.step(txs, record);
  EXPECT_EQ(from.at(1), 2u);
  EXPECT_EQ(net.stats().transmissions, 2);
  EXPECT_EQ(net.stats().deliveries, 2);
}

TEST(RoundBuffer, ArenaSlotsAreStableAndRecycled) {
  const auto g = star(6);
  network net(g, {.collision_detection = true});
  round_buffer txs;
  for (int round = 0; round < 3; ++round) {
    txs.clear();
    // Enough owned packets to force arena growth; addresses handed to the
    // buffer must stay valid while it grows (deque arena).
    txs.add_owned(1, packet::make_beacon(1));
    for (node_id v = 2; v < 6; ++v)
      txs.add_owned(v, packet::make_pair(v, v));
    std::size_t heard = 0;
    net.step(txs, [&](const reception& rx) {
      ++heard;
      EXPECT_EQ(rx.listener, 0u);
      EXPECT_EQ(rx.what, observation::collision);
    });
    EXPECT_EQ(heard, 1u);  // hub: 5 transmitters collide
  }
  EXPECT_EQ(net.stats().transmissions, 15);
}

TEST(RoundBuffer, DoubleTransmitIsContractError) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  const packet b = beacon(0);
  round_buffer txs;
  txs.add(0, b);
  txs.add(0, b);
  EXPECT_THROW(net.step(txs, [](const reception&) {}), contract_error);
}

// --- intra-trial sharded walk --------------------------------------------
//
// Contract under test: the sharded walk (listener blocks owned by exactly
// one walker each, dispatch in fixed block order) observes, delivers, and
// counts exactly what the serial walk does — reception for reception, in
// the same order — at every team size.

/// Steps both networks through the same transmit list and asserts that the
/// full reception sequence (listener, observation, sender) matches.
void expect_same_round(network& serial, network& sharded,
                       const round_buffer& txs) {
  std::vector<std::tuple<node_id, observation, node_id>> a, b;
  serial.step(txs, [&](const reception& rx) {
    a.emplace_back(rx.listener, rx.what, rx.from);
  });
  sharded.step(txs, [&](const reception& rx) {
    b.emplace_back(rx.listener, rx.what, rx.from);
  });
  ASSERT_EQ(a, b);
}

TEST(ShardedStep, MatchesSerialWalkOnRandomRounds) {
  const std::size_t n = 700;
  const auto g = graph::random_gnp_connected(n, 10.0 / static_cast<double>(n), 7);
  network serial(g, {.collision_detection = true});
  network sharded(g, {.collision_detection = true});
  sharded.set_min_parallel_volume(0);  // every non-empty round goes parallel
  sharded.enable_intra_trial(4);
  ASSERT_EQ(sharded.intra_trial_threads(), 4u);

  std::vector<packet> beacons;
  beacons.reserve(n);
  for (node_id v = 0; v < n; ++v) beacons.push_back(packet::make_beacon(v));
  rng r(123);
  round_buffer txs;
  for (int round = 0; round < 40; ++round) {
    txs.clear();
    // Sweep densities from ~every-other-node to ~1/64 so rounds exercise
    // collisions, clean deliveries, and empty neighborhoods.
    const int e = 1 + round % 6;
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(e)) txs.add(v, beacons[v]);
    expect_same_round(serial, sharded, txs);
  }
  EXPECT_EQ(serial.stats().transmissions, sharded.stats().transmissions);
  EXPECT_EQ(serial.stats().deliveries, sharded.stats().deliveries);
  EXPECT_EQ(serial.stats().collisions_observed,
            sharded.stats().collisions_observed);
  EXPECT_EQ(serial.energy(), sharded.energy());
}

TEST(ShardedStep, BoundaryListenersHearCollisionsIdentically) {
  // A star-of-stars whose hubs straddle the degree-balanced block
  // boundaries: every hub hears a collision assembled from transmitters
  // that live in *other* blocks, so any cross-shard hit-word race or
  // dropped slice would change what a boundary listener observes.
  graph::graph::builder b(600);
  for (node_id hub = 0; hub < 600; hub += 60)
    for (node_id leaf = 1; leaf < 60; ++leaf) b.add_edge(hub, hub + leaf);
  for (node_id hub = 0; hub < 540; hub += 60) b.add_edge(hub, hub + 60);
  const auto g = std::move(b).build();

  network serial(g, {.collision_detection = true});
  network sharded(g, {.collision_detection = true});
  sharded.set_min_parallel_volume(0);
  sharded.enable_intra_trial(3);

  std::vector<packet> beacons;
  beacons.reserve(600);
  for (node_id v = 0; v < 600; ++v) beacons.push_back(packet::make_beacon(v));
  round_buffer txs;
  // All leaves transmit: every hub observes a collision; then exactly one
  // leaf per star transmits: every hub hears a clean message.
  for (node_id v = 0; v < 600; ++v)
    if (v % 60 != 0) txs.add(v, beacons[v]);
  expect_same_round(serial, sharded, txs);
  txs.clear();
  for (node_id hub = 0; hub < 600; hub += 60) txs.add(hub + 7, beacons[hub + 7]);
  expect_same_round(serial, sharded, txs);
  EXPECT_EQ(serial.stats().deliveries, sharded.stats().deliveries);
  EXPECT_EQ(serial.stats().collisions_observed,
            sharded.stats().collisions_observed);
}

TEST(ShardedStep, TeamResizeAndVolumeFloor) {
  const auto g = star(64);
  network net(g, {.collision_detection = true});
  EXPECT_EQ(net.intra_trial_threads(), 1u);  // default policy: serial
  net.enable_intra_trial(2);
  EXPECT_EQ(net.intra_trial_threads(), 2u);
  // Below the volume floor the team idles and the serial walk runs — the
  // round must still resolve normally.
  run_round(net, {{1, beacon(1)}});
  EXPECT_EQ(net.stats().deliveries, 1);
  net.enable_intra_trial(1);
  EXPECT_EQ(net.intra_trial_threads(), 1u);
  run_round(net, {{2, beacon(2)}});
  EXPECT_EQ(net.stats().deliveries, 2);
}

TEST(ShardedStep, ErasureDrawsAreShardCountInvariant) {
  // The erasure RNG is consumed at dispatch, which runs in the canonical
  // block order — so lossy-channel results must also be byte-identical
  // across team sizes.
  const std::size_t n = 400;
  const auto g = graph::random_gnp_connected(n, 8.0 / static_cast<double>(n), 3);
  const model m{.collision_detection = false,
                .erasure_prob = 0.4,
                .erasure_seed = 99};
  network serial(g, m);
  network sharded(g, m);
  sharded.set_min_parallel_volume(0);
  sharded.enable_intra_trial(4);

  std::vector<packet> beacons;
  beacons.reserve(n);
  for (node_id v = 0; v < n; ++v) beacons.push_back(packet::make_beacon(v));
  rng r(5);
  round_buffer txs;
  for (int round = 0; round < 30; ++round) {
    txs.clear();
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(2)) txs.add(v, beacons[v]);
    expect_same_round(serial, sharded, txs);
  }
  EXPECT_GT(serial.stats().erasures, 0);
  EXPECT_EQ(serial.stats().erasures, sharded.stats().erasures);
}

// Contract under test: the vectorized row-walk kernels (AVX2 / AVX-512)
// produce the exact reception sequence of the scalar walk — same
// listeners, same observations, same senders, same order, same erasure
// draws — on every graph and at every intra-trial team size. The active
// kernel is process-global state, so these tests record a scalar
// reference log and replay the identical schedule under each detected
// level on a fresh network.

/// Restores the process-global kernel level on scope exit.
struct simd_level_guard {
  explicit simd_level_guard(simd_level l) : prev_(active_simd_level()) {
    set_simd_level(l);
  }
  ~simd_level_guard() { set_simd_level(prev_); }
  simd_level prev_;
};

/// Every vector level this machine can actually run (empty on pre-AVX2
/// hardware or RN_DISABLE_SIMD builds — the tests then pass vacuously,
/// which is exactly the scalar-fallback contract).
std::vector<simd_level> vector_levels() {
  std::vector<simd_level> out;
  for (simd_level l : {simd_level::avx2, simd_level::avx512})
    if (l <= detected_simd_level()) out.push_back(l);
  return out;
}

using rx_log = std::vector<std::tuple<node_id, observation, node_id>>;

/// Replays a fixed multi-round transmit schedule on a fresh network under
/// the given kernel level and team size; returns the full reception log.
rx_log replay_schedule(const graph::graph& g, const model& m, simd_level lvl,
                       unsigned team,
                       const std::vector<std::vector<node_id>>& schedule) {
  simd_level_guard guard(lvl);
  network net(g, m);
  if (team > 1) {
    net.set_min_parallel_volume(0);
    net.enable_intra_trial(team);
  }
  std::vector<packet> beacons;
  beacons.reserve(g.node_count());
  for (node_id v = 0; v < g.node_count(); ++v)
    beacons.push_back(packet::make_beacon(v));
  rx_log log;
  round_buffer txs;
  for (const auto& round : schedule) {
    txs.clear();
    for (node_id v : round) txs.add(v, beacons[v]);
    net.step(txs, [&](const reception& rx) {
      log.emplace_back(rx.listener, rx.what, rx.from);
    });
  }
  return log;
}

/// Random schedule sweeping densities from ~1/2 to ~1/2^6 active nodes.
std::vector<std::vector<node_id>> random_schedule(std::size_t n, int rounds,
                                                  std::uint64_t seed) {
  rng r(seed);
  std::vector<std::vector<node_id>> schedule(rounds);
  for (int round = 0; round < rounds; ++round) {
    const int e = 1 + round % 6;
    for (node_id v = 0; v < n; ++v)
      if (r.with_probability_pow2(e)) schedule[round].push_back(v);
  }
  return schedule;
}

TEST(SimdStep, MatchesScalarOnRandomRounds) {
  const std::size_t n = 700;
  const auto g = graph::random_gnp_connected(n, 10.0 / static_cast<double>(n), 7);
  const model m{.collision_detection = true};
  const auto schedule = random_schedule(n, 40, 123);
  const rx_log ref = replay_schedule(g, m, simd_level::scalar, 1, schedule);
  ASSERT_FALSE(ref.empty());
  for (simd_level lvl : vector_levels()) {
    SCOPED_TRACE(to_string(lvl));
    EXPECT_EQ(ref, replay_schedule(g, m, lvl, 1, schedule));
  }
}

TEST(SimdStep, BlockBoundaryListenersAndScalarTails) {
  // Star-of-stars with 59-leaf rows: each transmitter row is seven full
  // 8-lane batches plus a ragged tail, and the hubs straddle the sharded
  // walk's block boundaries — covering the batch loop, the scalar tail,
  // and the compress-store append in one graph.
  graph::graph::builder b(600);
  for (node_id hub = 0; hub < 600; hub += 60)
    for (node_id leaf = 1; leaf < 60; ++leaf) b.add_edge(hub, hub + leaf);
  for (node_id hub = 0; hub < 540; hub += 60) b.add_edge(hub, hub + 60);
  const auto g = std::move(b).build();
  const model m{.collision_detection = true};

  std::vector<std::vector<node_id>> schedule(2);
  for (node_id v = 0; v < 600; ++v)  // all leaves: hubs hear collisions
    if (v % 60 != 0) schedule[0].push_back(v);
  for (node_id hub = 0; hub < 600; hub += 60)  // one leaf per star: clean
    schedule[1].push_back(hub + 7);

  const rx_log ref = replay_schedule(g, m, simd_level::scalar, 1, schedule);
  for (simd_level lvl : vector_levels()) {
    SCOPED_TRACE(to_string(lvl));
    EXPECT_EQ(ref, replay_schedule(g, m, lvl, 1, schedule));
  }
}

TEST(SimdStep, ErasureDrawsAreKernelInvariant) {
  // Erasure draws happen at dispatch, which consumes the touch lists the
  // kernels build — identical first-touch order is what keeps the lossy
  // channel byte-identical, so test it directly at erasure_prob > 0.
  const std::size_t n = 400;
  const auto g = graph::random_gnp_connected(n, 8.0 / static_cast<double>(n), 3);
  const model m{.collision_detection = false,
                .erasure_prob = 0.4,
                .erasure_seed = 99};
  const auto schedule = random_schedule(n, 30, 5);
  const rx_log ref = replay_schedule(g, m, simd_level::scalar, 1, schedule);
  ASSERT_FALSE(ref.empty());
  for (simd_level lvl : vector_levels()) {
    SCOPED_TRACE(to_string(lvl));
    EXPECT_EQ(ref, replay_schedule(g, m, lvl, 1, schedule));
  }
}

TEST(SimdStep, ComposesWithShardedTeams) {
  // Kernel level x team size cross-product: the sharded walk calls the
  // same kernels through the owner-routed entry point, so SIMD-on-sharded
  // must equal scalar-serial too.
  const std::size_t n = 700;
  const auto g = graph::random_gnp_connected(n, 10.0 / static_cast<double>(n), 7);
  const model m{.collision_detection = true};
  const auto schedule = random_schedule(n, 20, 42);
  const rx_log ref = replay_schedule(g, m, simd_level::scalar, 1, schedule);
  for (simd_level lvl : vector_levels()) {
    for (unsigned team : {2u, 4u}) {
      SCOPED_TRACE(std::string(to_string(lvl)) + " x team " +
                   std::to_string(team));
      EXPECT_EQ(ref, replay_schedule(g, m, lvl, team, schedule));
    }
  }
}

TEST(SimdStep, LevelApiClampsAndReports) {
  const simd_level prev = active_simd_level();
  set_simd_level(simd_level::avx512);  // clamped to what the CPU has
  EXPECT_LE(active_simd_level(), detected_simd_level());
  set_simd_level(simd_level::scalar);  // scalar is always available
  EXPECT_EQ(active_simd_level(), simd_level::scalar);
  EXPECT_STREQ(to_string(simd_level::scalar), "scalar");
  EXPECT_STREQ(to_string(simd_level::avx2), "avx2");
  EXPECT_STREQ(to_string(simd_level::avx512), "avx512");
  set_simd_level(prev);
}

TEST(ShardedStep, WorkerBudgetBorrowAndReturn) {
  set_worker_budget(4);
  EXPECT_EQ(worker_budget(), 4u);
  EXPECT_EQ(borrow_workers(3), 3u);
  EXPECT_EQ(borrow_workers(3), 1u);  // only one slot left
  EXPECT_EQ(borrow_workers(1), 0u);  // exhausted
  return_workers(2);
  EXPECT_EQ(borrow_workers(5), 2u);
  return_workers(4);
  set_worker_budget(0);  // back to the hardware default
  EXPECT_GE(worker_budget(), 1u);
}

TEST(CompletionTracker, Basics) {
  completion_tracker t(3);
  EXPECT_FALSE(t.all_done());
  t.mark(0);
  t.mark(0);  // idempotent
  t.exclude(1);
  EXPECT_EQ(t.remaining(), 1u);
  t.mark(2);
  EXPECT_TRUE(t.all_done());
  t.observe_round(17);
  t.observe_round(20);
  EXPECT_EQ(t.first_complete_round(), 17);
}

}  // namespace
}  // namespace rn::radio
