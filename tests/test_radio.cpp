#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "graph/generators.h"
#include "radio/network.h"
#include "radio/result.h"

namespace rn::radio {
namespace {

using graph::path;
using graph::star;

packet beacon(node_id v) { return packet::make_beacon(v); }

struct observed {
  std::map<node_id, observation> what;
  std::map<node_id, node_id> from;
};

observed run_round(network& net, const std::vector<network::tx>& txs) {
  observed o;
  net.step(txs, [&](const reception& rx) {
    o.what[rx.listener] = rx.what;
    if (rx.what == observation::message) o.from[rx.listener] = rx.from;
  });
  return o;
}

TEST(Network, SingleTransmitterDelivers) {
  const auto g = path(3);  // 0-1-2
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{1, beacon(1)}});
  EXPECT_EQ(o.what.at(0), observation::message);
  EXPECT_EQ(o.what.at(2), observation::message);
  EXPECT_EQ(o.from.at(0), 1u);
}

TEST(Network, TwoTransmittersCollideWithCd) {
  const auto g = star(4);  // hub 0, leaves 1..3
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{1, beacon(1)}, {2, beacon(2)}});
  EXPECT_EQ(o.what.at(0), observation::collision);
  EXPECT_EQ(o.what.count(3), 0u);  // leaf 3 has no transmitting neighbor
}

TEST(Network, TwoTransmittersSilentWithoutCd) {
  const auto g = star(4);
  network net(g, {.collision_detection = false});
  const auto o = run_round(net, {{1, beacon(1)}, {2, beacon(2)}});
  EXPECT_EQ(o.what.count(0), 0u);  // indistinguishable from silence
}

TEST(Network, TransmitterDoesNotHear) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{0, beacon(0)}, {1, beacon(1)}});
  // Both transmit; neither receives anything (half duplex).
  EXPECT_TRUE(o.what.empty());
}

TEST(Network, NonNeighborUnaffected) {
  const auto g = path(4);  // 0-1-2-3
  network net(g, {.collision_detection = true});
  const auto o = run_round(net, {{0, beacon(0)}});
  EXPECT_EQ(o.what.count(2), 0u);
  EXPECT_EQ(o.what.count(3), 0u);
}

TEST(Network, CollisionThenCleanRound) {
  const auto g = star(4);
  network net(g, {.collision_detection = true});
  run_round(net, {{1, beacon(1)}, {2, beacon(2)}});
  const auto o = run_round(net, {{3, beacon(3)}});
  EXPECT_EQ(o.what.at(0), observation::message);
  EXPECT_EQ(o.from.at(0), 3u);
}

TEST(Network, DoubleTransmitIsContractError) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  std::vector<network::tx> txs{{0, beacon(0)}, {0, beacon(0)}};
  EXPECT_THROW(net.step(txs, nullptr), contract_error);
}

TEST(Network, StatsCount) {
  const auto g = star(5);
  network net(g, {.collision_detection = true});
  run_round(net, {{1, beacon(1)}, {2, beacon(2)}});  // collision at hub
  run_round(net, {{1, beacon(1)}});                  // delivery to hub
  run_round(net, {});                                // silence
  EXPECT_EQ(net.stats().rounds, 3);
  EXPECT_EQ(net.stats().transmissions, 3);
  EXPECT_EQ(net.stats().deliveries, 1);
  EXPECT_EQ(net.stats().collisions_observed, 1);
}

TEST(Network, PacketContentRoundTrips) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  auto body = std::make_shared<packet_body>();
  body->data = {1, 2, 3};
  packet p = packet::make_data(7, body);
  packet received;
  net.step({{0, p}}, [&](const reception& rx) {
    ASSERT_EQ(rx.what, observation::message);
    received = *rx.pkt;
  });
  EXPECT_EQ(received.kind, packet_kind::data);
  EXPECT_EQ(received.a, 7u);
  EXPECT_EQ(received.body->data, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Network, PacketFactories) {
  EXPECT_EQ(packet::make_pair(3, 4).kind, packet_kind::pair);
  EXPECT_EQ(packet::make_pair(3, 4).a, 3u);
  EXPECT_EQ(packet::make_pair(3, 4).b, 4u);
  EXPECT_EQ(packet::make_sigma(2).a, 2u);
  EXPECT_EQ(packet::make_rank(5, 3).x, 3u);
  EXPECT_EQ(packet::make_noise().kind, packet_kind::noise);
  EXPECT_EQ(packet::make_ack(1, 2).b, 2u);
}

TEST(Network, EnergyAccounting) {
  const auto g = path(3);
  network net(g, {.collision_detection = true});
  run_round(net, {{0, beacon(0)}, {1, beacon(1)}});
  run_round(net, {{1, beacon(1)}});
  EXPECT_EQ(net.energy()[0], 1);
  EXPECT_EQ(net.energy()[1], 2);
  EXPECT_EQ(net.energy()[2], 0);
  EXPECT_EQ(net.max_energy(), 2);
}

TEST(RoundBuffer, FlyweightAndOwnedPacketsDeliver) {
  const auto g = path(3);  // 0-1-2
  network net(g, {.collision_detection = true});
  const packet flyweight = packet::make_beacon(0);
  round_buffer txs;
  std::map<node_id, node_id> from;
  const auto record = [&](const reception& rx) {
    ASSERT_EQ(rx.what, observation::message);
    from[rx.listener] = rx.pkt->a;
  };
  txs.add(0, flyweight);  // referenced, caller-owned
  net.step(txs, record);
  EXPECT_EQ(from.at(1), 0u);
  txs.clear();
  txs.add_owned(2, packet::make_beacon(2));  // copied into the arena
  net.step(txs, record);
  EXPECT_EQ(from.at(1), 2u);
  EXPECT_EQ(net.stats().transmissions, 2);
  EXPECT_EQ(net.stats().deliveries, 2);
}

TEST(RoundBuffer, ArenaSlotsAreStableAndRecycled) {
  const auto g = star(6);
  network net(g, {.collision_detection = true});
  round_buffer txs;
  for (int round = 0; round < 3; ++round) {
    txs.clear();
    // Enough owned packets to force arena growth; addresses handed to the
    // buffer must stay valid while it grows (deque arena).
    txs.add_owned(1, packet::make_beacon(1));
    for (node_id v = 2; v < 6; ++v)
      txs.add_owned(v, packet::make_pair(v, v));
    std::size_t heard = 0;
    net.step(txs, [&](const reception& rx) {
      ++heard;
      EXPECT_EQ(rx.listener, 0u);
      EXPECT_EQ(rx.what, observation::collision);
    });
    EXPECT_EQ(heard, 1u);  // hub: 5 transmitters collide
  }
  EXPECT_EQ(net.stats().transmissions, 15);
}

TEST(RoundBuffer, MatchesLegacyVectorStep) {
  const auto g = path(4);
  network legacy_net(g, {.collision_detection = true});
  network buf_net(g, {.collision_detection = true});
  std::vector<network::tx> legacy{{0, beacon(0)}, {3, beacon(3)}};
  round_buffer txs;
  const packet b0 = beacon(0);
  txs.add(0, b0);
  txs.add_owned(3, beacon(3));
  std::map<node_id, node_id> got_legacy, got_buf;
  legacy_net.step(legacy, [&](const reception& rx) {
    if (rx.what == observation::message) got_legacy[rx.listener] = rx.from;
  });
  buf_net.step(txs, [&](const reception& rx) {
    if (rx.what == observation::message) got_buf[rx.listener] = rx.from;
  });
  EXPECT_EQ(got_legacy, got_buf);
  EXPECT_EQ(legacy_net.stats().deliveries, buf_net.stats().deliveries);
  EXPECT_EQ(legacy_net.energy(), buf_net.energy());
}

TEST(RoundBuffer, DoubleTransmitIsContractError) {
  const auto g = path(2);
  network net(g, {.collision_detection = true});
  const packet b = beacon(0);
  round_buffer txs;
  txs.add(0, b);
  txs.add(0, b);
  EXPECT_THROW(net.step(txs, [](const reception&) {}), contract_error);
}

TEST(CompletionTracker, Basics) {
  completion_tracker t(3);
  EXPECT_FALSE(t.all_done());
  t.mark(0);
  t.mark(0);  // idempotent
  t.exclude(1);
  EXPECT_EQ(t.remaining(), 1u);
  t.mark(2);
  EXPECT_TRUE(t.all_done());
  t.observe_round(17);
  t.observe_round(20);
  EXPECT_EQ(t.first_complete_round(), 17);
}

}  // namespace
}  // namespace rn::radio
