#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/api.h"
#include "core/params.h"
#include "graph/topology.h"
#include "radio/network.h"
#include "sim/cli.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/json.h"
#include "sim/metrics.h"
#include "sim/runner.h"

namespace rn::sim {
namespace {

// A deterministic but rng-dependent trial: every draw must come from the
// trial's private stream for the thread-invariance tests to mean anything.
metrics noisy_trial(std::size_t trial, rng& r) {
  metrics m;
  m.set("value", static_cast<double>(r.uniform(1000)));
  m.set("trial", static_cast<double>(trial));
  m.set("u01", r.uniform01());
  return m;
}

TEST(Runner, ResolveThreads) {
  EXPECT_EQ(resolve_threads(4, 100), 4u);
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_GE(resolve_threads(0, 100), 1u);
  EXPECT_EQ(resolve_threads(1, 0), 1u);
}

TEST(Runner, RunsEveryTrialExactlyOnce) {
  run_config cfg;
  cfg.trials = 37;
  cfg.threads = 4;
  std::atomic<int> calls{0};
  const auto res = run_trials(cfg, [&calls](std::size_t trial, rng&) {
    calls.fetch_add(1);
    metrics m;
    m.set("trial", static_cast<double>(trial));
    return m;
  });
  EXPECT_EQ(calls.load(), 37);
  ASSERT_EQ(res.per_trial.size(), 37u);
  for (std::size_t t = 0; t < res.per_trial.size(); ++t)
    EXPECT_DOUBLE_EQ(res.per_trial[t].get("trial"), static_cast<double>(t));
}

TEST(Runner, ByteIdenticalAcrossThreadCounts) {
  // The acceptance contract: same (seed, trials) => identical per-trial
  // metrics and identical aggregates at 1, 2 and 8 threads.
  run_config cfg;
  cfg.trials = 64;
  cfg.seed = 12345;

  std::vector<trial_results> runs;
  for (const unsigned threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    runs.push_back(run_trials(cfg, noisy_trial));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].per_trial.size(), runs[0].per_trial.size());
    for (std::size_t t = 0; t < runs[0].per_trial.size(); ++t) {
      const auto& a = runs[0].per_trial[t].items();
      const auto& b = runs[i].per_trial[t].items();
      ASSERT_EQ(a, b) << "trial " << t << " differs at threads run " << i;
    }
  }
}

TEST(Runner, SeedChangesResults) {
  run_config a;
  a.trials = 8;
  a.threads = 1;
  a.seed = 1;
  run_config b = a;
  b.seed = 2;
  const auto ra = run_trials(a, noisy_trial);
  const auto rb = run_trials(b, noisy_trial);
  int diffs = 0;
  for (std::size_t t = 0; t < 8; ++t)
    if (ra.per_trial[t].get("value") != rb.per_trial[t].get("value")) ++diffs;
  EXPECT_GT(diffs, 0);
}

TEST(Runner, PerTrialStreamsDoNotOverlap) {
  // Draw a window from every trial's stream; any collision between windows
  // would mean two trials shared (part of) a stream.
  const std::size_t trials = 32;
  const int window = 64;
  run_config cfg;
  cfg.trials = trials;
  cfg.threads = 1;
  cfg.seed = 99;

  std::vector<std::vector<std::uint64_t>> draws(trials);
  const auto res =
      run_trials(cfg, [&draws, window](std::size_t trial, rng& r) {
        for (int i = 0; i < window; ++i) draws[trial].push_back(r());
        metrics m;
        m.set("ok", 1);
        return m;
      });
  ASSERT_EQ(res.per_trial.size(), trials);

  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const auto& w : draws) {
    for (const std::uint64_t v : w) {
      seen.insert(v);
      ++total;
    }
  }
  // 2048 draws of 64-bit values: any repeat at all would be a stream overlap
  // (or a catastrophically broken generator).
  EXPECT_EQ(seen.size(), total);
}

TEST(Runner, StreamBaseShiftsStreams) {
  run_config a;
  a.trials = 4;
  a.threads = 1;
  a.seed = 7;
  run_config b = a;
  b.stream_base = 1;
  const auto ra = run_trials(a, noisy_trial);
  const auto rb = run_trials(b, noisy_trial);
  // Trial t of run b uses stream t+1 = trial t+1 of run a.
  EXPECT_EQ(rb.per_trial[0].get("value"), ra.per_trial[1].get("value"));
  EXPECT_NE(ra.per_trial[0].get("value"), rb.per_trial[0].get("value"));
}

TEST(Runner, PropagatesTrialExceptions) {
  run_config cfg;
  cfg.trials = 16;
  cfg.threads = 4;
  EXPECT_THROW(
      static_cast<void>(run_trials(cfg,
                                   [](std::size_t trial, rng&) -> metrics {
                                     if (trial == 7)
                                       throw std::runtime_error("boom");
                                     metrics m;
                                     m.set("ok", 1);
                                     return m;
                                   })),
      std::runtime_error);
}

TEST(Metrics, SetOverwritesAndPreservesOrder) {
  metrics m;
  m.set("a", 1);
  m.set("b", 2);
  m.set("a", 3);
  ASSERT_EQ(m.items().size(), 2u);
  EXPECT_EQ(m.items()[0].first, "a");
  EXPECT_DOUBLE_EQ(m.get("a"), 3);
  EXPECT_FALSE(m.has("c"));
  EXPECT_THROW(static_cast<void>(m.get("c")), contract_error);
}

TEST(Aggregate, SkipsMissingMetricsPerTrial) {
  std::vector<metrics> per_trial(3);
  per_trial[0].set("always", 1);
  per_trial[1].set("always", 2);
  per_trial[2].set("always", 3);
  per_trial[1].set("sometimes", 10);
  const auto agg = aggregate(per_trial);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].name, "always");
  EXPECT_EQ(agg[0].stats.count, 3u);
  EXPECT_DOUBLE_EQ(agg[0].stats.mean, 2.0);
  EXPECT_EQ(agg[1].name, "sometimes");
  EXPECT_EQ(agg[1].stats.count, 1u);
  EXPECT_DOUBLE_EQ(agg[1].stats.mean, 10.0);
}

experiment make_toy_experiment() {
  experiment e;
  e.id = "toy";
  e.title = "toy";
  e.claim = "none";
  e.profile = "n/a";
  e.make_scenarios = [] {
    std::vector<scenario> out;
    for (const int p : {1, 2}) {
      scenario sc;
      sc.label = "p=" + std::to_string(p);
      sc.params = {{"p", static_cast<double>(p)}};
      sc.run = [p](std::size_t trial, rng& r) {
        metrics m;
        m.set("x", static_cast<double>(r.uniform(100) + 100u * p));
        m.set("trial", static_cast<double>(trial));
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  return e;
}

TEST(Experiment, JsonByteIdenticalAcrossThreadCounts) {
  const experiment e = make_toy_experiment();
  run_config cfg;
  cfg.trials = 32;
  cfg.seed = 4242;

  std::vector<std::string> dumps;
  for (const unsigned threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    dumps.push_back(to_json(e, run_experiment(e, cfg)).dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST(Experiment, ScenariosUseDisjointStreams) {
  const experiment e = make_toy_experiment();
  run_config cfg;
  cfg.trials = 16;
  cfg.threads = 1;
  const auto r = run_experiment(e, cfg);
  ASSERT_EQ(r.scenarios.size(), 2u);
  // Scenario stream bases differ, so the raw draws differ even though both
  // scenarios share the run seed (the +100*p offset is removed first).
  const auto* a = r.scenarios[0].find("x");
  const auto* b = r.scenarios[1].find("x");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->mean - 100.0, b->mean - 200.0);
}

// The flattened runner puts every (scenario, trial) unit on one queue, so an
// experiment with many scenarios and one trial each must overlap scenarios.
// The sequential-scenario runner this replaced would never overlap them.
TEST(Experiment, ScenarioLevelParallelismEngages) {
  experiment e;
  e.id = "parallel-probe";
  e.title = e.claim = e.profile = "n/a";
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  e.make_scenarios = [&] {
    std::vector<scenario> out;
    for (int s = 0; s < 8; ++s) {
      scenario sc;
      sc.label = "s";
      sc.label += std::to_string(s);
      sc.run = [&](std::size_t, rng&) {
        const int now = in_flight.fetch_add(1) + 1;
        int seen = max_in_flight.load();
        while (seen < now && !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        in_flight.fetch_sub(1);
        metrics m;
        m.set("ok", 1);
        return m;
      };
      out.push_back(std::move(sc));
    }
    return out;
  };
  run_config cfg;
  cfg.trials = 1;  // one trial per scenario: only scenarios can overlap
  cfg.threads = 8;
  const auto r = run_experiment(e, cfg);
  EXPECT_EQ(r.scenarios.size(), 8u);
  EXPECT_GT(max_in_flight.load(), 1);
}

TEST(Experiment, DeclarativeScenarioRunsProbes) {
  experiment e;
  e.id = "decl";
  e.title = e.claim = e.profile = "n/a";
  e.make_scenarios = [] {
    scenario sc;
    sc.label = "path";
    sc.topology = graph::parse_topology_spec("path:n=8");
    sc.options.prm = core::params::fast();
    sc.probes = {{"decay", "decay_rounds"}, {"gst-known", "gst_rounds"}};
    return std::vector<scenario>{std::move(sc)};
  };
  run_config cfg;
  cfg.trials = 3;
  cfg.threads = 2;
  const auto r = run_experiment(e, cfg);
  ASSERT_EQ(r.scenarios.size(), 1u);
  EXPECT_EQ(r.scenarios[0].topology, "path:n=8");
  const auto* decay = r.scenarios[0].find("decay_rounds");
  const auto* gst = r.scenarios[0].find("gst_rounds");
  ASSERT_NE(decay, nullptr);
  ASSERT_NE(gst, nullptr);
  EXPECT_EQ(decay->count, 3u);
  EXPECT_EQ(gst->count, 3u);
  EXPECT_GT(decay->mean, 0.0);
}

// The declarative interpreter's draw contract: one topology-seed draw, then
// one protocol-seed draw per probe — a hand-written trial following it
// produces byte-identical JSON.
TEST(Experiment, DeclarativeMatchesHandWrittenTrial) {
  const char* spec_text = "layered:depth=4,width=3,edge_prob=0.4";
  experiment decl;
  decl.id = "same";
  decl.title = decl.claim = decl.profile = "n/a";
  decl.make_scenarios = [spec_text] {
    scenario sc;
    sc.label = "row";
    sc.topology = graph::parse_topology_spec(spec_text);
    sc.options.prm = core::params::fast();
    sc.probes = {{"decay", "rounds"}};
    return std::vector<scenario>{std::move(sc)};
  };
  experiment hand = decl;
  hand.make_scenarios = [spec_text] {
    scenario sc;
    sc.label = "row";
    sc.run = [spec_text](std::size_t, rng& r) {
      auto spec = graph::parse_topology_spec(spec_text);
      spec.seed = r();
      const auto g = graph::build_topology(spec);
      core::options opt;
      opt.prm = core::params::fast();
      opt.fast_forward = use_fast_forward();
      opt.seed = r();
      metrics m;
      m.set("rounds",
            static_cast<double>(
                core::run_broadcast(g, "decay", {0, 1}, opt)
                    .base.rounds_to_complete));
      return m;
    };
    return std::vector<scenario>{std::move(sc)};
  };
  run_config cfg;
  cfg.trials = 6;
  cfg.seed = 99;
  // Same trials, same draws, same aggregates; under rn-bench-v2 only the
  // declarative run records its "topology" spec, so compare the metrics.
  const auto rd = run_experiment(decl, cfg);
  const auto rh = run_experiment(hand, cfg);
  ASSERT_EQ(rd.scenarios.size(), 1u);
  ASSERT_EQ(rh.scenarios.size(), 1u);
  EXPECT_EQ(rd.scenarios[0].topology, spec_text);
  EXPECT_TRUE(rh.scenarios[0].topology.empty());
  ASSERT_EQ(rd.scenarios[0].summaries.size(), rh.scenarios[0].summaries.size());
  for (std::size_t i = 0; i < rd.scenarios[0].summaries.size(); ++i) {
    EXPECT_EQ(rd.scenarios[0].summaries[i].name,
              rh.scenarios[0].summaries[i].name);
    EXPECT_EQ(rd.scenarios[0].summaries[i].stats.mean,
              rh.scenarios[0].summaries[i].stats.mean);
    EXPECT_EQ(rd.scenarios[0].summaries[i].stats.min,
              rh.scenarios[0].summaries[i].stats.min);
    EXPECT_EQ(rd.scenarios[0].summaries[i].stats.max,
              rh.scenarios[0].summaries[i].stats.max);
  }
}

// The intra-trial backend's acceptance contract: a layered n = 10^4
// scenario produces byte-identical results JSON whether the row walks run
// serially or sharded across a 4-thread team (and at any trial-pool thread
// count on top). The volume floor is lowered so even the sparse late-phase
// rounds exercise the sharded path.
TEST(Experiment, IntraTrialShardCountByteIdentity) {
  experiment e;
  e.id = "shards";
  e.title = e.claim = e.profile = "n/a";
  e.make_scenarios = [] {
    scenario sc;
    sc.label = "layered-1e4";
    sc.topology = graph::parse_topology_spec(
        "layered:depth=50,width=200,edge_prob=0.1");
    sc.options.prm = core::params::fast();
    sc.probes = {{"gst-known", "gst_known"}, {"decay", "decay"}};
    return std::vector<scenario>{std::move(sc)};
  };
  run_config cfg;
  cfg.trials = 2;
  cfg.seed = 31;

  const radio::intra_trial_policy saved = radio::get_intra_trial_policy();
  std::vector<std::string> dumps;
  for (const unsigned shards : {1u, 4u}) {
    for (const unsigned threads : {1u, 2u}) {
      radio::intra_trial_policy pol = saved;
      pol.threads = shards;
      pol.min_parallel_volume = 0;
      radio::set_intra_trial_policy(pol);
      cfg.threads = threads;
      dumps.push_back(to_json(e, run_experiment(e, cfg)).dump(2));
    }
  }
  radio::set_intra_trial_policy(saved);
  for (std::size_t i = 1; i < dumps.size(); ++i)
    EXPECT_EQ(dumps[0], dumps[i]) << "config " << i;
}

// Same contract one level down: the full broadcast_result — rounds,
// completion, channel counters, and the whole per-node energy vector —
// must match field for field between a serial and a sharded run.
TEST(Experiment, IntraTrialShardedEnergyAndRoundsIdentical) {
  auto spec = graph::parse_topology_spec(
      "layered:depth=50,width=200,edge_prob=0.1");
  spec.seed = 4242;
  const graph::graph g = graph::build_topology(spec);
  core::options opt;
  opt.prm = core::params::fast();
  opt.seed = 77;

  const radio::intra_trial_policy saved = radio::get_intra_trial_policy();
  std::vector<core::broadcast_outcome> outcomes;
  for (const unsigned shards : {1u, 4u}) {
    radio::intra_trial_policy pol = saved;
    pol.threads = shards;
    pol.min_parallel_volume = 0;
    radio::set_intra_trial_policy(pol);
    outcomes.push_back(core::run_broadcast(g, "decay", {0, 1}, opt));
  }
  radio::set_intra_trial_policy(saved);
  const auto& a = outcomes[0].base;
  const auto& b = outcomes[1].base;
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rounds_to_complete, b.rounds_to_complete);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.collisions_observed, b.collisions_observed);
  EXPECT_EQ(a.energy, b.energy);
}

TEST(Experiment, UnknownProbeProtocolThrows) {
  experiment e;
  e.id = "bad";
  e.title = e.claim = e.profile = "n/a";
  e.make_scenarios = [] {
    scenario sc;
    sc.label = "row";
    sc.topology = graph::parse_topology_spec("path:n=4");
    sc.probes = {{"no-such-protocol", "x"}};
    return std::vector<scenario>{std::move(sc)};
  };
  run_config cfg;
  cfg.trials = 1;
  EXPECT_THROW(static_cast<void>(run_experiment(e, cfg)), contract_error);
}

TEST(Experiment, ScenarioNeedsProbesOrTrialFn) {
  scenario sc;
  sc.label = "empty";
  EXPECT_THROW(static_cast<void>(make_trial(sc)), contract_error);
}

TEST(Json, ScalarFormatting) {
  EXPECT_EQ(json_value().dump(), "null");
  EXPECT_EQ(json_value(true).dump(), "true");
  EXPECT_EQ(json_value(3.0).dump(), "3");
  EXPECT_EQ(json_value(-17.0).dump(), "-17");
  EXPECT_EQ(json_value(0.5).dump(), "0.5");
  EXPECT_EQ(json_value("hi\"\n").dump(), "\"hi\\\"\\n\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  json_value o = json_value::object();
  o["z"] = 1;
  o["a"] = 2;
  o["z"] = 3;  // overwrite keeps position
  EXPECT_EQ(o.dump(), "{\"z\":3,\"a\":2}");
  json_value arr = json_value::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
}

TEST(Json, DeepNestingRaisesInsteadOfOverflowingTheStack) {
  // Regression: the reader recurses per container level, so before the
  // depth guard a "[[[[..." document blew the stack and killed the
  // process — in rn_serve, a remote crash from one malformed request
  // line. Depths within the bound still parse; past it, contract_error.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_EQ(parse_json(deep).size(), 1u);

  std::string evil(100000, '[');
  EXPECT_THROW(static_cast<void>(parse_json(evil)), contract_error);

  std::string evil_obj;
  for (int i = 0; i < 100000; ++i) evil_obj += "{\"k\":";
  EXPECT_THROW(static_cast<void>(parse_json(evil_obj)), contract_error);
}

TEST(Cli, ParsesAllFlags) {
  const char* argv[] = {"bench_suite", "--experiment", "e1", "--trials", "64",
                        "--threads",   "8",            "--seed", "5",
                        "--json",      "out.json",
                        "--intra-trial-threads", "4"};
  cli_options opt;
  ASSERT_TRUE(parse_cli(13, const_cast<char**>(argv), opt));
  EXPECT_EQ(opt.experiment, "e1");
  EXPECT_EQ(opt.trials, 64u);
  EXPECT_EQ(opt.threads, 8u);
  EXPECT_EQ(opt.seed, 5u);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_EQ(opt.intra_trial_threads, 4u);
}

TEST(Cli, ParsesAdhocWorkloadFlags) {
  const char* argv[] = {"bench_suite", "--topology",
                        "layered:depth=12,width=8", "--protocol",
                        "decay,gst-known", "--sweep", "width=4,8,16",
                        "--messages", "3"};
  cli_options opt;
  ASSERT_TRUE(parse_cli(9, const_cast<char**>(argv), opt));
  EXPECT_EQ(opt.topology, "layered:depth=12,width=8");
  EXPECT_EQ(opt.protocols, "decay,gst-known");
  EXPECT_EQ(opt.sweep, "width=4,8,16");
  EXPECT_EQ(opt.messages, 3u);
}

TEST(Cli, RejectsBadInput) {
  cli_options opt;
  const char* bad_flag[] = {"x", "--nope"};
  EXPECT_FALSE(parse_cli(2, const_cast<char**>(bad_flag), opt));
  const char* bad_num[] = {"x", "--trials", "abc"};
  EXPECT_FALSE(parse_cli(3, const_cast<char**>(bad_num), opt));
  const char* zero_trials[] = {"x", "--trials", "0"};
  EXPECT_FALSE(parse_cli(3, const_cast<char**>(zero_trials), opt));
}

}  // namespace
}  // namespace rn::sim
