// Random linear network coding over batches ("generations") of messages, plus
// the rateless fountain used as forward error correction between rings
// (paper sections 3.3.1 and 3.4).
#pragma once

#include <cstdint>
#include <vector>

#include "coding/gf2.h"
#include "common/check.h"
#include "common/rng.h"

namespace rn::coding {

/// A broadcast message: fixed-size byte payload.
using message = std::vector<std::uint8_t>;

/// Deterministic test fixture: k distinct messages of `size` bytes.
[[nodiscard]] std::vector<message> make_test_messages(std::size_t k,
                                                      std::size_t size,
                                                      std::uint64_t seed);

/// Node-local RLNC state for one batch: stores the received subspace, emits
/// fresh random combinations, decodes at full rank.
///
/// The source seeds its buffer with the plain messages (unit coefficient
/// vectors); every other node starts empty and accumulates innovative packets.
class rlnc_node {
 public:
  rlnc_node(std::size_t batch_size, std::size_t payload_size);

  /// Source-side: load message i of the batch in plain form.
  void load_source_message(std::size_t i, const message& m);

  /// Receive a coded packet; returns true iff innovative.
  bool receive(const gf2_vector& coeffs, const std::vector<std::uint8_t>& body);

  [[nodiscard]] bool has_anything() const { return decoder_.rank() > 0; }
  [[nodiscard]] bool can_decode() const { return decoder_.complete(); }
  [[nodiscard]] std::size_t rank() const { return decoder_.rank(); }

  /// Fresh random re-encoding of everything held (requires has_anything()).
  [[nodiscard]] gf2_decoder::coded_row encode(rn::rng& r) const;

  /// All decoded messages (requires can_decode()).
  [[nodiscard]] std::vector<message> decode_all() const;

  [[nodiscard]] const gf2_decoder& decoder() const { return decoder_; }

 private:
  gf2_decoder decoder_;
};

/// Splits k messages into batches of at most `batch_size` (the generations of
/// section 3.4; keeps coefficient headers at O(log n) bits).
struct batch_layout {
  std::size_t message_count = 0;
  std::size_t batch_size = 0;

  [[nodiscard]] std::size_t batch_count() const {
    return (message_count + batch_size - 1) / batch_size;
  }
  [[nodiscard]] std::size_t batch_begin(std::size_t b) const {
    return b * batch_size;
  }
  [[nodiscard]] std::size_t batch_end(std::size_t b) const {
    const std::size_t e = (b + 1) * batch_size;
    return e < message_count ? e : message_count;
  }
  [[nodiscard]] std::size_t size_of(std::size_t b) const {
    return batch_end(b) - batch_begin(b);
  }
};

}  // namespace rn::coding
