#include "coding/gf2.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace rn::coding {

namespace {
constexpr std::size_t kWordBits = 64;
}

gf2_vector::gf2_vector(std::size_t bits)
    : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

gf2_vector gf2_vector::unit(std::size_t bits, std::size_t i) {
  RN_REQUIRE(i < bits, "unit vector index out of range");
  gf2_vector v(bits);
  v.set(i, true);
  return v;
}

gf2_vector gf2_vector::random(std::size_t bits, rn::rng& r) {
  gf2_vector v(bits);
  for (auto& w : v.words_) w = r();
  // Clear bits beyond the logical size so equality/is_zero stay exact.
  const std::size_t excess = v.words_.size() * kWordBits - bits;
  if (excess > 0 && !v.words_.empty()) v.words_.back() &= (~0ULL >> excess);
  return v;
}

bool gf2_vector::get(std::size_t i) const {
  RN_REQUIRE(i < bits_, "bit index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void gf2_vector::set(std::size_t i, bool value) {
  RN_REQUIRE(i < bits_, "bit index out of range");
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void gf2_vector::add(const gf2_vector& other) {
  RN_REQUIRE(bits_ == other.bits_, "gf2 vector size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
}

bool gf2_vector::dot(const gf2_vector& other) const {
  RN_REQUIRE(bits_ == other.bits_, "gf2 vector size mismatch");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    acc ^= words_[i] & other.words_[i];
  return (std::popcount(acc) & 1) != 0;
}

bool gf2_vector::is_zero() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

std::size_t gf2_vector::leading_bit() const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0)
      return i * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[i]));
  }
  return bits_;
}

gf2_decoder::gf2_decoder(std::size_t dimension, std::size_t payload_size)
    : dimension_(dimension), payload_size_(payload_size) {
  RN_REQUIRE(dimension >= 1, "decoder dimension must be >= 1");
}

void gf2_decoder::reduce(gf2_vector& c, std::vector<std::uint8_t>& p) const {
  for (const auto& row : rows_) {
    if (c.get(row.pivot)) {
      c.add(row.coeffs);
      xor_bytes(p, row.payload);
    }
  }
}

bool gf2_decoder::insert(gf2_vector coeffs, std::vector<std::uint8_t> payload) {
  RN_REQUIRE(coeffs.size() == dimension_, "coefficient width mismatch");
  RN_REQUIRE(payload.size() == payload_size_, "payload size mismatch");
  if (complete()) return false;
  reduce(coeffs, payload);
  if (coeffs.is_zero()) return false;
  const std::size_t pivot = coeffs.leading_bit();
  // Eliminate the new pivot from existing rows to keep the basis reduced.
  for (auto& row : rows_) {
    if (row.coeffs.get(pivot)) {
      row.coeffs.add(coeffs);
      xor_bytes(row.payload, payload);
    }
  }
  row r{std::move(coeffs), std::move(payload), pivot};
  const auto pos = std::lower_bound(
      rows_.begin(), rows_.end(), pivot,
      [](const row& a, std::size_t piv) { return a.pivot < piv; });
  rows_.insert(pos, std::move(r));
  pivots_used_ += 1;
  return true;
}

bool gf2_decoder::in_span(const gf2_vector& coeffs) const {
  RN_REQUIRE(coeffs.size() == dimension_, "coefficient width mismatch");
  gf2_vector c = coeffs;
  for (const auto& row : rows_)
    if (c.get(row.pivot)) c.add(row.coeffs);
  return c.is_zero();
}

bool gf2_decoder::infected_by(const gf2_vector& mu) const {
  RN_REQUIRE(mu.size() == dimension_, "coefficient width mismatch");
  for (const auto& row : rows_)
    if (row.coeffs.dot(mu)) return true;
  return false;
}

std::vector<std::uint8_t> gf2_decoder::decode(std::size_t i) const {
  RN_REQUIRE(complete(), "decode requires full rank");
  RN_REQUIRE(i < dimension_, "message index out of range");
  // With a fully reduced basis of dimension d, rows are exactly the unit
  // vectors; row with pivot i is e_i.
  const auto& row = rows_[i];
  RN_ASSERT(row.pivot == i);
  RN_ASSERT(row.coeffs == gf2_vector::unit(dimension_, i));
  return row.payload;
}

gf2_decoder::coded_row gf2_decoder::random_combination(rn::rng& r) const {
  RN_REQUIRE(pivots_used_ > 0, "cannot re-encode from empty subspace");
  // Random subset of basis rows; retry the (rare) empty draw so the packet is
  // never the zero vector when the subspace is nontrivial.
  for (;;) {
    gf2_vector c(dimension_);
    std::vector<std::uint8_t> p(payload_size_, 0);
    bool any = false;
    for (const auto& row : rows_) {
      if (r.bernoulli(0.5)) {
        c.add(row.coeffs);
        xor_bytes(p, row.payload);
        any = true;
      }
    }
    if (any && !c.is_zero()) return {std::move(c), std::move(p)};
    if (!any && rows_.empty()) return {std::move(c), std::move(p)};
  }
}

void xor_bytes(std::vector<std::uint8_t>& a,
               const std::vector<std::uint8_t>& b) {
  RN_REQUIRE(a.size() == b.size(), "byte string size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

}  // namespace rn::coding
