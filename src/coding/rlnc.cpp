#include "coding/rlnc.h"

namespace rn::coding {

std::vector<message> make_test_messages(std::size_t k, std::size_t size,
                                        std::uint64_t seed) {
  RN_REQUIRE(size >= 1, "messages must be non-empty");
  std::vector<message> out(k);
  rn::rng r(seed);
  for (std::size_t i = 0; i < k; ++i) {
    out[i].resize(size);
    for (auto& byte : out[i]) byte = static_cast<std::uint8_t>(r() & 0xff);
    // Stamp the index so any cross-wiring of messages fails loudly in tests.
    out[i][0] = static_cast<std::uint8_t>(i & 0xff);
  }
  return out;
}

rlnc_node::rlnc_node(std::size_t batch_size, std::size_t payload_size)
    : decoder_(batch_size, payload_size) {}

void rlnc_node::load_source_message(std::size_t i, const message& m) {
  const bool innovative =
      decoder_.insert(gf2_vector::unit(decoder_.dimension(), i), m);
  RN_REQUIRE(innovative, "source message loaded twice");
}

bool rlnc_node::receive(const gf2_vector& coeffs,
                        const std::vector<std::uint8_t>& body) {
  return decoder_.insert(coeffs, body);
}

gf2_decoder::coded_row rlnc_node::encode(rn::rng& r) const {
  return decoder_.random_combination(r);
}

std::vector<message> rlnc_node::decode_all() const {
  RN_REQUIRE(can_decode(), "decode_all before full rank");
  std::vector<message> out(decoder_.dimension());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = decoder_.decode(i);
  return out;
}

}  // namespace rn::coding
