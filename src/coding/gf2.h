// Dense linear algebra over GF(2): bit vectors and an online Gaussian
// eliminator. This is the arithmetic substrate of random linear network
// coding (paper section 3.3.1) and of the FEC inter-ring handoff (section 3.4).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace rn::coding {

/// Fixed-length bit vector over GF(2); addition is XOR.
class gf2_vector {
 public:
  gf2_vector() = default;
  explicit gf2_vector(std::size_t bits);

  /// The i-th unit vector of the given length.
  [[nodiscard]] static gf2_vector unit(std::size_t bits, std::size_t i);

  /// Uniformly random vector (each bit independent fair coin).
  [[nodiscard]] static gf2_vector random(std::size_t bits, rn::rng& r);

  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value);

  /// this += other (XOR); sizes must match.
  void add(const gf2_vector& other);

  /// Inner product over GF(2).
  [[nodiscard]] bool dot(const gf2_vector& other) const;

  [[nodiscard]] bool is_zero() const;

  /// Index of the lowest set bit, or size() if zero.
  [[nodiscard]] std::size_t leading_bit() const;

  [[nodiscard]] bool operator==(const gf2_vector& other) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Online Gaussian elimination: feed coefficient rows (each with an attached
/// payload), query the span rank, and solve once full rank is reached.
///
/// Rows are kept in reduced form with distinct pivot positions, so insertion
/// is O(rank * words) and decoding is a back-substitution sweep.
class gf2_decoder {
 public:
  /// `dimension` = number of source messages; `payload_size` = bytes per row.
  gf2_decoder(std::size_t dimension, std::size_t payload_size);

  [[nodiscard]] std::size_t dimension() const { return dimension_; }
  [[nodiscard]] std::size_t rank() const { return pivots_used_; }
  [[nodiscard]] bool complete() const { return pivots_used_ == dimension_; }

  /// Inserts a row; returns true iff it was innovative (increased the rank).
  bool insert(gf2_vector coeffs, std::vector<std::uint8_t> payload);

  /// True iff `coeffs` lies in the span of the received rows.
  [[nodiscard]] bool in_span(const gf2_vector& coeffs) const;

  /// Infection test (paper Definition 3.8): some received row is
  /// non-orthogonal to mu.
  [[nodiscard]] bool infected_by(const gf2_vector& mu) const;

  /// Reconstructs message i; requires complete().
  [[nodiscard]] std::vector<std::uint8_t> decode(std::size_t i) const;

  /// A fresh random combination of the received rows (RLNC re-encoding):
  /// returns nullopt-like empty rank 0 guard via require. Requires rank() > 0.
  struct coded_row {
    gf2_vector coeffs;
    std::vector<std::uint8_t> payload;
  };
  [[nodiscard]] coded_row random_combination(rn::rng& r) const;

 private:
  struct row {
    gf2_vector coeffs;
    std::vector<std::uint8_t> payload;
    std::size_t pivot = 0;
  };
  std::size_t dimension_;
  std::size_t payload_size_;
  std::size_t pivots_used_ = 0;
  std::vector<row> rows_;  // sorted by pivot
  void reduce(gf2_vector& c, std::vector<std::uint8_t>& p) const;
};

/// XOR byte strings in place: a ^= b (sizes must match).
void xor_bytes(std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b);

}  // namespace rn::coding
