// Request/response model of the broadcast service (one JSON object per line).
//
// Request grammar (newline-delimited JSON over a local socket or a pipe):
//
//   {"id": 1, "method": "run", "topology": "layered:depth=12,width=8",
//    "protocols": "decay,gst-known", "sweep": "width=4,8", "messages": 1,
//    "options": "opt-v1:schedule_slack=2", "trials": 8, "seed": 1,
//    "priority": 0}
//   {"id": 2, "method": "run", "experiment": "e1", "trials": 2, "seed": 1}
//   {"id": 3, "method": "metrics"}
//   {"id": 4, "method": "list"}
//   {"id": 5, "method": "shutdown"}
//
// A "run" request names either a registered experiment (`experiment`) or an
// ad-hoc declarative workload (`topology` + friends — the exact
// `bench_suite --topology` surface, validated through the same registries).
// Responses echo the id and carry `"status": "ok"` or `"status": "error"`
// with a machine-readable `code` — a malformed or invalid request is always
// a structured error line, never a crash or a silently defaulted run.
#pragma once

#include <cstdint>
#include <string>

#include "sim/adhoc.h"
#include "sim/json.h"

namespace rn::svc {

enum class method : std::uint8_t { run, metrics, list, shutdown };

struct request {
  std::uint64_t id = 0;
  method what = method::run;
  /// Registered experiment id; empty = ad-hoc (then `adhoc.topology` must be
  /// set).
  std::string experiment;
  sim::adhoc_spec adhoc;
  std::size_t trials = 0;  ///< 0 = the experiment's default_trials
  std::uint64_t seed = 1;
  /// Higher runs first; ties run in arrival order.
  int priority = 0;
};

/// Machine-readable error classes (the `code` field of error responses).
inline constexpr const char* kBadJson = "bad-json";        ///< line is not a JSON object
inline constexpr const char* kBadRequest = "bad-request";  ///< invalid method/spec/params
inline constexpr const char* kOverBudget = "over-budget";  ///< trials above the server cap
inline constexpr const char* kRunFailed = "run-failed";    ///< execution-time failure

/// Parses and shape-checks one request line. Throws contract_error on
/// malformed JSON, a missing/unknown method, or mistyped fields. Registry
/// validation (unknown topology kind, protocol id, parameter names) happens
/// later, in service::submit, so its errors also come back as structured
/// responses.
[[nodiscard]] request parse_request(const std::string& line);

/// One-line error response: {"id":..,"status":"error","code":..,"error":..}.
[[nodiscard]] std::string error_response(std::uint64_t id, const char* code,
                                         const std::string& message);

/// Shared header of every ok response ({"id":..,"status":"ok"}); callers
/// append method-specific fields before dumping.
[[nodiscard]] sim::json_value ok_response(std::uint64_t id);

}  // namespace rn::svc
