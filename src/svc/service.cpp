#include "svc/service.h"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "common/check.h"
#include "dist/supervisor.h"
#include "sim/adhoc.h"
#include "sim/engine.h"

namespace rn::svc {

namespace {

/// Max-heap order: higher priority first, then earlier arrival. Returns
/// whether `a` is *worse* than `b` (std::push_heap convention).
bool job_after(const int pa, const std::uint64_t sa, const int pb,
               const std::uint64_t sb) {
  if (pa != pb) return pa < pb;
  return sa > sb;
}

}  // namespace

service::service(service_config cfg) : cfg_(cfg), cache_(cfg.cache_entries) {
  RN_REQUIRE(cfg_.workers >= 1, "service needs at least one worker");
  RN_REQUIRE(cfg_.max_trials >= 1, "service needs max_trials >= 1");
  if (!cfg_.cache_file.empty())
    cache_.load(cfg_.cache_file);  // cold start on miss/corruption by design
  start_ = std::chrono::steady_clock::now();  // rn-lint: allow(R1) service uptime anchor for Prometheus gauges, never results JSON
  register_metrics();
  pool_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i)
    pool_.emplace_back([this] { worker_loop(); });
}

service::~service() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : pool_) t.join();
  // Snapshot after the pool joins: every queued run has completed and
  // put() its payload, so the file holds the final warm set.
  if (!cfg_.cache_file.empty()) cache_.save(cfg_.cache_file);
}

void service::register_metrics() {
  requests_ = &registry_.add_counter("rn_requests_total",
                                     "Request lines accepted.");
  requests_ok_ = &registry_.add_counter("rn_requests_ok_total",
                                        "Requests answered with status=ok.");
  requests_error_ = &registry_.add_counter(
      "rn_requests_error_total", "Requests answered with status=error.");
  runs_ = &registry_.add_counter("rn_runs_total",
                                 "Experiments executed (cache misses).");
  registry_.add_counter_fn("rn_cache_hits_total",
                           "Result-cache lookups answered from cache.",
                           [this] { return double(cache_.hits()); });
  registry_.add_counter_fn("rn_cache_misses_total",
                           "Result-cache lookups that required a run.",
                           [this] { return double(cache_.misses()); });
  registry_.add_counter_fn("rn_cache_evictions_total",
                           "Payloads evicted by LRU capacity.",
                           [this] { return double(cache_.evictions()); });
  registry_.add_gauge("rn_cache_entries", "Payloads currently cached.",
                      [this] { return double(cache_.size()); });
  registry_.add_gauge("rn_queue_depth", "Run requests waiting for a worker.",
                      [this] {
                        std::lock_guard<std::mutex> lock(mu_);
                        return double(queue_.size());
                      });
  registry_.add_gauge("rn_inflight_runs", "Run requests currently executing.",
                      [this] {
                        std::lock_guard<std::mutex> lock(mu_);
                        return double(inflight_);
                      });
  registry_.add_gauge("rn_workers", "Worker threads in the scheduler pool.",
                      [this] { return double(cfg_.workers); });
  registry_.add_counter_fn(
      "rn_engine_stepped_rounds_total",
      "Radio-engine rounds resolved by full channel stepping.",
      [] { return double(sim::engine_counters().stepped_rounds); });
  registry_.add_counter_fn(
      "rn_engine_skipped_rounds_total",
      "Radio-engine rounds elided by fast-forward.",
      [] { return double(sim::engine_counters().skipped_rounds); });
  registry_.add_gauge("rn_rounds_per_second",
                      "Engine rounds (stepped + skipped) per uptime second.",
                      [this] {
                        const auto t = sim::engine_counters();
                        const double up =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_)  // rn-lint: allow(R1) uptime-rate gauge (Prometheus metrics only)
                                .count();
                        const double rounds =
                            double(t.stepped_rounds) + double(t.skipped_rounds);
                        return up > 0 ? rounds / up : 0.0;
                      });
  registry_.add_counter_fn(
      "rn_shard_busy_seconds_total",
      "Busy time across intra-trial shard team slots.", [] {
        const auto t = sim::shard_counters();
        double ns = 0;
        for (const auto b : t.busy_ns) ns += double(b);
        return ns / 1e9;
      });
  registry_.add_gauge("rn_peak_rss_kb",
                      "Monotone process-lifetime peak resident set (kB).",
                      [] { return double(sim::process_peak_rss_kb()); });
  registry_.add_gauge("rn_current_rss_kb", "Current resident set (kB).",
                      [] { return double(sim::current_rss_kb()); });
  // Distributed-backend recovery counters (dist/supervisor.h). Flat zero
  // unless a dist::session lives in this process and lost ranks.
  registry_.add_counter_fn(
      "rn_dist_rank_restarts_total",
      "Distributed worker ranks respawned after a crash or deadline.",
      [] { return double(dist::recovery_counters().rank_restarts); });
  registry_.add_counter_fn(
      "rn_dist_reassigned_blocks_total",
      "Listener blocks reassigned off degraded worker ranks.",
      [] { return double(dist::recovery_counters().reassigned_blocks); });
  registry_.add_counter_fn(
      "rn_dist_degraded_ranks_total",
      "Worker ranks retired after exhausting their respawn budget.",
      [] { return double(dist::recovery_counters().degraded_ranks); });
  registry_.add_counter_fn(
      "rn_dist_recovery_seconds_total",
      "Wall time spent inside distributed recovery paths.",
      [] { return double(dist::recovery_counters().recovery_wall_ms) / 1e3; });
  registry_.add_gauge("rn_uptime_seconds", "Seconds since service start.",
                      [this] {
                        return std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start_)  // rn-lint: allow(R1) rn_uptime_seconds gauge (Prometheus metrics only)
                            .count();
                      });
}

std::string service::metrics_text() const { return registry_.render(); }

bool service::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void service::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

void service::submit(const std::string& line, respond_fn respond) {
  requests_->add(1);
  request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& ex) {
    requests_error_->add(1);
    const std::string msg = ex.what();
    // parse_json reports "bad JSON at offset N"; everything after a
    // successful parse is a shape/field problem.
    const bool not_json = msg.find("bad JSON") != std::string::npos;
    respond(error_response(0, not_json ? kBadJson : kBadRequest, msg));
    return;
  }

  switch (req.what) {
    case method::metrics: {
      sim::json_value r = ok_response(req.id);
      r["metrics"] = metrics_text();
      requests_ok_->add(1);
      respond(r.dump());
      return;
    }
    case method::list: {
      sim::json_value r = ok_response(req.id);
      sim::json_value ids = sim::json_value::array();
      for (const auto& id : sim::registry::instance().ids()) ids.push_back(id);
      r["experiments"] = std::move(ids);
      requests_ok_->add(1);
      respond(r.dump());
      return;
    }
    case method::shutdown: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
      }
      sim::json_value r = ok_response(req.id);
      r["shutdown"] = true;
      requests_ok_->add(1);
      respond(r.dump());
      return;
    }
    case method::run:
      break;
  }

  job jb;
  jb.req = req;
  jb.respond = std::move(respond);
  try {
    if (!req.experiment.empty()) {
      const sim::experiment* e = sim::registry::instance().find(req.experiment);
      RN_REQUIRE(e != nullptr, "unknown experiment '" + req.experiment +
                                   "' (method \"list\" names the registry)");
      jb.e = *e;
      jb.trials = req.trials != 0 ? req.trials : e->default_trials;
      jb.key = "experiment=" + req.experiment +
               ";trials=" + std::to_string(jb.trials) +
               ";seed=" + std::to_string(req.seed);
    } else {
      // Full registry validation (topology kind + params, protocol ids,
      // sweep grammar, options string) happens here, before anything is
      // enqueued — a bad spec never reaches a worker.
      jb.e = sim::make_adhoc_experiment(req.adhoc);
      jb.trials = req.trials != 0 ? req.trials : jb.e.default_trials;
      jb.key = sim::canonical_run_key(req.adhoc, jb.trials, req.seed);
    }
  } catch (const std::exception& ex) {
    requests_error_->add(1);
    jb.respond(error_response(req.id, kBadRequest, ex.what()));
    return;
  }
  if (jb.trials > cfg_.max_trials) {
    requests_error_->add(1);
    jb.respond(error_response(
        req.id, kOverBudget,
        "trials " + std::to_string(jb.trials) + " exceed the server budget " +
            std::to_string(cfg_.max_trials)));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    jb.seq = next_seq_++;
    queue_.push_back(std::move(jb));
    std::push_heap(queue_.begin(), queue_.end(),
                   [](const job& a, const job& b) {
                     return job_after(a.req.priority, a.seq, b.req.priority,
                                      b.seq);
                   });
  }
  work_cv_.notify_one();
}

std::string service::handle(const std::string& line) {
  auto slot = std::make_shared<std::promise<std::string>>();
  auto got = slot->get_future();
  submit(line, [slot](const std::string& s) { slot->set_value(s); });
  return got.get();
}

void service::worker_loop() {
  for (;;) {
    job jb;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      std::pop_heap(queue_.begin(), queue_.end(),
                    [](const job& a, const job& b) {
                      return job_after(a.req.priority, a.seq, b.req.priority,
                                       b.seq);
                    });
      jb = std::move(queue_.back());
      queue_.pop_back();
      ++inflight_;
    }
    execute(jb);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (queue_.empty() && inflight_ == 0) idle_cv_.notify_all();
    }
  }
}

void service::execute(job& jb) {
  const auto t0 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) request wall_ms for the response metadata + metrics, never payload
  std::string payload;
  const char* origin = "hit";
  if (auto cached = cache_.get(jb.key)) {
    payload = std::move(*cached);
  } else {
    origin = "miss";
    runs_->add(1);
    sim::run_config rc;
    rc.trials = jb.trials;
    rc.threads = cfg_.threads_per_request;
    rc.seed = jb.req.seed;
    try {
      const sim::experiment_result result = sim::run_experiment(jb.e, rc);
      sim::json_value arr = sim::json_value::array();
      arr.push_back(sim::to_json(jb.e, result));
      // Exactly what `bench_suite --json` writes: pretty-printed array (even
      // for one experiment) plus trailing newline. The cache stores these
      // bytes, so hit == miss == batch file, byte for byte.
      payload = arr.dump(2);
      payload += "\n";
    } catch (const std::exception& ex) {
      requests_error_->add(1);
      jb.respond(error_response(jb.req.id, kRunFailed, ex.what()));
      return;
    }
    cache_.put(jb.key, payload);
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)  // rn-lint: allow(R1) request wall_ms for the response metadata + metrics, never payload
                             .count();
  sim::json_value r = ok_response(jb.req.id);
  r["cache"] = origin;
  r["key"] = jb.key;
  r["trials"] = std::uint64_t(jb.trials);
  r["seed"] = jb.req.seed;
  r["wall_ms"] = wall_ms;
  r["payload"] = std::move(payload);
  requests_ok_->add(1);
  jb.respond(r.dump());
}

}  // namespace rn::svc
