#include "svc/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace rn::svc {

namespace {

bool legal_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

void append_value(std::string& out, double v) {
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

counter& metrics_registry::add_counter(std::string name, std::string help) {
  RN_REQUIRE(legal_metric_name(name), "bad metric name: " + name);
  for (const auto& m : metrics_)
    RN_REQUIRE(m.name != name, "duplicate metric name: " + name);
  metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.is_counter = true;
  m.count = std::make_unique<counter>();
  metrics_.push_back(std::move(m));
  return *metrics_.back().count;
}

void metrics_registry::add_gauge(std::string name, std::string help,
                                 std::function<double()> read) {
  RN_REQUIRE(legal_metric_name(name), "bad metric name: " + name);
  RN_REQUIRE(static_cast<bool>(read), "gauge has no reader: " + name);
  for (const auto& m : metrics_)
    RN_REQUIRE(m.name != name, "duplicate metric name: " + name);
  metric m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.is_counter = false;
  m.read = std::move(read);
  metrics_.push_back(std::move(m));
}

void metrics_registry::add_counter_fn(std::string name, std::string help,
                                      std::function<double()> read) {
  add_gauge(std::move(name), std::move(help), std::move(read));
  metrics_.back().is_counter = true;
}

std::string metrics_registry::render() const {
  std::string out;
  for (const auto& m : metrics_) {
    out += "# HELP " + m.name + " " + m.help + "\n";
    out += "# TYPE " + m.name + (m.is_counter ? " counter\n" : " gauge\n");
    out += m.name + " ";
    // Owned-atomic counters read `count`; callback counters and gauges
    // read their scrape function.
    append_value(out, m.count != nullptr ? static_cast<double>(m.count->value())
                                         : m.read());
    out += "\n";
  }
  return out;
}

}  // namespace rn::svc
