// Broadcast-as-a-service: the resident scheduler behind rn_serve.
//
// A `service` owns a small worker pool, an LRU result cache, and a metrics
// registry. Transports (stdin pipe, Unix socket, the test harness) feed it
// request lines via `submit(line, respond)`; every line produces exactly one
// response line through `respond`, synchronously for metrics/list/shutdown
// and from a worker thread for runs.
//
// Scheduling: run requests are validated through the topology/protocol
// registries at submit time (invalid specs answer immediately with a
// structured error, nothing is enqueued), then sit in a priority queue
// ordered by (priority desc, arrival asc) until a worker picks them up.
//
// Caching: completed runs are stored as their *rendered payload bytes* —
// the exact `bench_suite --json` file contents (a pretty-printed array of
// one experiment object plus trailing newline) — keyed by the canonical
// run key (see sim/adhoc.h). A cache hit therefore returns byte-identical
// output to the batch path by construction; determinism of the engine
// (results independent of threads/fast-forward) is what makes the key
// complete without encoding execution knobs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.h"
#include "svc/cache.h"
#include "svc/metrics.h"
#include "svc/request.h"

namespace rn::svc {

struct service_config {
  /// Concurrent in-flight runs (each executes one request at a time).
  unsigned workers = 2;
  /// Trial-pool threads per run (sim::run_config::threads; 0 = hardware).
  unsigned threads_per_request = 0;
  /// LRU capacity in completed-run payloads.
  std::size_t cache_entries = 128;
  /// Per-request trial budget; requests above it answer `over-budget`.
  std::size_t max_trials = 4096;
  /// When non-empty, the cache is loaded from this snapshot file at
  /// construction (cold start if missing/corrupt — see result_cache::load)
  /// and saved back at shutdown, so a restarted daemon keeps its warm set.
  std::string cache_file = {};
};

/// Delivers one response line (no trailing newline). May be called from a
/// worker thread; must be safe to invoke concurrently with other responses.
using respond_fn = std::function<void(const std::string&)>;

class service {
 public:
  explicit service(service_config cfg = {});
  ~service();  ///< drains queued + in-flight runs, then joins the pool
  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// Accepts one request line. Always produces exactly one call to
  /// `respond`: immediately for parse/validation errors and for the
  /// metrics/list/shutdown methods, from a worker thread once the run (or
  /// cache hit) completes otherwise.
  void submit(const std::string& line, respond_fn respond);

  /// Synchronous convenience wrapper: submit and block for the response.
  [[nodiscard]] std::string handle(const std::string& line);

  /// Current Prometheus text exposition.
  [[nodiscard]] std::string metrics_text() const;

  /// Set once a shutdown request is accepted; transports poll it to close
  /// their listeners. Already-queued runs still complete (see dtor).
  [[nodiscard]] bool shutdown_requested() const;

  /// Blocks until the queue is empty and no run is in flight.
  void drain();

 private:
  struct job {
    request req;
    sim::experiment e;
    std::string key;          ///< canonical cache key
    std::size_t trials = 0;   ///< resolved (default applied, budget-checked)
    std::uint64_t seq = 0;    ///< arrival order, tiebreak within a priority
    respond_fn respond;
  };

  void worker_loop();
  void execute(job& jb);
  void register_metrics();

  service_config cfg_;
  result_cache cache_;
  metrics_registry registry_;
  counter* requests_ = nullptr;
  counter* requests_ok_ = nullptr;
  counter* requests_error_ = nullptr;
  counter* runs_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue -> workers
  std::condition_variable idle_cv_;   ///< workers -> drain()
  std::vector<job> queue_;            ///< binary heap (see job_before)
  std::size_t inflight_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  bool shutdown_ = false;

  std::vector<std::thread> pool_;
};

}  // namespace rn::svc
