// Prometheus-text metrics for the broadcast service.
//
// A tiny label-free exposition-format registry: counters are owned
// monotone atomics, gauges are read-at-scrape callbacks (so queue depth,
// RSS, and engine totals are sampled exactly when /metrics is rendered).
// `render()` emits the standard text format:
//
//   # HELP rn_requests_total Total request lines accepted.
//   # TYPE rn_requests_total counter
//   rn_requests_total 42
//
// which `promtool check metrics` and any Prometheus scraper accept. The
// registry is intentionally minimal — no labels, no histograms — because the
// service's whole surface fits in counters and gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rn::svc {

/// Monotone counter (Prometheus "counter" type).
class counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

class metrics_registry {
 public:
  /// Registers a counter; the returned reference lives as long as the
  /// registry. Names must be unique and Prometheus-legal ([a-zA-Z_:][a-zA-Z0-9_:]*).
  counter& add_counter(std::string name, std::string help);

  /// Registers a gauge whose value is read by `read` at every render.
  void add_gauge(std::string name, std::string help,
                 std::function<double()> read);

  /// Registers a counter whose (monotone) value lives elsewhere and is read
  /// by `read` at every render — e.g. the result cache's hit total or the
  /// radio engine's process-wide round counters.
  void add_counter_fn(std::string name, std::string help,
                      std::function<double()> read);

  /// Prometheus text exposition of every registered metric, in registration
  /// order.
  [[nodiscard]] std::string render() const;

 private:
  struct metric {
    std::string name;
    std::string help;
    bool is_counter;
    std::unique_ptr<counter> count;    ///< counters
    std::function<double()> read;      ///< gauges
  };
  std::vector<metric> metrics_;
};

}  // namespace rn::svc
