#include "svc/request.h"

#include <cmath>

#include "common/check.h"

namespace rn::svc {

namespace {

/// Reads an optional non-negative integer field; rejects mistyped or
/// fractional values instead of silently defaulting them.
std::uint64_t integer_field(const sim::json_value& obj, const char* key,
                            std::uint64_t fallback) {
  const sim::json_value* v = obj.find(key);
  if (v == nullptr || v->is_null()) return fallback;
  RN_REQUIRE(v->type() == sim::json_value::kind::number,
             std::string("request field '") + key + "' must be a number");
  const double d = v->as_number();
  RN_REQUIRE(d >= 0 && d == std::floor(d) && d < 9e15,
             std::string("request field '") + key +
                 "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::string string_field(const sim::json_value& obj, const char* key) {
  const sim::json_value* v = obj.find(key);
  if (v == nullptr || v->is_null()) return {};
  RN_REQUIRE(v->type() == sim::json_value::kind::string,
             std::string("request field '") + key + "' must be a string");
  return v->as_string();
}

}  // namespace

request parse_request(const std::string& line) {
  const sim::json_value doc = sim::parse_json(line);
  RN_REQUIRE(doc.type() == sim::json_value::kind::object,
             "request line must be a JSON object");
  request req;
  req.id = integer_field(doc, "id", 0);

  const std::string m = string_field(doc, "method");
  if (m == "run" || m.empty()) {
    // "run" is the default method so the common case stays terse.
    req.what = method::run;
  } else if (m == "metrics") {
    req.what = method::metrics;
  } else if (m == "list") {
    req.what = method::list;
  } else if (m == "shutdown") {
    req.what = method::shutdown;
  } else {
    RN_REQUIRE(false, "unknown method '" + m +
                          "' (known: run, metrics, list, shutdown)");
  }
  if (req.what != method::run) return req;

  req.experiment = string_field(doc, "experiment");
  req.adhoc.topology = string_field(doc, "topology");
  req.adhoc.protocols = string_field(doc, "protocols");
  req.adhoc.sweep = string_field(doc, "sweep");
  req.adhoc.options = string_field(doc, "options");
  req.adhoc.messages =
      static_cast<std::size_t>(integer_field(doc, "messages", 1));
  req.trials = static_cast<std::size_t>(integer_field(doc, "trials", 0));
  req.seed = integer_field(doc, "seed", 1);
  const sim::json_value* prio = doc.find("priority");
  if (prio != nullptr && !prio->is_null()) {
    RN_REQUIRE(prio->type() == sim::json_value::kind::number &&
                   prio->as_number() == std::floor(prio->as_number()),
               "request field 'priority' must be an integer");
    req.priority = static_cast<int>(prio->as_number());
  }

  RN_REQUIRE(req.experiment.empty() != req.adhoc.topology.empty(),
             "a run request names exactly one of 'experiment' or 'topology'");
  RN_REQUIRE(req.adhoc.messages >= 1, "messages must be >= 1");
  return req;
}

std::string error_response(std::uint64_t id, const char* code,
                           const std::string& message) {
  sim::json_value out = sim::json_value::object();
  out["id"] = id;
  out["status"] = "error";
  out["code"] = code;
  out["error"] = message;
  return out.dump();
}

sim::json_value ok_response(std::uint64_t id) {
  sim::json_value out = sim::json_value::object();
  out["id"] = id;
  out["status"] = "ok";
  return out;
}

}  // namespace rn::svc
