#include "svc/cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace rn::svc {

namespace {

constexpr char kSnapshotHeader[] = "rn-cache-snapshot-v1\n";

void put_u32(std::ofstream& out, std::uint32_t v) {
  char b[4] = {char(v & 0xff), char((v >> 8) & 0xff), char((v >> 16) & 0xff),
               char((v >> 24) & 0xff)};
  out.write(b, 4);
}

bool get_u32(std::ifstream& in, std::uint32_t& v) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) return false;
  v = std::uint32_t(b[0]) | (std::uint32_t(b[1]) << 8) |
      (std::uint32_t(b[2]) << 16) | (std::uint32_t(b[3]) << 24);
  return true;
}

}  // namespace

result_cache::result_cache(std::size_t capacity) : capacity_(capacity) {
  RN_REQUIRE(capacity >= 1, "result cache needs capacity >= 1");
}

std::optional<std::string> result_cache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void result_cache::put(const std::string& key, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool result_cache::save(const std::string& path) const {
  // Write-then-rename so a crash mid-save never clobbers the last good
  // snapshot with a truncated one (load would cold-start on it anyway, but
  // keeping the previous file beats losing it).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kSnapshotHeader, sizeof(kSnapshotHeader) - 1);
    std::lock_guard<std::mutex> lock(mu_);
    for (const entry& e : lru_) {
      put_u32(out, static_cast<std::uint32_t>(e.first.size()));
      put_u32(out, static_cast<std::uint32_t>(e.second.size()));
      out.write(e.first.data(),
                static_cast<std::streamsize>(e.first.size()));
      out.write(e.second.data(),
                static_cast<std::streamsize>(e.second.size()));
    }
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool result_cache::load(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();

  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // missing file: ordinary cold start
  char header[sizeof(kSnapshotHeader) - 1];
  if (!in.read(header, sizeof(header)) ||
      std::string_view(header, sizeof(header)) != kSnapshotHeader)
    return false;

  // Parse the whole snapshot before accepting any of it: a truncated or
  // corrupt record invalidates the file, not just its tail.
  std::vector<entry> entries;
  for (;;) {
    std::uint32_t key_len = 0;
    if (!get_u32(in, key_len)) {
      if (in.eof() && in.gcount() == 0) break;  // clean end between records
      return false;
    }
    std::uint32_t payload_len = 0;
    if (!get_u32(in, payload_len)) return false;
    entry e;
    e.first.resize(key_len);
    e.second.resize(payload_len);
    if (!in.read(e.first.data(), key_len) ||
        !in.read(e.second.data(), payload_len))
      return false;
    entries.push_back(std::move(e));
  }

  // The file is hottest-first; rebuild the list coldest-first so front ends
  // up most recently used, dropping overflow (a snapshot from a bigger
  // cache) from the cold end rather than evicting through the hot one.
  const std::size_t keep = std::min(entries.size(), capacity_);
  for (std::size_t i = keep; i-- > 0;) {
    if (const auto it = index_.find(entries[i].first); it != index_.end()) {
      lru_.erase(it->second);  // malformed duplicate: the hotter copy wins
      index_.erase(it);
    }
    lru_.emplace_front(std::move(entries[i]));
    index_[lru_.front().first] = lru_.begin();
  }
  return true;
}

std::size_t result_cache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace rn::svc
