#include "svc/cache.h"

#include "common/check.h"

namespace rn::svc {

result_cache::result_cache(std::size_t capacity) : capacity_(capacity) {
  RN_REQUIRE(capacity >= 1, "result cache needs capacity >= 1");
}

std::optional<std::string> result_cache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void result_cache::put(const std::string& key, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t result_cache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace rn::svc
