// LRU result cache for the broadcast service.
//
// Keys are canonical run keys (sim::canonical_run_key — every
// determinism-relevant input of a run, plus trials and seed); values are the
// finished rn-bench-v2 payload *bytes*. Storing the rendered string rather
// than the result object is what makes the cache-hit contract trivial to
// uphold: a hit returns exactly the bytes the batch path produced, because
// they are the same bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace rn::svc {

class result_cache {
 public:
  /// `capacity` = maximum resident entries (>= 1); the least recently used
  /// entry is evicted on overflow.
  explicit result_cache(std::size_t capacity);

  /// Returns the cached payload and marks the entry most recently used.
  /// Counts a hit or a miss; thread-safe.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) `key`. Two concurrent computations of the same
  /// key both insert the same bytes (results are deterministic), so
  /// last-writer-wins is benign.
  void put(const std::string& key, std::string payload);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t hits() const { return hits_.load(); }
  [[nodiscard]] std::int64_t misses() const { return misses_.load(); }
  [[nodiscard]] std::int64_t evictions() const { return evictions_.load(); }

 private:
  using entry = std::pair<std::string, std::string>;  ///< key, payload

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<entry>::iterator> index_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace rn::svc
