// LRU result cache for the broadcast service.
//
// Keys are canonical run keys (sim::canonical_run_key — every
// determinism-relevant input of a run, plus trials and seed); values are the
// finished rn-bench-v2 payload *bytes*. Storing the rendered string rather
// than the result object is what makes the cache-hit contract trivial to
// uphold: a hit returns exactly the bytes the batch path produced, because
// they are the same bytes.
//
// Snapshot format (save/load): the ASCII header line "rn-cache-snapshot-v1"
// followed by one binary record per entry, most recently used first:
//   [u32 key_len][u32 payload_len][key bytes][payload bytes]
// Lengths are little-endian. Determinism makes stale entries impossible —
// a key pins every input of its run — so reload safety reduces to format
// integrity: any short read or version mismatch falls back to a cold start.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace rn::svc {

class result_cache {
 public:
  /// `capacity` = maximum resident entries (>= 1); the least recently used
  /// entry is evicted on overflow.
  explicit result_cache(std::size_t capacity);

  /// Returns the cached payload and marks the entry most recently used.
  /// Counts a hit or a miss; thread-safe.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) `key`. Two concurrent computations of the same
  /// key both insert the same bytes (results are deterministic), so
  /// last-writer-wins is benign.
  void put(const std::string& key, std::string payload);

  /// Writes every resident entry to `path` in recency order under the
  /// "rn-cache-snapshot-v1" header. Best-effort: returns false (leaving any
  /// previous file untouched where possible) on I/O failure.
  bool save(const std::string& path) const;

  /// Replaces the cache contents with a snapshot previously written by
  /// `save`, preserving recency order. A missing file, a version-header
  /// mismatch, or any truncated/corrupt record yields a *cold start*: the
  /// cache is left empty and `load` returns false. Entries beyond the
  /// current capacity (a snapshot from a larger cache) are dropped from the
  /// cold end. Counters are not restored — they describe this process.
  bool load(const std::string& path);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t hits() const { return hits_.load(); }
  [[nodiscard]] std::int64_t misses() const { return misses_.load(); }
  [[nodiscard]] std::int64_t evictions() const { return evictions_.load(); }

 private:
  using entry = std::pair<std::string, std::string>;  ///< key, payload

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<entry>::iterator> index_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace rn::svc
