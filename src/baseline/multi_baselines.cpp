#include "baseline/multi_baselines.h"

#include <memory>

#include "common/math.h"
#include "common/rng.h"
#include "radio/network.h"

namespace rn::baseline {

namespace {
std::shared_ptr<const radio::packet_body> make_body(std::uint32_t idx) {
  auto body = std::make_shared<radio::packet_body>();
  body->data = {static_cast<std::uint8_t>(idx), static_cast<std::uint8_t>(idx >> 8)};
  return body;
}
}  // namespace

radio::broadcast_result run_sequential_decay_multi(const graph::graph& g,
                                                   node_id source,
                                                   const multi_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat) + 1;
  const round_t per_message_cap =
      64 * (static_cast<round_t>(n) * L + sq(L));
  const round_t max_rounds = opt.max_rounds > 0
                                 ? opt.max_rounds
                                 : per_message_cap * static_cast<round_t>(opt.k);

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  // has[v] counts fully received messages; each message is broadcast in order.
  std::vector<std::size_t> has(n, 0);
  has[source] = opt.k;
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  radio::round_buffer txs;
  std::size_t current = 0;  // message being broadcast
  std::size_t current_remaining = n - 1;
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  // One flyweight packet per in-flight message; rebuilt only on msg switch.
  radio::packet pkt = radio::packet::make_data(0, make_body(0));

  for (round_t t = 0; t < max_rounds && current < opt.k; ++t) {
    const int i = static_cast<int>(t % L) + 1;
    txs.clear();
    for (node_id v = 0; v < n; ++v) {
      if (informed[v] && node_rng[v].with_probability_pow2(i)) txs.add(v, pkt);
    }
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
        informed[rx.listener] = 1;
        --current_remaining;
        has[rx.listener] += 1;
        if (has[rx.listener] == opt.k) tracker.mark(rx.listener);
      }
    });
    if (current_remaining == 0) {
      // Next message: reset the informed set to {source}.
      ++current;
      if (current < opt.k) {
        informed.assign(n, 0);
        informed[source] = 1;
        current_remaining = n - 1;
        pkt = radio::packet::make_data(
            static_cast<node_id>(current),
            make_body(static_cast<std::uint32_t>(current)));
      }
    }
    tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }

  radio::broadcast_result res;
  res.completed = tracker.all_done();
  res.rounds_to_complete = tracker.first_complete_round();
  res.rounds_executed = net.stats().rounds;
  res.transmissions = net.stats().transmissions;
  res.deliveries = net.stats().deliveries;
  res.collisions_observed = net.stats().collisions_observed;
  return res;
}

radio::broadcast_result run_routing_multi(const graph::graph& g,
                                          node_id source,
                                          const multi_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  RN_REQUIRE(opt.k >= 1, "need at least one message");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat) + 1;
  const round_t max_rounds =
      opt.max_rounds > 0
          ? opt.max_rounds
          : 64 * static_cast<round_t>(opt.k + n) * L * L;

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  // holds[v] = bitmap of received messages (k is small in benches).
  std::vector<std::vector<char>> holds(n, std::vector<char>(opt.k, 0));
  std::vector<std::vector<node_id>> have_list(n);
  for (std::size_t m = 0; m < opt.k; ++m) {
    holds[source][m] = 1;
    have_list[source].push_back(static_cast<node_id>(m));
  }
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  // One flyweight packet per message, referenced by every forwarder.
  std::vector<radio::packet> pkts;
  pkts.reserve(opt.k);
  for (std::size_t m = 0; m < opt.k; ++m)
    pkts.push_back(radio::packet::make_data(
        static_cast<node_id>(m), make_body(static_cast<std::uint32_t>(m))));

  radio::round_buffer txs;
  for (round_t t = 0; t < max_rounds; ++t) {
    const int i = static_cast<int>(t % L) + 1;
    txs.clear();
    for (node_id v = 0; v < n; ++v) {
      if (have_list[v].empty()) continue;
      if (!node_rng[v].with_probability_pow2(i)) continue;
      // Forward a uniformly random held message (routing, no coding).
      const node_id m =
          have_list[v][node_rng[v].uniform(have_list[v].size())];
      txs.add(v, pkts[m]);
    }
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what != radio::observation::message ||
          rx.pkt->kind != radio::packet_kind::data)
        return;
      const std::size_t m = rx.pkt->a;
      auto& hv = holds[rx.listener];
      if (!hv[m]) {
        hv[m] = 1;
        have_list[rx.listener].push_back(static_cast<node_id>(m));
        if (have_list[rx.listener].size() == opt.k) tracker.mark(rx.listener);
      }
    });
    tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }

  radio::broadcast_result res;
  res.completed = tracker.all_done();
  res.rounds_to_complete = tracker.first_complete_round();
  res.rounds_executed = net.stats().rounds;
  res.transmissions = net.stats().transmissions;
  res.deliveries = net.stats().deliveries;
  res.collisions_observed = net.stats().collisions_observed;
  return res;
}

}  // namespace rn::baseline
