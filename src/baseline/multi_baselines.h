// k-message broadcast baselines (no network coding):
//
//  * sequential — broadcast the k messages one at a time with classic Decay;
//    Theta(k * (D log n + log^2 n)) rounds. The natural strawman.
//  * routing    — pipelined store-and-forward: every informed node runs the
//    Decay schedule and transmits a uniformly random message from the set it
//    holds. This is the "routing" side of the routing-vs-coding comparison of
//    Ghaffari-Haeupler-Khabbazian [11]; its completion tail suffers a
//    coupon-collector factor that RLNC avoids.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "radio/result.h"

namespace rn::baseline {

struct multi_options {
  std::size_t k = 4;            ///< number of messages
  std::size_t n_hat = 0;
  round_t max_rounds = 0;
  std::uint64_t seed = 1;
  bool stop_when_complete = true;
};

/// Sequential single-message Decay broadcasts.
[[nodiscard]] radio::broadcast_result run_sequential_decay_multi(
    const graph::graph& g, node_id source, const multi_options& opt);

/// Pipelined random-message routing over the Decay schedule.
[[nodiscard]] radio::broadcast_result run_routing_multi(
    const graph::graph& g, node_id source, const multi_options& opt);

}  // namespace rn::baseline
