// The Decay protocol family (Bar-Yehuda, Goldreich, Itai 1992) — the paper's
// primary baseline and also a building block of its constructions.
//
// Three variants:
//  * classic   — BGI Decay: every informed node runs phases of L rounds, and
//                transmits with probability 2^-i in round i of each phase.
//                O(D log n + log^2 n) w.h.p.
//  * leveled   — the paper's Lemma 3.2 schedule, keyed to BFS levels mod 3;
//                supports the MMV framework (uninformed prompted nodes send
//                noise). Same asymptotics; provably MMV via backwards analysis.
//  * tuned     — Czumaj-Rytter / Kowalski-Pelc stand-in [DEV-4]: Decay with
//                short phases of length ~log(n/D) interleaved with occasional
//                full-length phases; realizes O(D log(n/D) + log^2 n) on
//                layered workloads.
//
// Coin contract (rn-bench-v2): by default every variant draws its 2^-i coins
// from a *batched counter-based stream* — node v's coin bits come from the
// 64-bit blocks `counter_word(seed, v, k)`, consumed i bits per scheduled
// round — and each node's next transmit round is computed directly from
// those bits, so the runner keeps a calendar of upcoming transmissions
// instead of flipping a coin per informed node per round. Rounds with no
// scheduled transmitter are provably idle; with `fast_forward` they collapse
// into one O(1) `network::advance`, without it they are stepped one by one.
// The two modes are bit-identical by construction (`--no-fast-forward` is the
// cross-check). `draw_mode::per_round` keeps the historical per-node xoshiro
// streams (one draw per informed node per scheduled round) as the
// distributional oracle for the batched contract — same completion-round
// law, different draw order (tests/test_broadcast.cpp compares quantiles).
#pragma once

#include <cstdint>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "radio/result.h"

namespace rn::baseline {

/// How the Decay coins are drawn; see the header comment.
enum class draw_mode : std::uint8_t {
  batched,    ///< counter-based 64-bit blocks, next-transmit rounds computed directly
  per_round,  ///< historical per-node xoshiro stream, one draw per scheduled round
};

struct decay_options {
  std::size_t n_hat = 0;       ///< known upper bound on n; 0 = use n
  round_t max_rounds = 0;      ///< 0 = generous default from n_hat & graph
  std::uint64_t seed = 1;
  bool collision_detection = false;  ///< Decay does not use CD; modeled anyway
  bool stop_when_complete = true;    ///< stop the simulation at completion
  bool fast_forward = false;  ///< skip transmitter-free rounds (bit-identical)
  draw_mode draws = draw_mode::batched;
};

/// Classic BGI Decay single-message broadcast from `source`.
[[nodiscard]] radio::broadcast_result run_decay_broadcast(
    const graph::graph& g, node_id source, const decay_options& opt);

struct leveled_decay_options {
  std::size_t n_hat = 0;
  round_t max_rounds = 0;
  std::uint64_t seed = 1;
  bool mmv_noise = false;  ///< Definition 3.1: prompted uninformed nodes jam
  bool stop_when_complete = true;
  bool fast_forward = false;
  draw_mode draws = draw_mode::batched;
};

/// Lemma 3.2 leveled Decay. `levels` must hold the BFS level of every node
/// (obtained e.g. from the collision-wave layering).
[[nodiscard]] radio::broadcast_result run_leveled_decay_broadcast(
    const graph::graph& g, node_id source, const std::vector<level_t>& levels,
    const leveled_decay_options& opt);

struct tuned_decay_options {
  std::size_t n_hat = 0;
  level_t d_hat = 0;  ///< known diameter bound; 0 = eccentricity of source
  round_t max_rounds = 0;
  std::uint64_t seed = 1;
  bool stop_when_complete = true;
  bool fast_forward = false;
  draw_mode draws = draw_mode::batched;
};

/// Czumaj-Rytter-style tuned Decay [DEV-4].
[[nodiscard]] radio::broadcast_result run_tuned_decay_broadcast(
    const graph::graph& g, node_id source, const tuned_decay_options& opt);

}  // namespace rn::baseline
