// The Decay protocol family (Bar-Yehuda, Goldreich, Itai 1992) — the paper's
// primary baseline and also a building block of its constructions.
//
// Three variants:
//  * classic   — BGI Decay: every informed node runs phases of L rounds, and
//                transmits with probability 2^-i in round i of each phase.
//                O(D log n + log^2 n) w.h.p.
//  * leveled   — the paper's Lemma 3.2 schedule, keyed to BFS levels mod 3;
//                supports the MMV framework (uninformed prompted nodes send
//                noise). Same asymptotics; provably MMV via backwards analysis.
//  * tuned     — Czumaj-Rytter / Kowalski-Pelc stand-in [DEV-4]: Decay with
//                short phases of length ~log(n/D) interleaved with occasional
//                full-length phases; realizes O(D log(n/D) + log^2 n) on
//                layered workloads.
#pragma once

#include <cstdint>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "radio/result.h"

namespace rn::baseline {

struct decay_options {
  std::size_t n_hat = 0;       ///< known upper bound on n; 0 = use n
  round_t max_rounds = 0;      ///< 0 = generous default from n_hat & graph
  std::uint64_t seed = 1;
  bool collision_detection = false;  ///< Decay does not use CD; modeled anyway
  bool stop_when_complete = true;    ///< stop the simulation at completion
};

/// Classic BGI Decay single-message broadcast from `source`.
[[nodiscard]] radio::broadcast_result run_decay_broadcast(
    const graph::graph& g, node_id source, const decay_options& opt);

struct leveled_decay_options {
  std::size_t n_hat = 0;
  round_t max_rounds = 0;
  std::uint64_t seed = 1;
  bool mmv_noise = false;  ///< Definition 3.1: prompted uninformed nodes jam
  bool stop_when_complete = true;
};

/// Lemma 3.2 leveled Decay. `levels` must hold the BFS level of every node
/// (obtained e.g. from the collision-wave layering).
[[nodiscard]] radio::broadcast_result run_leveled_decay_broadcast(
    const graph::graph& g, node_id source, const std::vector<level_t>& levels,
    const leveled_decay_options& opt);

struct tuned_decay_options {
  std::size_t n_hat = 0;
  level_t d_hat = 0;  ///< known diameter bound; 0 = eccentricity of source
  round_t max_rounds = 0;
  std::uint64_t seed = 1;
  bool stop_when_complete = true;
};

/// Czumaj-Rytter-style tuned Decay [DEV-4].
[[nodiscard]] radio::broadcast_result run_tuned_decay_broadcast(
    const graph::graph& g, node_id source, const tuned_decay_options& opt);

}  // namespace rn::baseline
