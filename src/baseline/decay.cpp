#include "baseline/decay.h"

#include <memory>

#include "common/math.h"
#include "common/rng.h"
#include "radio/network.h"

namespace rn::baseline {

namespace {

std::shared_ptr<const radio::packet_body> make_message_body() {
  auto body = std::make_shared<radio::packet_body>();
  body->data = {0xbc, 0xa5, 0x70};  // fixed marker payload
  return body;
}

radio::broadcast_result finish(const radio::network& net,
                               const radio::completion_tracker& tracker) {
  radio::broadcast_result res;
  res.completed = tracker.all_done();
  res.rounds_to_complete = tracker.first_complete_round();
  res.rounds_executed = net.stats().rounds;
  res.transmissions = net.stats().transmissions;
  res.deliveries = net.stats().deliveries;
  res.collisions_observed = net.stats().collisions_observed;
  return res;
}

}  // namespace

radio::broadcast_result run_decay_broadcast(const graph::graph& g,
                                            node_id source,
                                            const decay_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat) + 1;
  const round_t max_rounds =
      opt.max_rounds > 0
          ? opt.max_rounds
          : 64 * (static_cast<round_t>(g.node_count()) * L + sq(L));

  radio::network net(g, {.collision_detection = opt.collision_detection});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  std::vector<node_id> informed_list;
  informed[source] = 1;
  informed_list.push_back(source);
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  const auto body = make_message_body();
  std::vector<radio::network::tx> txs;
  for (round_t t = 0; t < max_rounds; ++t) {
    txs.clear();
    // Round position within the phase: i in [1, L], transmit w.p. 2^-i.
    const int i = static_cast<int>(t % L) + 1;
    for (node_id v : informed_list) {
      if (node_rng[v].with_probability_pow2(i))
        txs.push_back({v, radio::packet::make_data(source, body)});
    }
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
        informed[rx.listener] = 1;
        informed_list.push_back(rx.listener);
        tracker.mark(rx.listener);
      }
    });
    tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }
  return finish(net, tracker);
}

radio::broadcast_result run_leveled_decay_broadcast(
    const graph::graph& g, node_id source, const std::vector<level_t>& levels,
    const leveled_decay_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  RN_REQUIRE(levels.size() == n, "level vector size mismatch");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat) + 1;
  level_t max_level = 0;
  for (level_t l : levels) max_level = std::max(max_level, l);
  const round_t max_rounds =
      opt.max_rounds > 0
          ? opt.max_rounds
          : 64 * (3 * static_cast<round_t>(max_level) * L + 3 * sq(L));

  // MMV mode exercises noise, i.e. collisions; CD does not change behavior of
  // this protocol, so run without CD as in the paper's baseline setting.
  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  const auto body = make_message_body();
  std::vector<radio::network::tx> txs;
  for (round_t t = 0; t < max_rounds; ++t) {
    txs.clear();
    // Lemma 3.2 schedule (1-based round index r): a node at level lv is
    // prompted iff r == lv + 1 (mod 3), with probability
    // 2^-((r - lv - 1)/3 mod L).
    const round_t r = t + 1;
    for (node_id v = 0; v < n; ++v) {
      const level_t lv = levels[v];
      if (lv == no_level) continue;
      if (r < lv + 1) continue;  // schedule reaches level lv at round lv+1
      if ((r - lv - 1) % 3 != 0) continue;
      const int e = static_cast<int>(((r - lv - 1) / 3) % L);
      if (!node_rng[v].with_probability_pow2(e)) continue;
      if (informed[v]) {
        txs.push_back({v, radio::packet::make_data(source, body)});
      } else if (opt.mmv_noise) {
        txs.push_back({v, radio::packet::make_noise()});
      }
    }
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
        informed[rx.listener] = 1;
        tracker.mark(rx.listener);
      }
    });
    tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }
  return finish(net, tracker);
}

radio::broadcast_result run_tuned_decay_broadcast(
    const graph::graph& g, node_id source, const tuned_decay_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const level_t d_hat =
      opt.d_hat > 0 ? opt.d_hat : graph::bfs(g, source).max_level;
  const int L_full = log_range(n_hat) + 1;
  // Short phases target per-hop contention ~ n/D (layer width on the layered
  // workloads); full phases cover the high-degree tail.
  const int L_short = std::max(
      1, log_range(std::max<std::size_t>(
             2, n_hat / std::max<std::size_t>(1, static_cast<std::size_t>(
                                                     std::max(d_hat, 1))))) +
             1);
  const round_t max_rounds =
      opt.max_rounds > 0 ? opt.max_rounds
                         : 64 * (static_cast<round_t>(std::max(d_hat, 1)) *
                                     (3 * L_short + L_full) +
                                 8 * sq(L_full));

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  std::vector<node_id> informed_list;
  informed[source] = 1;
  informed_list.push_back(source);
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  // Super-phase = 3 short phases followed by 1 full phase.
  const round_t super = 3 * L_short + L_full;
  const auto body = make_message_body();
  std::vector<radio::network::tx> txs;
  for (round_t t = 0; t < max_rounds; ++t) {
    const round_t pos = t % super;
    int i;  // decay exponent for this round
    if (pos < 3 * L_short)
      i = static_cast<int>(pos % L_short) + 1;
    else
      i = static_cast<int>(pos - 3 * L_short) + 1;
    txs.clear();
    for (node_id v : informed_list) {
      if (node_rng[v].with_probability_pow2(i))
        txs.push_back({v, radio::packet::make_data(source, body)});
    }
    net.step(txs, [&](const radio::reception& rx) {
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
        informed[rx.listener] = 1;
        informed_list.push_back(rx.listener);
        tracker.mark(rx.listener);
      }
    });
    tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }
  return finish(net, tracker);
}

}  // namespace rn::baseline
