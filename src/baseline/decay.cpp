#include "baseline/decay.h"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <queue>
#include <utility>

#include "common/math.h"
#include "common/rng.h"
#include "core/runner.h"
#include "radio/network.h"

namespace rn::baseline {

namespace {

std::shared_ptr<const radio::packet_body> make_message_body() {
  auto body = std::make_shared<radio::packet_body>();
  body->data = {0xbc, 0xa5, 0x70};  // fixed marker payload
  return body;
}

radio::broadcast_result finish(const radio::network& net,
                               const radio::completion_tracker& tracker) {
  radio::broadcast_result res;
  res.completed = tracker.all_done();
  res.rounds_to_complete = tracker.first_complete_round();
  res.rounds_executed = net.stats().rounds;
  res.transmissions = net.stats().transmissions;
  res.deliveries = net.stats().deliveries;
  res.collisions_observed = net.stats().collisions_observed;
  res.energy = net.energy();
  return res;
}

// ---------------------------------------------------------------------------
// Round schedules: when a participating node is prompted, and with which
// Decay exponent. Each variant is a tiny policy consumed by the shared
// batched engine below.

/// Classic BGI: every round, exponent (t mod L) + 1.
struct classic_schedule {
  int L;
  static round_t first_on_or_after(node_id, round_t t) { return t; }
  [[nodiscard]] int exponent(node_id, round_t t) const {
    return static_cast<int>(t % L) + 1;
  }
};

/// Lemma 3.2: a node at BFS level lv is prompted at (0-based) rounds
/// t >= lv with t ≡ lv (mod 3), with exponent ((t - lv) / 3) mod L.
struct leveled_schedule {
  const std::vector<level_t>* levels;
  int L;
  [[nodiscard]] round_t first_on_or_after(node_id v, round_t t) const {
    const round_t lv = (*levels)[v];
    const round_t base = std::max(t, lv);
    const round_t rem = (base - lv) % 3;
    return rem == 0 ? base : base + (3 - rem);
  }
  [[nodiscard]] int exponent(node_id v, round_t t) const {
    return static_cast<int>(((t - (*levels)[v]) / 3) % L);
  }
};

/// Czumaj-Rytter stand-in: super-phases of 3 short phases + 1 full phase.
struct tuned_schedule {
  int L_short;
  int L_full;
  round_t super;  // 3 * L_short + L_full
  static round_t first_on_or_after(node_id, round_t t) { return t; }
  [[nodiscard]] int exponent(node_id, round_t t) const {
    const round_t pos = t % super;
    return pos < 3 * L_short ? static_cast<int>(pos % L_short) + 1
                             : static_cast<int>(pos - 3 * L_short) + 1;
  }
};

// ---------------------------------------------------------------------------
// Batched engine: per-node coins come from counter_word(seed, v, k) blocks,
// consumed exponent-many bits per scheduled round, and each participating
// node's *next transmit round* is computed directly. The runner keeps a
// calendar (min-heap keyed by (round, node)) of upcoming transmissions, so
// per-round work is proportional to the transmitter set — and rounds with no
// calendar entry are provably idle: `fast_forward` collapses them into one
// advance(), naive mode steps them empty; both are bit-identical.

/// Next prompted round >= `from` in which v's coins fire, or `limit`.
/// Consumes e bits per prompted round (all-zero => transmit, probability
/// exactly 2^-e); leftover bits of the last block are discarded, which is
/// unbiased because every block is fresh.
template <class Sched>
round_t sample_next_tx(const Sched& s, std::uint64_t seed, node_id v,
                       std::uint32_t& word_idx, round_t from, round_t limit) {
  std::uint64_t word = 0;
  int bits = 0;
  for (round_t t = s.first_on_or_after(v, from); t < limit;
       t = s.first_on_or_after(v, t + 1)) {
    const int e = s.exponent(v, t);
    if (e == 0) return t;
    if (e >= 64) continue;  // probability < 2^-63: treated as never (as rng does)
    if (bits < e) {
      word = counter_word(seed, v, word_idx++);
      bits = 64;
    }
    const bool hit = (word & ((1ULL << e) - 1)) == 0;
    word >>= e;
    bits -= e;
    if (hit) return t;
  }
  return limit;
}

struct batched_config {
  std::uint64_t seed = 1;
  round_t max_rounds = 0;
  bool collision_detection = false;
  bool stop_when_complete = true;
  bool fast_forward = false;
  bool mmv_noise = false;  ///< scheduled-but-uninformed nodes jam with noise
};

/// Calendar of upcoming transmissions: a ring of W per-round buckets over
/// the near horizon [base, base + W) — O(1) push and drain, no comparisons —
/// with a min-heap spillover for the rare coin gap longer than W (the
/// expected gap is one phase, ~log n rounds). Bucket order is insertion
/// order; the channel model is order-independent within a round.
///
/// `next_event` keeps a cached lower bound on the earliest non-empty ring
/// bucket, so the sparse late-phase calendars of large-n Decay (one skip
/// query per busy round) pay amortized O(1) instead of rescanning all W
/// buckets from base_ every call. Purely a query-path cache: push/drain
/// order — and with it coin consumption order — is untouched.
class tx_calendar {
 public:
  static constexpr std::size_t W = 128;  // power of two

  /// t must be >= base().
  void push(round_t t, node_id v) {
    if (t < base_ + static_cast<round_t>(W)) {
      ring_[static_cast<std::size_t>(t) & (W - 1)].push_back(v);
      ++ring_count_;
      ring_min_ = std::min(ring_min_, t);
    } else {
      far_.emplace(t, v);
    }
  }

  /// Earliest event round >= base(), or `limit` when none is due before it.
  [[nodiscard]] round_t next_event(round_t limit) const {
    if (ring_count_ > 0) {
      // ring_min_ never overshoots the true minimum, so scanning forward
      // from it (never from base_) finds the first non-empty bucket; the
      // result is cached for the next query.
      round_t t = std::max(base_, ring_min_);
      while (ring_[static_cast<std::size_t>(t) & (W - 1)].empty()) ++t;
      ring_min_ = t;
      return t;
    }
    if (!far_.empty()) return std::min(limit, far_.top().first);
    return limit;
  }

  /// Moves the horizon start to `t` (every bucket in [base, t) must already
  /// be drained) and pulls newly-near spillover events into the ring.
  void advance_to(round_t t) {
    base_ = t;
    while (!far_.empty() &&
           far_.top().first < base_ + static_cast<round_t>(W)) {
      ring_[static_cast<std::size_t>(far_.top().first) & (W - 1)].push_back(
          far_.top().second);
      ++ring_count_;
      ring_min_ = std::min(ring_min_, far_.top().first);
      far_.pop();
    }
  }

  /// Drains the bucket of round base() into `out` (appending).
  void drain_current(std::vector<node_id>& out) {
    auto& bucket = ring_[static_cast<std::size_t>(base_) & (W - 1)];
    out.insert(out.end(), bucket.begin(), bucket.end());
    ring_count_ -= bucket.size();
    bucket.clear();
    if (ring_count_ == 0) ring_min_ = no_event;
  }

 private:
  static constexpr round_t no_event = std::numeric_limits<round_t>::max();

  std::array<std::vector<node_id>, W> ring_;
  std::size_t ring_count_ = 0;
  std::priority_queue<std::pair<round_t, node_id>,
                      std::vector<std::pair<round_t, node_id>>, std::greater<>>
      far_;
  round_t base_ = 0;
  mutable round_t ring_min_ = no_event;  // cached scan start (lower bound)
};

/// `eligible(v)`: may v ever be prompted (leveled: has a BFS level)?
/// `jamming(v)`: is v scheduled from round 0 even while uninformed (MMV)?
template <class Sched, class EligibleFn, class JammingFn>
radio::broadcast_result run_batched_decay(const graph::graph& g,
                                          node_id source, const Sched& sched,
                                          EligibleFn&& eligible,
                                          JammingFn&& jamming,
                                          const batched_config& cfg) {
  const std::size_t n = g.node_count();
  radio::network net(g, {.collision_detection = cfg.collision_detection});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  std::vector<char> scheduled(n, 0);  // participating in the coin process
  informed[source] = 1;
  tracker.mark(source);

  std::vector<std::uint32_t> word_idx(n, 0);
  tx_calendar cal;
  auto schedule_from = [&](node_id v, round_t from) {
    scheduled[v] = 1;
    const round_t t = sample_next_tx(sched, cfg.seed, v, word_idx[v], from,
                                     cfg.max_rounds);
    if (t < cfg.max_rounds) cal.push(t, v);
  };
  if (eligible(source)) schedule_from(source, 0);
  for (node_id v = 0; v < n; ++v)
    if (!scheduled[v] && eligible(v) && jamming(v)) schedule_from(v, 0);

  const auto body = make_message_body();
  const radio::packet data_pkt = radio::packet::make_data(source, body);
  const radio::packet noise_pkt = radio::packet::make_noise();

  radio::round_buffer txs;
  std::vector<node_id> firing;
  std::vector<node_id> fresh;
  auto on_rx = [&](const radio::reception& rx) {
    if (rx.what == radio::observation::message &&
        rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
      informed[rx.listener] = 1;
      tracker.mark(rx.listener);
      fresh.push_back(rx.listener);
    }
  };

  tracker.observe_round(0);  // n = 1 completes before any round runs
  round_t now = 0;
  while (now < cfg.max_rounds) {
    if (cfg.stop_when_complete && tracker.all_done()) break;
    // Idle stretch up to the next calendar entry. Nothing can be delivered
    // (and completion cannot change) in it, so skipping vs stepping the
    // empty rounds is bit-identical.
    const round_t next_busy = cal.next_event(cfg.max_rounds);
    if (next_busy > now) {
      if (cfg.fast_forward) {
        net.advance(next_busy - now);
      } else {
        txs.clear();
        for (round_t i = now; i < next_busy; ++i)
          net.step(txs, [](const radio::reception&) {});
      }
      now = next_busy;
      if (now >= cfg.max_rounds) break;
      cal.advance_to(now);
    }
    txs.clear();
    firing.clear();
    fresh.clear();
    cal.drain_current(firing);
    for (node_id v : firing) {
      if (informed[v])
        txs.add(v, data_pkt);
      else if (cfg.mmv_noise)
        txs.add(v, noise_pkt);
    }
    net.step(txs, on_rx);
    ++now;
    cal.advance_to(now);
    tracker.observe_round(net.stats().rounds);
    for (node_id v : firing) {
      const round_t t = sample_next_tx(sched, cfg.seed, v, word_idx[v], now,
                                       cfg.max_rounds);
      if (t < cfg.max_rounds) cal.push(t, v);
    }
    for (node_id u : fresh)
      if (!scheduled[u] && eligible(u)) schedule_from(u, now);
  }
  return finish(net, tracker);
}

constexpr auto always = [](node_id) { return true; };
constexpr auto never = [](node_id) { return false; };

}  // namespace

radio::broadcast_result run_decay_broadcast(const graph::graph& g,
                                            node_id source,
                                            const decay_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat) + 1;
  const round_t max_rounds =
      opt.max_rounds > 0
          ? opt.max_rounds
          : 64 * (static_cast<round_t>(g.node_count()) * L + sq(L));

  if (opt.draws == draw_mode::batched) {
    batched_config cfg;
    cfg.seed = opt.seed;
    cfg.max_rounds = max_rounds;
    cfg.collision_detection = opt.collision_detection;
    cfg.stop_when_complete = opt.stop_when_complete;
    cfg.fast_forward = opt.fast_forward;
    return run_batched_decay(g, source, classic_schedule{L}, always, never,
                             cfg);
  }

  // per_round oracle: the historical one-draw-per-informed-node-per-round
  // loop. fast_forward only defers planned-but-empty rounds (exact).
  radio::network net(g, {.collision_detection = opt.collision_detection});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  std::vector<node_id> informed_list;
  informed[source] = 1;
  informed_list.push_back(source);
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  const auto body = make_message_body();
  const radio::packet data_pkt = radio::packet::make_data(source, body);
  radio::round_buffer txs;
  core::round_sink sink(net, opt.fast_forward);
  const auto on_rx = [&](const radio::reception& rx) {
    if (rx.what == radio::observation::message &&
        rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
      informed[rx.listener] = 1;
      informed_list.push_back(rx.listener);
      tracker.mark(rx.listener);
    }
  };
  tracker.observe_round(0);  // n = 1 completes before any round (as batched)
  for (round_t t = 0; t < max_rounds && !(opt.stop_when_complete &&
                                          tracker.all_done());
       ++t) {
    txs.clear();
    // Round position within the phase: i in [1, L], transmit w.p. 2^-i.
    const int i = static_cast<int>(t % L) + 1;
    for (node_id v : informed_list) {
      if (node_rng[v].with_probability_pow2(i)) txs.add(v, data_pkt);
    }
    if (sink.commit(txs, on_rx)) tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }
  sink.flush();
  return finish(net, tracker);
}

radio::broadcast_result run_leveled_decay_broadcast(
    const graph::graph& g, node_id source, const std::vector<level_t>& levels,
    const leveled_decay_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  RN_REQUIRE(levels.size() == n, "level vector size mismatch");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat) + 1;
  level_t max_level = 0;
  for (level_t l : levels) max_level = std::max(max_level, l);
  const round_t max_rounds =
      opt.max_rounds > 0
          ? opt.max_rounds
          : 64 * (3 * static_cast<round_t>(max_level) * L + 3 * sq(L));

  // MMV mode exercises noise, i.e. collisions; CD does not change behavior of
  // this protocol, so run without CD as in the paper's baseline setting.
  if (opt.draws == draw_mode::batched) {
    batched_config cfg;
    cfg.seed = opt.seed;
    cfg.max_rounds = max_rounds;
    cfg.stop_when_complete = opt.stop_when_complete;
    cfg.fast_forward = opt.fast_forward;
    cfg.mmv_noise = opt.mmv_noise;
    const auto eligible = [&levels](node_id v) {
      return levels[v] != no_level;
    };
    const auto jamming = [mmv = opt.mmv_noise](node_id) { return mmv; };
    return run_batched_decay(g, source, leveled_schedule{&levels, L}, eligible,
                             jamming, cfg);
  }

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  const auto body = make_message_body();
  const radio::packet data_pkt = radio::packet::make_data(source, body);
  const radio::packet noise_pkt = radio::packet::make_noise();
  radio::round_buffer txs;
  core::round_sink sink(net, opt.fast_forward);
  const auto on_rx = [&](const radio::reception& rx) {
    if (rx.what == radio::observation::message &&
        rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
      informed[rx.listener] = 1;
      tracker.mark(rx.listener);
    }
  };
  tracker.observe_round(0);  // n = 1 completes before any round (as batched)
  for (round_t t = 0; t < max_rounds && !(opt.stop_when_complete &&
                                          tracker.all_done());
       ++t) {
    txs.clear();
    // Lemma 3.2 schedule (1-based round index r): a node at level lv is
    // prompted iff r == lv + 1 (mod 3), with probability
    // 2^-((r - lv - 1)/3 mod L).
    const round_t r = t + 1;
    for (node_id v = 0; v < n; ++v) {
      const level_t lv = levels[v];
      if (lv == no_level) continue;
      if (r < lv + 1) continue;  // schedule reaches level lv at round lv+1
      if ((r - lv - 1) % 3 != 0) continue;
      const int e = static_cast<int>(((r - lv - 1) / 3) % L);
      if (!node_rng[v].with_probability_pow2(e)) continue;
      if (informed[v]) {
        txs.add(v, data_pkt);
      } else if (opt.mmv_noise) {
        txs.add(v, noise_pkt);
      }
    }
    if (sink.commit(txs, on_rx)) tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }
  sink.flush();
  return finish(net, tracker);
}

radio::broadcast_result run_tuned_decay_broadcast(
    const graph::graph& g, node_id source, const tuned_decay_options& opt) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const level_t d_hat =
      opt.d_hat > 0 ? opt.d_hat : graph::bfs(g, source).max_level;
  const int L_full = log_range(n_hat) + 1;
  // Short phases target per-hop contention ~ n/D (layer width on the layered
  // workloads); full phases cover the high-degree tail.
  const int L_short = std::max(
      1, log_range(std::max<std::size_t>(
             2, n_hat / std::max<std::size_t>(1, static_cast<std::size_t>(
                                                     std::max(d_hat, 1))))) +
             1);
  const round_t max_rounds =
      opt.max_rounds > 0 ? opt.max_rounds
                         : 64 * (static_cast<round_t>(std::max(d_hat, 1)) *
                                     (3 * L_short + L_full) +
                                 8 * sq(L_full));

  // Super-phase = 3 short phases followed by 1 full phase.
  const round_t super = 3 * L_short + L_full;

  if (opt.draws == draw_mode::batched) {
    batched_config cfg;
    cfg.seed = opt.seed;
    cfg.max_rounds = max_rounds;
    cfg.stop_when_complete = opt.stop_when_complete;
    cfg.fast_forward = opt.fast_forward;
    return run_batched_decay(g, source,
                             tuned_schedule{L_short, L_full, super}, always,
                             never, cfg);
  }

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  std::vector<node_id> informed_list;
  informed[source] = 1;
  informed_list.push_back(source);
  tracker.mark(source);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  const auto body = make_message_body();
  const radio::packet data_pkt = radio::packet::make_data(source, body);
  radio::round_buffer txs;
  core::round_sink sink(net, opt.fast_forward);
  const auto on_rx = [&](const radio::reception& rx) {
    if (rx.what == radio::observation::message &&
        rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
      informed[rx.listener] = 1;
      informed_list.push_back(rx.listener);
      tracker.mark(rx.listener);
    }
  };
  tracker.observe_round(0);  // n = 1 completes before any round (as batched)
  for (round_t t = 0; t < max_rounds && !(opt.stop_when_complete &&
                                          tracker.all_done());
       ++t) {
    const round_t pos = t % super;
    int i;  // decay exponent for this round
    if (pos < 3 * L_short)
      i = static_cast<int>(pos % L_short) + 1;
    else
      i = static_cast<int>(pos - 3 * L_short) + 1;
    txs.clear();
    for (node_id v : informed_list) {
      if (node_rng[v].with_probability_pow2(i)) txs.add(v, data_pkt);
    }
    if (sink.commit(txs, on_rx)) tracker.observe_round(net.stats().rounds);
    if (opt.stop_when_complete && tracker.all_done()) break;
  }
  sink.flush();
  return finish(net, tracker);
}

}  // namespace rn::baseline
