// Common result/measurement types for broadcast protocol runners.
//
// Protocols run for prescribed round budgets (they cannot detect global
// completion themselves); the harness *measures* completion out-of-band
// [DEV-8]. `completion_tracker` is that measurement device.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace rn::radio {

/// Outcome of one protocol execution.
struct broadcast_result {
  bool completed = false;          ///< all target nodes reached the goal state
  round_t rounds_to_complete = -1; ///< first round count at which completed
  round_t rounds_executed = 0;     ///< total simulated rounds
  std::int64_t transmissions = 0;
  std::int64_t deliveries = 0;
  std::int64_t collisions_observed = 0;
  /// Optional per-phase breakdown (e.g. Thm 1.1: wave / construction / relay).
  std::vector<std::pair<const char*, round_t>> phase_rounds;
  /// Per-node transmission counts of the dissemination network (empty if the
  /// runner does not report them). The fast-forward equivalence tests compare
  /// these vectors element-wise between execution modes. 32-bit to match the
  /// engine's per-trial-slim energy counters.
  std::vector<std::uint32_t> energy;
};

/// Tracks when every tracked node has reached its goal (e.g. "has the
/// message", "decoded all batches").
class completion_tracker {
 public:
  explicit completion_tracker(std::size_t n) : done_(n, 0), remaining_(n) {}

  /// Excludes a node from tracking (counts as already complete).
  void exclude(node_id v) { mark(v); }

  void mark(node_id v) {
    RN_REQUIRE(v < done_.size(), "node out of range");
    if (!done_[v]) {
      done_[v] = 1;
      --remaining_;
    }
  }

  [[nodiscard]] bool is_done(node_id v) const { return done_[v] != 0; }
  [[nodiscard]] bool all_done() const { return remaining_ == 0; }
  [[nodiscard]] std::size_t remaining() const { return remaining_; }

  /// Records the round at which everything first completed.
  void observe_round(round_t rounds_so_far) {
    if (remaining_ == 0 && first_complete_ < 0) first_complete_ = rounds_so_far;
  }
  [[nodiscard]] round_t first_complete_round() const { return first_complete_; }

 private:
  std::vector<char> done_;
  std::size_t remaining_;
  round_t first_complete_ = -1;
};

}  // namespace rn::radio
