#include "radio/packet.h"

namespace rn::radio {

packet packet::make_noise() {
  packet p;
  p.kind = packet_kind::noise;
  return p;
}

packet packet::make_beacon(node_id from) {
  packet p;
  p.kind = packet_kind::beacon;
  p.a = from;
  return p;
}

packet packet::make_pair(node_id blue, node_id red) {
  packet p;
  p.kind = packet_kind::pair;
  p.a = blue;
  p.b = red;
  return p;
}

packet packet::make_echo(node_id blue) {
  packet p;
  p.kind = packet_kind::echo;
  p.a = blue;
  return p;
}

packet packet::make_sigma(node_id from) {
  packet p;
  p.kind = packet_kind::sigma;
  p.a = from;
  return p;
}

packet packet::make_grow_intent(node_id red) {
  packet p;
  p.kind = packet_kind::grow_intent;
  p.a = red;
  return p;
}

packet packet::make_ack(node_id child, node_id red) {
  packet p;
  p.kind = packet_kind::ack;
  p.a = child;
  p.b = red;
  return p;
}

packet packet::make_rank(node_id from, rank_t rank) {
  packet p;
  p.kind = packet_kind::rank_announce;
  p.a = from;
  p.x = static_cast<std::uint32_t>(rank);
  return p;
}

packet packet::make_level(node_id from, level_t level) {
  packet p;
  p.kind = packet_kind::level_announce;
  p.a = from;
  p.x = static_cast<std::uint32_t>(level);
  return p;
}

packet packet::make_data(node_id origin,
                         std::shared_ptr<const packet_body> body) {
  packet p;
  p.kind = packet_kind::data;
  p.a = origin;
  p.body = std::move(body);
  return p;
}

packet packet::make_coded(std::uint32_t batch,
                          std::shared_ptr<const packet_body> body) {
  packet p;
  p.kind = packet_kind::coded;
  p.x = batch;
  p.body = std::move(body);
  return p;
}

}  // namespace rn::radio
