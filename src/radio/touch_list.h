// Flat per-block first-touch list used by the round walk.
//
// Each shard block keeps the listeners its walk touched this round, in
// first-touch order — that order *is* the reception dispatch order within the
// block (channel-v1). Capacity is fixed when the shard plan is built, to the
// block's node count: a listener is appended at most once per round, so the
// backing array never grows. That makes `push` a single unconditional store
// on the scalar path, and gives the SIMD kernels a stable tail window they
// can compress-store fresh listener ids into without bounds checks.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace rn::radio {

class touch_list {
 public:
  /// (Re)allocates the backing array for a block of `capacity` nodes and
  /// empties the list. Called once per block when the shard plan is built.
  void reset(std::size_t capacity) {
    storage_.assign(capacity, 0);
    size_ = 0;
  }

  void push(node_id v) { storage_[size_++] = v; }
  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const node_id* begin() const { return storage_.data(); }
  [[nodiscard]] const node_id* end() const { return storage_.data() + size_; }

  /// Bulk-append window for the SIMD kernels: write consecutive ids at
  /// `tail()` (capacity is guaranteed — at most one entry per block node),
  /// then commit them with `advance(count)`.
  [[nodiscard]] node_id* tail() { return storage_.data() + size_; }
  void advance(std::size_t n) { size_ += n; }

 private:
  std::vector<node_id> storage_;
  std::size_t size_ = 0;
};

}  // namespace rn::radio
