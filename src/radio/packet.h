// Radio packet model.
//
// The paper's model allows B = Omega(log n) bits per packet: a constant number
// of node ids plus O(log n) extra bits. Every packet kind we use fits that
// budget: at most two ids, one small integer field, and (for coded packets) a
// coefficient vector over a batch of Theta(log n) messages plus the payload
// body (message bodies are the Theta(B)-bit message content itself).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coding/gf2.h"
#include "common/types.h"

namespace rn::radio {

/// Discriminates the wire format of a packet.
enum class packet_kind : std::uint8_t {
  empty,          ///< deliberately content-free transmission (occupies channel)
  noise,          ///< MMV framework: transmission by a node without the message
  beacon,         ///< a: sender id
  pair,           ///< a: blue id, b: red id (recruiting decay answers)
  echo,           ///< a: echoed blue id (recruiting round 3)
  sigma,          ///< recruiting "recruited >= 2" broadcast; a: sender id
  grow_intent,    ///< [DEV-2] class-1 red announcing it wants to grow; a: red id
  ack,            ///< [DEV-2] lone child acknowledging grow_intent; a: child, b: red
  rank_announce,  ///< a: sender id, x: rank (stage III / virtual distance)
  level_announce, ///< a: sender id, x: level (BFS layering epochs)
  data,           ///< single-message broadcast payload; a: origin, body: message
  coded,          ///< RLNC packet; x: batch id, body: coeffs+payload
};

/// Payload of `coded` / `data` packets, shared to keep broadcast delivery O(1)
/// per receiver.
struct packet_body {
  coding::gf2_vector coeffs;       ///< RLNC coefficients (empty for plain data)
  std::vector<std::uint8_t> data;  ///< message bytes (or XOR-combination)
};

/// One radio transmission. Value type; `body` shared and immutable.
struct packet {
  packet_kind kind = packet_kind::empty;
  node_id a = no_node;
  node_id b = no_node;
  std::uint32_t x = 0;
  std::shared_ptr<const packet_body> body;

  [[nodiscard]] static packet make_empty() { return {}; }
  [[nodiscard]] static packet make_noise();
  [[nodiscard]] static packet make_beacon(node_id from);
  [[nodiscard]] static packet make_pair(node_id blue, node_id red);
  [[nodiscard]] static packet make_echo(node_id blue);
  [[nodiscard]] static packet make_sigma(node_id from);
  [[nodiscard]] static packet make_grow_intent(node_id red);
  [[nodiscard]] static packet make_ack(node_id child, node_id red);
  [[nodiscard]] static packet make_rank(node_id from, rank_t rank);
  [[nodiscard]] static packet make_level(node_id from, level_t level);
  [[nodiscard]] static packet make_data(node_id origin,
                                        std::shared_ptr<const packet_body> body);
  [[nodiscard]] static packet make_coded(std::uint32_t batch,
                                         std::shared_ptr<const packet_body> body);
};

}  // namespace rn::radio
