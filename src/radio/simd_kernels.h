// Internal: per-ISA row-walk kernels behind the radio engine's runtime SIMD
// dispatch (src/radio/network.cpp). Not part of the public API.
//
// A kernel walks one transmitter's CSR row segment adj[begin, end) — the
// whole row in the serial walk, or the slice owned by one shard block in
// phase B of the sharded walk — and merges each visited listener's packed
// hit word: transmitting-neighbor count in the high 32 bits, index of the
// last transmitter heard in the low 32. Listeners whose word was zero are
// appended to a first-touch list in visit order.
//
// Contract (what makes vectorization safe and byte-identity hold):
//   * rows are strictly ascending (graph builder sorts + dedups), so the
//     listeners of one segment are pairwise distinct — a gather/update/
//     scatter batch has no intra-batch conflicts;
//   * segments of one round are processed in transmitter-index order and
//     each listener's word is written by exactly one owner (serial thread or
//     owning block), so the merged count|last-sender words and the
//     first-touch order are identical to the scalar walk's, lane width
//     notwithstanding.
//
// The AVX2/AVX-512 TUs are compiled with ISA flags per-TU (see CMakeLists);
// they are only *called* after the cpuid probe confirms support, and
// RN_DISABLE_SIMD removes them from the build entirely.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "radio/touch_list.h"

namespace rn::radio::detail {

/// Block flavor (sharded phase B): every listener of the segment belongs to
/// the same block, so all first touches land on one list.
using block_segment_fn = void (*)(const node_id* adj, std::uint64_t* hits,
                                  std::uint32_t begin, std::uint32_t end,
                                  std::uint32_t tx, touch_list& touched);

/// Owner flavor (serial walk): the segment spans the whole row, so each
/// first touch is routed to its owner block's list via `owner`.
using owner_segment_fn = void (*)(const node_id* adj, std::uint64_t* hits,
                                  std::uint32_t begin, std::uint32_t end,
                                  std::uint32_t tx, touch_list* lists,
                                  const std::uint8_t* owner);

struct walk_kernels {
  block_segment_fn block_segment;
  owner_segment_fn owner_segment;
};

#if defined(RN_HAVE_SIMD_AVX2)
[[nodiscard]] walk_kernels avx2_kernels();
#endif
#if defined(RN_HAVE_SIMD_AVX512)
[[nodiscard]] walk_kernels avx512_kernels();
#endif

}  // namespace rn::radio::detail
