// AVX2 row-walk kernels (4 listeners per iteration).
//
// Per batch: one 128-bit load of four 32-bit neighbor ids, one 64-bit
// gather of their packed hit words, a vectorized count|last-sender merge,
// and a branchless first-touch mask (cmpeq + movemask). AVX2 has no scatter
// and no compress-store, so the updated words go back with four scalar
// stores and fresh ids are appended bit-by-bit from the mask — the gather
// and the masked touch detection are where the win over the scalar walk is.
//
// See simd_kernels.h for the contract that makes the batch conflict-free
// and byte-identical to the scalar walk.
#include "radio/simd_kernels.h"

#if defined(RN_HAVE_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace rn::radio::detail {
namespace {

constexpr std::uint64_t kCountMask = 0xffffffff00000000ULL;

/// Merges four packed hit words: count += 1 (high half), last sender := tx
/// (low half) — the vector form of
///   hits[v] = ((hs + (1 << 32)) & kCountMask) | tx.
inline __m256i merge_words(__m256i hs, __m256i inc, __m256i mask, __m256i tx) {
  return _mm256_or_si256(_mm256_and_si256(_mm256_add_epi64(hs, inc), mask),
                         tx);
}

/// Core batch: loads ids, gathers words, merges, stores back; returns the
/// fresh-lane mask (bit j set iff lane j's word was zero) and leaves the
/// four ids in `ids`.
inline unsigned walk_batch(const node_id* adj, std::uint64_t* hits,
                           std::uint32_t a, __m256i inc, __m256i mask,
                           __m256i tx, node_id* ids) {
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(adj + a));
  const __m256i hs = _mm256_i32gather_epi64(
      reinterpret_cast<const long long*>(hits), v, 8);
  const __m256i nhs = merge_words(hs, inc, mask, tx);
  const unsigned fresh = static_cast<unsigned>(_mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(hs, _mm256_setzero_si256()))));
  alignas(32) std::uint64_t nh[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(nh), nhs);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(ids), v);
  // No scatter in AVX2; ids within a batch are distinct (strictly ascending
  // row), so four independent stores are exact.
  hits[ids[0]] = nh[0];
  hits[ids[1]] = nh[1];
  hits[ids[2]] = nh[2];
  hits[ids[3]] = nh[3];
  return fresh;
}

void block_segment_avx2(const node_id* adj, std::uint64_t* hits,
                        std::uint32_t begin, std::uint32_t end,
                        std::uint32_t tx, touch_list& touched) {
  const __m256i inc = _mm256_set1_epi64x(1LL << 32);
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kCountMask));
  const __m256i txv = _mm256_set1_epi64x(static_cast<long long>(tx));
  node_id* const out_begin = touched.tail();
  node_id* out = out_begin;
  std::uint32_t a = begin;
  alignas(16) node_id ids[4];
  for (; a + 4 <= end; a += 4) {
    unsigned fresh = walk_batch(adj, hits, a, inc, mask, txv, ids);
    // Ascending set-bit order keeps first touches in visit (= id) order.
    while (fresh != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(fresh));
      fresh &= fresh - 1;
      *out++ = ids[lane];
    }
  }
  touched.advance(static_cast<std::size_t>(out - out_begin));
  for (; a < end; ++a) {  // scalar tail, < 4 listeners
    const node_id v = adj[a];
    const std::uint64_t hs = hits[v];
    if (hs == 0) touched.push(v);
    hits[v] = ((hs + (1ULL << 32)) & kCountMask) | tx;
  }
}

void owner_segment_avx2(const node_id* adj, std::uint64_t* hits,
                        std::uint32_t begin, std::uint32_t end,
                        std::uint32_t tx, touch_list* lists,
                        const std::uint8_t* owner) {
  const __m256i inc = _mm256_set1_epi64x(1LL << 32);
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(kCountMask));
  const __m256i txv = _mm256_set1_epi64x(static_cast<long long>(tx));
  std::uint32_t a = begin;
  alignas(16) node_id ids[4];
  for (; a + 4 <= end; a += 4) {
    unsigned fresh = walk_batch(adj, hits, a, inc, mask, txv, ids);
    while (fresh != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(fresh));
      fresh &= fresh - 1;
      const node_id v = ids[lane];
      lists[owner[v]].push(v);
    }
  }
  for (; a < end; ++a) {
    const node_id v = adj[a];
    const std::uint64_t hs = hits[v];
    if (hs == 0) lists[owner[v]].push(v);
    hits[v] = ((hs + (1ULL << 32)) & kCountMask) | tx;
  }
}

}  // namespace

walk_kernels avx2_kernels() {
  return {&block_segment_avx2, &owner_segment_avx2};
}

}  // namespace rn::radio::detail

#endif  // RN_HAVE_SIMD_AVX2 && __AVX2__
