// Synchronous radio-network round engine (paper section 1.1 model).
//
// Each round, every node either transmits one packet or listens. A listening
// node v:
//   - receives packet p  iff exactly one neighbor of v transmits (p is that
//     neighbor's packet);
//   - observes `collision` iff >= 2 neighbors transmit AND the network model
//     has collision detection; without CD it observes `silence`;
//   - observes `silence`  iff no neighbor transmits.
// Transmitters observe nothing (half-duplex radios).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"
#include "radio/packet.h"

namespace rn::radio {

/// What a listening node observes in one round.
enum class observation : std::uint8_t { silence, message, collision };

/// Delivered to the per-round receive callback for every node that observed
/// something other than silence (and, optionally, silence itself).
struct reception {
  node_id listener = no_node;
  observation what = observation::silence;
  const packet* pkt = nullptr;  ///< valid iff what == message
  node_id from = no_node;       ///< valid iff what == message
};

/// Static model configuration.
struct model {
  bool collision_detection = true;
  /// Independent per-reception erasure probability (0 = the paper's reliable
  /// channel). An erased single-transmitter reception is observed as
  /// silence; collisions are unaffected. Used for robustness testing beyond
  /// the paper's model.
  double erasure_prob = 0.0;
  std::uint64_t erasure_seed = 0x5eedULL;
};

/// Cumulative counters, cheap enough to always maintain.
struct network_stats {
  std::int64_t rounds = 0;
  std::int64_t transmissions = 0;
  std::int64_t deliveries = 0;          ///< successful single-sender receptions
  std::int64_t collisions_observed = 0; ///< listener-side collision events (CD only counts observable ones)
  std::int64_t erasures = 0;            ///< receptions lost to channel erasure
};

/// The round engine. Protocol runners provide, per round, the list of
/// transmitting nodes with their packets; the engine resolves the channel and
/// reports receptions via callback.
class network {
 public:
  network(const graph::graph& g, model m);

  [[nodiscard]] const graph::graph& topology() const { return *g_; }
  [[nodiscard]] const model& config() const { return model_; }
  [[nodiscard]] std::size_t node_count() const { return g_->node_count(); }
  [[nodiscard]] const network_stats& stats() const { return stats_; }
  [[nodiscard]] round_t now() const { return stats_.rounds; }

  /// Per-node transmission counts — the energy metric of radio networks.
  [[nodiscard]] const std::vector<std::int64_t>& energy() const {
    return tx_count_;
  }
  [[nodiscard]] std::int64_t max_energy() const;

  /// One transmission in the current round.
  struct tx {
    node_id from;
    packet pkt;
  };

  using rx_callback = std::function<void(const reception&)>;

  /// Executes one synchronous round: every node in `transmissions` transmits
  /// its packet, everyone else listens. `on_rx` is invoked for every listener
  /// that observes a message or (in the CD model) a collision. Listeners that
  /// observe silence get no callback (silence carries no information in the
  /// no-CD model, and in the CD model protocols in this library never act on
  /// it round-by-round; they act on its absence, which they infer from their
  /// own state).
  void step(const std::vector<tx>& transmissions, const rx_callback& on_rx);

 private:
  const graph::graph* g_;
  model model_;
  network_stats stats_;
  rng erasure_rng_;
  std::vector<std::int64_t> tx_count_;
  std::vector<std::uint32_t> hit_count_;   // transmitting-neighbor count
  std::vector<std::uint32_t> last_sender_; // index into transmissions
  std::vector<char> is_transmitting_;
  std::vector<node_id> touched_;
};

}  // namespace rn::radio
