// Synchronous radio-network round engine (paper section 1.1 model).
//
// Each round, every node either transmits one packet or listens. A listening
// node v:
//   - receives packet p  iff exactly one neighbor of v transmits (p is that
//     neighbor's packet);
//   - observes `collision` iff >= 2 neighbors transmit AND the network model
//     has collision detection; without CD it observes `silence`;
//   - observes `silence`  iff no neighbor transmits.
// Transmitters observe nothing (half-duplex radios).
//
// Execution modes: `step` resolves one round on the channel; `advance` skips
// a run of *idle* rounds — rounds in which no node transmits — in O(1). An
// idle round has no receptions, no erasure-RNG draws and no energy cost, so
// advancing is observably identical to stepping with an empty transmitter
// list, only cheaper. Protocol runners that know their next busy round use
// `advance` to fast-forward; see README "Fast-forward execution".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"
#include "radio/packet.h"

namespace rn::radio {

/// What a listening node observes in one round.
enum class observation : std::uint8_t { silence, message, collision };

/// Delivered to the per-round receive callback for every node that observed
/// something other than silence (and, optionally, silence itself).
struct reception {
  node_id listener = no_node;
  observation what = observation::silence;
  const packet* pkt = nullptr;  ///< valid iff what == message
  node_id from = no_node;       ///< valid iff what == message
};

/// Static model configuration.
struct model {
  bool collision_detection = true;
  /// Independent per-reception erasure probability (0 = the paper's reliable
  /// channel). An erased single-transmitter reception is observed as
  /// silence; collisions are unaffected. Used for robustness testing beyond
  /// the paper's model.
  double erasure_prob = 0.0;
  std::uint64_t erasure_seed = 0x5eedULL;
};

/// Cumulative protocol-level counters, cheap enough to always maintain.
/// `rounds` counts every protocol round, stepped or skipped: fast-forwarding
/// never changes these numbers (see the fast-forward equivalence tests).
struct network_stats {
  std::int64_t rounds = 0;
  std::int64_t transmissions = 0;
  std::int64_t deliveries = 0;          ///< successful single-sender receptions
  std::int64_t collisions_observed = 0; ///< listener-side collision events (CD only counts observable ones)
  std::int64_t erasures = 0;            ///< receptions lost to channel erasure
};

/// Process-wide engine workload counters (how much channel resolution was
/// actually simulated vs skipped). Purely diagnostic: reported by the bench
/// timing sidecar, never part of protocol results.
struct engine_totals {
  std::int64_t stepped_rounds = 0;  ///< rounds resolved by `step`
  std::int64_t skipped_rounds = 0;  ///< rounds fast-forwarded by `advance`
};

/// The round engine. Protocol runners provide, per round, the list of
/// transmitting nodes with their packets; the engine resolves the channel and
/// reports receptions via callback.
///
/// The adjacency is copied into a private CSR (compressed sparse row) layout
/// with 32-bit offsets at construction: the per-round hot loop walks one
/// contiguous row per transmitter and keeps per-listener state in flat
/// arrays, with a per-round transmitter bitmap to separate talkers from
/// listeners (bench_micro BM_NetworkStep tracks this path).
class network {
 public:
  network(const graph::graph& g, model m);
  ~network();

  network(const network&) = delete;
  network& operator=(const network&) = delete;

  [[nodiscard]] const graph::graph& topology() const { return *g_; }
  [[nodiscard]] const model& config() const { return model_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const network_stats& stats() const { return stats_; }
  [[nodiscard]] round_t now() const { return stats_.rounds; }

  /// Rounds of this network's history that were fast-forwarded (subset of
  /// stats().rounds). Diagnostic only — identical protocol outcomes are
  /// produced whether rounds are stepped or skipped.
  [[nodiscard]] std::int64_t skipped_rounds() const { return skipped_; }

  /// Aggregated stepped/skipped counts over every network destroyed so far in
  /// this process (thread-safe; used for engine accounting in bench timing).
  [[nodiscard]] static engine_totals process_totals();

  /// Per-node transmission counts — the energy metric of radio networks.
  [[nodiscard]] const std::vector<std::int64_t>& energy() const {
    return tx_count_;
  }
  [[nodiscard]] std::int64_t max_energy() const;

  /// One transmission in the current round.
  struct tx {
    node_id from;
    packet pkt;
  };

  using rx_callback = std::function<void(const reception&)>;

  /// Executes one synchronous round: every node in `transmissions` transmits
  /// its packet, everyone else listens. `on_rx` is invoked for every listener
  /// that observes a message or (in the CD model) a collision. Listeners that
  /// observe silence get no callback (silence carries no information in the
  /// no-CD model, and in the CD model protocols in this library never act on
  /// it round-by-round; they act on its absence, which they infer from their
  /// own state).
  void step(const std::vector<tx>& transmissions, const rx_callback& on_rx);

  /// Fast-forwards `idle_rounds` rounds in which no node transmits, in O(1).
  /// Observably identical to calling `step({}, on_rx)` that many times: an
  /// empty round has no transmissions, no receptions and no erasure-RNG
  /// draws, so only the round counter moves.
  void advance(round_t idle_rounds);

 private:
  const graph::graph* g_;
  model model_;
  network_stats stats_;
  std::int64_t skipped_ = 0;
  rng erasure_rng_;
  std::size_t node_count_ = 0;
  // CSR adjacency (32-bit offsets; row i spans adj_[row_start_[i] .. row_start_[i+1])).
  std::vector<std::uint32_t> row_start_;
  std::vector<node_id> adj_;
  std::vector<std::int64_t> tx_count_;
  std::vector<std::uint32_t> hit_count_;   // transmitting-neighbor count
  std::vector<std::uint32_t> last_sender_; // index into transmissions
  std::vector<char> is_transmitting_;      // per-round transmitter bitmap
  std::vector<node_id> touched_;
};

}  // namespace rn::radio
