// Synchronous radio-network round engine (paper section 1.1 model).
//
// Each round, every node either transmits one packet or listens. A listening
// node v:
//   - receives packet p  iff exactly one neighbor of v transmits (p is that
//     neighbor's packet);
//   - observes `collision` iff >= 2 neighbors transmit AND the network model
//     has collision detection; without CD it observes `silence`;
//   - observes `silence`  iff no neighbor transmits.
// Transmitters observe nothing (half-duplex radios).
//
// Execution modes: `step` resolves one round on the channel; `advance` skips
// a run of *idle* rounds — rounds in which no node transmits — in O(1). An
// idle round has no receptions, no erasure-RNG draws and no energy cost, so
// advancing is observably identical to stepping with an empty transmitter
// list, only cheaper. Protocol runners that know their next busy round use
// `advance` to fast-forward; see README "Fast-forward execution".
//
// Transmit API: the hot path is `step(round_buffer, on_rx)` — a reusable
// buffer of (node, packet reference) pairs over caller-owned packets, with
// receptions delivered through a statically-dispatched callable. A protocol
// that broadcasts one message keeps a single flyweight `packet` for its
// whole run and references it from every transmission: no per-round packet
// copies, no shared_ptr refcount churn, no std::function dispatch.
//
// Intra-trial parallelism: the CSR row walks of one round can be sharded
// across worker threads by contiguous *listener* ranges (a fixed block
// partition of the node-id space, balanced by adjacency volume). Each
// listener's packed hit word is written by exactly one owner block, and the
// merged reception dispatch visits blocks in ascending order — so receptions
// are delivered in one canonical order that depends only on the graph and
// the transmit list, never on the thread count. Results are byte-identical
// at every intra-trial thread count; see README "Intra-trial parallel
// reception".
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"
#include "radio/packet.h"
#include "radio/touch_list.h"

namespace rn::radio {

namespace detail {
struct walk_kernels;  // per-ISA row-walk kernels (simd_kernels.h, internal)
}  // namespace detail

/// Vector ISA tier of the reception row-walk kernels. The walks (serial and
/// sharded phase B) produce identical hit words and first-touch orders at
/// every tier — the kernel is selected by a runtime CPU probe and is purely
/// an execution knob, like thread counts and fast-forward.
enum class simd_level : std::uint8_t { scalar = 0, avx2 = 1, avx512 = 2 };

[[nodiscard]] const char* to_string(simd_level l);

/// Best tier this build *and* this CPU support (cpuid-probed once; always
/// `scalar` when built with RN_DISABLE_SIMD or on non-x86 hosts).
[[nodiscard]] simd_level detected_simd_level();

/// The tier the next stepped rounds will use. Defaults to the detected
/// tier; the RN_SIMD environment variable (scalar|avx2|avx512|auto) presets
/// it at startup — handy for A/B byte-identity checks without rebuilding.
[[nodiscard]] simd_level active_simd_level();

/// Overrides the active tier, clamped to detected_simd_level(). Results are
/// byte-identical at every tier (tests/test_radio.cpp pins this), so this
/// exists for benchmarks, tests, and the RN_SIMD escape hatch.
void set_simd_level(simd_level l);

/// What a listening node observes in one round.
enum class observation : std::uint8_t { silence, message, collision };

/// Delivered to the per-round receive callback for every node that observed
/// something other than silence (and, optionally, silence itself).
struct reception {
  node_id listener = no_node;
  observation what = observation::silence;
  const packet* pkt = nullptr;  ///< valid iff what == message
  node_id from = no_node;       ///< valid iff what == message
};

/// One planned transmission: the node and a reference to a packet that the
/// planner keeps alive until the round is stepped.
struct tx_ref {
  node_id from;
  const packet* pkt;
};

/// Reusable per-round transmit list. `add` references a caller-owned packet
/// (the flyweight pattern: one shared message packet for a whole broadcast);
/// `add_owned` copies a by-value packet into an internal arena whose slots
/// are recycled across rounds (for planners that mint per-node packets, e.g.
/// beacons). After the first few rounds a protocol's planning loop performs
/// no allocation at all.
class round_buffer {
 public:
  void clear() {
    items_.clear();
    arena_used_ = 0;
  }
  void add(node_id from, const packet& p) { items_.push_back({from, &p}); }
  /// A temporary packet would dangle before step() reads it — use add_owned.
  void add(node_id from, packet&& p) = delete;
  void add_owned(node_id from, packet p) {
    // std::deque keeps element addresses stable across push_back, so refs
    // handed out earlier this round stay valid while the arena grows.
    packet& slot =
        arena_used_ < arena_.size() ? arena_[arena_used_] : arena_.emplace_back();
    slot = std::move(p);
    items_.push_back({from, &slot});
    ++arena_used_;
  }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const tx_ref& operator[](std::size_t i) const {
    return items_[i];
  }

 private:
  std::vector<tx_ref> items_;
  std::deque<packet> arena_;
  std::size_t arena_used_ = 0;
};

/// Static model configuration.
struct model {
  bool collision_detection = true;
  /// Independent per-reception erasure probability (0 = the paper's reliable
  /// channel). An erased single-transmitter reception is observed as
  /// silence; collisions are unaffected. Used for robustness testing beyond
  /// the paper's model.
  double erasure_prob = 0.0;
  std::uint64_t erasure_seed = 0x5eedULL;
};

/// Cumulative protocol-level counters, cheap enough to always maintain.
/// `rounds` counts every protocol round, stepped or skipped: fast-forwarding
/// never changes these numbers (see the fast-forward equivalence tests).
struct network_stats {
  std::int64_t rounds = 0;
  std::int64_t transmissions = 0;
  std::int64_t deliveries = 0;          ///< successful single-sender receptions
  std::int64_t collisions_observed = 0; ///< listener-side collision events (CD only counts observable ones)
  std::int64_t erasures = 0;            ///< receptions lost to channel erasure
};

/// Process-wide engine workload counters (how much channel resolution was
/// actually simulated vs skipped). Purely diagnostic: reported by the bench
/// timing sidecar, never part of protocol results.
struct engine_totals {
  std::int64_t stepped_rounds = 0;  ///< rounds resolved by `step`
  std::int64_t skipped_rounds = 0;  ///< rounds fast-forwarded by `advance`
  /// Stepped rounds whose row walks ran on a SIMD kernel (subset of
  /// stepped_rounds; the rest used the scalar walk).
  std::int64_t simd_stepped_rounds = 0;
};

/// Process-wide intra-trial (sharded `step`) workload counters. Timing is
/// diagnostic only — reported by the bench timing sidecar, never part of
/// protocol results.
struct shard_totals {
  /// Rounds whose row walks ran on a shard team (vs the serial walk).
  std::int64_t parallel_rounds = 0;
  /// Cumulative busy nanoseconds per team slot (slot 0 = the stepping
  /// thread) across all networks flushed so far; sized to the largest team
  /// seen in this process.
  std::vector<std::int64_t> busy_ns;
};

/// Process-wide intra-trial parallelism policy, consulted by every `network`
/// at construction. `threads == 1` (the default) keeps construction serial;
/// `threads == 0` is *auto*: networks with at least `auto_threshold` nodes
/// borrow whatever worker capacity the trial pool is not using (see
/// `set_worker_budget`). An explicit `threads >= 2` forces that team size
/// regardless of node count or budget — results are byte-identical either
/// way, so the policy is purely an execution knob.
struct intra_trial_policy {
  unsigned threads = 1;
  std::size_t auto_threshold = 250'000;
  /// Rounds whose total row-walk volume (sum of transmitter degrees) is
  /// below this run on the stepping thread even when a team exists; the
  /// per-round synchronization would cost more than it saves.
  std::size_t min_parallel_volume = 16'384;
};

void set_intra_trial_policy(const intra_trial_policy& p);
[[nodiscard]] intra_trial_policy get_intra_trial_policy();

/// Worker-capacity accounting shared between the scenario-level trial pool
/// and intra-trial shard teams: the pool's workers hold slots while they
/// run, and anything left over (or returned by workers whose queue drained)
/// can be borrowed by networks whose trials are big enough to shard. The
/// budget caps total process concurrency at `total` (default: hardware
/// concurrency). Purely an execution detail — never affects results.
void set_worker_budget(unsigned total);
[[nodiscard]] unsigned worker_budget();
/// Takes up to `want` slots; returns how many were actually granted.
[[nodiscard]] unsigned borrow_workers(unsigned want);
void return_workers(unsigned n);

/// Hook through which a multi-process backend (src/dist) takes over the row
/// walks of stepped rounds. At construction every network offers its
/// topology to the installed hook; on adoption the network skips its private
/// adjacency copy and shard team entirely — the memory that matters at
/// n = 10^8 — and hands each stepped round's transmit list to `walk_round`,
/// which must leave per-listener hit words and per-block first-touch lists
/// exactly as the serial walk would. The reception dispatch that follows
/// (block order, erasure draws, callbacks) is shared and unchanged, which is
/// what keeps distributed results byte-identical to single-process runs.
class remote_walk {
 public:
  virtual ~remote_walk() = default;
  /// Offered a network's topology at construction. Return true to claim the
  /// walks for this network's lifetime (implementations typically match by
  /// pointer identity against a trial graph they were armed with).
  virtual bool adopt(const graph::graph& g) = 0;
  /// Paired with every successful adopt when the network is destroyed.
  virtual void release(const graph::graph& g) = 0;
  /// Executes one round's walk: tally every transmitter's hits on every
  /// listener into `hit_state` (packed count|last-sender words, indexed by
  /// node id) and append each first-touched listener to its owner entry of
  /// `block_touched`, in the canonical per-block first-touch order.
  virtual void walk_round(const round_buffer& txs, std::uint64_t* hit_state,
                          touch_list* block_touched) = 0;
};

/// Installs (nullptr clears) the process-wide hook consulted by network
/// constructors. Installers arm it around a trial and must not race network
/// construction on other threads (src/dist serializes trials for this).
void set_remote_walk(remote_walk* hook);
[[nodiscard]] remote_walk* get_remote_walk();

/// The round engine. Protocol runners provide, per round, the list of
/// transmitting nodes with their packets; the engine resolves the channel and
/// reports receptions via callback.
///
/// The adjacency is copied into a private CSR (compressed sparse row) layout
/// with 32-bit offsets at construction: the per-round hot loop walks one
/// contiguous row per transmitter and keeps per-listener state in flat
/// 32-bit arrays, with a per-round transmitter bitmap to separate talkers
/// from listeners (bench_micro BM_NetworkStep / BM_StepNoAlloc track this
/// path).
///
/// Reception order contract: listeners are resolved block by block (a fixed
/// degree-balanced partition of the node-id space computed at construction),
/// and within a block in the order the serial row walk first touches them.
/// Both the partition and the touch order depend only on the graph and the
/// transmit list, so the callback order — and with it every RNG draw the
/// callback or the erasure channel makes — is identical whether the walk ran
/// on one thread or many.
class network {
 public:
  network(const graph::graph& g, model m);
  ~network();

  network(const network&) = delete;
  network& operator=(const network&) = delete;
  // Moves are deleted on purpose: a moved-from network that still flushed
  // its round counters in ~network() would double-count the process-wide
  // engine totals, and the shard team holds a back-pointer to this object.
  network(network&&) = delete;
  network& operator=(network&&) = delete;

  [[nodiscard]] const graph::graph& topology() const { return *g_; }
  [[nodiscard]] const model& config() const { return model_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const network_stats& stats() const { return stats_; }
  [[nodiscard]] round_t now() const { return stats_.rounds; }

  /// Rounds of this network's history that were fast-forwarded (subset of
  /// stats().rounds). Diagnostic only — identical protocol outcomes are
  /// produced whether rounds are stepped or skipped.
  [[nodiscard]] std::int64_t skipped_rounds() const { return skipped_; }

  /// Aggregated stepped/skipped counts over every network flushed so far in
  /// this process (thread-safe; used for engine accounting in bench timing).
  [[nodiscard]] static engine_totals process_totals();

  /// Aggregated intra-trial shard counters/timing over every network flushed
  /// so far in this process (thread-safe; bench timing sidecar only).
  [[nodiscard]] static shard_totals process_shard_totals();

  /// Publishes this network's so-far-unflushed round counters and shard
  /// timings to the process-wide totals. Idempotent per round: each round is
  /// counted exactly once no matter how often this is called — ~network()
  /// flushes the remainder, so short-lived networks need never call it. Lets
  /// a long-running live network show up in the timing sidecar.
  void flush_totals();

  /// Per-node transmission counts — the energy metric of radio networks.
  /// 32-bit on purpose: a node transmits at most once per round and no
  /// simulation approaches 2^32 rounds, so the per-trial footprint stays
  /// 4 bytes/node even at n = 10^6.
  [[nodiscard]] const std::vector<std::uint32_t>& energy() const {
    return tx_count_;
  }
  [[nodiscard]] std::int64_t max_energy() const;

  /// Resizes this network's shard team: `threads >= 2` spawns (or reshapes)
  /// a team of that many walkers (capped at the block count), `threads <= 1`
  /// tears it down. The process policy applies this automatically at
  /// construction; call it directly to override per network (tests do).
  void enable_intra_trial(unsigned threads);
  /// Current team size (1 = serial row walks).
  [[nodiscard]] unsigned intra_trial_threads() const;
  /// Per-round volume floor below which a team, if any, is bypassed.
  void set_min_parallel_volume(std::size_t v) { min_parallel_volume_ = v; }

  /// Executes one synchronous round: every node in `txs` transmits its
  /// packet, everyone else listens. `on_rx` is invoked for every listener
  /// that observes a message or (in the CD model) a collision, in the
  /// canonical block order described above. Listeners that observe silence
  /// get no callback (silence carries no information in the no-CD model, and
  /// in the CD model protocols in this library never act on it
  /// round-by-round; they act on its absence, which they infer from their
  /// own state).
  template <class OnRx>
  void step(const round_buffer& txs, OnRx&& on_rx) {
    prepare_round(txs);
    // Resolve observations for touched listeners, block by block. The walk
    // (serial or sharded) has left every touched listener's packed hit word
    // — transmitting-neighbor count in the high half, index of the last
    // transmitter heard in the low half — in hit_state_.
    std::uint64_t* hits = hit_state_.data();
    for (auto& touched : block_touched_) {
      for (node_id v : touched) {
        const std::uint64_t hs = hits[v];
        if (!is_transmitting_[v]) {
          if ((hs >> 32) == 1) {
            if (model_.erasure_prob > 0.0 &&
                erasure_rng_.bernoulli(model_.erasure_prob)) {
              stats_.erasures += 1;  // decoding failed; observed as silence
            } else {
              const tx_ref& t = txs[hs & 0xffffffffULL];
              stats_.deliveries += 1;
              on_rx(reception{v, observation::message, t.pkt, t.from});
            }
          } else if (model_.collision_detection) {
            stats_.collisions_observed += 1;
            on_rx(reception{v, observation::collision, nullptr, no_node});
          }
          // Without CD, >=2 transmitters is indistinguishable from silence.
        }
        hits[v] = 0;
      }
      touched.clear();
    }
    for (std::size_t i = 0; i < txs.size(); ++i)
      is_transmitting_[txs[i].from] = 0;
  }

  /// Fast-forwards `idle_rounds` rounds in which no node transmits, in O(1).
  /// Observably identical to calling `step({}, on_rx)` that many times: an
  /// empty round has no transmissions, no receptions and no erasure-RNG
  /// draws, so only the round counter moves.
  void advance(round_t idle_rounds);

 private:
  class shard_team;
  friend class shard_team;

  /// Validates and marks the transmitters, then tallies every listener's
  /// transmitting neighbors into hit_state_ / block_touched_ — on this
  /// thread, or sharded across the team when the round is big enough.
  void prepare_round(const round_buffer& txs);
  void serial_walk(const round_buffer& txs);
  /// Walks the slice of every transmitter row owned by `block` (phase B of
  /// the sharded walk; row_split_ was filled by split_rows_chunk).
  void walk_block(const round_buffer& txs, unsigned block);
  /// Computes, for transmitters [begin, end), the offsets at which each row
  /// crosses a block boundary (phase A of the sharded walk).
  void split_rows_chunk(const round_buffer& txs, std::size_t begin,
                        std::size_t end);

  const graph::graph* g_;
  model model_;
  network_stats stats_;
  std::int64_t skipped_ = 0;
  rng erasure_rng_;
  std::size_t node_count_ = 0;
  // CSR adjacency (32-bit offsets; row i spans adj_[row_start_[i] .. row_start_[i+1])).
  std::vector<std::uint32_t> row_start_;
  std::vector<node_id> adj_;
  std::vector<std::uint32_t> tx_count_;
  // Packed per-listener round state: transmitting-neighbor count in the
  // high 32 bits, index of the last transmitter heard in the low 32.
  std::vector<std::uint64_t> hit_state_;
  std::vector<char> is_transmitting_;      // per-round transmitter bitmap
  // The reusable shard plan: a fixed partition of the node-id space into
  // kNumBlocks contiguous listener ranges balanced by adjacency volume.
  // block_bounds_[b] .. block_bounds_[b+1] is block b; block_of_[v] is the
  // owner block of listener v. Computed once, recycled every round; the
  // partition never depends on the team size, which is what makes reception
  // order thread-count-invariant.
  std::vector<node_id> block_bounds_;
  std::vector<std::uint8_t> block_of_;
  // Per-block first-touch lists (the dispatch order within each block);
  // capacity fixed to the block size so SIMD kernels can bulk-append.
  std::vector<touch_list> block_touched_;
  // Phase A scratch: per transmitter, kNumBlocks+1 row offsets.
  std::vector<std::uint32_t> row_split_;
  std::size_t min_parallel_volume_ = 0;
  unsigned borrowed_workers_ = 0;
  // Non-null when the process-wide remote-walk hook adopted this network:
  // stepped rounds route through it instead of the local walks, and adj_
  // stays empty (the hook's ranks hold the partitioned adjacency).
  remote_walk* remote_ = nullptr;
  // Auto mode re-polls the worker budget between rounds: a big trial
  // constructed while the pool was busy grows its team as scenario workers
  // finish and return their slots (byte-identical results at any size).
  bool auto_shards_ = false;
  int auto_poll_ = 0;
  std::unique_ptr<shard_team> team_;
  // This round's row-walk kernels, resolved from the active SIMD tier in
  // prepare_round (nullptr = the inlined scalar walk). Re-read every round
  // so set_simd_level() takes effect on live networks.
  const detail::walk_kernels* kernels_ = nullptr;
  std::int64_t simd_stepped_ = 0;  ///< stepped rounds that used kernels_
  // flush_totals() high-water marks (what was already published).
  std::int64_t flushed_stepped_ = 0;
  std::int64_t flushed_skipped_ = 0;
  std::int64_t flushed_simd_ = 0;
};

}  // namespace rn::radio
