// Synchronous radio-network round engine (paper section 1.1 model).
//
// Each round, every node either transmits one packet or listens. A listening
// node v:
//   - receives packet p  iff exactly one neighbor of v transmits (p is that
//     neighbor's packet);
//   - observes `collision` iff >= 2 neighbors transmit AND the network model
//     has collision detection; without CD it observes `silence`;
//   - observes `silence`  iff no neighbor transmits.
// Transmitters observe nothing (half-duplex radios).
//
// Execution modes: `step` resolves one round on the channel; `advance` skips
// a run of *idle* rounds — rounds in which no node transmits — in O(1). An
// idle round has no receptions, no erasure-RNG draws and no energy cost, so
// advancing is observably identical to stepping with an empty transmitter
// list, only cheaper. Protocol runners that know their next busy round use
// `advance` to fast-forward; see README "Fast-forward execution".
//
// Transmit API: the hot path is `step(round_buffer, on_rx)` — a reusable
// buffer of (node, packet reference) pairs over caller-owned packets, with
// receptions delivered through a statically-dispatched callable. A protocol
// that broadcasts one message keeps a single flyweight `packet` for its
// whole run and references it from every transmission: no per-round packet
// copies, no shared_ptr refcount churn, no std::function dispatch. The
// legacy `step(std::vector<tx>, rx_callback)` overload survives one PR as a
// thin adapter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"
#include "radio/packet.h"

namespace rn::radio {

/// What a listening node observes in one round.
enum class observation : std::uint8_t { silence, message, collision };

/// Delivered to the per-round receive callback for every node that observed
/// something other than silence (and, optionally, silence itself).
struct reception {
  node_id listener = no_node;
  observation what = observation::silence;
  const packet* pkt = nullptr;  ///< valid iff what == message
  node_id from = no_node;       ///< valid iff what == message
};

/// One planned transmission: the node and a reference to a packet that the
/// planner keeps alive until the round is stepped.
struct tx_ref {
  node_id from;
  const packet* pkt;
};

/// Reusable per-round transmit list. `add` references a caller-owned packet
/// (the flyweight pattern: one shared message packet for a whole broadcast);
/// `add_owned` copies a by-value packet into an internal arena whose slots
/// are recycled across rounds (for planners that mint per-node packets, e.g.
/// beacons). After the first few rounds a protocol's planning loop performs
/// no allocation at all.
class round_buffer {
 public:
  void clear() {
    items_.clear();
    arena_used_ = 0;
  }
  void add(node_id from, const packet& p) { items_.push_back({from, &p}); }
  /// A temporary packet would dangle before step() reads it — use add_owned.
  void add(node_id from, packet&& p) = delete;
  void add_owned(node_id from, packet p) {
    // std::deque keeps element addresses stable across push_back, so refs
    // handed out earlier this round stay valid while the arena grows.
    packet& slot =
        arena_used_ < arena_.size() ? arena_[arena_used_] : arena_.emplace_back();
    slot = std::move(p);
    items_.push_back({from, &slot});
    ++arena_used_;
  }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const tx_ref& operator[](std::size_t i) const {
    return items_[i];
  }

 private:
  std::vector<tx_ref> items_;
  std::deque<packet> arena_;
  std::size_t arena_used_ = 0;
};

/// Static model configuration.
struct model {
  bool collision_detection = true;
  /// Independent per-reception erasure probability (0 = the paper's reliable
  /// channel). An erased single-transmitter reception is observed as
  /// silence; collisions are unaffected. Used for robustness testing beyond
  /// the paper's model.
  double erasure_prob = 0.0;
  std::uint64_t erasure_seed = 0x5eedULL;
};

/// Cumulative protocol-level counters, cheap enough to always maintain.
/// `rounds` counts every protocol round, stepped or skipped: fast-forwarding
/// never changes these numbers (see the fast-forward equivalence tests).
struct network_stats {
  std::int64_t rounds = 0;
  std::int64_t transmissions = 0;
  std::int64_t deliveries = 0;          ///< successful single-sender receptions
  std::int64_t collisions_observed = 0; ///< listener-side collision events (CD only counts observable ones)
  std::int64_t erasures = 0;            ///< receptions lost to channel erasure
};

/// Process-wide engine workload counters (how much channel resolution was
/// actually simulated vs skipped). Purely diagnostic: reported by the bench
/// timing sidecar, never part of protocol results.
struct engine_totals {
  std::int64_t stepped_rounds = 0;  ///< rounds resolved by `step`
  std::int64_t skipped_rounds = 0;  ///< rounds fast-forwarded by `advance`
};

/// The round engine. Protocol runners provide, per round, the list of
/// transmitting nodes with their packets; the engine resolves the channel and
/// reports receptions via callback.
///
/// The adjacency is copied into a private CSR (compressed sparse row) layout
/// with 32-bit offsets at construction: the per-round hot loop walks one
/// contiguous row per transmitter and keeps per-listener state in flat
/// 32-bit arrays, with a per-round transmitter bitmap to separate talkers
/// from listeners (bench_micro BM_NetworkStep / BM_StepNoAlloc track this
/// path).
class network {
 public:
  network(const graph::graph& g, model m);
  ~network();

  network(const network&) = delete;
  network& operator=(const network&) = delete;

  [[nodiscard]] const graph::graph& topology() const { return *g_; }
  [[nodiscard]] const model& config() const { return model_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const network_stats& stats() const { return stats_; }
  [[nodiscard]] round_t now() const { return stats_.rounds; }

  /// Rounds of this network's history that were fast-forwarded (subset of
  /// stats().rounds). Diagnostic only — identical protocol outcomes are
  /// produced whether rounds are stepped or skipped.
  [[nodiscard]] std::int64_t skipped_rounds() const { return skipped_; }

  /// Aggregated stepped/skipped counts over every network destroyed so far in
  /// this process (thread-safe; used for engine accounting in bench timing).
  [[nodiscard]] static engine_totals process_totals();

  /// Per-node transmission counts — the energy metric of radio networks.
  /// 32-bit on purpose: a node transmits at most once per round and no
  /// simulation approaches 2^32 rounds, so the per-trial footprint stays
  /// 4 bytes/node even at n = 10^6.
  [[nodiscard]] const std::vector<std::uint32_t>& energy() const {
    return tx_count_;
  }
  [[nodiscard]] std::int64_t max_energy() const;

  /// One transmission in the current round (legacy by-value form).
  struct tx {
    node_id from;
    packet pkt;
  };

  using rx_callback = std::function<void(const reception&)>;

  /// Executes one synchronous round: every node in `txs` transmits its
  /// packet, everyone else listens. `on_rx` is invoked for every listener
  /// that observes a message or (in the CD model) a collision. Listeners that
  /// observe silence get no callback (silence carries no information in the
  /// no-CD model, and in the CD model protocols in this library never act on
  /// it round-by-round; they act on its absence, which they infer from their
  /// own state).
  template <class OnRx>
  void step(const round_buffer& txs, OnRx&& on_rx) {
    stats_.rounds += 1;
    const std::size_t m = txs.size();
    stats_.transmissions += static_cast<std::int64_t>(m);

    // Mark transmitters; a node transmitting twice in one round is a runner
    // bug.
    for (std::size_t i = 0; i < m; ++i) {
      const node_id u = txs[i].from;
      RN_REQUIRE(u < node_count_, "transmitter out of range");
      RN_REQUIRE(!is_transmitting_[u], "node transmitted twice in a round");
      is_transmitting_[u] = 1;
      tx_count_[u] += 1;
    }

    // Tally transmitting neighbors of every potential listener: one
    // contiguous CSR row walk per transmitter. Per-listener state is one
    // packed word — hit count in the high half, last sender index in the
    // low half — so each neighbor visit touches a single cache line.
    const node_id* adj = adj_.data();
    std::uint64_t* hits = hit_state_.data();
    for (std::uint32_t i = 0; i < m; ++i) {
      const node_id u = txs[i].from;
      const std::uint32_t begin = row_start_[u];
      const std::uint32_t end = row_start_[u + 1];
      for (std::uint32_t a = begin; a < end; ++a) {
        const node_id v = adj[a];
        const std::uint64_t hs = hits[v];
        if (hs == 0) touched_.push_back(v);
        hits[v] = ((hs + (1ULL << 32)) & 0xffffffff00000000ULL) | i;
      }
    }

    // Resolve observations for listeners.
    for (node_id v : touched_) {
      const std::uint64_t hs = hits[v];
      if (!is_transmitting_[v]) {
        if ((hs >> 32) == 1) {
          if (model_.erasure_prob > 0.0 &&
              erasure_rng_.bernoulli(model_.erasure_prob)) {
            stats_.erasures += 1;  // decoding failed; observed as silence
          } else {
            const tx_ref& t = txs[hs & 0xffffffffULL];
            stats_.deliveries += 1;
            on_rx(reception{v, observation::message, t.pkt, t.from});
          }
        } else if (model_.collision_detection) {
          stats_.collisions_observed += 1;
          on_rx(reception{v, observation::collision, nullptr, no_node});
        }
        // Without CD, >=2 transmitters is indistinguishable from silence.
      }
      hits[v] = 0;
    }
    touched_.clear();
    for (std::size_t i = 0; i < m; ++i) is_transmitting_[txs[i].from] = 0;
  }

  /// Legacy round execution over by-value transmissions, dispatching through
  /// std::function. Thin adapter over the round_buffer path; kept for
  /// exactly one PR.
  void step(const std::vector<tx>& transmissions, const rx_callback& on_rx);

  /// Fast-forwards `idle_rounds` rounds in which no node transmits, in O(1).
  /// Observably identical to calling `step({}, on_rx)` that many times: an
  /// empty round has no transmissions, no receptions and no erasure-RNG
  /// draws, so only the round counter moves.
  void advance(round_t idle_rounds);

 private:
  const graph::graph* g_;
  model model_;
  network_stats stats_;
  std::int64_t skipped_ = 0;
  rng erasure_rng_;
  std::size_t node_count_ = 0;
  // CSR adjacency (32-bit offsets; row i spans adj_[row_start_[i] .. row_start_[i+1])).
  std::vector<std::uint32_t> row_start_;
  std::vector<node_id> adj_;
  std::vector<std::uint32_t> tx_count_;
  // Packed per-listener round state: transmitting-neighbor count in the
  // high 32 bits, index of the last transmitter heard in the low 32.
  std::vector<std::uint64_t> hit_state_;
  std::vector<char> is_transmitting_;      // per-round transmitter bitmap
  std::vector<node_id> touched_;
  round_buffer adapter_buf_;  // scratch for the legacy step overload
};

}  // namespace rn::radio
