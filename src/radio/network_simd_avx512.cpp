// AVX-512 row-walk kernels (8 listeners per iteration).
//
// Per batch: one 256-bit load of eight 32-bit neighbor ids, a 64-bit hit-
// word gather, the vectorized count|last-sender merge, a native scatter of
// the updated words, and a mask compress-store that appends the fresh
// (first-touch) ids to the block's touch list in one instruction — the
// whole inner loop is branch-free. Requires AVX512F (gather/scatter/cmp on
// 64-bit lanes) and AVX512VL (the 256-bit epi32 compress-store).
//
// Scatter safety: lanes within a batch are pairwise distinct (rows are
// strictly ascending), so no write conflicts exist for the scatter to
// resolve; see simd_kernels.h for the full contract.
#include "radio/simd_kernels.h"

#if defined(RN_HAVE_SIMD_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <bit>

namespace rn::radio::detail {
namespace {

constexpr std::uint64_t kCountMask = 0xffffffff00000000ULL;

struct batch_result {
  __m256i ids;       ///< the eight listener ids
  __mmask8 fresh;    ///< bit j set iff lane j was a first touch
};

/// Core batch: loads ids, gathers words, merges count|last-sender, scatters
/// the updated words back.
inline batch_result walk_batch(const node_id* adj, std::uint64_t* hits,
                               std::uint32_t a, __m512i inc, __m512i mask,
                               __m512i tx) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(adj + a));
  // Masked gather with a zeroed source: same full-mask load, but GCC's
  // plain _mm512_i32gather_epi64 expands with an undefined pass-through
  // vector and trips -Wmaybe-uninitialized.
  const __m512i hs = _mm512_mask_i32gather_epi64(
      _mm512_setzero_si512(), static_cast<__mmask8>(0xff), v, hits, 8);
  const __mmask8 fresh =
      _mm512_cmpeq_epi64_mask(hs, _mm512_setzero_si512());
  const __m512i nhs = _mm512_or_si512(
      _mm512_and_si512(_mm512_add_epi64(hs, inc), mask), tx);
  _mm512_i32scatter_epi64(hits, v, nhs, 8);
  return {v, fresh};
}

void block_segment_avx512(const node_id* adj, std::uint64_t* hits,
                          std::uint32_t begin, std::uint32_t end,
                          std::uint32_t tx, touch_list& touched) {
  const __m512i inc = _mm512_set1_epi64(1LL << 32);
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kCountMask));
  const __m512i txv = _mm512_set1_epi64(static_cast<long long>(tx));
  node_id* const out_begin = touched.tail();
  node_id* out = out_begin;
  std::uint32_t a = begin;
  for (; a + 8 <= end; a += 8) {
    const batch_result b = walk_batch(adj, hits, a, inc, mask, txv);
    // Compress-store keeps fresh ids in ascending lane order — the visit
    // order the dispatch contract pins.
    _mm256_mask_compressstoreu_epi32(out, b.fresh, b.ids);
    out += std::popcount(static_cast<unsigned>(b.fresh));
  }
  touched.advance(static_cast<std::size_t>(out - out_begin));
  for (; a < end; ++a) {  // scalar tail, < 8 listeners
    const node_id v = adj[a];
    const std::uint64_t hs = hits[v];
    if (hs == 0) touched.push(v);
    hits[v] = ((hs + (1ULL << 32)) & kCountMask) | tx;
  }
}

void owner_segment_avx512(const node_id* adj, std::uint64_t* hits,
                          std::uint32_t begin, std::uint32_t end,
                          std::uint32_t tx, touch_list* lists,
                          const std::uint8_t* owner) {
  const __m512i inc = _mm512_set1_epi64(1LL << 32);
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kCountMask));
  const __m512i txv = _mm512_set1_epi64(static_cast<long long>(tx));
  std::uint32_t a = begin;
  alignas(32) node_id ids[8];
  for (; a + 8 <= end; a += 8) {
    const batch_result b = walk_batch(adj, hits, a, inc, mask, txv);
    // First touches fan out to per-owner lists, so no single compress
    // destination exists; extract the (typically few) fresh lanes instead.
    unsigned fresh = b.fresh;
    if (fresh != 0) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(ids), b.ids);
      while (fresh != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(fresh));
        fresh &= fresh - 1;
        const node_id v = ids[lane];
        lists[owner[v]].push(v);
      }
    }
  }
  for (; a < end; ++a) {
    const node_id v = adj[a];
    const std::uint64_t hs = hits[v];
    if (hs == 0) lists[owner[v]].push(v);
    hits[v] = ((hs + (1ULL << 32)) & kCountMask) | tx;
  }
}

}  // namespace

walk_kernels avx512_kernels() {
  return {&block_segment_avx512, &owner_segment_avx512};
}

}  // namespace rn::radio::detail

#endif  // RN_HAVE_SIMD_AVX512 && __AVX512F__ && __AVX512VL__
