#include "radio/network.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "graph/partitioned.h"
#include "radio/simd_kernels.h"

namespace rn::radio {

namespace {

/// Fixed block count of the shard plan. A constant (never the team size!)
/// so the listener partition — and with it the reception dispatch order —
/// is identical no matter how many threads walk the blocks. 32 blocks give
/// dynamic claiming enough granularity to balance skewed rounds while the
/// phase-A split overhead stays ~(degree + 32) per transmitter row.
constexpr unsigned kNumBlocks = 32;

std::atomic<std::int64_t> g_stepped{0};
std::atomic<std::int64_t> g_skipped{0};
std::atomic<std::int64_t> g_simd_stepped{0};
std::atomic<std::int64_t> g_parallel_rounds{0};
std::atomic<std::int64_t> g_shard_busy_ns[kNumBlocks]{};
std::atomic<unsigned> g_max_team{0};

std::mutex g_policy_mu;
intra_trial_policy g_policy;

std::mutex g_budget_mu;
bool g_budget_set = false;
unsigned g_budget_total = 0;
unsigned g_budget_used = 0;

unsigned budget_total_locked() {
  if (!g_budget_set) {
    const unsigned hw = std::thread::hardware_concurrency();
    g_budget_total = hw == 0 ? 1 : hw;
    g_budget_set = true;
  }
  return g_budget_total;
}

/// cpuid probe for the best kernel tier this build carries. The compiled-in
/// guards and the runtime checks are independent: a binary built with the
/// AVX-512 TU still runs the scalar (or AVX2) walk on older hardware.
simd_level probe_simd_level() {
  simd_level best = simd_level::scalar;
#if defined(RN_HAVE_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) best = simd_level::avx2;
#endif
#if defined(RN_HAVE_SIMD_AVX512)
  if (best == simd_level::avx2 && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl"))
    best = simd_level::avx512;
#endif
  return best;
}

simd_level clamp_to_detected(simd_level l) {
  return std::min(l, detected_simd_level());
}

/// Startup tier: the detected one, unless RN_SIMD asks for less (or, on a
/// machine whose CPU lacks the requested tier, effectively less — requests
/// are clamped, never trusted to exceed the probe).
simd_level initial_simd_level() {
  const char* e = std::getenv("RN_SIMD");
  if (e == nullptr || std::strcmp(e, "auto") == 0)
    return detected_simd_level();
  if (std::strcmp(e, "scalar") == 0 || std::strcmp(e, "off") == 0)
    return simd_level::scalar;
  if (std::strcmp(e, "avx2") == 0)
    return clamp_to_detected(simd_level::avx2);
  if (std::strcmp(e, "avx512") == 0)
    return clamp_to_detected(simd_level::avx512);
  return detected_simd_level();  // unrecognized value: behave like auto
}

std::atomic<std::uint8_t>& active_simd_storage() {
  static std::atomic<std::uint8_t> level{
      static_cast<std::uint8_t>(initial_simd_level())};
  return level;
}

/// Kernel table for a tier; nullptr means "use the inlined scalar walk".
const detail::walk_kernels* kernels_for(simd_level l) {
  switch (l) {
#if defined(RN_HAVE_SIMD_AVX512)
    case simd_level::avx512: {
      static const detail::walk_kernels k = detail::avx512_kernels();
      return &k;
    }
#endif
#if defined(RN_HAVE_SIMD_AVX2)
    case simd_level::avx2: {
      static const detail::walk_kernels k = detail::avx2_kernels();
      return &k;
    }
#endif
    default:
      return nullptr;
  }
}

}  // namespace

const char* to_string(simd_level l) {
  switch (l) {
    case simd_level::avx512:
      return "avx512";
    case simd_level::avx2:
      return "avx2";
    default:
      return "scalar";
  }
}

simd_level detected_simd_level() {
  static const simd_level level = probe_simd_level();
  return level;
}

simd_level active_simd_level() {
  return static_cast<simd_level>(
      active_simd_storage().load(std::memory_order_relaxed));
}

void set_simd_level(simd_level l) {
  active_simd_storage().store(
      static_cast<std::uint8_t>(clamp_to_detected(l)),
      std::memory_order_relaxed);
}

void set_intra_trial_policy(const intra_trial_policy& p) {
  std::lock_guard<std::mutex> lock(g_policy_mu);
  g_policy = p;
}

intra_trial_policy get_intra_trial_policy() {
  std::lock_guard<std::mutex> lock(g_policy_mu);
  return g_policy;
}

void set_worker_budget(unsigned total) {
  std::lock_guard<std::mutex> lock(g_budget_mu);
  g_budget_set = true;
  const unsigned hw = std::thread::hardware_concurrency();
  g_budget_total = total != 0 ? total : (hw == 0 ? 1 : hw);
}

unsigned worker_budget() {
  std::lock_guard<std::mutex> lock(g_budget_mu);
  return budget_total_locked();
}

unsigned borrow_workers(unsigned want) {
  std::lock_guard<std::mutex> lock(g_budget_mu);
  const unsigned total = budget_total_locked();
  const unsigned avail = total > g_budget_used ? total - g_budget_used : 0;
  const unsigned got = std::min(want, avail);
  g_budget_used += got;
  return got;
}

void return_workers(unsigned n) {
  std::lock_guard<std::mutex> lock(g_budget_mu);
  g_budget_used -= std::min(n, g_budget_used);
}

namespace {
std::atomic<remote_walk*> g_remote_walk{nullptr};
}  // namespace

void set_remote_walk(remote_walk* hook) {
  g_remote_walk.store(hook, std::memory_order_release);
}

remote_walk* get_remote_walk() {
  return g_remote_walk.load(std::memory_order_acquire);
}

/// The intra-trial worker team: `members - 1` persistent helper threads plus
/// the stepping thread, synchronized per round with a generation counter.
/// One round runs two phases — A: split every transmitter row at the block
/// boundaries (disjoint scratch slices, claimed in chunks); barrier; B: walk
/// the row slices of whole blocks (each block's hit words and touch list are
/// written only by the thread that claimed it). Dynamic claiming balances
/// skewed rounds; it cannot perturb results because the block partition and
/// the per-block walk order are claim-independent.
class network::shard_team {
 public:
  shard_team(network* net, unsigned members)
      : net_(net), members_(members), busy_ns_(members, 0),
        flushed_busy_ns_(members, 0) {
    threads_.reserve(members_ - 1);
    for (unsigned s = 1; s < members_; ++s)
      threads_.emplace_back([this, s] { worker_main(s); });
  }

  ~shard_team() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] unsigned members() const { return members_; }

  /// Runs one round's sharded walk; returns when every phase-B block is
  /// done (the caller then dispatches receptions serially).
  void run_round(const round_buffer& txs) {
    txs_ = &txs;
    next_chunk_.store(0, std::memory_order_relaxed);
    next_block_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_phase_a_ = members_;
      running_ = members_;
      ++round_gen_;
    }
    start_cv_.notify_all();
    participate(0);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return running_ == 0; });
    }
    ++parallel_rounds_;
  }

  /// Publishes so-far-unflushed per-slot busy time and round counts to the
  /// process-wide shard totals (delta-based, so repeat calls never
  /// double-count).
  void flush_process_totals() {
    unsigned seen = g_max_team.load(std::memory_order_relaxed);
    while (seen < members_ &&
           !g_max_team.compare_exchange_weak(seen, members_)) {
    }
    g_parallel_rounds.fetch_add(parallel_rounds_ - flushed_rounds_,
                                std::memory_order_relaxed);
    flushed_rounds_ = parallel_rounds_;
    for (unsigned s = 0; s < members_; ++s) {
      g_shard_busy_ns[s].fetch_add(busy_ns_[s] - flushed_busy_ns_[s],
                                   std::memory_order_relaxed);
      flushed_busy_ns_[s] = busy_ns_[s];
    }
  }

 private:
  void worker_main(unsigned slot) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return stop_ || round_gen_ != seen; });
        if (stop_) return;
        seen = round_gen_;
      }
      participate(slot);
    }
  }

  void participate(unsigned slot) {
    using clock = std::chrono::steady_clock;
    const std::size_t m = txs_->size();
    const std::size_t chunk = std::max<std::size_t>(64, m / (8 * members_));
    auto t0 = clock::now();  // rn-lint: allow(R1) shard busy_ns feeds the timing sidecar, never results JSON
    for (;;) {
      const std::size_t begin =
          next_chunk_.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= m) break;
      net_->split_rows_chunk(*txs_, begin, std::min(m, begin + chunk));
    }
    std::int64_t busy =
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)  // rn-lint: allow(R1) shard busy_ns feeds the timing sidecar, never results JSON
            .count();
    {
      // Phase barrier: no block walk may start before every row split is
      // written (a block reads the splits of *all* transmitters).
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_phase_a_ == 0) {
        phase_cv_.notify_all();
      } else {
        phase_cv_.wait(lock, [this] { return in_phase_a_ == 0; });
      }
    }
    t0 = clock::now();  // rn-lint: allow(R1) shard busy_ns feeds the timing sidecar, never results JSON
    for (;;) {
      const unsigned block =
          next_block_.fetch_add(1, std::memory_order_relaxed);
      if (block >= kNumBlocks) break;
      net_->walk_block(*txs_, block);
    }
    busy +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)  // rn-lint: allow(R1) shard busy_ns feeds the timing sidecar, never results JSON
            .count();
    busy_ns_[slot] += busy;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }

  network* net_;
  const unsigned members_;
  const round_buffer* txs_ = nullptr;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<unsigned> next_block_{0};
  std::mutex mu_;
  std::condition_variable start_cv_, phase_cv_, done_cv_;
  std::uint64_t round_gen_ = 0;
  unsigned in_phase_a_ = 0;
  unsigned running_ = 0;
  bool stop_ = false;
  std::int64_t parallel_rounds_ = 0;
  std::int64_t flushed_rounds_ = 0;
  std::vector<std::int64_t> busy_ns_;
  std::vector<std::int64_t> flushed_busy_ns_;
};

network::network(const graph::graph& g, model m)
    : g_(&g), model_(m), erasure_rng_(m.erasure_seed) {
  RN_REQUIRE(m.erasure_prob >= 0.0 && m.erasure_prob < 1.0,
             "erasure probability must be in [0, 1)");
  node_count_ = g.node_count();
  // A multi-process backend may claim this network's walks: its ranks hold
  // the partitioned adjacency, so the private CSR copy below — the dominant
  // per-trial allocation — is skipped entirely in remote mode. Only the
  // row-offset prefix is kept (it fixes the shard plan and costs 4 bytes
  // per node).
  if (remote_walk* hook = get_remote_walk();
      hook != nullptr && hook->adopt(g))
    remote_ = hook;
  // Private CSR copy: 32-bit row offsets and a contiguous neighbor array keep
  // the per-round walk cache-linear and independent of the graph's internals.
  // Rows stay sorted ascending (the graph builder's contract), which is what
  // lets the sharded walk slice each row at the block boundaries.
  row_start_.assign(node_count_ + 1, 0);
  std::size_t total = 0;
  for (node_id v = 0; v < node_count_; ++v) {
    total += g.degree(v);
    RN_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
               "adjacency too large for 32-bit CSR offsets");
    row_start_[v + 1] = static_cast<std::uint32_t>(total);
  }
  if (remote_ == nullptr) {
    adj_.reserve(total);
    for (node_id v = 0; v < node_count_; ++v)
      for (node_id u : g.neighbors(v)) adj_.push_back(u);
  }

  hit_state_.assign(node_count_, 0);
  is_transmitting_.assign(node_count_, 0);
  tx_count_.assign(node_count_, 0);

  // The reusable shard plan: kNumBlocks contiguous listener ranges with
  // roughly equal adjacency volume (a listener's walk cost is its degree).
  // Recycled across every round; independent of the team size by design.
  // Shared with the distributed backend (graph/partitioned.h) so every
  // process derives the identical partition from the degree prefix alone.
  block_bounds_ = graph::compute_block_plan(row_start_, kNumBlocks).bounds;
  block_of_.assign(node_count_, 0);
  for (unsigned b = 0; b < kNumBlocks; ++b)
    for (node_id v = block_bounds_[b]; v < block_bounds_[b + 1]; ++v)
      block_of_[v] = static_cast<std::uint8_t>(b);
  // Touch lists sized to their blocks (a listener is appended at most once
  // per round): pushes need no capacity checks and the SIMD kernels can
  // compress-store fresh ids straight into the tail.
  block_touched_.resize(kNumBlocks);
  for (unsigned b = 0; b < kNumBlocks; ++b)
    block_touched_[b].reset(block_bounds_[b + 1] - block_bounds_[b]);

  if (remote_ != nullptr) return;  // walks are external; no team to build
  const intra_trial_policy pol = get_intra_trial_policy();
  min_parallel_volume_ = pol.min_parallel_volume;
  if (pol.threads >= 2) {
    enable_intra_trial(pol.threads);
  } else if (pol.threads == 0 && node_count_ >= pol.auto_threshold) {
    // Auto mode: borrow whatever capacity the trial pool is not using right
    // now, and keep re-polling between rounds (prepare_round) — scenario
    // workers return their slots as their queue drains, so a big trial
    // constructed while the pool was still busy grows its team and
    // inherits the machine moments later.
    auto_shards_ = true;
    borrowed_workers_ = borrow_workers(kNumBlocks - 1);
    if (borrowed_workers_ > 0) enable_intra_trial(borrowed_workers_ + 1);
  }
}

network::~network() {
  flush_totals();
  team_.reset();
  if (borrowed_workers_ > 0) return_workers(borrowed_workers_);
  if (remote_ != nullptr) remote_->release(*g_);
}

void network::flush_totals() {
  const std::int64_t stepped = stats_.rounds - skipped_;
  g_stepped.fetch_add(stepped - flushed_stepped_, std::memory_order_relaxed);
  flushed_stepped_ = stepped;
  g_skipped.fetch_add(skipped_ - flushed_skipped_, std::memory_order_relaxed);
  flushed_skipped_ = skipped_;
  g_simd_stepped.fetch_add(simd_stepped_ - flushed_simd_,
                           std::memory_order_relaxed);
  flushed_simd_ = simd_stepped_;
  if (team_) team_->flush_process_totals();
}

engine_totals network::process_totals() {
  return {g_stepped.load(std::memory_order_relaxed),
          g_skipped.load(std::memory_order_relaxed),
          g_simd_stepped.load(std::memory_order_relaxed)};
}

shard_totals network::process_shard_totals() {
  shard_totals t;
  t.parallel_rounds = g_parallel_rounds.load(std::memory_order_relaxed);
  const unsigned slots =
      std::min(g_max_team.load(std::memory_order_relaxed), kNumBlocks);
  t.busy_ns.reserve(slots);
  for (unsigned s = 0; s < slots; ++s)
    t.busy_ns.push_back(g_shard_busy_ns[s].load(std::memory_order_relaxed));
  return t;
}

void network::enable_intra_trial(unsigned threads) {
  threads = std::min(threads, kNumBlocks);
  if (team_) {
    if (team_->members() == threads) return;
    team_->flush_process_totals();
    team_.reset();
  }
  if (threads >= 2) team_ = std::make_unique<shard_team>(this, threads);
}

unsigned network::intra_trial_threads() const {
  return team_ ? team_->members() : 1;
}

std::int64_t network::max_energy() const {
  std::int64_t best = 0;
  for (std::uint32_t e : tx_count_)
    best = std::max(best, static_cast<std::int64_t>(e));
  return best;
}

void network::advance(round_t idle_rounds) {
  RN_REQUIRE(idle_rounds >= 0, "cannot advance by a negative round count");
  stats_.rounds += idle_rounds;
  skipped_ += idle_rounds;
}

void network::prepare_round(const round_buffer& txs) {
  stats_.rounds += 1;
  const std::size_t m = txs.size();
  stats_.transmissions += static_cast<std::int64_t>(m);

  // Auto-mode growth: every 64 stepped rounds, try to borrow capacity that
  // scenario workers have returned since construction. Team size is purely
  // an execution detail, so growing mid-run cannot perturb results.
  if (auto_shards_ && --auto_poll_ <= 0) {
    auto_poll_ = 64;
    if (borrowed_workers_ + 1 < kNumBlocks) {
      const unsigned extra =
          borrow_workers(kNumBlocks - 1 - borrowed_workers_);
      if (extra > 0) {
        borrowed_workers_ += extra;
        enable_intra_trial(borrowed_workers_ + 1);
      }
    }
  }

  // Mark transmitters; a node transmitting twice in one round is a runner
  // bug. The row volume decides whether sharding this round's walk can pay
  // for its two synchronization points.
  std::size_t volume = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const node_id u = txs[i].from;
    RN_REQUIRE(u < node_count_, "transmitter out of range");
    RN_REQUIRE(!is_transmitting_[u], "node transmitted twice in a round");
    is_transmitting_[u] = 1;
    tx_count_[u] += 1;
    volume += row_start_[u + 1] - row_start_[u];
  }

  if (remote_ != nullptr) {
    // The adopted backend must leave hit words and per-block touch lists
    // exactly as serial_walk would; the dispatch in step() is shared.
    remote_->walk_round(txs, hit_state_.data(), block_touched_.data());
    return;
  }

  // This round's row-walk kernels (nullptr = inlined scalar walk). Resolved
  // per round so flipping the process-wide tier affects live networks; both
  // the serial walk and every phase-B block of a sharded round use the same
  // table, so a round is wholly SIMD or wholly scalar.
  kernels_ = kernels_for(active_simd_level());
  if (kernels_ != nullptr) ++simd_stepped_;

  if (team_ && m > 0 && volume >= min_parallel_volume_) {
    row_split_.resize(m * (kNumBlocks + 1));
    team_->run_round(txs);
  } else {
    serial_walk(txs);
  }
}

void network::serial_walk(const round_buffer& txs) {
  // Tally transmitting neighbors of every potential listener: one
  // contiguous CSR row walk per transmitter. Per-listener state is one
  // packed word — hit count in the high half, last sender index in the
  // low half — so each neighbor visit touches a single cache line. First
  // touches land on the owner block's list, in walk order: exactly the
  // order a sharded walk of the same round produces.
  const node_id* adj = adj_.data();
  std::uint64_t* hits = hit_state_.data();
  const std::uint8_t* owner = block_of_.data();
  const auto m = static_cast<std::uint32_t>(txs.size());
  if (kernels_ != nullptr) {
    // SIMD tier: whole-row segments through the owner-routed kernel. Same
    // words, same first-touch order — just wider (simd_kernels.h).
    const detail::owner_segment_fn segment = kernels_->owner_segment;
    for (std::uint32_t i = 0; i < m; ++i) {
      const node_id u = txs[i].from;
      segment(adj, hits, row_start_[u], row_start_[u + 1], i,
              block_touched_.data(), owner);
    }
    return;
  }
  for (std::uint32_t i = 0; i < m; ++i) {
    const node_id u = txs[i].from;
    const std::uint32_t begin = row_start_[u];
    const std::uint32_t end = row_start_[u + 1];
    for (std::uint32_t a = begin; a < end; ++a) {
      const node_id v = adj[a];
      const std::uint64_t hs = hits[v];
      if (hs == 0) block_touched_[owner[v]].push(v);
      hits[v] = ((hs + (1ULL << 32)) & 0xffffffff00000000ULL) | i;
    }
  }
}

void network::split_rows_chunk(const round_buffer& txs, std::size_t begin,
                               std::size_t end) {
  // Rows are sorted ascending and blocks are contiguous id ranges, so one
  // linear pass per row finds every block boundary: O(degree + kNumBlocks).
  const node_id* adj = adj_.data();
  const node_id* bounds = block_bounds_.data();
  constexpr std::size_t stride = kNumBlocks + 1;
  for (std::size_t i = begin; i < end; ++i) {
    const node_id u = txs[i].from;
    std::uint32_t a = row_start_[u];
    const std::uint32_t row_end = row_start_[u + 1];
    std::uint32_t* out = row_split_.data() + i * stride;
    for (unsigned b = 0; b < kNumBlocks; ++b) {
      out[b] = a;
      const node_id limit = bounds[b + 1];
      while (a < row_end && adj[a] < limit) ++a;
    }
    out[kNumBlocks] = row_end;
  }
}

void network::walk_block(const round_buffer& txs, unsigned block) {
  // Owner-computes: every hit word and touch-list entry of this block's
  // listeners is written here and nowhere else this round. Iterating
  // transmitters in index order keeps the packed "last sender" and the
  // first-touch order identical to the serial walk's.
  const node_id* adj = adj_.data();
  std::uint64_t* hits = hit_state_.data();
  touch_list& touched = block_touched_[block];
  const auto m = static_cast<std::uint32_t>(txs.size());
  const std::uint32_t* split = row_split_.data();
  constexpr std::size_t stride = kNumBlocks + 1;
  if (kernels_ != nullptr) {
    // SIMD tier: this block's row slices through the single-destination
    // kernel (all listeners here belong to `block` by construction).
    const detail::block_segment_fn segment = kernels_->block_segment;
    for (std::uint32_t i = 0; i < m; ++i) {
      segment(adj, hits, split[i * stride + block],
              split[i * stride + block + 1], i, touched);
    }
    return;
  }
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t begin = split[i * stride + block];
    const std::uint32_t end = split[i * stride + block + 1];
    for (std::uint32_t a = begin; a < end; ++a) {
      const node_id v = adj[a];
      const std::uint64_t hs = hits[v];
      if (hs == 0) touched.push(v);
      hits[v] = ((hs + (1ULL << 32)) & 0xffffffff00000000ULL) | i;
    }
  }
}

}  // namespace rn::radio
