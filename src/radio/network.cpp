#include "radio/network.h"

#include <atomic>
#include <limits>

#include "common/check.h"

namespace rn::radio {

namespace {
std::atomic<std::int64_t> g_stepped{0};
std::atomic<std::int64_t> g_skipped{0};
}  // namespace

network::network(const graph::graph& g, model m)
    : g_(&g), model_(m), erasure_rng_(m.erasure_seed) {
  RN_REQUIRE(m.erasure_prob >= 0.0 && m.erasure_prob < 1.0,
             "erasure probability must be in [0, 1)");
  node_count_ = g.node_count();
  // Private CSR copy: 32-bit row offsets and a contiguous neighbor array keep
  // the per-round walk cache-linear and independent of the graph's internals.
  row_start_.assign(node_count_ + 1, 0);
  std::size_t total = 0;
  for (node_id v = 0; v < node_count_; ++v) {
    total += g.degree(v);
    RN_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
               "adjacency too large for 32-bit CSR offsets");
    row_start_[v + 1] = static_cast<std::uint32_t>(total);
  }
  adj_.reserve(total);
  for (node_id v = 0; v < node_count_; ++v)
    for (node_id u : g.neighbors(v)) adj_.push_back(u);

  hit_count_.assign(node_count_, 0);
  last_sender_.assign(node_count_, 0);
  is_transmitting_.assign(node_count_, 0);
  tx_count_.assign(node_count_, 0);
}

network::~network() {
  g_stepped.fetch_add(stats_.rounds - skipped_, std::memory_order_relaxed);
  g_skipped.fetch_add(skipped_, std::memory_order_relaxed);
}

engine_totals network::process_totals() {
  return {g_stepped.load(std::memory_order_relaxed),
          g_skipped.load(std::memory_order_relaxed)};
}

std::int64_t network::max_energy() const {
  std::int64_t best = 0;
  for (std::int64_t e : tx_count_) best = std::max(best, e);
  return best;
}

void network::advance(round_t idle_rounds) {
  RN_REQUIRE(idle_rounds >= 0, "cannot advance by a negative round count");
  stats_.rounds += idle_rounds;
  skipped_ += idle_rounds;
}

void network::step(const std::vector<tx>& transmissions,
                   const rx_callback& on_rx) {
  stats_.rounds += 1;
  stats_.transmissions += static_cast<std::int64_t>(transmissions.size());

  // Mark transmitters; a node transmitting twice in one round is a runner bug.
  for (const auto& t : transmissions) {
    RN_REQUIRE(t.from < node_count_, "transmitter out of range");
    RN_REQUIRE(!is_transmitting_[t.from], "node transmitted twice in a round");
    is_transmitting_[t.from] = 1;
    tx_count_[t.from] += 1;
  }

  // Tally transmitting neighbors of every potential listener: one contiguous
  // CSR row walk per transmitter.
  const node_id* adj = adj_.data();
  for (std::uint32_t i = 0; i < transmissions.size(); ++i) {
    const node_id u = transmissions[i].from;
    const std::uint32_t begin = row_start_[u];
    const std::uint32_t end = row_start_[u + 1];
    for (std::uint32_t a = begin; a < end; ++a) {
      const node_id v = adj[a];
      if (hit_count_[v] == 0) touched_.push_back(v);
      hit_count_[v] += 1;
      last_sender_[v] = i;
    }
  }

  // Resolve observations for listeners.
  for (node_id v : touched_) {
    if (!is_transmitting_[v]) {
      if (hit_count_[v] == 1) {
        if (model_.erasure_prob > 0.0 &&
            erasure_rng_.bernoulli(model_.erasure_prob)) {
          stats_.erasures += 1;  // decoding failed; observed as silence
        } else {
          const auto& t = transmissions[last_sender_[v]];
          stats_.deliveries += 1;
          if (on_rx) on_rx({v, observation::message, &t.pkt, t.from});
        }
      } else if (model_.collision_detection) {
        stats_.collisions_observed += 1;
        if (on_rx) on_rx({v, observation::collision, nullptr, no_node});
      }
      // Without CD, >=2 transmitters is indistinguishable from silence.
    }
    hit_count_[v] = 0;
  }
  touched_.clear();
  for (const auto& t : transmissions) is_transmitting_[t.from] = 0;
}

}  // namespace rn::radio
