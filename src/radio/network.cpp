#include "radio/network.h"

#include <atomic>
#include <limits>

#include "common/check.h"

namespace rn::radio {

namespace {
std::atomic<std::int64_t> g_stepped{0};
std::atomic<std::int64_t> g_skipped{0};
}  // namespace

network::network(const graph::graph& g, model m)
    : g_(&g), model_(m), erasure_rng_(m.erasure_seed) {
  RN_REQUIRE(m.erasure_prob >= 0.0 && m.erasure_prob < 1.0,
             "erasure probability must be in [0, 1)");
  node_count_ = g.node_count();
  // Private CSR copy: 32-bit row offsets and a contiguous neighbor array keep
  // the per-round walk cache-linear and independent of the graph's internals.
  row_start_.assign(node_count_ + 1, 0);
  std::size_t total = 0;
  for (node_id v = 0; v < node_count_; ++v) {
    total += g.degree(v);
    RN_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
               "adjacency too large for 32-bit CSR offsets");
    row_start_[v + 1] = static_cast<std::uint32_t>(total);
  }
  adj_.reserve(total);
  for (node_id v = 0; v < node_count_; ++v)
    for (node_id u : g.neighbors(v)) adj_.push_back(u);

  hit_state_.assign(node_count_, 0);
  is_transmitting_.assign(node_count_, 0);
  tx_count_.assign(node_count_, 0);
}

network::~network() {
  g_stepped.fetch_add(stats_.rounds - skipped_, std::memory_order_relaxed);
  g_skipped.fetch_add(skipped_, std::memory_order_relaxed);
}

engine_totals network::process_totals() {
  return {g_stepped.load(std::memory_order_relaxed),
          g_skipped.load(std::memory_order_relaxed)};
}

std::int64_t network::max_energy() const {
  std::int64_t best = 0;
  for (std::uint32_t e : tx_count_)
    best = std::max(best, static_cast<std::int64_t>(e));
  return best;
}

void network::advance(round_t idle_rounds) {
  RN_REQUIRE(idle_rounds >= 0, "cannot advance by a negative round count");
  stats_.rounds += idle_rounds;
  skipped_ += idle_rounds;
}

void network::step(const std::vector<tx>& transmissions,
                   const rx_callback& on_rx) {
  adapter_buf_.clear();
  for (const auto& t : transmissions) adapter_buf_.add(t.from, t.pkt);
  if (on_rx) {
    step(adapter_buf_, [&](const reception& rx) { on_rx(rx); });
  } else {
    step(adapter_buf_, [](const reception&) {});
  }
}

}  // namespace rn::radio
