#include "radio/network.h"

#include "common/check.h"

namespace rn::radio {

network::network(const graph::graph& g, model m)
    : g_(&g), model_(m), erasure_rng_(m.erasure_seed) {
  RN_REQUIRE(m.erasure_prob >= 0.0 && m.erasure_prob < 1.0,
             "erasure probability must be in [0, 1)");
  hit_count_.assign(g.node_count(), 0);
  last_sender_.assign(g.node_count(), 0);
  is_transmitting_.assign(g.node_count(), 0);
  tx_count_.assign(g.node_count(), 0);
}

std::int64_t network::max_energy() const {
  std::int64_t best = 0;
  for (std::int64_t e : tx_count_) best = std::max(best, e);
  return best;
}

void network::step(const std::vector<tx>& transmissions,
                   const rx_callback& on_rx) {
  stats_.rounds += 1;
  stats_.transmissions += static_cast<std::int64_t>(transmissions.size());

  // Mark transmitters; a node transmitting twice in one round is a runner bug.
  for (const auto& t : transmissions) {
    RN_REQUIRE(t.from < g_->node_count(), "transmitter out of range");
    RN_REQUIRE(!is_transmitting_[t.from], "node transmitted twice in a round");
    is_transmitting_[t.from] = 1;
    tx_count_[t.from] += 1;
  }

  // Tally transmitting neighbors of every potential listener.
  for (std::uint32_t i = 0; i < transmissions.size(); ++i) {
    const node_id u = transmissions[i].from;
    for (node_id v : g_->neighbors(u)) {
      if (hit_count_[v] == 0) touched_.push_back(v);
      hit_count_[v] += 1;
      last_sender_[v] = i;
    }
  }

  // Resolve observations for listeners.
  for (node_id v : touched_) {
    if (!is_transmitting_[v]) {
      if (hit_count_[v] == 1) {
        if (model_.erasure_prob > 0.0 &&
            erasure_rng_.bernoulli(model_.erasure_prob)) {
          stats_.erasures += 1;  // decoding failed; observed as silence
        } else {
          const auto& t = transmissions[last_sender_[v]];
          stats_.deliveries += 1;
          if (on_rx) on_rx({v, observation::message, &t.pkt, t.from});
        }
      } else if (model_.collision_detection) {
        stats_.collisions_observed += 1;
        if (on_rx) on_rx({v, observation::collision, nullptr, no_node});
      }
      // Without CD, >=2 transmitters is indistinguishable from silence.
    }
    hit_count_[v] = 0;
  }
  touched_.clear();
  for (const auto& t : transmissions) is_transmitting_[t.from] = 0;
}

}  // namespace rn::radio
