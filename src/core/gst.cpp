#include "core/gst.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/check.h"
#include "common/math.h"
#include "graph/bfs.h"

namespace rn::core {

std::size_t gst::member_count() const {
  return static_cast<std::size_t>(
      std::count(member.begin(), member.end(), char{1}));
}

level_t gst::max_level() const {
  level_t m = 0;
  for (std::size_t v = 0; v < level.size(); ++v)
    if (member[v] && level[v] != no_level) m = std::max(m, level[v]);
  return m;
}

rank_t gst::max_rank() const {
  rank_t m = 0;
  for (std::size_t v = 0; v < rank.size(); ++v)
    if (member[v] && rank[v] != no_rank) m = std::max(m, rank[v]);
  return m;
}

gst_derived derive(const graph::graph& g, const gst& t) {
  const std::size_t n = t.node_count();
  gst_derived d;
  d.stretch_child.assign(n, no_node);
  d.is_stretch_head.assign(n, 0);
  d.virtual_distance.assign(n, no_level);

  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v]) continue;
    const node_id p = t.parent[v];
    if (p == no_node) {
      d.is_stretch_head[v] = 1;
    } else if (t.rank[p] != t.rank[v]) {
      d.is_stretch_head[v] = 1;
    } else {
      RN_REQUIRE(d.stretch_child[p] == no_node,
                 "ranking rule violated: two same-rank children");
      d.stretch_child[p] = v;
    }
  }

  // Directed BFS over G' from the roots. G-edges go both ways (members only);
  // fast edges jump from each stretch head to every later node of its stretch.
  std::deque<node_id> queue;
  for (node_id r : t.roots) {
    RN_REQUIRE(t.member[r], "root must be a member");
    if (d.virtual_distance[r] == no_level) {
      d.virtual_distance[r] = 0;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    const node_id u = queue.front();
    queue.pop_front();
    const level_t du = d.virtual_distance[u];
    auto relax = [&](node_id w) {
      if (t.member[w] && d.virtual_distance[w] == no_level) {
        d.virtual_distance[w] = du + 1;
        queue.push_back(w);
      }
    };
    for (node_id w : g.neighbors(u)) relax(w);
    if (d.is_stretch_head[u]) {
      for (node_id w = d.stretch_child[u]; w != no_node;
           w = d.stretch_child[w])
        relax(w);
    }
  }
  return d;
}

std::vector<rank_t> compute_ranks(const gst& t) {
  const std::size_t n = t.node_count();
  // Order members by decreasing level so children precede parents.
  std::vector<node_id> order;
  order.reserve(n);
  for (node_id v = 0; v < n; ++v)
    if (t.member[v] && t.level[v] != no_level) order.push_back(v);
  std::sort(order.begin(), order.end(), [&](node_id a, node_id b) {
    return t.level[a] > t.level[b];
  });

  std::vector<rank_t> best(n, 0);        // max child rank seen so far
  std::vector<int> best_count(n, 0);     // children attaining it
  std::vector<rank_t> out(n, no_rank);
  for (node_id v : order) {
    out[v] = best[v] == 0 ? 1 : (best_count[v] >= 2 ? best[v] + 1 : best[v]);
    const node_id p = t.parent[v];
    if (p != no_node) {
      if (out[v] > best[p]) {
        best[p] = out[v];
        best_count[p] = 1;
      } else if (out[v] == best[p]) {
        best_count[p] += 1;
      }
    }
  }
  return out;
}

std::vector<std::string> validate_gst(const graph::graph& g, const gst& t) {
  std::vector<std::string> errors;
  auto fail = [&](const std::string& s) { errors.push_back(s); };
  const std::size_t n = t.node_count();
  if (g.node_count() != n) {
    fail("gst size does not match graph");
    return errors;
  }

  std::vector<char> is_root(n, 0);
  for (node_id r : t.roots) {
    if (r >= n || !t.member[r])
      fail("root out of range or not a member");
    else
      is_root[r] = 1;
  }

  // Structure + BFS levels.
  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v]) continue;
    if (t.level[v] == no_level) {
      fail("member node " + std::to_string(v) + " has no level");
      continue;
    }
    if (is_root[v]) {
      if (t.level[v] != 0)
        fail("root " + std::to_string(v) + " not at level 0");
      if (t.parent[v] != no_node)
        fail("root " + std::to_string(v) + " has a parent");
      continue;
    }
    const node_id p = t.parent[v];
    if (p == no_node || p >= n || !t.member[p]) {
      fail("member node " + std::to_string(v) + " lacks a valid parent");
      continue;
    }
    if (!g.has_edge(v, p))
      fail("parent edge " + std::to_string(v) + "-" + std::to_string(p) +
           " not in graph");
    if (t.level[v] != t.level[p] + 1)
      fail("node " + std::to_string(v) + " level != parent level + 1");
  }
  if (!errors.empty()) return errors;

  // Levels must be true forest distances: no member may have a member
  // neighbor two or more levels below it (BFS property).
  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v]) continue;
    for (node_id w : g.neighbors(v)) {
      if (!t.member[w]) continue;
      if (t.level[w] > t.level[v] + 1)
        fail("levels not a BFS layering at edge " + std::to_string(v) + "-" +
             std::to_string(w));
    }
  }

  // Ranking rule.
  const auto expect = compute_ranks(t);
  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v]) continue;
    if (t.rank[v] != expect[v])
      fail("node " + std::to_string(v) + " rank " + std::to_string(t.rank[v]) +
           " violates the ranking rule (expected " +
           std::to_string(expect[v]) + ")");
  }

  // Max rank bound: ceil(log2(m)) + 1 covers the m=1 and rank-1 leaf cases
  // (a rank-r node has >= 2^(r-1) descendants).
  const auto m = t.member_count();
  if (m > 0) {
    const rank_t bound = static_cast<rank_t>(ceil_log2(m < 2 ? 2 : m)) + 1;
    if (t.max_rank() > bound)
      fail("max rank " + std::to_string(t.max_rank()) + " exceeds bound " +
           std::to_string(bound));
  }

  // Collision-freeness (induced-matching form): if u's parent v has the same
  // rank r, then no *other* rank-r node at u's parent level that also has a
  // same-rank child may be adjacent to u.
  std::vector<char> has_same_rank_child(n, 0);
  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v]) continue;
    const node_id p = t.parent[v];
    if (p != no_node && t.rank[p] == t.rank[v]) has_same_rank_child[p] = 1;
  }
  for (node_id u = 0; u < n; ++u) {
    if (!t.member[u]) continue;
    const node_id p = t.parent[u];
    if (p == no_node || t.rank[p] != t.rank[u]) continue;
    for (node_id w : g.neighbors(u)) {
      if (w == p || !t.member[w]) continue;
      if (t.level[w] == t.level[u] - 1 && t.rank[w] == t.rank[u] &&
          has_same_rank_child[w]) {
        std::ostringstream os;
        os << "collision-freeness violated: node " << u << " (rank "
           << t.rank[u] << ", parent " << p << ") adjacent to same-rank parent "
           << w;
        fail(os.str());
      }
    }
  }
  return errors;
}

gst ranked_bfs(const graph::graph& g, node_id source) {
  const auto b = graph::bfs(g, source);
  gst t;
  const std::size_t n = g.node_count();
  t.roots = {source};
  t.member.assign(n, 0);
  t.level = b.level;
  t.parent = b.parent;
  t.rank.assign(n, no_rank);
  for (node_id v = 0; v < n; ++v)
    if (b.level[v] != no_level) t.member[v] = 1;
  t.rank = compute_ranks(t);
  return t;
}

}  // namespace rn::core
