// The bipartite assignment algorithm (paper section 2.2.3): one instance
// solves the rank-i assignment problem between adjacent BFS layers ("reds" at
// level l-1, "blues" of rank i at level l).
//
// Per epoch:
//   Stage I   — loner detection (one probe round where all active reds
//               transmit: a blue that *receives a message* has exactly one
//               active red neighbor), then a Decay phase in which loners
//               announce themselves, making their neighbors loner-parents.
//   Stage II  — part 1: loner-parents run a Recruiting instance; recruits are
//               permanent. Parts 2/3: the remaining active reds split into
//               brisk/lazy halves, each running a Recruiting instance;
//               "many"-children are permanent, lone children only temporary.
//   Stage III — marked reds (loner-parents; part-2/3 reds with 0 or >= 2
//               recruits) are ranked (i with one child, i+1 with more) and
//               retire; they announce (id, rank) in a Decay phase so that
//               lower-rank blues can adopt them as parents. Temporary pairs
//               dissolve; lone-child reds stay active for the next epoch.
//
// The shared `build_state` is the blackboard all problems of one distributed
// construction write into; every write a problem performs corresponds to
// knowledge the participating node has locally learned.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/recruiting.h"
#include "graph/graph.h"
#include "radio/network.h"

namespace rn::core {

/// Blackboard for a distributed GST construction (indexed by node id).
struct build_state {
  std::vector<std::int32_t> ring_of;     ///< ring index; -1 = not a member
  std::vector<level_t> rel_level;        ///< level within the ring
  std::vector<rank_t> rank;              ///< no_rank until determined
  std::vector<node_id> parent;
  std::vector<rank_t> parent_rank;
  std::vector<node_id> stretch_child;    ///< same-rank (solo) child
  std::vector<char> assigned;            ///< has a permanent parent (or root)
  std::vector<level_t> vdist;            ///< filled by the labeling protocol
  int fallback_finalizations = 0;        ///< [DEV-9] diagnostics
  int fallback_adoptions = 0;

  explicit build_state(std::size_t n)
      : ring_of(n, -1),
        rel_level(n, no_level),
        rank(n, no_rank),
        parent(n, no_node),
        parent_rank(n, no_rank),
        stretch_child(n, no_node),
        assigned(n, 0),
        vdist(n, no_level) {}
};

class assignment_problem {
 public:
  struct config {
    const graph::graph* g = nullptr;
    build_state* st = nullptr;
    std::int32_t ring = 0;
    level_t blue_level = 1;    ///< relative level of the blue layer (>= 1)
    rank_t target_rank = 1;    ///< i
    /// All ring members at the blue / red layers (roles filtered internally).
    std::vector<node_id> blue_layer_nodes;
    std::vector<node_id> red_layer_nodes;
    int L = 1;
    int decay_phases = 1;
    int epochs = 1;
    int recruit_iterations = 1;
    int recruit_exp_step = 1;
    std::uint64_t seed = 1;
  };

  explicit assignment_problem(config c);

  /// Total protocol rounds one problem consumes (identical for all problems,
  /// which is what makes slot-based pipelining possible).
  [[nodiscard]] static round_t rounds_required(int L, int decay_phases,
                                               int epochs,
                                               int recruit_iterations);
  [[nodiscard]] bool finished() const { return sub_ == sub_phase::done; }

  void plan(radio::round_buffer& out);
  void on_reception(const radio::reception& rx);
  void end_round();

  /// Fast-forward support: number of upcoming consumed rounds guaranteed
  /// *quiet* — plan() would produce no transmission and draw no randomness,
  /// provided nothing is received (sound whenever every problem sharing those
  /// rounds is quiet too, since then nobody transmits at all). Never crosses
  /// a sub-phase boundary, so sub-phase transition side effects (brisk/lazy
  /// coins, recruiting part construction) happen exactly where naive stepping
  /// performs them.
  [[nodiscard]] round_t quiet_rounds() const;
  /// Skips `k` quiet rounds (k <= quiet_rounds()); performs the same
  /// bookkeeping and sub-phase transitions as k empty plan/end_round cycles.
  void skip_rounds(round_t k);

  /// Active (not yet retired) reds at the start of each epoch — the quantity
  /// whose geometric decay Lemma 2.4 proves (experiment E7).
  [[nodiscard]] const std::vector<std::size_t>& epoch_active_reds() const {
    return epoch_active_reds_;
  }

 private:
  enum class sub_phase : std::uint8_t {
    p0_ident,
    s1_probe,
    s1_decay,
    part1,
    part2,
    part3,
    s3_adopt,
    done,
  };

  config cfg_;
  sub_phase sub_ = sub_phase::p0_ident;
  round_t rounds_left_ = 0;
  round_t phase_pos_ = 0;  ///< rounds consumed within the current sub-phase
  int epoch_ = 0;

  std::vector<node_id> blues_;          // unassigned rank-i blues
  std::vector<char> is_blue_;           // indexed by node id
  std::vector<char> blue_assigned_permanently_;  // index-aligned with blues_
  std::vector<char> blue_temp_this_epoch_;
  std::vector<char> blue_is_loner_;

  std::vector<node_id> red_candidates_;  // unranked reds at the red layer
  std::vector<char> is_red_;
  std::vector<char> red_active_;       // heard a blue in P0, not yet retired
  std::vector<char> red_loner_parent_;
  std::vector<char> red_brisk_;
  struct temp_pair {
    node_id red;
    node_id blue;
  };
  std::vector<temp_pair> temp_pairs_;  // current epoch's lone-child pairs

  std::vector<std::pair<node_id, rank_t>> announcers_;  // stage III (id, rank)
  std::vector<char> adopt_eligible_;                    // by node id

  std::unique_ptr<recruiting_instance> recruit_;
  std::vector<rng> rng_;  // per local participant (blue layer + red layer)
  std::vector<std::int32_t> rng_idx_;
  std::vector<std::size_t> epoch_active_reds_;

  rng coin_;  // brisk/lazy coins (per-red derived streams)

  [[nodiscard]] rng& node_rng(node_id v);
  void enter(sub_phase s);
  void advance_subphase();
  void start_epoch();
  void build_part(int part);
  void apply_part_results(int part);
  void stage3_computations();
  void finish_problem();
  [[nodiscard]] round_t decay_rounds() const {
    return static_cast<round_t>(cfg_.decay_phases) * (cfg_.L + 1);
  }
};

/// Standalone driver for tests and experiment E7: solves one rank phase on a
/// bipartite layered graph and reports per-epoch active-red counts.
struct assignment_run_result {
  round_t rounds = 0;
  bool all_assigned = true;
  int fallback_finalizations = 0;
  int fallback_adoptions = 0;
  std::vector<std::size_t> epoch_active_reds;
  build_state st{0};
};
[[nodiscard]] assignment_run_result run_assignment(
    const graph::graph& g, const std::vector<node_id>& reds,
    const std::vector<node_id>& blues, rank_t target_rank, int L,
    int decay_phases, int epochs, int recruit_iterations, int recruit_exp_step,
    std::uint64_t seed, bool fast_forward = false);

}  // namespace rn::core
