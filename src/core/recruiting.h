// The Recruiting protocol (paper Lemma 2.3).
//
// A bipartite primitive: red nodes adopt ("recruit") blue neighbors such that
// w.h.p. (a) every blue with a participating red neighbor is recruited,
// (b) every red knows whether it recruited 0, 1 or >= 2 blues, and (c) every
// recruited blue knows whether its parent recruited exactly one (it alone) or
// at least two blues.
//
// Iteration layout (L = ceil(log2 n_hat); L+5 rounds per iteration):
//   round 0        red beacon: each red transmits its id w.p. 2^-ceil(j/step)
//   rounds 1..L+1  blue Decay: unrecruited blues that heard red v answer
//                  (u.id, v.id) with probability 2^-(round-1)
//   round L+2      response: exactly the round-0 transmitters transmit again —
//                  echo(u) / sigma / grow_intent / empty (see below)
//   round L+3      ack [DEV-2]: the lone child of a grow_intent sender acks
//   round L+4      commit: round-0 transmitters again — sigma iff clean ack
//
// Because rounds L+2 and L+4 repeat the round-0 transmitter set exactly, any
// blue that received red v in round 0 also receives v's response and commit
// (identical interference pattern). This makes parent-class knowledge (c)
// consistent in every interleaving:
//   * class none -> solo: red heard exactly one blue; echoes its id.
//   * class none -> many: red heard >= 2 blues; sigma recruits every blue
//     that heard it in round 0 (>= 2 of them), all learning "many".
//   * class many growth:  sigma again; new recruits and old children all
//     learn/know "many".
//   * class solo -> many: guarded by the intent/ack/commit handshake so the
//     existing lone child never holds a stale "solo" belief [DEV-2].
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"
#include "radio/network.h"

namespace rn::core {

class recruiting_instance {
 public:
  enum class klass : std::uint8_t { none, solo, many };

  struct config {
    const graph::graph* g = nullptr;
    std::vector<node_id> reds;
    std::vector<node_id> blues;  ///< initially unrecruited participants
    int L = 1;                   ///< decay ladder length
    int iterations = 1;
    int exp_step = 1;            ///< iterations per round-0 exponent increment
    std::uint64_t seed = 1;
  };

  explicit recruiting_instance(config c);

  [[nodiscard]] static round_t rounds_required(int L, int iterations) {
    return static_cast<round_t>(iterations) * (L + 5);
  }
  [[nodiscard]] round_t rounds_required() const {
    return rounds_required(cfg_.L, cfg_.iterations);
  }
  [[nodiscard]] bool finished() const { return round_ >= rounds_required(); }

  /// Appends this instance's transmissions for its next consumed round.
  void plan(radio::round_buffer& out);
  /// Delivers a reception to a participant (others are ignored).
  void on_reception(const radio::reception& rx);
  /// Advances the program counter; call exactly once per consumed round.
  void end_round();

  /// Fast-forward support: number of upcoming consumed rounds that are
  /// guaranteed *quiet* — this instance will plan no transmission and draw no
  /// randomness in them, provided it receives nothing (which holds whenever
  /// every participant of those rounds is quiet). Two cases: an instance with
  /// no reds is quiet for its whole remaining run, and an iteration whose
  /// round-0 beacon fizzled (no red transmitted, no blue heard one) is quiet
  /// through its remaining L+4 rounds. 0 = the next round must be planned.
  [[nodiscard]] round_t quiet_rounds() const;
  /// Skips `k` quiet rounds (k <= quiet_rounds()) without planning them;
  /// equivalent to k plan/end_round cycles that produce nothing.
  void skip_rounds(round_t k);

  struct red_result {
    klass k = klass::none;
    node_id solo_child = no_node;  ///< valid iff k == solo
  };
  struct blue_result {
    bool recruited = false;
    node_id parent = no_node;
    klass parent_class = klass::none;  ///< solo or many once recruited
  };

  [[nodiscard]] red_result red(node_id v) const;
  [[nodiscard]] blue_result blue(node_id u) const;
  [[nodiscard]] const std::vector<node_id>& reds() const { return cfg_.reds; }
  [[nodiscard]] const std::vector<node_id>& blues() const { return cfg_.blues; }
  /// Number of blues not yet recruited.
  [[nodiscard]] std::size_t unrecruited_count() const;

 private:
  struct red_state {
    bool sent_r1 = false;
    std::vector<node_id> heard;  ///< distinct blues heard this iteration
    klass k = klass::none;
    node_id solo_child = no_node;
    bool intent = false;
    bool ack_ok = false;
  };
  struct blue_state {
    node_id heard_red = no_node;  ///< red received in round 0 this iteration
    bool recruited = false;
    node_id parent = no_node;
    klass parent_class = klass::none;
    bool ack_due = false;
  };

  config cfg_;
  round_t round_ = 0;
  std::size_t sent_r1_count_ = 0;   ///< reds that transmitted this iteration's round 0
  std::size_t heard_count_ = 0;     ///< blues that heard a red this iteration
  std::vector<red_state> red_;
  std::vector<blue_state> blue_;
  std::vector<std::int32_t> red_idx_;   // node -> index or -1
  std::vector<std::int32_t> blue_idx_;
  std::vector<rng> red_rng_;
  std::vector<rng> blue_rng_;

  [[nodiscard]] int iteration() const { return static_cast<int>(round_ / (cfg_.L + 5)); }
  [[nodiscard]] int pos_in_iteration() const { return static_cast<int>(round_ % (cfg_.L + 5)); }
  void start_iteration();
};

/// Standalone driver for tests and experiment E6: runs one full instance on
/// its own network and reports the outcome. With `fast_forward`, quiet
/// stretches are skipped via network::advance — identical results, less
/// wall-clock.
struct recruiting_run_result {
  round_t rounds = 0;
  std::size_t recruited = 0;
  std::size_t blues = 0;
  bool properties_ok = true;  ///< (b)/(c) consistency checks
};
[[nodiscard]] recruiting_run_result run_recruiting(
    const graph::graph& g, const std::vector<node_id>& reds,
    const std::vector<node_id>& blues, int L, int iterations, int exp_step,
    std::uint64_t seed, bool fast_forward = false);

}  // namespace rn::core
