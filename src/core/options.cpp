#include "core/options.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/check.h"

namespace rn::core {

namespace {

std::string format_value(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9e15)
    return std::to_string(static_cast<long long>(v));
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  RN_REQUIRE(ec == std::errc(), "unformattable option value");
  return std::string(buf, ptr);
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// The canonical key set, in print order. Each key reads and writes one field
/// through accessors so the print and parse sides can never drift apart.
struct field {
  std::string_view key;
  bool integral;  ///< parse as u64 (size/seed fields) vs double (multipliers)
  double (*get)(const options&);
  void (*set)(options&, double num, std::uint64_t integer);
};

constexpr field kFields[] = {
    {"n_hat", true, [](const options& o) { return static_cast<double>(o.n_hat); },
     [](options& o, double, std::uint64_t i) { o.n_hat = static_cast<std::size_t>(i); }},
    {"d_hat", true, [](const options& o) { return static_cast<double>(o.d_hat); },
     [](options& o, double, std::uint64_t i) { o.d_hat = static_cast<level_t>(i); }},
    {"payload_size", true,
     [](const options& o) { return static_cast<double>(o.payload_size); },
     [](options& o, double, std::uint64_t i) { o.payload_size = static_cast<std::size_t>(i); }},
    {"message_seed", true,
     [](const options& o) { return static_cast<double>(o.message_seed); },
     [](options& o, double, std::uint64_t i) { o.message_seed = i; }},
    {"decay_phase_mult", false,
     [](const options& o) { return o.prm.decay_phase_mult; },
     [](options& o, double v, std::uint64_t) { o.prm.decay_phase_mult = v; }},
    {"recruit_iter_mult", false,
     [](const options& o) { return o.prm.recruit_iter_mult; },
     [](options& o, double v, std::uint64_t) { o.prm.recruit_iter_mult = v; }},
    {"recruit_exp_step_mult", false,
     [](const options& o) { return o.prm.recruit_exp_step_mult; },
     [](options& o, double v, std::uint64_t) { o.prm.recruit_exp_step_mult = v; }},
    {"epoch_mult", false, [](const options& o) { return o.prm.epoch_mult; },
     [](options& o, double v, std::uint64_t) { o.prm.epoch_mult = v; }},
    {"schedule_slack", false,
     [](const options& o) { return o.prm.schedule_slack; },
     [](options& o, double v, std::uint64_t) { o.prm.schedule_slack = v; }},
    {"fec_overhead", false, [](const options& o) { return o.prm.fec_overhead; },
     [](options& o, double v, std::uint64_t) { o.prm.fec_overhead = v; }},
    {"ring_divisor", false, [](const options& o) { return o.prm.ring_divisor; },
     [](options& o, double v, std::uint64_t) { o.prm.ring_divisor = v; }},
};

}  // namespace

std::string options::to_string() const {
  const options defaults;
  std::string out{version};
  bool first = true;
  for (const field& f : kFields) {
    if (f.get(*this) == f.get(defaults)) continue;
    out += first ? ":" : ",";
    first = false;
    out += f.key;
    out += "=";
    if (f.integral && f.key == "message_seed") {
      // Full 64-bit precision: seeds are not representable as doubles.
      out += std::to_string(message_seed);
    } else {
      out += format_value(f.get(*this));
    }
  }
  return out;
}

options parse_options(std::string_view text) {
  RN_REQUIRE(!text.empty(), "empty options string");
  const std::size_t colon = text.find(':');
  const std::string_view tag = text.substr(0, colon);
  RN_REQUIRE(tag == options::version,
             "unknown options version '" + std::string(tag) + "' (this build"
             " speaks " + std::string(options::version) + ")");
  options out;
  if (colon == std::string_view::npos) return out;
  std::string_view rest = text.substr(colon + 1);
  RN_REQUIRE(!rest.empty(), "options string has a ':' but no keys: " +
                                std::string(text));
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    RN_REQUIRE(eq != std::string_view::npos && eq > 0,
               "bad option (want key=value): " + std::string(item));
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    const field* found = nullptr;
    for (const field& f : kFields)
      if (f.key == key) found = &f;
    RN_REQUIRE(found != nullptr,
               "unknown option key '" + std::string(key) + "'");
    if (found->integral) {
      std::uint64_t v = 0;
      RN_REQUIRE(parse_u64(value, v),
                 "bad integer value for option '" + std::string(key) +
                     "': " + value);
      found->set(out, static_cast<double>(v), v);
    } else {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      RN_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
                 "bad numeric value for option '" + std::string(key) +
                     "': " + value);
      found->set(out, v, 0);
    }
  }
  return out;
}

}  // namespace rn::core
