// Versioned run options with a canonical text form.
//
// `core::options` consolidates every knob reachable from
// `core::run_broadcast` into one struct that prints to (and parses from) a
// canonical "opt-v1:key=value,..." string, mirroring graph::topology_spec —
// so a service request string captures *every* determinism-relevant input of
// a run. Omitted keys mean "the default"; printing skips default-valued
// fields, which makes the text form stable across a parse round-trip
// (parse_options(o.to_string()) == o).
//
// Two fields deliberately ride outside the string:
//   - `seed` is a per-request execution input, carried as its own component
//     of a request (and of the service cache key) — exactly like
//     topology_spec::seed, which its to_string() also excludes;
//   - `fast_forward` is an execution mode under a byte-identity contract
//     (results never depend on it, see README "Fast-forward execution"), so
//     it cannot be determinism-relevant by construction.
// Any future field must either appear in the canonical string or carry the
// same result-invariance argument; fields representable in neither form are
// deprecated by policy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/params.h"

namespace rn::core {

struct options {
  /// Canonical text-form version tag. Bump when a key is added, removed, or
  /// changes meaning — option strings are cache-key components, so two
  /// versions must never canonicalize to the same bytes with different
  /// semantics.
  static constexpr std::string_view version = "opt-v1";

  std::size_t n_hat = 0;
  level_t d_hat = 0;
  std::uint64_t seed = 1;
  params prm = params::paper();
  std::size_t payload_size = 32;
  /// Seed for the generated test payloads of the RLNC protocols
  /// (0 = derive from `seed`, the historical behavior).
  std::uint64_t message_seed = 0;
  /// Fast-forward transmitter-free rounds (bit-identical results). The
  /// GST-based algorithms skip proven-idle schedule rounds; the Decay
  /// baselines compute next-transmit rounds from their batched coin streams
  /// and skip the calendar gaps (see baseline/decay.h).
  bool fast_forward = false;

  /// Canonical "opt-v1:key=value,..." form: fixed key order, default-valued
  /// fields omitted (default options print as just "opt-v1"). Excludes
  /// `seed` and `fast_forward` — see the header comment.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const options&, const options&) = default;
};

/// Parses the canonical text form ("opt-v1" or "opt-v1:key=value,...");
/// omitted keys keep their defaults. Throws contract_error on an unknown
/// version tag, unknown key, or malformed value. Round-trip contract:
/// parse_options(o.to_string()) == o up to the excluded execution fields.
[[nodiscard]] options parse_options(std::string_view text);

}  // namespace rn::core
