#include "core/rings.h"

#include <algorithm>

#include "common/check.h"

namespace rn::core {

ring_decomposition decompose_rings(const std::vector<level_t>& levels,
                                   level_t width) {
  RN_REQUIRE(width >= 1, "ring width must be positive");
  const std::size_t n = levels.size();
  ring_decomposition out;
  out.width = width;
  out.ring_of.assign(n, -1);
  out.rel_level.assign(n, no_level);

  level_t max_level = 0;
  for (level_t l : levels) max_level = std::max(max_level, l);
  const std::size_t ring_count =
      static_cast<std::size_t>(max_level / width) + 1;
  out.rings.resize(ring_count);
  for (std::size_t j = 0; j < ring_count; ++j)
    out.rings[j].first_layer = static_cast<level_t>(j) * width;

  for (node_id v = 0; v < n; ++v) {
    if (levels[v] == no_level) continue;
    const auto j = static_cast<std::size_t>(levels[v] / width);
    auto& ring = out.rings[j];
    out.ring_of[v] = static_cast<std::int32_t>(j);
    out.rel_level[v] = levels[v] - ring.first_layer;
    ring.members.push_back(v);
    ring.depth = std::max(ring.depth, out.rel_level[v]);
    if (out.rel_level[v] == 0) ring.roots.push_back(v);
  }
  return out;
}

level_t ring_width_for(level_t depth, double ring_divisor) {
  if (ring_divisor <= 0.0) return depth + 1;  // single ring
  const auto w = static_cast<level_t>(static_cast<double>(depth) / ring_divisor);
  return std::clamp<level_t>(w, 3, depth + 1);
}

}  // namespace rn::core
