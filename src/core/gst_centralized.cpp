#include "core/gst_centralized.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/math.h"
#include "graph/bfs.h"

namespace rn::core {

gst build_gst_centralized(const graph::graph& g, node_id source) {
  return build_gst_centralized_multi(g, {source}, nullptr);
}

gst build_gst_centralized_multi(const graph::graph& g,
                                const std::vector<node_id>& roots,
                                const std::vector<char>* mask) {
  const std::size_t n = g.node_count();
  const auto b = graph::bfs_multi(g, roots, mask);

  gst t;
  t.roots = roots;
  t.member.assign(n, 0);
  t.level = b.level;
  t.parent.assign(n, no_node);
  t.rank.assign(n, no_rank);

  std::vector<std::vector<node_id>> by_level(
      static_cast<std::size_t>(b.max_level) + 1);
  std::size_t member_count = 0;
  for (node_id v = 0; v < n; ++v) {
    if (b.level[v] != no_level) {
      t.member[v] = 1;
      ++member_count;
      by_level[static_cast<std::size_t>(b.level[v])].push_back(v);
    }
  }
  if (member_count == 0) return t;
  const rank_t max_rank =
      static_cast<rank_t>(ceil_log2(member_count < 2 ? 2 : member_count)) + 1;

  std::vector<char> assigned(n, 0);
  // Scratch for the greedy adoption below, hoisted out of the level/rank
  // loops. `in_u` self-clears: every entry set for a u_set is zeroed by the
  // time steps 1+2 assigned all of U.
  std::vector<char> in_u(n, 0);
  std::vector<node_id> u_set;
  std::vector<node_id> candidates;
  std::vector<char> is_candidate(n, 0);
  // Max-heap entry for the greedy choice: highest adoptable-blue count
  // first, smallest node id on ties — exactly the argmax the quadratic
  // rescan formulation selected.
  struct red_entry {
    std::size_t count;
    node_id red;
    bool operator<(const red_entry& o) const {
      if (count != o.count) return count < o.count;
      return red > o.red;
    }
  };
  std::priority_queue<red_entry> heap;

  // Process level pairs bottom-up; blues at the current level already carry
  // final ranks (set while they were reds one pair earlier, or rank 1 if
  // childless / deepest).
  for (level_t l = b.max_level; l >= 1; --l) {
    auto& blues = by_level[static_cast<std::size_t>(l)];
    for (node_id u : blues)
      if (t.rank[u] == no_rank) t.rank[u] = 1;  // childless -> leaf

    for (rank_t i = max_rank; i >= 1; --i) {
      // U = unassigned blues of rank i.
      u_set.clear();
      for (node_id u : blues)
        if (!assigned[u] && t.rank[u] == i) u_set.push_back(u);
      if (u_set.empty()) continue;
      for (node_id u : u_set) in_u[u] = 1;

      // Step 1: greedily rank reds that can adopt >= 2 rank-i blues. Counts
      // only decrease as blues are adopted, so a lazy max-heap yields the
      // same (count, id)-argmax sequence as rescanning every candidate per
      // adoption, in near-linear time.
      auto live_count = [&](node_id v) {
        std::size_t count = 0;
        for (node_id w : g.neighbors(v)) count += in_u[w] ? 1 : 0;
        return count;
      };
      candidates.clear();
      for (node_id u : u_set) {
        for (node_id v : g.neighbors(u)) {
          if (!t.member[v] || t.level[v] != l - 1 || t.rank[v] != no_rank)
            continue;
          if (!is_candidate[v]) {
            is_candidate[v] = 1;
            candidates.push_back(v);
          }
        }
      }
      for (node_id v : candidates) {
        is_candidate[v] = 0;  // reset scratch for the next rank iteration
        const std::size_t count = live_count(v);
        if (count >= 2) heap.push({count, v});
      }
      while (!heap.empty()) {
        const auto [count, v] = heap.top();
        heap.pop();
        if (t.rank[v] != no_rank) continue;  // stale duplicate
        const std::size_t current = live_count(v);
        if (current != count) {
          if (current >= 2) heap.push({current, v});
          continue;
        }
        for (node_id w : g.neighbors(v)) {
          if (in_u[w]) {
            t.parent[w] = v;
            assigned[w] = 1;
            in_u[w] = 0;
          }
        }
        t.rank[v] = i + 1;
      }

      // Step 2: every unranked red now has <= 1 neighbor left in U, so
      // single assignments cannot create collision-freeness violations.
      for (node_id u : u_set) {
        if (!in_u[u]) continue;
        node_id unranked_choice = no_node;
        node_id higher_choice = no_node;
        for (node_id v : g.neighbors(u)) {
          if (!t.member[v] || t.level[v] != l - 1) continue;
          if (t.rank[v] == no_rank) {
            if (unranked_choice == no_node || v < unranked_choice)
              unranked_choice = v;
          } else if (t.rank[v] > i) {
            if (higher_choice == no_node || v < higher_choice)
              higher_choice = v;
          }
        }
        if (unranked_choice != no_node) {
          t.parent[u] = unranked_choice;
          t.rank[unranked_choice] = i;  // exactly one rank-i child
        } else {
          RN_REQUIRE(higher_choice != no_node,
                     "blue node has only same-rank ranked red neighbors; "
                     "cannot happen per construction invariant");
          t.parent[u] = higher_choice;
        }
        assigned[u] = 1;
        in_u[u] = 0;
      }
    }
  }

  // Roots (and an isolated single-node forest) that never got children.
  for (node_id r : t.roots)
    if (t.member[r] && t.rank[r] == no_rank) t.rank[r] = 1;
  return t;
}

}  // namespace rn::core
