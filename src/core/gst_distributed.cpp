#include "core/gst_distributed.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/check.h"
#include "common/math.h"
#include "core/bfs_protocols.h"
#include "graph/bfs.h"
#include "radio/network.h"

namespace rn::core {

namespace {

struct problem_slot {
  std::int32_t ring;
  level_t blue_level;
  rank_t rank;
  round_t slot;
  int round_class;  ///< absolute blue layer mod 3 (pipelined mode)
};

}  // namespace

distributed_gst_outcome build_gst_distributed(
    const graph::graph& g, const ring_decomposition& rd,
    const distributed_gst_options& opt) {
  const std::size_t n = g.node_count();
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat);
  const int dp = opt.prm.decay_phases(n_hat);
  const int epochs = opt.prm.epochs(n_hat);
  const int iters = opt.prm.recruit_iterations(n_hat);
  const int exp_step = opt.prm.recruit_exp_step(n_hat);
  const rank_t max_rank = static_cast<rank_t>(L) + 1;

  build_state st(n);
  st.ring_of = rd.ring_of;
  st.rel_level = rd.rel_level;

  // Per (ring, relative level) node lists.
  level_t w_max = 0;
  for (const auto& ring : rd.rings) w_max = std::max(w_max, ring.depth);
  std::vector<std::vector<std::vector<node_id>>> layer_nodes(rd.rings.size());
  for (std::size_t j = 0; j < rd.rings.size(); ++j) {
    layer_nodes[j].resize(static_cast<std::size_t>(rd.rings[j].depth) + 1);
    for (node_id v : rd.rings[j].members)
      layer_nodes[j][static_cast<std::size_t>(rd.rel_level[v])].push_back(v);
  }
  // Roots count as assigned (they have no parent to find).
  for (const auto& ring : rd.rings)
    for (node_id r : ring.roots) st.assigned[r] = 1;

  // Enumerate problems with their slots.
  const round_t R =
      assignment_problem::rounds_required(L, dp, epochs, iters);
  const round_t slot_len = opt.pipelined ? 3 * R : R;
  std::vector<problem_slot> problems;
  round_t max_slot = 0;
  for (std::size_t j = 0; j < rd.rings.size(); ++j) {
    for (level_t lam = 1; lam <= rd.rings[j].depth; ++lam) {
      for (rank_t i = max_rank; i >= 1; --i) {
        round_t slot;
        if (opt.pipelined) {
          slot = 2 * static_cast<round_t>(w_max - lam) +
                 static_cast<round_t>(max_rank - i);
        } else {
          slot = static_cast<round_t>(w_max - lam) * max_rank +
                 static_cast<round_t>(max_rank - i);
        }
        const int cls = static_cast<int>(
            (rd.rings[j].first_layer + lam) % 3);
        problems.push_back({static_cast<std::int32_t>(j), lam, i, slot, cls});
        max_slot = std::max(max_slot, slot);
      }
    }
  }
  std::sort(problems.begin(), problems.end(),
            [](const problem_slot& a, const problem_slot& b) {
              return a.slot < b.slot;
            });

  radio::network net(g, {.collision_detection = false});
  radio::round_buffer txs;
  // Problems active in the current slot, keyed for reception dispatch.
  struct active_problem {
    problem_slot meta;
    std::unique_ptr<assignment_problem> prob;
  };
  std::vector<active_problem> active;
  std::size_t next_problem = 0;
  std::uint64_t problem_counter = 0;

  for (round_t slot = 0; slot <= max_slot; ++slot) {
    active.clear();
    while (next_problem < problems.size() &&
           problems[next_problem].slot == slot) {
      const auto& ps = problems[next_problem];
      assignment_problem::config cfg;
      cfg.g = &g;
      cfg.st = &st;
      cfg.ring = ps.ring;
      cfg.blue_level = ps.blue_level;
      cfg.target_rank = ps.rank;
      cfg.blue_layer_nodes =
          layer_nodes[static_cast<std::size_t>(ps.ring)]
                     [static_cast<std::size_t>(ps.blue_level)];
      cfg.red_layer_nodes =
          layer_nodes[static_cast<std::size_t>(ps.ring)]
                     [static_cast<std::size_t>(ps.blue_level - 1)];
      cfg.L = L;
      cfg.decay_phases = dp;
      cfg.epochs = epochs;
      cfg.recruit_iterations = iters;
      cfg.recruit_exp_step = exp_step;
      cfg.seed = opt.seed * 0x9e3779b9ULL + (++problem_counter) * 7919ULL;
      active.push_back(
          {ps, std::make_unique<assignment_problem>(std::move(cfg))});
      ++next_problem;
    }

    for (round_t r = 0; r < slot_len;) {
      if (opt.fast_forward) {
        // Fast-forward: find the longest run of rounds starting at r in which
        // every consuming problem is quiet (plans nothing, draws nothing).
        // With nobody transmitting there are no receptions either, so the
        // whole run collapses to network::advance + per-problem bookkeeping.
        // In pipelined mode a problem of class c consumes only rounds
        // t ≡ c (mod 3); its quiet budget q therefore spans the next
        // d + 3q engine rounds, d = distance to its next consumed round.
        round_t k = slot_len - r;
        for (const auto& ap : active) {
          if (ap.prob->finished()) continue;
          const round_t q = ap.prob->quiet_rounds();
          if (opt.pipelined) {
            const round_t d = (ap.meta.round_class - r % 3 + 3) % 3;
            k = std::min(k, d + 3 * q);
          } else {
            k = std::min(k, q);
          }
        }
        if (k > 0) {
          for (auto& ap : active) {
            if (ap.prob->finished()) continue;
            round_t consumed = k;
            if (opt.pipelined) {
              const round_t d = (ap.meta.round_class - r % 3 + 3) % 3;
              consumed = k > d ? (k - d + 2) / 3 : 0;
            }
            if (consumed > 0) ap.prob->skip_rounds(consumed);
          }
          net.advance(k);
          r += k;
          continue;
        }
      }
      txs.clear();
      const int cls = static_cast<int>(r % 3);
      auto consumes = [&](const active_problem& ap) {
        return !ap.prob->finished() &&
               (!opt.pipelined || ap.meta.round_class == cls);
      };
      bool any = false;
      for (auto& ap : active) {
        if (consumes(ap)) {
          ap.prob->plan(txs);
          any = true;
        }
      }
      if (!any && txs.empty()) {
        // No problem consumes this round; still burn it for faithful timing.
        net.step(txs, [](const radio::reception&) {});
        ++r;
        continue;
      }
      net.step(txs, [&](const radio::reception& rx) {
        // Deliver to the unique consuming problem whose layers contain the
        // listener (blue layer λ or red layer λ-1 of the listener's ring).
        const auto ring = st.ring_of[rx.listener];
        if (ring < 0) return;
        const level_t lv = st.rel_level[rx.listener];
        for (auto& ap : active) {
          if (!consumes(ap) || ap.meta.ring != ring) continue;
          if (ap.meta.blue_level == lv || ap.meta.blue_level == lv + 1) {
            ap.prob->on_reception(rx);
            return;
          }
        }
      });
      for (auto& ap : active)
        if (consumes(ap)) ap.prob->end_round();
      ++r;
    }
  }

  // Roots that never got children are leaves.
  for (const auto& ring : rd.rings)
    for (node_id r : ring.roots)
      if (st.rank[r] == no_rank) st.rank[r] = 1;
  // Deepest-layer nodes (and any childless member) default to rank 1 if their
  // rank-1 problem never ran (e.g. depth-0 rings).
  for (node_id v = 0; v < n; ++v)
    if (st.ring_of[v] >= 0 && st.rank[v] == no_rank) st.rank[v] = 1;

  distributed_gst_outcome out;
  out.rounds = net.stats().rounds;
  out.transmissions = net.stats().transmissions;
  out.fallback_finalizations = st.fallback_finalizations;
  out.fallback_adoptions = st.fallback_adoptions;
  out.parent_rank = st.parent_rank;
  out.stretch_child = st.stretch_child;
  out.forests.resize(rd.rings.size());
  for (std::size_t j = 0; j < rd.rings.size(); ++j) {
    gst& t = out.forests[j];
    t.roots = rd.rings[j].roots;
    t.member.assign(n, 0);
    t.level.assign(n, no_level);
    t.parent.assign(n, no_node);
    t.rank.assign(n, no_rank);
    for (node_id v : rd.rings[j].members) {
      t.member[v] = 1;
      t.level[v] = rd.rel_level[v];
      t.parent[v] = st.parent[v];
      t.rank[v] = st.rank[v];
    }
  }
  return out;
}

distributed_gst_outcome build_gst_distributed_single(
    const graph::graph& g, node_id source,
    const distributed_gst_options& opt) {
  const std::size_t n_hat = opt.n_hat == 0 ? g.node_count() : opt.n_hat;
  // Layering first (no CD needed), then a single whole-graph ring.
  const auto ecc = graph::bfs(g, source).max_level;
  auto layering =
      run_decay_epoch_bfs(g, source, ecc, n_hat, opt.prm, opt.seed ^ 0xbf5ULL);
  const auto rd = decompose_rings(layering.level, ecc + 1);
  auto out = build_gst_distributed(g, rd, opt);
  out.rounds += layering.rounds;
  out.transmissions += layering.transmissions;
  return out;
}

}  // namespace rn::core
