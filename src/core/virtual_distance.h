// Distributed virtual-distance labeling (paper Lemma 3.10).
//
// After a distributed GST construction every node knows its level, rank,
// parent, parent's rank and (if any) its same-rank child. This protocol
// teaches every node its directed distance from the roots in the virtual
// graph G' (graph edges + fast-stretch edges), which the MMV-GST schedule
// keys its slow transmissions to.
//
// For each distance value d (at most 2*ceil(log2 n) + 1 of them):
//  * stage 1 — per rank r, two sweeps of `depth` rounds each flood the label
//    d+1 down the fast stretches that start at distance-d stretch heads; only
//    matching parents transmit [DEV-3], so by GST collision-freeness each
//    stretch child hears exactly its parent.
//  * stage 2 — a Decay phase in which all distance-d nodes transmit; any
//    still-unlabeled receiver is at G'-distance d+1 via a graph edge.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/gst.h"
#include "core/params.h"
#include "graph/graph.h"

namespace rn::core {

struct vdist_labeling_result {
  std::vector<level_t> vdist;  ///< only members of the forest are labeled
  round_t rounds = 0;
  std::size_t unlabeled = 0;   ///< members left unlabeled (0 expected w.h.p.)
};

/// Labels one GST forest. `parent_rank`/`stretch_child` carry the local
/// knowledge produced by the distributed construction (see
/// `distributed_gst_outcome`). With `fast_forward`, rounds in which no node
/// can transmit (and no coin is flipped) are skipped via network::advance —
/// in particular everything after the largest reached distance value —
/// with bit-identical labels and round counts.
[[nodiscard]] vdist_labeling_result run_vdist_labeling(
    const graph::graph& g, const gst& t,
    const std::vector<rank_t>& parent_rank,
    const std::vector<node_id>& stretch_child, std::size_t n_hat,
    const params& prm, std::uint64_t seed, bool fast_forward = false);

}  // namespace rn::core
