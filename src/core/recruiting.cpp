#include "core/recruiting.h"

#include <algorithm>

#include "common/check.h"

namespace rn::core {

recruiting_instance::recruiting_instance(config c) : cfg_(std::move(c)) {
  RN_REQUIRE(cfg_.g != nullptr, "graph required");
  RN_REQUIRE(cfg_.L >= 1 && cfg_.iterations >= 1 && cfg_.exp_step >= 1,
             "invalid recruiting parameters");
  const std::size_t n = cfg_.g->node_count();
  red_idx_.assign(n, -1);
  blue_idx_.assign(n, -1);
  red_.resize(cfg_.reds.size());
  blue_.resize(cfg_.blues.size());
  for (std::size_t i = 0; i < cfg_.reds.size(); ++i) {
    RN_REQUIRE(red_idx_[cfg_.reds[i]] == -1, "duplicate red");
    red_idx_[cfg_.reds[i]] = static_cast<std::int32_t>(i);
    red_rng_.push_back(rng::for_stream(cfg_.seed * 3 + 1, cfg_.reds[i]));
  }
  for (std::size_t i = 0; i < cfg_.blues.size(); ++i) {
    RN_REQUIRE(blue_idx_[cfg_.blues[i]] == -1, "duplicate blue");
    RN_REQUIRE(red_idx_[cfg_.blues[i]] == -1, "node both red and blue");
    blue_idx_[cfg_.blues[i]] = static_cast<std::int32_t>(i);
    blue_rng_.push_back(rng::for_stream(cfg_.seed * 3 + 2, cfg_.blues[i]));
  }
}

void recruiting_instance::start_iteration() {
  sent_r1_count_ = 0;
  heard_count_ = 0;
  for (auto& r : red_) {
    r.sent_r1 = false;
    r.heard.clear();
    r.intent = false;
    r.ack_ok = false;
  }
  for (auto& b : blue_) {
    b.heard_red = no_node;
    b.ack_due = false;
  }
}

void recruiting_instance::plan(radio::round_buffer& out) {
  if (finished()) return;
  const int pos = pos_in_iteration();
  const int iter = iteration();

  if (pos == 0) {
    start_iteration();
    // Round-0 exponent sweeps the Decay ladder, one step every `exp_step`
    // iterations, and cycles [DEV-11]. The paper's monotone ramp gives every
    // degree class one Theta(log n)-iteration window; cycling gives the same
    // windows but recurring, which late recruitment (e.g. growth after an
    // early lone echo) needs at small n.
    const int e = 1 + (iter / cfg_.exp_step) % cfg_.L;
    for (std::size_t i = 0; i < red_.size(); ++i) {
      if (red_rng_[i].with_probability_pow2(e)) {
        red_[i].sent_r1 = true;
        ++sent_r1_count_;
        out.add_owned(cfg_.reds[i], radio::packet::make_beacon(cfg_.reds[i]));
      }
    }
    return;
  }

  if (pos >= 1 && pos <= cfg_.L + 1) {
    // Blue Decay ladder: exponents 0..L across the phase.
    const int e = pos - 1;
    for (std::size_t i = 0; i < blue_.size(); ++i) {
      auto& b = blue_[i];
      if (b.recruited || b.heard_red == no_node) continue;
      if (blue_rng_[i].with_probability_pow2(e))
        out.add_owned(cfg_.blues[i],
                      radio::packet::make_pair(cfg_.blues[i], b.heard_red));
    }
    return;
  }

  if (pos == cfg_.L + 2) {
    // Response round: exactly the round-0 transmitters transmit.
    for (std::size_t i = 0; i < red_.size(); ++i) {
      auto& r = red_[i];
      if (!r.sent_r1) continue;
      radio::packet p = radio::packet::make_empty();
      if (r.k == klass::none) {
        if (r.heard.size() == 1) {
          r.k = klass::solo;
          r.solo_child = r.heard.front();
          p = radio::packet::make_echo(r.solo_child);
        } else if (r.heard.size() >= 2) {
          r.k = klass::many;
          p = radio::packet::make_sigma(cfg_.reds[i]);
        }
      } else if (r.k == klass::solo) {
        if (!r.heard.empty()) {
          r.intent = true;  // growth needs the [DEV-2] handshake
          p = radio::packet::make_grow_intent(cfg_.reds[i]);
        }
      } else {  // many: growth is always consistent
        if (!r.heard.empty()) p = radio::packet::make_sigma(cfg_.reds[i]);
      }
      out.add_owned(cfg_.reds[i], p);
    }
    return;
  }

  if (pos == cfg_.L + 3) {
    // Ack round: lone children of grow-intent senders.
    for (std::size_t i = 0; i < blue_.size(); ++i) {
      auto& b = blue_[i];
      if (b.ack_due)
        out.add_owned(cfg_.blues[i],
                      radio::packet::make_ack(cfg_.blues[i], b.parent));
    }
    return;
  }

  // pos == L+4: commit round — round-0 transmitters again.
  for (std::size_t i = 0; i < red_.size(); ++i) {
    auto& r = red_[i];
    if (!r.sent_r1) continue;
    radio::packet p = radio::packet::make_empty();
    if (r.intent && r.ack_ok) {
      r.k = klass::many;
      r.solo_child = no_node;
      p = radio::packet::make_sigma(cfg_.reds[i]);
    }
    out.add_owned(cfg_.reds[i], p);
  }
}

void recruiting_instance::on_reception(const radio::reception& rx) {
  if (finished() || rx.what != radio::observation::message) return;
  const int pos = pos_in_iteration();
  const node_id v = rx.listener;
  const auto& p = *rx.pkt;

  if (pos == 0) {
    // Blues record which red they heard.
    const auto bi = blue_idx_[v];
    if (bi >= 0 && p.kind == radio::packet_kind::beacon) {
      if (blue_[static_cast<std::size_t>(bi)].heard_red == no_node)
        ++heard_count_;
      blue_[static_cast<std::size_t>(bi)].heard_red = p.a;
    }
    return;
  }

  if (pos >= 1 && pos <= cfg_.L + 1) {
    // Reds collect blues that address them.
    const auto ri = red_idx_[v];
    if (ri >= 0 && p.kind == radio::packet_kind::pair && p.b == v) {
      auto& heard = red_[static_cast<std::size_t>(ri)].heard;
      if (std::find(heard.begin(), heard.end(), p.a) == heard.end())
        heard.push_back(p.a);
    }
    return;
  }

  if (pos == cfg_.L + 2 || pos == cfg_.L + 4) {
    // Blues react to responses/commits from the red they heard in round 0, or
    // (for already-recruited children) from their parent.
    const auto bi = blue_idx_[v];
    if (bi < 0) return;
    auto& b = blue_[static_cast<std::size_t>(bi)];
    switch (p.kind) {
      case radio::packet_kind::echo:
        if (!b.recruited && p.a == v && rx.from == b.heard_red) {
          b.recruited = true;
          b.parent = rx.from;
          b.parent_class = klass::solo;
        }
        break;
      case radio::packet_kind::sigma:
        if (!b.recruited && rx.from == b.heard_red) {
          b.recruited = true;
          b.parent = rx.from;
          b.parent_class = klass::many;
        } else if (b.recruited && rx.from == b.parent) {
          b.parent_class = klass::many;  // guaranteed/opportunistic update
        }
        break;
      case radio::packet_kind::grow_intent:
        if (b.recruited && rx.from == b.parent &&
            b.parent_class == klass::solo && pos == cfg_.L + 2)
          b.ack_due = true;
        break;
      default:
        break;
    }
    return;
  }

  if (pos == cfg_.L + 3) {
    // Grow-intent reds listen for a clean ack from their lone child.
    const auto ri = red_idx_[v];
    if (ri < 0) return;
    auto& r = red_[static_cast<std::size_t>(ri)];
    if (r.intent && p.kind == radio::packet_kind::ack && p.b == v &&
        p.a == r.solo_child)
      r.ack_ok = true;
  }
}

void recruiting_instance::end_round() {
  if (!finished()) ++round_;
}

round_t recruiting_instance::quiet_rounds() const {
  if (finished()) return 0;
  // With no reds nothing can ever transmit or flip a coin: round 0 plans over
  // an empty red set and no blue can hear a red to answer in rounds 1..L+1.
  if (cfg_.reds.empty()) return rounds_required() - round_;
  const int pos = pos_in_iteration();
  if (pos == 0) return 0;  // round 0 draws one coin per red
  // A fizzled iteration: nobody beaconed and nobody heard one, so the blue
  // Decay, response, ack and commit rounds are all provably empty.
  if (sent_r1_count_ == 0 && heard_count_ == 0)
    return static_cast<round_t>(cfg_.L + 5 - pos);
  return 0;
}

void recruiting_instance::skip_rounds(round_t k) {
  RN_REQUIRE(k >= 0 && k <= quiet_rounds(), "skip beyond quiet window");
  round_ += k;
}

recruiting_instance::red_result recruiting_instance::red(node_id v) const {
  const auto i = red_idx_[v];
  RN_REQUIRE(i >= 0, "node is not a red participant");
  const auto& r = red_[static_cast<std::size_t>(i)];
  return {r.k, r.solo_child};
}

recruiting_instance::blue_result recruiting_instance::blue(node_id u) const {
  const auto i = blue_idx_[u];
  RN_REQUIRE(i >= 0, "node is not a blue participant");
  const auto& b = blue_[static_cast<std::size_t>(i)];
  return {b.recruited, b.parent, b.parent_class};
}

std::size_t recruiting_instance::unrecruited_count() const {
  std::size_t c = 0;
  for (const auto& b : blue_)
    if (!b.recruited) ++c;
  return c;
}

recruiting_run_result run_recruiting(const graph::graph& g,
                                     const std::vector<node_id>& reds,
                                     const std::vector<node_id>& blues, int L,
                                     int iterations, int exp_step,
                                     std::uint64_t seed, bool fast_forward) {
  recruiting_instance::config cfg;
  cfg.g = &g;
  cfg.reds = reds;
  cfg.blues = blues;
  cfg.L = L;
  cfg.iterations = iterations;
  cfg.exp_step = exp_step;
  cfg.seed = seed;
  recruiting_instance inst(std::move(cfg));

  radio::network net(g, {.collision_detection = false});
  radio::round_buffer txs;
  while (!inst.finished()) {
    if (fast_forward) {
      const round_t q = inst.quiet_rounds();
      if (q > 0) {
        net.advance(q);
        inst.skip_rounds(q);
        continue;
      }
    }
    txs.clear();
    inst.plan(txs);
    net.step(txs,
             [&](const radio::reception& rx) { inst.on_reception(rx); });
    inst.end_round();
  }

  recruiting_run_result res;
  res.rounds = net.stats().rounds;
  res.blues = blues.size();
  // Count recruits and cross-check properties (b)/(c).
  std::vector<std::size_t> child_count(g.node_count(), 0);
  for (node_id u : blues) {
    const auto b = inst.blue(u);
    if (b.recruited) {
      ++res.recruited;
      child_count[b.parent] += 1;
    }
  }
  for (node_id v : reds) {
    const auto r = inst.red(v);
    const std::size_t c = child_count[v];
    const bool ok = (r.k == recruiting_instance::klass::none && c == 0) ||
                    (r.k == recruiting_instance::klass::solo && c == 1) ||
                    (r.k == recruiting_instance::klass::many && c >= 2);
    if (!ok) res.properties_ok = false;
  }
  for (node_id u : blues) {
    const auto b = inst.blue(u);
    if (!b.recruited) continue;
    const auto pk = inst.red(b.parent).k;
    if (pk != b.parent_class) res.properties_ok = false;
  }
  return res;
}

}  // namespace rn::core
