#include "core/virtual_distance.h"

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"
#include "core/runner.h"
#include "radio/network.h"

namespace rn::core {

vdist_labeling_result run_vdist_labeling(
    const graph::graph& g, const gst& t,
    const std::vector<rank_t>& parent_rank,
    const std::vector<node_id>& stretch_child, std::size_t n_hat,
    const params& prm, std::uint64_t seed, bool fast_forward) {
  const std::size_t n = g.node_count();
  const std::size_t nh = n_hat == 0 ? n : n_hat;
  const int L = log_range(nh);
  const int dp = prm.decay_phases(nh);
  const level_t depth = t.max_level();
  const rank_t max_rank = t.max_rank();

  vdist_labeling_result out;
  out.vdist.assign(n, no_level);

  const level_t max_d = 2 * static_cast<level_t>(L) + 1;
  // at_distance[d] = number of members currently labeled d. Labels only ever
  // take the value d+1 during iteration d, so when no node holds label d at
  // the start of iteration d none ever will — every remaining round is idle.
  std::vector<std::int64_t> at_distance(static_cast<std::size_t>(max_d) + 2, 0);
  for (node_id r : t.roots) {
    out.vdist[r] = 0;
    ++at_distance[0];
  }

  auto is_head = [&](node_id v) {
    return t.parent[v] == no_node || parent_rank[v] != t.rank[v];
  };

  // Stage-1 transmitter candidates, bucketed by (rank, level): only matching
  // parents (members with a same-rank child [DEV-3]) ever fire, so per-round
  // planning walks one bucket instead of every node. Bucket order preserves
  // the ascending node order of the naive scan.
  std::vector<std::vector<node_id>> stage1_bucket(
      static_cast<std::size_t>(max_rank) * static_cast<std::size_t>(depth));
  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v] || stretch_child[v] == no_node) continue;
    const rank_t r = t.rank[v];
    const level_t l = t.level[v];
    if (r < 1 || r > max_rank || l < 0 || l >= depth) continue;
    stage1_bucket[static_cast<std::size_t>(r - 1) * depth +
                  static_cast<std::size_t>(l)]
        .push_back(v);
  }

  radio::network net(g, {.collision_detection = false});
  round_sink sink(net, fast_forward);
  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(seed, v));

  radio::round_buffer txs;
  auto rx_stretch = [&](const radio::reception& rx, level_t d) {
    // A stretch child adopts d+1 when it hears its own parent.
    const node_id u = rx.listener;
    if (rx.what != radio::observation::message) return;
    if (!t.member[u] || out.vdist[u] != no_level) return;
    if (rx.from == t.parent[u] && parent_rank[u] == t.rank[u]) {
      out.vdist[u] = d + 1;
      ++at_distance[static_cast<std::size_t>(d) + 1];
    }
  };

  const round_t stage1_rounds =
      static_cast<round_t>(max_rank) * 2 * static_cast<round_t>(depth);
  const round_t stage2_rounds = static_cast<round_t>(dp) * (L + 1);
  std::vector<node_id> at_d;
  for (level_t d = 0; d <= max_d; ++d) {
    if (fast_forward && at_distance[static_cast<std::size_t>(d)] == 0) {
      sink.advance(static_cast<round_t>(max_d - d + 1) *
                   (stage1_rounds + stage2_rounds));
      break;
    }
    // Stage 1: flood d+1 down stretches headed by distance-d heads.
    for (rank_t r = 1; r <= max_rank; ++r) {
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (level_t l = 0; l < depth; ++l) {
          txs.clear();
          for (node_id v : stage1_bucket[static_cast<std::size_t>(r - 1) *
                                             depth +
                                         static_cast<std::size_t>(l)]) {
            const bool fire = sweep == 0
                                  ? (out.vdist[v] == d && is_head(v))
                                  : (out.vdist[v] == d + 1);
            if (fire) txs.add_owned(v, radio::packet::make_beacon(v));
          }
          sink.commit(txs,
                      [&](const radio::reception& rx) { rx_stretch(rx, d); });
        }
      }
    }
    // Stage 2: Decay from all distance-d nodes; unlabeled hearers are d+1.
    // The distance-d set is fixed for the whole stage (receptions only ever
    // assign d+1), so it is collected once, in ascending node order.
    at_d.clear();
    for (node_id v = 0; v < n; ++v)
      if (t.member[v] && out.vdist[v] == d) at_d.push_back(v);
    for (int ph = 0; ph < dp; ++ph) {
      for (int e = 0; e <= L; ++e) {
        txs.clear();
        for (node_id v : at_d) {
          if (node_rng[v].with_probability_pow2(e))
            txs.add_owned(v, radio::packet::make_beacon(v));
        }
        sink.commit(txs, [&](const radio::reception& rx) {
          const node_id u = rx.listener;
          if (rx.what == radio::observation::message && t.member[u] &&
              out.vdist[u] == no_level) {
            out.vdist[u] = d + 1;
            ++at_distance[static_cast<std::size_t>(d) + 1];
          }
        });
      }
    }
  }
  sink.flush();

  for (node_id v = 0; v < n; ++v)
    if (t.member[v] && out.vdist[v] == no_level) ++out.unlabeled;
  out.rounds = net.stats().rounds;
  return out;
}

}  // namespace rn::core
