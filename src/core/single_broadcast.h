// Single-message broadcast algorithms.
//
//  * Known topology ([7] as black box, realized by the paper's own GST
//    schedule): O(D + log^2 n) — build a GST centrally, broadcast on it.
//  * Theorem 1.1 (unknown topology + collision detection): O(D + log^6 n) —
//      1. collision-wave BFS layering (D rounds, uses CD),
//      2. ring decomposition,
//      3. distributed GST construction for all rings in parallel,
//      4. distributed virtual-distance labeling (rings sequential [DEV-10];
//         per-ring cost O(w log^2 n + log^3 n) keeps the total O(D log^2 n)),
//      5. ring-by-ring broadcast: the GST schedule inside each ring, then a
//         Decay handoff from the ring's outer boundary to the next ring.
#pragma once

#include <cstdint>

#include "core/gst.h"
#include "core/gst_distributed.h"
#include "core/params.h"
#include "core/rings.h"
#include "graph/graph.h"
#include "radio/result.h"

namespace rn::core {

struct single_broadcast_options {
  std::size_t n_hat = 0;
  level_t d_hat = 0;  ///< 0 = use the source's true eccentricity
  std::uint64_t seed = 1;
  params prm = params::paper();
  round_t max_rounds_per_ring = 0;  ///< 0 = budget from schedule_slack
  /// Skip transmitter-free rounds in every phase (construction, labeling,
  /// relay) via network::advance. Bit-identical results; see README
  /// "Fast-forward execution".
  bool fast_forward = false;
};

/// Known-topology single-message broadcast (GST built centrally, no rounds
/// charged for construction, as in [7]).
[[nodiscard]] radio::broadcast_result run_known_single_broadcast(
    const graph::graph& g, node_id source, const single_broadcast_options& opt);

/// Everything Theorems 1.1/1.3 need before data flows: layering, rings,
/// per-ring GSTs with local stretch knowledge, virtual distances.
struct unknown_topology_setup {
  ring_decomposition rings;
  std::vector<gst> forests;             ///< per ring
  std::vector<gst_derived> derived;     ///< from locally learned knowledge
  round_t wave_rounds = 0;
  round_t construction_rounds = 0;
  round_t labeling_rounds = 0;
  int fallback_finalizations = 0;
  int fallback_adoptions = 0;
  std::size_t unlabeled = 0;
  [[nodiscard]] round_t total_rounds() const {
    return wave_rounds + construction_rounds + labeling_rounds;
  }
};

[[nodiscard]] unknown_topology_setup prepare_unknown_topology(
    const graph::graph& g, node_id source, const single_broadcast_options& opt);

/// Theorem 1.1: unknown topology, collision detection.
[[nodiscard]] radio::broadcast_result run_unknown_cd_single_broadcast(
    const graph::graph& g, node_id source, const single_broadcast_options& opt);

}  // namespace rn::core
