#include "core/single_broadcast.h"

#include <memory>

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"
#include "core/bfs_protocols.h"
#include "core/gst_broadcast.h"
#include "core/gst_centralized.h"
#include "core/runner.h"
#include "core/schedule.h"
#include "core/virtual_distance.h"
#include "graph/bfs.h"
#include "radio/network.h"

namespace rn::core {

radio::broadcast_result run_known_single_broadcast(
    const graph::graph& g, node_id source,
    const single_broadcast_options& opt) {
  const auto t = build_gst_centralized(g, source);
  const auto d = derive(g, t);
  gst_broadcast_options bo;
  bo.n_hat = opt.n_hat;
  bo.seed = opt.seed;
  bo.prm = opt.prm;
  bo.max_rounds = opt.max_rounds_per_ring;
  bo.fast_forward = opt.fast_forward;
  return run_gst_single_broadcast(g, t, d, {source}, bo);
}

unknown_topology_setup prepare_unknown_topology(
    const graph::graph& g, node_id source,
    const single_broadcast_options& opt) {
  const std::size_t n_hat = opt.n_hat == 0 ? g.node_count() : opt.n_hat;
  const level_t d_hat =
      opt.d_hat > 0 ? opt.d_hat : graph::bfs(g, source).max_level;

  unknown_topology_setup setup;
  // 1. Collision-wave layering (the only step that uses collision detection).
  auto wave = run_collision_wave_bfs(g, source, d_hat);
  setup.wave_rounds = wave.rounds;

  // 2. Rings.
  level_t depth = 0;
  for (level_t l : wave.level) depth = std::max(depth, l);
  setup.rings =
      decompose_rings(wave.level, ring_width_for(depth, opt.prm.ring_divisor));

  // 3. Distributed GST construction, all rings in parallel.
  distributed_gst_options go;
  go.n_hat = n_hat;
  go.seed = opt.seed ^ 0x657aULL;
  go.prm = opt.prm;
  go.fast_forward = opt.fast_forward;
  auto built = build_gst_distributed(g, setup.rings, go);
  setup.construction_rounds = built.rounds;
  setup.fallback_finalizations = built.fallback_finalizations;
  setup.fallback_adoptions = built.fallback_adoptions;
  setup.forests = std::move(built.forests);

  // 4. Virtual-distance labeling per ring ([DEV-10]: rings sequential).
  setup.derived.resize(setup.forests.size());
  for (std::size_t j = 0; j < setup.forests.size(); ++j) {
    const gst& t = setup.forests[j];
    auto lab = run_vdist_labeling(g, t, built.parent_rank, built.stretch_child,
                                  n_hat, opt.prm, opt.seed + 31 * j,
                                  opt.fast_forward);
    setup.labeling_rounds += lab.rounds;
    setup.unlabeled += lab.unlabeled;
    auto& der = setup.derived[j];
    const std::size_t n = g.node_count();
    der.stretch_child.assign(n, no_node);
    der.is_stretch_head.assign(n, 0);
    der.virtual_distance = std::move(lab.vdist);
    for (node_id v = 0; v < n; ++v) {
      if (!t.member[v]) continue;
      der.stretch_child[v] = built.stretch_child[v];
      der.is_stretch_head[v] =
          (t.parent[v] == no_node || built.parent_rank[v] != t.rank[v]) ? 1 : 0;
    }
  }
  return setup;
}

radio::broadcast_result run_unknown_cd_single_broadcast(
    const graph::graph& g, node_id source,
    const single_broadcast_options& opt) {
  const std::size_t n = g.node_count();
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat);
  auto setup = prepare_unknown_topology(g, source, opt);

  radio::broadcast_result res;
  res.phase_rounds.emplace_back("bfs_wave", setup.wave_rounds);
  res.phase_rounds.emplace_back("gst_construction", setup.construction_rounds);
  res.phase_rounds.emplace_back("vdist_labeling", setup.labeling_rounds);

  // 5. Ring-by-ring dissemination on one shared network.
  radio::network net(g, {.collision_detection = true});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  tracker.mark(source);
  for (node_id v = 0; v < n; ++v)
    if (setup.rings.ring_of[v] < 0) tracker.exclude(v);

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed ^ 0xbca57ULL, v));

  auto body = std::make_shared<radio::packet_body>();
  body->data = {0x11, 0x22, 0x33};
  // One flyweight data packet for the whole dissemination (zero-alloc rounds).
  const radio::packet data_pkt = radio::packet::make_data(source, body);
  const int dp = opt.prm.decay_phases(n_hat);
  radio::round_buffer txs;
  auto deliver = [&](const radio::reception& rx) {
    if (rx.what == radio::observation::message &&
        rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
      informed[rx.listener] = 1;
      tracker.mark(rx.listener);
    }
  };

  round_t relay_rounds = 0;
  round_sink sink(net, opt.fast_forward);
  for (std::size_t j = 0; j < setup.rings.rings.size(); ++j) {
    const gst& t = setup.forests[j];
    const auto& members = setup.rings.rings[j].members;
    gst_schedule sched(t, setup.derived[j], n_hat,
                       /*slow_by_virtual_distance=*/true);
    // Bucketed planning: per round only the members whose schedule (and
    // coin) that round consults are visited, in member order — observably
    // identical to the naive scan over every ring member.
    const gst_schedule_index idx(sched, members);
    const round_t budget =
        opt.max_rounds_per_ring > 0
            ? opt.max_rounds_per_ring
            : static_cast<round_t>(
                  opt.prm.schedule_slack *
                  (6.0 * t.max_level() + 48.0 * L * L + 64));
    for (round_t r = 0; r < budget; ++r) {
      txs.clear();
      if (r % 2 == 0) {
        for (node_id v : idx.fast_bucket(r)) {
          if (informed[v] &&
              sched.query(v, r, node_rng[v]) != gst_schedule::action::none)
            txs.add(v, data_pkt);
        }
      } else {
        for (node_id v : idx.slow_bucket(r)) {
          // Coin flipped for uninformed members too, as in the naive scan.
          const auto a = sched.query(v, r, node_rng[v]);
          if (a != gst_schedule::action::none && informed[v])
            txs.add(v, data_pkt);
        }
      }
      if (sink.commit(txs, deliver))
        tracker.observe_round(net.stats().rounds);
    }
    relay_rounds += budget;

    // Decay handoff: informed outer-boundary nodes of ring j reach the next
    // ring's roots (its inner boundary).
    if (j + 1 < setup.rings.rings.size()) {
      const level_t outer = setup.rings.rings[j].depth;
      bool any_informed_outer = false;
      for (node_id v : members)
        if (setup.rings.rel_level[v] == outer && informed[v]) {
          any_informed_outer = true;
          break;
        }
      if (opt.fast_forward && !any_informed_outer) {
        // Nobody can transmit (and nobody flips a coin: the informed check
        // short-circuits the draw), and the informed set cannot grow without
        // transmissions — the whole handoff block is idle.
        sink.advance(static_cast<round_t>(dp) * (L + 1));
      } else {
        for (int ph = 0; ph < dp; ++ph) {
          for (int e = 0; e <= L; ++e) {
            txs.clear();
            for (node_id v : members) {
              if (setup.rings.rel_level[v] == outer && informed[v] &&
                  node_rng[v].with_probability_pow2(e))
                txs.add(v, data_pkt);
            }
            if (sink.commit(txs, deliver))
              tracker.observe_round(net.stats().rounds);
          }
        }
      }
      relay_rounds += static_cast<round_t>(dp) * (L + 1);
    }
  }
  sink.flush();
  res.phase_rounds.emplace_back("ring_relay", relay_rounds);

  res.completed = tracker.all_done();
  res.rounds_to_complete =
      tracker.first_complete_round() < 0
          ? -1
          : setup.total_rounds() + tracker.first_complete_round();
  res.rounds_executed = setup.total_rounds() + net.stats().rounds;
  res.transmissions = net.stats().transmissions;
  res.deliveries = net.stats().deliveries;
  res.collisions_observed = net.stats().collisions_observed;
  res.energy = net.energy();
  return res;
}

}  // namespace rn::core
