#include "core/bfs_protocols.h"

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"
#include "radio/network.h"

namespace rn::core {

layering_result run_collision_wave_bfs(const graph::graph& g, node_id source,
                                       level_t d_hat) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  RN_REQUIRE(d_hat >= 0, "d_hat must be non-negative");

  radio::network net(g, {.collision_detection = true});
  layering_result out;
  out.level.assign(n, no_level);
  out.level[source] = 0;

  std::vector<node_id> wave{source};  // nodes transmitting from now on
  std::vector<node_id> joined;
  radio::round_buffer txs;
  for (level_t r = 1; r <= d_hat; ++r) {
    txs.clear();
    for (node_id v : wave)
      txs.add_owned(v, radio::packet::make_beacon(v));
    joined.clear();
    net.step(txs, [&](const radio::reception& rx) {
      // Message or collision both mean "the wave arrived".
      if (out.level[rx.listener] == no_level) {
        out.level[rx.listener] = r;
        joined.push_back(rx.listener);
      }
    });
    wave.insert(wave.end(), joined.begin(), joined.end());
  }
  out.rounds = net.stats().rounds;
  out.transmissions = net.stats().transmissions;
  return out;
}

layering_result run_decay_epoch_bfs(const graph::graph& g, node_id source,
                                    level_t d_hat, std::size_t n_hat,
                                    const params& prm, std::uint64_t seed) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");
  const std::size_t nh = n_hat == 0 ? n : n_hat;
  const int L = log_range(nh);
  const int phases = prm.decay_phases(nh);

  radio::network net(g, {.collision_detection = false});
  layering_result out;
  out.level.assign(n, no_level);
  out.level[source] = 0;

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(seed, v));

  std::vector<node_id> informed{source};
  std::vector<node_id> fresh;
  radio::round_buffer txs;
  for (level_t epoch = 1; epoch <= d_hat; ++epoch) {
    fresh.clear();
    for (int ph = 0; ph < phases; ++ph) {
      for (int e = 0; e <= L; ++e) {
        txs.clear();
        for (node_id v : informed) {
          if (node_rng[v].with_probability_pow2(e))
            txs.add_owned(v, radio::packet::make_beacon(v));
        }
        net.step(txs, [&](const radio::reception& rx) {
          if (rx.what == radio::observation::message &&
              out.level[rx.listener] == no_level) {
            out.level[rx.listener] = epoch;
            fresh.push_back(rx.listener);
          }
        });
      }
    }
    // Nodes first informed during this epoch relay from the next epoch on.
    informed.insert(informed.end(), fresh.begin(), fresh.end());
  }
  out.rounds = net.stats().rounds;
  out.transmissions = net.stats().transmissions;
  return out;
}

}  // namespace rn::core
