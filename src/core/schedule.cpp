#include "core/schedule.h"

#include "common/check.h"
#include "common/math.h"

namespace rn::core {

gst_schedule::gst_schedule(const gst& t, const gst_derived& d,
                           std::size_t n_hat, bool slow_by_virtual_distance)
    : t_(&t), d_(&d), L_(log_range(n_hat)), slow_by_vd_(slow_by_virtual_distance) {
  RN_REQUIRE(t.node_count() == d.stretch_child.size(),
             "gst and derived data mismatch");
}

gst_schedule::action gst_schedule::query(node_id v, round_t t, rng& r) const {
  if (!t_->member[v]) return action::none;
  const level_t l = t_->level[v];
  const rank_t rk = t_->rank[v];
  if (l == no_level || rk == no_rank) return action::none;

  if (t % 2 == 0) {
    // Fast slot: only stretch members with a same-rank child transmit [DEV-3].
    if (d_->stretch_child[v] == no_node) return action::none;
    const round_t period = 6 * L_;
    const round_t slot = (2 * (static_cast<round_t>(l) + 3 * rk)) % period;
    return (t % period) == slot ? action::fast : action::none;
  }

  // Slow slot, keyed by virtual distance (or level in the classic ablation).
  const level_t key = slow_by_vd_ ? d_->virtual_distance[v] : l;
  if (key == no_level) return action::none;
  const round_t start = 1 + 2 * static_cast<round_t>(key);
  if (t < start) return action::none;  // schedule not yet reached this depth
  if ((t - start) % 6 != 0) return action::none;
  const int e = static_cast<int>(((t - start) / 6) % L_);
  return r.with_probability_pow2(e) ? action::slow_prompt : action::none;
}

round_t gst_schedule::fast_slot(node_id v) const {
  if (!t_->member[v]) return -1;
  const level_t l = t_->level[v];
  const rank_t rk = t_->rank[v];
  if (l == no_level || rk == no_rank) return -1;
  if (d_->stretch_child[v] == no_node) return -1;
  return (2 * (static_cast<round_t>(l) + 3 * rk)) % fast_period();
}

level_t gst_schedule::slow_key(node_id v) const {
  if (!t_->member[v]) return no_level;
  if (t_->level[v] == no_level || t_->rank[v] == no_rank) return no_level;
  return slow_by_vd_ ? d_->virtual_distance[v] : t_->level[v];
}

gst_schedule_index::gst_schedule_index(const gst_schedule& s,
                                       std::span<const node_id> members)
    : period_(s.fast_period()) {
  fast_.resize(static_cast<std::size_t>(period_ / 2));
  slow_.resize(3);
  for (const node_id v : members) {
    const round_t slot = s.fast_slot(v);
    if (slot >= 0) fast_[static_cast<std::size_t>(slot / 2)].push_back(v);
    const level_t key = s.slow_key(v);
    if (key != no_level) slow_[static_cast<std::size_t>(key % 3)].push_back(v);
  }
}

}  // namespace rn::core
