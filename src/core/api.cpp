#include "core/api.h"

#include "common/check.h"

namespace rn::core {

std::string to_string(single_algorithm a) {
  switch (a) {
    case single_algorithm::decay: return "decay";
    case single_algorithm::tuned_decay: return "tuned-decay";
    case single_algorithm::gst_known: return "gst-known";
    case single_algorithm::gst_unknown_cd: return "gst-unknown-cd";
  }
  return "?";
}

std::string to_string(multi_algorithm a) {
  switch (a) {
    case multi_algorithm::sequential_decay: return "seq-decay";
    case multi_algorithm::routing: return "routing";
    case multi_algorithm::rlnc_known: return "rlnc-known";
    case multi_algorithm::rlnc_unknown_cd: return "rlnc-unknown-cd";
  }
  return "?";
}

radio::broadcast_result run_single(const graph::graph& g, node_id source,
                                   single_algorithm alg,
                                   const run_options& opt) {
  switch (alg) {
    case single_algorithm::decay: {
      baseline::decay_options o;
      o.n_hat = opt.n_hat;
      o.seed = opt.seed;
      return baseline::run_decay_broadcast(g, source, o);
    }
    case single_algorithm::tuned_decay: {
      baseline::tuned_decay_options o;
      o.n_hat = opt.n_hat;
      o.d_hat = opt.d_hat;
      o.seed = opt.seed;
      return baseline::run_tuned_decay_broadcast(g, source, o);
    }
    case single_algorithm::gst_known: {
      single_broadcast_options o;
      o.n_hat = opt.n_hat;
      o.d_hat = opt.d_hat;
      o.seed = opt.seed;
      o.prm = opt.prm;
      o.fast_forward = opt.fast_forward;
      return run_known_single_broadcast(g, source, o);
    }
    case single_algorithm::gst_unknown_cd: {
      single_broadcast_options o;
      o.n_hat = opt.n_hat;
      o.d_hat = opt.d_hat;
      o.seed = opt.seed;
      o.prm = opt.prm;
      o.fast_forward = opt.fast_forward;
      return run_unknown_cd_single_broadcast(g, source, o);
    }
  }
  RN_REQUIRE(false, "unknown algorithm");
  return {};
}

radio::broadcast_result run_multi(const graph::graph& g, node_id source,
                                  std::size_t k, multi_algorithm alg,
                                  const run_options& opt) {
  switch (alg) {
    case multi_algorithm::sequential_decay: {
      baseline::multi_options o;
      o.k = k;
      o.n_hat = opt.n_hat;
      o.seed = opt.seed;
      return baseline::run_sequential_decay_multi(g, source, o);
    }
    case multi_algorithm::routing: {
      baseline::multi_options o;
      o.k = k;
      o.n_hat = opt.n_hat;
      o.seed = opt.seed;
      return baseline::run_routing_multi(g, source, o);
    }
    case multi_algorithm::rlnc_known: {
      multi_broadcast_options o;
      o.n_hat = opt.n_hat;
      o.d_hat = opt.d_hat;
      o.seed = opt.seed;
      o.prm = opt.prm;
      o.payload_size = opt.payload_size;
      o.fast_forward = opt.fast_forward;
      const auto msgs = coding::make_test_messages(k, opt.payload_size,
                                                   opt.seed ^ 0x5eedULL);
      auto res = run_known_multi_broadcast(g, source, msgs, o);
      res.base.completed = res.base.completed && res.payloads_verified;
      return res.base;
    }
    case multi_algorithm::rlnc_unknown_cd: {
      multi_broadcast_options o;
      o.n_hat = opt.n_hat;
      o.d_hat = opt.d_hat;
      o.seed = opt.seed;
      o.prm = opt.prm;
      o.payload_size = opt.payload_size;
      o.fast_forward = opt.fast_forward;
      const auto msgs = coding::make_test_messages(k, opt.payload_size,
                                                   opt.seed ^ 0x5eedULL);
      auto res = run_unknown_cd_multi_broadcast(g, source, msgs, o);
      res.base.completed = res.base.completed && res.payloads_verified;
      return res.base;
    }
  }
  RN_REQUIRE(false, "unknown algorithm");
  return {};
}

}  // namespace rn::core
