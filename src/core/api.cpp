#include "core/api.h"

#include "baseline/decay.h"
#include "baseline/multi_baselines.h"
#include "common/check.h"
#include "core/multi_broadcast.h"
#include "core/single_broadcast.h"

namespace rn::core {

namespace {

single_broadcast_options to_single_options(const options& opt) {
  single_broadcast_options o;
  o.n_hat = opt.n_hat;
  o.d_hat = opt.d_hat;
  o.seed = opt.seed;
  o.prm = opt.prm;
  o.fast_forward = opt.fast_forward;
  return o;
}

multi_broadcast_options to_multi_options(const options& opt) {
  multi_broadcast_options o;
  o.n_hat = opt.n_hat;
  o.d_hat = opt.d_hat;
  o.seed = opt.seed;
  o.prm = opt.prm;
  o.payload_size = opt.payload_size;
  o.fast_forward = opt.fast_forward;
  return o;
}

std::vector<coding::message> test_messages(const broadcast_workload& w,
                                           const options& opt) {
  const std::uint64_t seed =
      opt.message_seed != 0 ? opt.message_seed : opt.seed ^ 0x5eedULL;
  return coding::make_test_messages(w.messages, opt.payload_size, seed);
}

broadcast_outcome of_single(radio::broadcast_result res) {
  return {std::move(res), true};
}

broadcast_outcome of_multi(multi_broadcast_result res) {
  return {std::move(res.base), res.payloads_verified};
}

}  // namespace

protocol_registry& protocol_registry::instance() {
  static protocol_registry reg;
  return reg;
}

protocol_registry::protocol_registry() {
  using g_t = const graph::graph&;
  using w_t = const broadcast_workload&;
  using o_t = const options&;
  add({"decay", "BGI Decay baseline (single message)", false,
       [](g_t g, w_t w, o_t opt) {
         baseline::decay_options o;
         o.n_hat = opt.n_hat;
         o.seed = opt.seed;
         o.fast_forward = opt.fast_forward;
         return of_single(baseline::run_decay_broadcast(g, w.source, o));
       }});
  add({"tuned-decay", "Czumaj-Rytter-style tuned Decay baseline", false,
       [](g_t g, w_t w, o_t opt) {
         baseline::tuned_decay_options o;
         o.n_hat = opt.n_hat;
         o.d_hat = opt.d_hat;
         o.seed = opt.seed;
         o.fast_forward = opt.fast_forward;
         return of_single(baseline::run_tuned_decay_broadcast(g, w.source, o));
       }});
  add({"gst-known", "known topology, GST schedule (O(D + log^2 n))", false,
       [](g_t g, w_t w, o_t opt) {
         return of_single(
             run_known_single_broadcast(g, w.source, to_single_options(opt)));
       }});
  add({"gst-unknown-cd", "Theorem 1.1 pipeline (O(D + log^6 n))", false,
       [](g_t g, w_t w, o_t opt) {
         return of_single(run_unknown_cd_single_broadcast(
             g, w.source, to_single_options(opt)));
       }});
  add({"seq-decay", "one Decay broadcast per message (baseline)", true,
       [](g_t g, w_t w, o_t opt) {
         baseline::multi_options o;
         o.k = w.messages;
         o.n_hat = opt.n_hat;
         o.seed = opt.seed;
         return of_single(baseline::run_sequential_decay_multi(g, w.source, o));
       }});
  add({"routing", "store-and-forward random forwarding (baseline)", true,
       [](g_t g, w_t w, o_t opt) {
         baseline::multi_options o;
         o.k = w.messages;
         o.n_hat = opt.n_hat;
         o.seed = opt.seed;
         return of_single(baseline::run_routing_multi(g, w.source, o));
       }});
  add({"rlnc-known", "Theorem 1.2: RLNC over a central MMV-GST schedule", true,
       [](g_t g, w_t w, o_t opt) {
         return of_multi(run_known_multi_broadcast(
             g, w.source, test_messages(w, opt), to_multi_options(opt)));
       }});
  add({"rlnc-unknown-cd", "Theorem 1.3: Thm 1.1 setup + batched RLNC relay",
       true, [](g_t g, w_t w, o_t opt) {
         return of_multi(run_unknown_cd_multi_broadcast(
             g, w.source, test_messages(w, opt), to_multi_options(opt)));
       }});
}

broadcast_outcome run_broadcast(const graph::graph& g,
                                std::string_view protocol,
                                const broadcast_workload& w,
                                const options& opt) {
  const auto* e = protocol_registry::instance().find(protocol);
  RN_REQUIRE(e != nullptr,
             "unknown protocol '" + std::string(protocol) + "' (known: " +
                 protocol_registry::instance().ids_joined() + ")");
  RN_REQUIRE(w.messages >= 1, "workload needs at least one message");
  RN_REQUIRE(e->multi_message || w.messages == 1,
             "protocol '" + e->id + "' is single-message (got messages = " +
                 std::to_string(w.messages) + ")");
  return e->run(g, w, opt);
}

}  // namespace rn::core
