// Fast-forward-aware protocol-runner utilities.
//
// `round_sink` sits between a protocol runner's per-round planning loop and
// the radio network. In fast-forward mode it coalesces planned-but-empty
// rounds (no transmitter scheduled) into a single deferred batch that is
// flushed as one O(1) `network::advance` call the moment a busy round — or a
// stats read — needs the round counter to be current. In naive mode every
// round is stepped individually; both modes produce bit-identical protocol
// results (see tests/test_fast_forward.cpp), which is what makes the naive
// path a cross-check oracle for the fast one.
#pragma once

#include <vector>

#include "common/check.h"
#include "radio/network.h"

namespace rn::core {

class round_sink {
 public:
  round_sink(radio::network& net, bool fast_forward)
      : net_(&net), ff_(fast_forward) {}

  round_sink(const round_sink&) = delete;
  round_sink& operator=(const round_sink&) = delete;
  // Deferred rounds are applied at destruction as a backstop, but callers
  // must still flush() before reading network statistics — a dtor flush
  // lands after any stats read in the enclosing scope.
  ~round_sink() { flush(); }

  [[nodiscard]] bool fast_forward() const { return ff_; }

  /// Commits one planned round. In fast-forward mode an empty round is
  /// deferred (it cannot deliver anything); otherwise any deferral is flushed
  /// and the round is stepped. `force` steps even an empty round — used when
  /// the caller inspects state that naive stepping would only reach after
  /// executing the round (e.g. a stop-when-complete check). Returns true iff
  /// the round was stepped. `on_rx` is statically dispatched (any callable).
  template <class OnRx>
  bool commit(const radio::round_buffer& txs, OnRx&& on_rx,
              bool force = false) {
    if (ff_ && !force && txs.empty()) {
      ++pending_;
      return false;
    }
    flush();
    net_->step(txs, std::forward<OnRx>(on_rx));
    return true;
  }

  /// Defers `k` rounds the caller has proven idle (no transmitter can be
  /// scheduled in them). Only meaningful in fast-forward mode.
  void advance(round_t k) {
    RN_REQUIRE(ff_, "round_sink::advance requires fast-forward mode");
    RN_REQUIRE(k >= 0, "cannot advance by a negative round count");
    pending_ += k;
  }

  /// Applies all deferred rounds. Call before reading network statistics.
  void flush() {
    if (pending_ > 0) {
      net_->advance(pending_);
      pending_ = 0;
    }
  }

 private:
  radio::network* net_;
  bool ff_;
  round_t pending_ = 0;
};

}  // namespace rn::core
