// Beep-wave diameter estimation (paper footnote 2, via the beep-wave tool of
// Ghaffari-Haeupler [10]).
//
// The paper assumes a constant-factor upper bound on D and notes it can be
// computed in O(D) rounds with collision detection. This implements that
// primitive by doubling: for T = 1, 2, 4, ... run a T-round collision wave
// from the source, then open an echo window in which exactly the nodes first
// reached in round T start a return wave. If the source hears anything
// during the window, the wave was still expanding (ecc > T - 1) and T
// doubles; otherwise ecc(source) < T <= 2 ecc(source) (for ecc >= 1), a
// 2-approximation, and D <= 2 ecc <= 4 ecc(source). Total O(D) rounds.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "graph/graph.h"

namespace rn::core {

struct diameter_estimate {
  level_t estimate = 0;  ///< in [ecc(source), 2 ecc(source)] for ecc >= 1
  round_t rounds = 0;
};

/// Requires the collision-detection model (echoes are mostly collisions).
[[nodiscard]] diameter_estimate estimate_eccentricity_beep_waves(
    const graph::graph& g, node_id source);

}  // namespace rn::core
