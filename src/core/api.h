// Public facade: one entry point per algorithm family, for examples and
// benchmark harnesses.
#pragma once

#include <string>

#include "baseline/decay.h"
#include "baseline/multi_baselines.h"
#include "core/multi_broadcast.h"
#include "core/single_broadcast.h"

namespace rn::core {

enum class single_algorithm {
  decay,          ///< BGI Decay (baseline)
  tuned_decay,    ///< Czumaj-Rytter-style stand-in (baseline)
  gst_known,      ///< known topology, GST schedule (O(D + log^2 n))
  gst_unknown_cd, ///< Theorem 1.1 (O(D + log^6 n))
};

enum class multi_algorithm {
  sequential_decay,  ///< one Decay broadcast per message (baseline)
  routing,           ///< store-and-forward random forwarding (baseline)
  rlnc_known,        ///< Theorem 1.2
  rlnc_unknown_cd,   ///< Theorem 1.3
};

[[nodiscard]] std::string to_string(single_algorithm a);
[[nodiscard]] std::string to_string(multi_algorithm a);

struct run_options {
  std::size_t n_hat = 0;
  level_t d_hat = 0;
  std::uint64_t seed = 1;
  params prm = params::paper();
  std::size_t payload_size = 32;
  /// Fast-forward transmitter-free rounds in the GST-based algorithms
  /// (bit-identical results; ignored by the Decay baselines, which schedule
  /// a coin flip for every informed node every round).
  bool fast_forward = false;
};

/// Runs a single-message broadcast with the chosen algorithm.
[[nodiscard]] radio::broadcast_result run_single(const graph::graph& g,
                                                 node_id source,
                                                 single_algorithm alg,
                                                 const run_options& opt);

/// Runs a k-message broadcast with the chosen algorithm.
[[nodiscard]] radio::broadcast_result run_multi(const graph::graph& g,
                                                node_id source, std::size_t k,
                                                multi_algorithm alg,
                                                const run_options& opt);

}  // namespace rn::core
