// Public facade: a string-keyed protocol registry and one entry point,
// `run_broadcast(graph, protocol_id, workload, options)`, for examples,
// declarative scenarios, and the benchmark harnesses.
//
// Protocols are data: every algorithm family member (baselines and the
// paper's Theorem 1.1/1.2/1.3 pipelines) registers under a stable id, so
// workloads can name algorithms in JSON/CLI instead of compiling against an
// enum. (The pre-registry enum API was deleted after its one-PR deprecation
// window.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/registry.h"
#include "core/options.h"
#include "core/params.h"
#include "graph/graph.h"
#include "radio/result.h"

namespace rn::core {

/// What to broadcast: the source node and how many messages start there.
struct broadcast_workload {
  node_id source = 0;
  std::size_t messages = 1;
};

/// Deprecated alias from before the options struct grew its versioned
/// canonical text form (core/options.h); new code names core::options.
using run_options = options;

/// Result of `run_broadcast`: the usual round/traffic counters plus the
/// payload check of the coding protocols (always true for uncoded ones).
struct broadcast_outcome {
  radio::broadcast_result base;
  bool payloads_verified = true;
};

/// One registered broadcast protocol.
struct protocol_entry {
  std::string id;       ///< stable key, e.g. "decay", "rlnc-unknown-cd"
  std::string summary;  ///< one-line description for --list output
  bool multi_message = false;  ///< accepts workloads with messages > 1
  std::function<broadcast_outcome(const graph::graph&,
                                  const broadcast_workload&,
                                  const options&)>
      run;
};

/// Process-wide protocol id -> entry table; builtins register on first use.
class protocol_registry {
 public:
  static protocol_registry& instance();

  void add(protocol_entry e) {
    RN_REQUIRE(static_cast<bool>(e.run), "protocol has no runner: " + e.id);
    table_.add(std::move(e));
  }
  [[nodiscard]] const protocol_entry* find(std::string_view id) const {
    return table_.find(id);
  }
  /// Registration order.
  [[nodiscard]] std::vector<std::string> ids() const { return table_.keys(); }
  [[nodiscard]] std::string ids_joined() const { return table_.keys_joined(); }

 private:
  protocol_registry();
  keyed_registry<protocol_entry, &protocol_entry::id> table_{"protocol id"};
};

/// Runs `protocol` on `g` with the given workload. Throws contract_error for
/// an unknown protocol id, and when a single-message protocol receives a
/// workload with messages != 1.
[[nodiscard]] broadcast_outcome run_broadcast(const graph::graph& g,
                                              std::string_view protocol,
                                              const broadcast_workload& w,
                                              const options& opt);

}  // namespace rn::core
