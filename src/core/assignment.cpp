#include "core/assignment.h"

#include <algorithm>

#include "common/check.h"

namespace rn::core {

assignment_problem::assignment_problem(config c) : cfg_(std::move(c)) {
  RN_REQUIRE(cfg_.g != nullptr && cfg_.st != nullptr, "graph/state required");
  const std::size_t n = cfg_.g->node_count();
  auto& st = *cfg_.st;

  is_blue_.assign(n, 0);
  is_red_.assign(n, 0);
  red_active_.assign(n, 0);
  red_loner_parent_.assign(n, 0);
  red_brisk_.assign(n, 0);
  blue_is_loner_.assign(n, 0);
  adopt_eligible_.assign(n, 0);
  rng_idx_.assign(n, -1);
  coin_ = rng::for_stream(cfg_.seed, 0xc01ceeeULL);

  // Childless blues reach the lowest rank phase unranked; rank 1 is exactly
  // the leaf rule, and every (blue_level+1, *) problem has already finished.
  if (cfg_.target_rank == 1) {
    for (node_id v : cfg_.blue_layer_nodes)
      if (!st.assigned[v] && st.rank[v] == no_rank) st.rank[v] = 1;
  }
  for (node_id v : cfg_.blue_layer_nodes) {
    if (!st.assigned[v] && st.rank[v] == cfg_.target_rank) {
      blues_.push_back(v);
      is_blue_[v] = 1;
    }
  }
  for (node_id v : cfg_.red_layer_nodes) {
    if (st.rank[v] == no_rank) {
      red_candidates_.push_back(v);
      is_red_[v] = 1;
    }
  }
  for (node_id v : cfg_.blue_layer_nodes) {
    rng_idx_[v] = static_cast<std::int32_t>(rng_.size());
    rng_.push_back(rng::for_stream(cfg_.seed, v));
  }
  for (node_id v : cfg_.red_layer_nodes) {
    if (rng_idx_[v] < 0) {
      rng_idx_[v] = static_cast<std::int32_t>(rng_.size());
      rng_.push_back(rng::for_stream(cfg_.seed, v));
    }
  }
  enter(sub_phase::p0_ident);
}

rng& assignment_problem::node_rng(node_id v) {
  RN_REQUIRE(rng_idx_[v] >= 0, "node has no rng stream in this problem");
  return rng_[static_cast<std::size_t>(rng_idx_[v])];
}

round_t assignment_problem::rounds_required(int L, int decay_phases,
                                            int epochs,
                                            int recruit_iterations) {
  const round_t decay = static_cast<round_t>(decay_phases) * (L + 1);
  const round_t part = recruiting_instance::rounds_required(L, recruit_iterations);
  return decay + static_cast<round_t>(epochs) * (1 + decay + 3 * part + decay);
}

void assignment_problem::enter(sub_phase s) {
  sub_ = s;
  phase_pos_ = 0;
  switch (s) {
    case sub_phase::p0_ident:
      rounds_left_ = decay_rounds();
      break;
    case sub_phase::s1_probe:
      rounds_left_ = 1;
      break;
    case sub_phase::s1_decay:
      rounds_left_ = decay_rounds();
      break;
    case sub_phase::part1:
    case sub_phase::part2:
    case sub_phase::part3:
      rounds_left_ = recruiting_instance::rounds_required(
          cfg_.L, cfg_.recruit_iterations);
      break;
    case sub_phase::s3_adopt:
      rounds_left_ = decay_rounds();
      break;
    case sub_phase::done:
      rounds_left_ = 0;
      break;
  }
}

void assignment_problem::start_epoch() {
  std::size_t active = 0;
  for (node_id v : red_candidates_)
    if (red_active_[v]) ++active;
  epoch_active_reds_.push_back(active);
  for (node_id v : red_candidates_) red_loner_parent_[v] = 0;
  for (node_id u : blues_) blue_is_loner_[u] = 0;
  temp_pairs_.clear();
  announcers_.clear();
}

void assignment_problem::build_part(int part) {
  recruiting_instance::config rc;
  rc.g = cfg_.g;
  rc.L = cfg_.L;
  rc.iterations = cfg_.recruit_iterations;
  rc.exp_step = cfg_.recruit_exp_step;
  rc.seed = cfg_.seed * 1315423911ULL + static_cast<std::uint64_t>(epoch_) * 31 +
            static_cast<std::uint64_t>(part);
  auto& st = *cfg_.st;
  for (node_id v : red_candidates_) {
    if (!red_active_[v]) continue;
    const bool in_part = (part == 1 && red_loner_parent_[v]) ||
                         (part == 2 && !red_loner_parent_[v] && red_brisk_[v]) ||
                         (part == 3 && !red_loner_parent_[v] && !red_brisk_[v]);
    if (in_part) rc.reds.push_back(v);
  }
  for (node_id u : blues_) {
    if (!st.assigned[u] && !blue_temp_this_epoch_[u]) rc.blues.push_back(u);
  }
  recruit_ = std::make_unique<recruiting_instance>(std::move(rc));
}

void assignment_problem::apply_part_results(int part) {
  auto& st = *cfg_.st;
  const rank_t i = cfg_.target_rank;
  for (node_id u : recruit_->blues()) {
    const auto b = recruit_->blue(u);
    if (!b.recruited) continue;
    const bool many = b.parent_class == recruiting_instance::klass::many;
    if (part == 1 || many) {
      // Permanent: part-1 recruits unconditionally, otherwise many-children.
      st.assigned[u] = 1;
      st.parent[u] = b.parent;
      st.parent_rank[u] = many ? i + 1 : i;
    } else {
      blue_temp_this_epoch_[u] = 1;
      temp_pairs_.push_back({b.parent, u});
    }
  }
  // Reds of this part: loner-parents (part 1) always mark; parts 2/3 mark on
  // class none/many. Lone-child reds of parts 2/3 stay active.
  for (node_id v : recruit_->reds()) {
    const auto r = recruit_->red(v);
    const bool solo = r.k == recruiting_instance::klass::solo;
    const bool many = r.k == recruiting_instance::klass::many;
    if (part == 1) {
      red_active_[v] = 0;  // loner-parents retire after this epoch
      if (solo) {
        st.rank[v] = i;
        st.stretch_child[v] = r.solo_child;
        announcers_.push_back({v, i});
      } else if (many) {
        st.rank[v] = i + 1;
        announcers_.push_back({v, static_cast<rank_t>(i + 1)});
      }
      // klass none: marked but unranked; it may still become a parent in a
      // lower rank phase.
    } else {
      if (many) {
        red_active_[v] = 0;
        st.rank[v] = i + 1;
        announcers_.push_back({v, static_cast<rank_t>(i + 1)});
      } else if (!solo) {  // klass none: marked, retire unranked
        red_active_[v] = 0;
      }
    }
  }
}

void assignment_problem::stage3_computations() {
  // Adoption eligibility: unassigned same-layer nodes whose (final) rank is
  // strictly below i — at this point in the pipeline any still-unranked node
  // of this layer can only end with rank < i.
  auto& st = *cfg_.st;
  for (node_id v : cfg_.blue_layer_nodes) {
    adopt_eligible_[v] = !st.assigned[v] && !is_blue_[v] &&
                         (st.rank[v] == no_rank || st.rank[v] < cfg_.target_rank);
  }
}

void assignment_problem::finish_problem() {
  auto& st = *cfg_.st;
  const rank_t i = cfg_.target_rank;
  // [DEV-9] w.h.p. nothing below fires; counters make violations visible.
  for (const auto& tp : temp_pairs_) {
    if (st.assigned[tp.blue]) continue;
    st.assigned[tp.blue] = 1;
    st.parent[tp.blue] = tp.red;
    st.parent_rank[tp.blue] = i;
    st.rank[tp.red] = i;
    st.stretch_child[tp.red] = tp.blue;
    st.fallback_finalizations += 1;
  }
  for (node_id u : blues_) {
    if (st.assigned[u]) continue;
    // Adopt any red-layer neighbor: prefer already-ranked higher ones, then
    // unranked ones (which become rank-i parents), and as a last resort a
    // rank-i parent that must then be promoted to i+1 (its lone child count
    // just grew past one; we repair the former solo child's knowledge too).
    node_id ranked_choice = no_node;
    node_id unranked_choice = no_node;
    node_id same_rank_choice = no_node;
    for (node_id w : cfg_.g->neighbors(u)) {
      if (st.ring_of[w] != cfg_.ring || st.rel_level[w] != cfg_.blue_level - 1)
        continue;
      if (st.rank[w] > i)
        ranked_choice = ranked_choice == no_node ? w : ranked_choice;
      else if (st.rank[w] == no_rank)
        unranked_choice = unranked_choice == no_node ? w : unranked_choice;
      else if (st.rank[w] == i)
        same_rank_choice = same_rank_choice == no_node ? w : same_rank_choice;
    }
    st.fallback_adoptions += 1;
    auto is_m_parent = [&](node_id w) {
      return st.rank[w] == i && st.stretch_child[w] != no_node;
    };
    if (ranked_choice != no_node) {
      st.assigned[u] = 1;
      st.parent[u] = ranked_choice;
      st.parent_rank[u] = st.rank[ranked_choice];
    } else if (same_rank_choice != no_node) {
      // Promote a rank-i neighbor to i+1 and attach; promotion removes its
      // same-rank matching edge, so this is always collision-free. Repair the
      // former solo child's recorded parent rank.
      const node_id v = same_rank_choice;
      st.assigned[u] = 1;
      st.parent[u] = v;
      st.rank[v] = i + 1;
      st.parent_rank[u] = i + 1;
      st.stretch_child[v] = no_node;
      for (node_id w : cfg_.g->neighbors(v))
        if (st.parent[w] == v && st.rank[w] == i) st.parent_rank[w] = i + 1;
    } else if (unranked_choice != no_node) {
      // Attaching u to an unranked red makes that red a rank-i matching
      // parent; pick one whose neighborhood holds no foreign rank-i matching
      // child (u itself has no rank-i neighbors here, or case 2 would have
      // applied). If every candidate conflicts, steal the conflicting child:
      // the new parent then has two rank-i children (rank i+1, no matching
      // edge) and the robbed parent reverts to the rule over its remaining
      // children.
      node_id clean = no_node;
      for (node_id w : cfg_.g->neighbors(u)) {
        if (st.ring_of[w] != cfg_.ring ||
            st.rel_level[w] != cfg_.blue_level - 1 || st.rank[w] != no_rank)
          continue;
        bool conflict = false;
        for (node_id x : cfg_.g->neighbors(w)) {
          if (x != u && st.rank[x] == i && st.parent[x] != no_node &&
              st.parent[x] != w && is_m_parent(st.parent[x])) {
            conflict = true;
            break;
          }
        }
        if (!conflict) {
          clean = w;
          break;
        }
      }
      if (clean != no_node) {
        st.assigned[u] = 1;
        st.parent[u] = clean;
        st.rank[clean] = i;
        st.stretch_child[clean] = u;
        st.parent_rank[u] = i;
      } else {
        const node_id v = unranked_choice;
        node_id stolen = no_node;
        for (node_id x : cfg_.g->neighbors(v)) {
          if (x != u && st.rank[x] == i && st.parent[x] != no_node &&
              st.parent[x] != v && is_m_parent(st.parent[x])) {
            stolen = x;
            break;
          }
        }
        RN_REQUIRE(stolen != no_node, "conflicted fallback without a conflict");
        const node_id robbed = st.parent[stolen];
        st.assigned[u] = 1;
        st.parent[u] = v;
        st.parent[stolen] = v;
        st.rank[v] = i + 1;
        st.parent_rank[u] = i + 1;
        st.parent_rank[stolen] = i + 1;
        // Robbed parent: rank from the rule over its remaining children.
        st.stretch_child[robbed] = no_node;
        rank_t best = 0;
        int count = 0;
        for (node_id x : cfg_.g->neighbors(robbed)) {
          if (st.parent[x] != robbed) continue;
          if (st.rank[x] > best) {
            best = st.rank[x];
            count = 1;
          } else if (st.rank[x] == best) {
            ++count;
          }
        }
        st.rank[robbed] = best == 0 ? no_rank : (count >= 2 ? best + 1 : best);
        if (best > 0 && count == 1) {
          for (node_id x : cfg_.g->neighbors(robbed))
            if (st.parent[x] == robbed && st.rank[x] == best)
              st.stretch_child[robbed] = x;
        }
      }
    }
    // No red-layer neighbor at all cannot happen on a BFS layering; the
    // validator reports it if a generator/mask bug ever produces it.
  }
  enter(sub_phase::done);
}

void assignment_problem::plan(radio::round_buffer& out) {
  if (finished()) return;
  auto& st = *cfg_.st;
  switch (sub_) {
    case sub_phase::p0_ident: {
      // Blues announce themselves so reds learn whether they participate.
      const int e = static_cast<int>(phase_pos_ % (cfg_.L + 1));
      for (node_id u : blues_) {
        if (node_rng(u).with_probability_pow2(e))
          out.add_owned(u, radio::packet::make_beacon(u));
      }
      break;
    }
    case sub_phase::s1_probe: {
      if (phase_pos_ == 0) start_epoch();
      for (node_id v : red_candidates_)
        if (red_active_[v])
          out.add_owned(v, radio::packet::make_beacon(v));
      break;
    }
    case sub_phase::s1_decay: {
      const int e = static_cast<int>(phase_pos_ % (cfg_.L + 1));
      for (node_id u : blues_) {
        if (blue_is_loner_[u] && !st.assigned[u] &&
            node_rng(u).with_probability_pow2(e))
          out.add_owned(u, radio::packet::make_beacon(u));
      }
      break;
    }
    case sub_phase::part1:
    case sub_phase::part2:
    case sub_phase::part3:
      recruit_->plan(out);
      break;
    case sub_phase::s3_adopt: {
      const int e = static_cast<int>(phase_pos_ % (cfg_.L + 1));
      for (const auto& [v, rk] : announcers_) {
        if (node_rng(v).with_probability_pow2(e))
          out.add_owned(v, radio::packet::make_rank(v, rk));
      }
      break;
    }
    case sub_phase::done:
      break;
  }
}

void assignment_problem::on_reception(const radio::reception& rx) {
  if (finished()) return;
  auto& st = *cfg_.st;
  switch (sub_) {
    case sub_phase::p0_ident:
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::beacon && is_red_[rx.listener])
        red_active_[rx.listener] = 1;
      break;
    case sub_phase::s1_probe:
      // A blue that *receives a message* has exactly one active red neighbor.
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::beacon &&
          is_blue_[rx.listener] && !st.assigned[rx.listener])
        blue_is_loner_[rx.listener] = 1;
      break;
    case sub_phase::s1_decay:
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::beacon && is_red_[rx.listener] &&
          red_active_[rx.listener])
        red_loner_parent_[rx.listener] = 1;
      break;
    case sub_phase::part1:
    case sub_phase::part2:
    case sub_phase::part3:
      recruit_->on_reception(rx);
      break;
    case sub_phase::s3_adopt:
      if (rx.what == radio::observation::message &&
          rx.pkt->kind == radio::packet_kind::rank_announce &&
          adopt_eligible_[rx.listener] && !st.assigned[rx.listener]) {
        const node_id u = rx.listener;
        st.assigned[u] = 1;
        st.parent[u] = rx.pkt->a;
        st.parent_rank[u] = static_cast<rank_t>(rx.pkt->x);
      }
      break;
    case sub_phase::done:
      break;
  }
}

void assignment_problem::end_round() {
  if (finished()) return;
  if (sub_ == sub_phase::part1 || sub_ == sub_phase::part2 ||
      sub_ == sub_phase::part3)
    recruit_->end_round();
  ++phase_pos_;
  --rounds_left_;
  if (rounds_left_ > 0) return;
  advance_subphase();
}

round_t assignment_problem::quiet_rounds() const {
  switch (sub_) {
    case sub_phase::p0_ident:
      // Every blue draws an announcement coin each round.
      return blues_.empty() ? rounds_left_ : 0;
    case sub_phase::s1_probe: {
      // Single deterministic round: transmitters are the active reds.
      for (node_id v : red_candidates_)
        if (red_active_[v]) return 0;
      return rounds_left_;
    }
    case sub_phase::s1_decay: {
      // Only unassigned loner blues flip coins / transmit.
      for (node_id u : blues_)
        if (blue_is_loner_[u] && !cfg_.st->assigned[u]) return 0;
      return rounds_left_;
    }
    case sub_phase::part1:
    case sub_phase::part2:
    case sub_phase::part3:
      return std::min(rounds_left_, recruit_->quiet_rounds());
    case sub_phase::s3_adopt:
      // Only stage-III announcers flip coins / transmit.
      return announcers_.empty() ? rounds_left_ : 0;
    case sub_phase::done:
      return 0;
  }
  return 0;
}

void assignment_problem::skip_rounds(round_t k) {
  RN_REQUIRE(k >= 0 && k <= rounds_left_, "skip beyond sub-phase");
  if (k == 0 || finished()) return;
  // Epoch bookkeeping that naive stepping performs inside plan().
  if (sub_ == sub_phase::s1_probe && phase_pos_ == 0) start_epoch();
  if (sub_ == sub_phase::part1 || sub_ == sub_phase::part2 ||
      sub_ == sub_phase::part3)
    recruit_->skip_rounds(k);
  phase_pos_ += k;
  rounds_left_ -= k;
  if (rounds_left_ == 0) advance_subphase();
}

void assignment_problem::advance_subphase() {
  switch (sub_) {
    case sub_phase::p0_ident: {
      blue_temp_this_epoch_.assign(cfg_.g->node_count(), 0);
      enter(sub_phase::s1_probe);
      break;
    }
    case sub_phase::s1_probe:
      enter(sub_phase::s1_decay);
      break;
    case sub_phase::s1_decay: {
      // Brisk/lazy split of the active non-loner-parent reds.
      for (node_id v : red_candidates_)
        if (red_active_[v] && !red_loner_parent_[v])
          red_brisk_[v] = coin_.bernoulli(0.5) ? 1 : 0;
      build_part(1);
      enter(sub_phase::part1);
      break;
    }
    case sub_phase::part1:
      apply_part_results(1);
      build_part(2);
      enter(sub_phase::part2);
      break;
    case sub_phase::part2:
      apply_part_results(2);
      build_part(3);
      enter(sub_phase::part3);
      break;
    case sub_phase::part3:
      apply_part_results(3);
      stage3_computations();
      enter(sub_phase::s3_adopt);
      break;
    case sub_phase::s3_adopt: {
      // Epoch end: temporary pairs dissolve (lone-child reds stay active).
      ++epoch_;
      blue_temp_this_epoch_.assign(cfg_.g->node_count(), 0);
      if (epoch_ < cfg_.epochs)
        enter(sub_phase::s1_probe);
      else
        finish_problem();
      break;
    }
    case sub_phase::done:
      break;
  }
}

assignment_run_result run_assignment(const graph::graph& g,
                                     const std::vector<node_id>& reds,
                                     const std::vector<node_id>& blues,
                                     rank_t target_rank, int L,
                                     int decay_phases, int epochs,
                                     int recruit_iterations,
                                     int recruit_exp_step,
                                     std::uint64_t seed, bool fast_forward) {
  assignment_run_result res;
  res.st = build_state(g.node_count());
  auto& st = res.st;
  for (node_id v : reds) {
    st.ring_of[v] = 0;
    st.rel_level[v] = 0;
  }
  for (node_id u : blues) {
    st.ring_of[u] = 0;
    st.rel_level[u] = 1;
    st.rank[u] = target_rank;
  }

  assignment_problem::config cfg;
  cfg.g = &g;
  cfg.st = &st;
  cfg.ring = 0;
  cfg.blue_level = 1;
  cfg.target_rank = target_rank;
  cfg.blue_layer_nodes = blues;
  cfg.red_layer_nodes = reds;
  cfg.L = L;
  cfg.decay_phases = decay_phases;
  cfg.epochs = epochs;
  cfg.recruit_iterations = recruit_iterations;
  cfg.recruit_exp_step = recruit_exp_step;
  cfg.seed = seed;
  assignment_problem prob(std::move(cfg));

  radio::network net(g, {.collision_detection = false});
  radio::round_buffer txs;
  while (!prob.finished()) {
    if (fast_forward) {
      const round_t q = prob.quiet_rounds();
      if (q > 0) {
        net.advance(q);
        prob.skip_rounds(q);
        continue;
      }
    }
    txs.clear();
    prob.plan(txs);
    net.step(txs, [&](const radio::reception& rx) { prob.on_reception(rx); });
    prob.end_round();
  }
  res.rounds = net.stats().rounds;
  for (node_id u : blues)
    if (!st.assigned[u]) res.all_assigned = false;
  res.fallback_finalizations = st.fallback_finalizations;
  res.fallback_adoptions = st.fallback_adoptions;
  res.epoch_active_reds = prob.epoch_active_reds();
  return res;
}

}  // namespace rn::core
