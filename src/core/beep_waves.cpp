#include "core/beep_waves.h"

#include <vector>

#include "common/check.h"
#include "radio/network.h"

namespace rn::core {

diameter_estimate estimate_eccentricity_beep_waves(const graph::graph& g,
                                                   node_id source) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source < n, "source out of range");

  radio::network net(g, {.collision_detection = true});
  radio::round_buffer txs;

  diameter_estimate out;
  for (level_t t = 1;; t *= 2) {
    // Outgoing wave: source beeps every round; a node joins the round after
    // it first observes a message or collision, remembering its arrival time.
    std::vector<level_t> arrival(n, no_level);
    arrival[source] = 0;
    std::vector<node_id> wave{source};
    std::vector<node_id> joined;
    for (level_t r = 1; r <= t; ++r) {
      txs.clear();
      for (node_id v : wave) txs.add_owned(v, radio::packet::make_beacon(v));
      joined.clear();
      net.step(txs, [&](const radio::reception& rx) {
        if (arrival[rx.listener] == no_level) {
          arrival[rx.listener] = r;
          joined.push_back(rx.listener);
        }
      });
      wave.insert(wave.end(), joined.begin(), joined.end());
    }

    // One quiet separator round.
    txs.clear();
    net.step(txs, [](const radio::reception&) {});

    // Echo window: frontier nodes (arrival exactly t) flood back for t+1
    // rounds; everyone that hears anything joins the echo.
    std::vector<char> echoing(n, 0);
    std::vector<node_id> echo_set;
    for (node_id v = 0; v < n; ++v) {
      if (arrival[v] == t) {
        echoing[v] = 1;
        echo_set.push_back(v);
      }
    }
    bool source_heard = false;
    for (level_t r = 0; r <= t; ++r) {
      txs.clear();
      for (node_id v : echo_set) txs.add_owned(v, radio::packet::make_beacon(v));
      joined.clear();
      net.step(txs, [&](const radio::reception& rx) {
        if (rx.listener == source) source_heard = true;
        if (!echoing[rx.listener]) {
          echoing[rx.listener] = 1;
          joined.push_back(rx.listener);
        }
      });
      echo_set.insert(echo_set.end(), joined.begin(), joined.end());
    }

    if (!source_heard) {
      // No node sits at distance exactly t, so ecc(source) < t; with the
      // previous (failed) estimate t/2 <= ecc this is a 2-approximation.
      out.estimate = t;
      out.rounds = net.stats().rounds;
      return out;
    }
    RN_REQUIRE(t < static_cast<level_t>(4 * n + 4),
               "beep-wave estimation failed to terminate");
  }
}

}  // namespace rn::core
