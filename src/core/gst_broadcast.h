// Broadcast runners on top of a (valid) GST:
//
//  * single-message  — the [7]-style O(D + log^2 n) broadcast used as a black
//    box by Theorem 1.1 (realized here by the paper's own MMV-GST schedule,
//    which by Lemma 3.3 with delta = 1/poly(n) achieves the same bound), with
//    optional MMV noise injection (Definition 3.1) and the classic
//    level-keyed ablation.
//  * RLNC multi-message — the Theorem 1.2 engine: every prompted node sends a
//    fresh random linear combination of what it holds, except interior
//    stretch nodes which relay the packet received from their stretch
//    predecessor (section 3.3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "coding/rlnc.h"
#include "core/gst.h"
#include "core/params.h"
#include "graph/graph.h"
#include "radio/result.h"

namespace rn::core {

struct gst_broadcast_options {
  std::size_t n_hat = 0;       ///< 0 = graph size
  round_t max_rounds = 0;      ///< 0 = budget from params::schedule_slack
  std::uint64_t seed = 1;
  bool mmv_noise = false;      ///< prompted nodes without data jam (Def. 3.1)
  bool classic_levels = false; ///< slow keyed by level (E5 ablation)
  bool stop_when_complete = true;
  /// Skip transmitter-free rounds via network::advance (bit-identical
  /// results; see README "Fast-forward execution").
  bool fast_forward = false;
  params prm = params::paper();
};

/// Single-message broadcast over one GST forest. `informed` lists the nodes
/// that initially hold the message (the source, or a ring's inner boundary).
/// Only forest members are simulated and tracked.
[[nodiscard]] radio::broadcast_result run_gst_single_broadcast(
    const graph::graph& g, const gst& t, const gst_derived& d,
    const std::vector<node_id>& informed, const gst_broadcast_options& opt);

struct rlnc_broadcast_options {
  std::size_t n_hat = 0;
  round_t max_rounds = 0;
  std::uint64_t seed = 1;
  bool stop_when_complete = true;
  bool fast_forward = false;  ///< as in gst_broadcast_options
  params prm = params::paper();
};

/// RLNC k-message broadcast over one GST forest (Theorem 1.2 when the forest
/// is a single-source whole-graph GST). `source_messages[v]` holds the plain
/// messages initially known to v (typically empty except at the source).
/// On return, `decoders` (if non-null) receives each member's final decoder
/// so callers can verify the decoded payloads.
[[nodiscard]] radio::broadcast_result run_gst_rlnc_broadcast(
    const graph::graph& g, const gst& t, const gst_derived& d,
    const std::vector<std::vector<coding::message>>& source_messages,
    std::size_t k, std::size_t payload_size, const rlnc_broadcast_options& opt,
    std::vector<coding::rlnc_node>* decoders = nullptr);

}  // namespace rn::core
