// k-message broadcast algorithms (paper section 3).
//
//  * Theorem 1.2 (known topology): O(D + k log n + log^2 n) — random linear
//    network coding over the MMV-GST schedule of a centrally built GST. With
//    known topology the coefficient headers cost nothing (footnote 5), so all
//    k messages are coded together.
//  * Theorem 1.3 (unknown topology + CD): O(D + k log n + log^6 n) — the
//    Theorem 1.1 preprocessing (wave, rings, distributed GSTs, virtual
//    distances), then the messages travel in batches ("generations") of
//    Theta(log n) [DEV-7]: inside a ring a batch is broadcast with RLNC on
//    the ring's GST schedule; between rings the decoded batch is handed off
//    with fountain-coded FEC packets over Decay phases; batches pipeline so
//    every ring works on at most one batch at a time.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/rlnc.h"
#include "core/params.h"
#include "core/single_broadcast.h"
#include "graph/graph.h"
#include "radio/result.h"

namespace rn::core {

struct multi_broadcast_options {
  std::size_t n_hat = 0;
  level_t d_hat = 0;
  std::uint64_t seed = 1;
  params prm = params::paper();
  std::size_t payload_size = 32;  ///< bytes per message
  round_t max_rounds = 0;
  /// Skip transmitter-free rounds in every phase via network::advance
  /// (bit-identical results; see README "Fast-forward execution").
  bool fast_forward = false;
};

struct multi_broadcast_result {
  radio::broadcast_result base;
  bool payloads_verified = false;  ///< every node decoded every message bit-exactly
};

/// Theorem 1.2. `messages` all start at `source`.
[[nodiscard]] multi_broadcast_result run_known_multi_broadcast(
    const graph::graph& g, node_id source,
    const std::vector<coding::message>& messages,
    const multi_broadcast_options& opt);

/// Theorem 1.3.
[[nodiscard]] multi_broadcast_result run_unknown_cd_multi_broadcast(
    const graph::graph& g, node_id source,
    const std::vector<coding::message>& messages,
    const multi_broadcast_options& opt);

}  // namespace rn::core
