// Distributed BFS-layering protocols.
//
//  * collision wave (paper, proof of Thm 1.1; needs collision detection):
//    the source transmits in every round; a node that first observes a
//    message-or-collision in round r learns level r and joins the wave.
//    Exactly D_hat rounds.
//  * Decay epochs (paper section 2.2.2; no CD): D_hat epochs of
//    Theta(log n) Decay phases; a node's level is the epoch of its first
//    reception. O(D log^2 n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/params.h"
#include "graph/graph.h"

namespace rn::core {

struct layering_result {
  std::vector<level_t> level;  ///< no_level if never reached
  round_t rounds = 0;
  std::int64_t transmissions = 0;
};

/// Collision-wave layering; requires the CD model. `d_hat` must be >= the
/// eccentricity of the source (constant-factor upper bounds only cost rounds).
[[nodiscard]] layering_result run_collision_wave_bfs(const graph::graph& g,
                                                     node_id source,
                                                     level_t d_hat);

/// Decay-epoch layering (works without CD).
[[nodiscard]] layering_result run_decay_epoch_bfs(const graph::graph& g,
                                                  node_id source,
                                                  level_t d_hat,
                                                  std::size_t n_hat,
                                                  const params& prm,
                                                  std::uint64_t seed);

}  // namespace rn::core
