// The paper's transmission schedules atop a GST (section 3.2).
//
// Round parity splits the schedule:
//  * even rounds — *fast* transmissions pipeline packets down fast stretches:
//    a stretch member u at level l with rank r transmits when
//    t == 2(l + 3r) (mod 6L). Only nodes with a same-rank child transmit
//    [DEV-3], which together with GST collision-freeness makes fast rounds
//    provably collision-free (Lemma 3.5).
//  * odd rounds — *slow* Decay-style transmissions keyed to the node's
//    virtual distance d in G' (fast edges + graph edges): prompted when
//    t == 1 + 2d (mod 6), with probability 2^-((t-1-2d)/6 mod L).
//
// The `classic_levels` variant keys slow transmissions to BFS levels instead
// of virtual distances — the [7]/[19]-style schedule the paper argues is not
// MMV; we keep it as an ablation (experiment E5).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "core/gst.h"

namespace rn::core {

class gst_schedule {
 public:
  /// `slow_by_virtual_distance == false` selects the classic level-keyed
  /// ablation variant.
  gst_schedule(const gst& t, const gst_derived& d, std::size_t n_hat,
               bool slow_by_virtual_distance = true);

  enum class action : std::uint8_t {
    none,         ///< listen
    fast,         ///< deterministic fast-stretch transmission
    slow_prompt,  ///< prompted to transmit (coin already flipped)
  };

  /// Decision for node v in round t; consumes randomness from r for the slow
  /// coin. Non-members are never prompted.
  [[nodiscard]] action query(node_id v, round_t t, rng& r) const;

  /// One full fast-wave period (a stretch head emits once per period).
  [[nodiscard]] round_t fast_period() const { return 6 * L_; }

  [[nodiscard]] int log_n() const { return L_; }

 private:
  const gst* t_;
  const gst_derived* d_;
  int L_;
  bool slow_by_vd_;
};

}  // namespace rn::core
