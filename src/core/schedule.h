// The paper's transmission schedules atop a GST (section 3.2).
//
// Round parity splits the schedule:
//  * even rounds — *fast* transmissions pipeline packets down fast stretches:
//    a stretch member u at level l with rank r transmits when
//    t == 2(l + 3r) (mod 6L). Only nodes with a same-rank child transmit
//    [DEV-3], which together with GST collision-freeness makes fast rounds
//    provably collision-free (Lemma 3.5).
//  * odd rounds — *slow* Decay-style transmissions keyed to the node's
//    virtual distance d in G' (fast edges + graph edges): prompted when
//    t == 1 + 2d (mod 6), with probability 2^-((t-1-2d)/6 mod L).
//
// The `classic_levels` variant keys slow transmissions to BFS levels instead
// of virtual distances — the [7]/[19]-style schedule the paper argues is not
// MMV; we keep it as an ablation (experiment E5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/gst.h"

namespace rn::core {

class gst_schedule {
 public:
  /// `slow_by_virtual_distance == false` selects the classic level-keyed
  /// ablation variant.
  gst_schedule(const gst& t, const gst_derived& d, std::size_t n_hat,
               bool slow_by_virtual_distance = true);

  enum class action : std::uint8_t {
    none,         ///< listen
    fast,         ///< deterministic fast-stretch transmission
    slow_prompt,  ///< prompted to transmit (coin already flipped)
  };

  /// Decision for node v in round t; consumes randomness from r for the slow
  /// coin. Non-members are never prompted.
  [[nodiscard]] action query(node_id v, round_t t, rng& r) const;

  /// One full fast-wave period (a stretch head emits once per period).
  [[nodiscard]] round_t fast_period() const { return 6 * L_; }

  [[nodiscard]] int log_n() const { return L_; }

  /// The (even) slot within fast_period() at which v fast-transmits, or -1
  /// if v can never fast-transmit (non-member, unranked, or no same-rank
  /// child [DEV-3]). Mirrors query()'s even-round condition.
  [[nodiscard]] round_t fast_slot(node_id v) const;

  /// The key of v's slow schedule (virtual distance, or level in the classic
  /// ablation), or no_level if v is never slow-prompted. Mirrors query()'s
  /// odd-round condition: v's slow coin is consulted only in odd rounds t
  /// with key ≡ (t-1)/2 (mod 3).
  [[nodiscard]] level_t slow_key(node_id v) const;

 private:
  const gst* t_;
  const gst_derived* d_;
  int L_;
  bool slow_by_vd_;
};

/// Round-indexed buckets over a fixed member set: for any round, the exact
/// subset of members whose schedule (and randomness) query() would consult.
/// This is what lets runners compute the next round with any scheduled
/// transmitter instead of scanning every member every round — iterating a
/// bucket and calling query() on its nodes is observably identical to the
/// naive full scan (same transmissions, same coin-flip order), because
/// query() returns without touching the rng for every non-bucket node.
class gst_schedule_index {
 public:
  /// `members` fixes the iteration order within each bucket (runners pass
  /// the same order their naive scan used).
  gst_schedule_index(const gst_schedule& s, std::span<const node_id> members);

  /// Candidates for even (fast) round r: members mapped to this slot.
  [[nodiscard]] const std::vector<node_id>& fast_bucket(round_t r) const {
    return fast_[static_cast<std::size_t>((r % period_) / 2)];
  }

  /// Candidates for odd (slow) round r: members with slow key ≡ (r-1)/2
  /// (mod 3). Every coin consulted in round r belongs to this bucket.
  [[nodiscard]] const std::vector<node_id>& slow_bucket(round_t r) const {
    return slow_[static_cast<std::size_t>(((r - 1) / 2) % 3)];
  }

 private:
  round_t period_;
  std::vector<std::vector<node_id>> fast_;  ///< indexed by slot / 2
  std::vector<std::vector<node_id>> slow_;  ///< indexed by key mod 3
};

}  // namespace rn::core
