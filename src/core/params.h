// Protocol constants [DEV-5].
//
// Every Theta(.) in the paper becomes a tunable multiplier here. `paper()`
// uses generous constants (property tests / high-probability guarantees);
// `fast()` trades slack for simulation speed so that the log^4..log^6 n terms
// do not drown laptop-scale diameters in the benches. Benches report the
// profile they use; EXPERIMENTS.md discusses sensitivity.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/math.h"
#include "common/types.h"

namespace rn::core {

/// The lossy-channel contract, versioned so erasure-sensitive results can
/// name the draw mapping they were produced under. `channel-v1` is the PR 5
/// block-major mapping: the node-id space is partitioned into
/// `kChannelContractBlocks` contiguous listener blocks balanced by adjacency
/// volume, receptions are dispatched block by block in ascending order (and
/// within a block in the serial row walk's first-touch order), and the
/// erasure RNG draws one Bernoulli per single-transmitter reception *in that
/// dispatch order*. Changing the block count, the dispatch order, or the
/// per-reception draw discipline re-baselines every erasure_prob > 0 result
/// and therefore requires a new contract version — never a silent edit
/// (tests/test_channel_contract.cpp pins exact draw outcomes).
inline constexpr std::string_view kChannelContract = "channel-v1";
inline constexpr unsigned kChannelContractBlocks = 32;

struct params {
  /// Phases per "Theta(log n) phases of Decay" (each phase has L+1 rounds).
  double decay_phase_mult = 2.0;
  /// Recruiting iterations as a multiple of L^2 (paper: Theta(log^2 n)).
  double recruit_iter_mult = 1.0;
  /// Iterations per probability-exponent step in recruiting round 1
  /// (paper: Theta(log n)).
  double recruit_exp_step_mult = 1.0;
  /// Epochs per rank phase (paper: Theta(log n)).
  double epoch_mult = 2.0;
  /// Round budget multiplier for GST-schedule broadcasts.
  double schedule_slack = 3.0;
  /// Extra fountain packets per FEC handoff, as a multiple of the batch size.
  double fec_overhead = 2.0;
  /// Ring width divisor target: width ~ D / ring_divisor (clamped >= 3)
  /// [DEV-6]. The paper uses log^4 n; any value that keeps per-ring GST
  /// construction O(D) preserves the asymptotics.
  double ring_divisor = 0.0;  ///< 0 = single ring (footnote 7 regime)

  [[nodiscard]] static params paper() {
    params p;
    p.decay_phase_mult = 3.0;
    p.recruit_iter_mult = 1.5;
    p.recruit_exp_step_mult = 1.5;
    p.epoch_mult = 3.0;
    p.schedule_slack = 4.0;
    p.fec_overhead = 3.0;
    return p;
  }

  [[nodiscard]] static params fast() {
    params p;
    p.decay_phase_mult = 1.0;
    p.recruit_iter_mult = 1.0;
    p.recruit_exp_step_mult = 1.0;
    p.epoch_mult = 2.0;
    p.schedule_slack = 2.0;
    p.fec_overhead = 2.0;
    return p;
  }

  // --- Derived counts (L = ceil(log2 n_hat), never 0). ---

  [[nodiscard]] int decay_phases(std::size_t n_hat) const {
    return at_least_one(decay_phase_mult * log_range(n_hat));
  }
  [[nodiscard]] int recruit_iterations(std::size_t n_hat) const {
    const int l = log_range(n_hat);
    return at_least_one(recruit_iter_mult * l * l);
  }
  [[nodiscard]] int recruit_exp_step(std::size_t n_hat) const {
    return at_least_one(recruit_exp_step_mult * log_range(n_hat));
  }
  [[nodiscard]] int epochs(std::size_t n_hat) const {
    return at_least_one(epoch_mult * log_range(n_hat));
  }

  friend bool operator==(const params&, const params&) = default;

 private:
  [[nodiscard]] static int at_least_one(double v) {
    const int i = static_cast<int>(v + 0.999999);
    return i < 1 ? 1 : i;
  }
};

}  // namespace rn::core
