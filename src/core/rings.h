// Ring decomposition (paper section 2.3): the BFS layering is cut into rings
// of `width` consecutive layers; each ring gets its own multi-root GST whose
// roots are the ring's innermost layer.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rn::core {

struct ring_spec {
  level_t first_layer = 0;         ///< absolute BFS layer of the ring's roots
  level_t depth = 0;               ///< deepest relative level in the ring
  std::vector<node_id> roots;      ///< nodes at `first_layer`
  std::vector<node_id> members;    ///< all nodes of the ring
};

struct ring_decomposition {
  level_t width = 0;
  std::vector<ring_spec> rings;
  std::vector<std::int32_t> ring_of;  ///< per node; -1 if unreachable
  std::vector<level_t> rel_level;     ///< level within the ring
};

/// Splits nodes by `level / width`. Width is clamped to >= 3 so that
/// simultaneous per-ring GST constructions can never interfere [DEV-6]
/// (width 1..2 would place pipeline-synchronized problems on adjacent
/// absolute layers).
[[nodiscard]] ring_decomposition decompose_rings(
    const std::vector<level_t>& levels, level_t width);

/// The paper's width D / log^4 n with the [DEV-6] clamp; `ring_divisor == 0`
/// requests a single ring (footnote 7 regime).
[[nodiscard]] level_t ring_width_for(level_t depth, double ring_divisor);

}  // namespace rn::core
