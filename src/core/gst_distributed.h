// Distributed GST construction (paper Theorem 2.1, sections 2.2.2-2.2.4).
//
// Given a BFS layering split into rings, the construction solves one
// `assignment_problem` per (ring, blue layer, rank) triple, from the deepest
// layer upwards and from the highest rank downwards.
//
// Pipelined scheduling (section 2.2.4): problem (layer λ, rank i) runs in slot
//   σ(λ, i) = 2·(w_max − λ) + (L − i)
// which satisfies all data dependencies (σ(λ+1, i), σ(λ+1, i+1), σ(λ, i+1)
// all precede σ(λ, i)) and places simultaneously-running problems on
// *consecutive* layers. Each slot is 3·R rounds (R = per-problem rounds), and
// a problem only consumes rounds t with t ≡ (absolute blue layer) (mod 3):
// same-slot same-class problems are then ≥ 3 absolute layers apart, so their
// transmitters and listeners can never be adjacent — this realizes the
// paper's "interleave them in even and odd rounds" idea, extended to the full
// pipeline and to parallel rings. Total: O(D log^4 n + log^5 n) rounds.
//
// Sequential mode (the section 2.2.3 baseline, O(D log^5 n)) runs one problem
// per slot of R rounds; experiment E4 measures the gap.
#pragma once

#include <cstdint>
#include <vector>

#include "core/assignment.h"
#include "core/gst.h"
#include "core/params.h"
#include "core/rings.h"
#include "graph/graph.h"

namespace rn::core {

struct distributed_gst_options {
  std::size_t n_hat = 0;
  std::uint64_t seed = 1;
  params prm = params::paper();
  bool pipelined = true;
  /// Skip provably-idle rounds (no problem transmits or draws randomness)
  /// via network::advance. Bit-identical results; orders of magnitude fewer
  /// simulated rounds — most (ring, layer, rank) problems are empty or go
  /// quiet after a few epochs.
  bool fast_forward = false;
};

struct distributed_gst_outcome {
  std::vector<gst> forests;  ///< one per ring
  round_t rounds = 0;
  std::int64_t transmissions = 0;
  int fallback_finalizations = 0;  ///< [DEV-9] diagnostics (0 expected)
  int fallback_adoptions = 0;
  /// Per-node knowledge each node ends up with locally (parent rank and
  /// same-rank child), needed by schedules without central help.
  std::vector<rank_t> parent_rank;
  std::vector<node_id> stretch_child;
};

/// Runs the construction for every ring of `rd` in parallel on one shared
/// radio network.
[[nodiscard]] distributed_gst_outcome build_gst_distributed(
    const graph::graph& g, const ring_decomposition& rd,
    const distributed_gst_options& opt);

/// Convenience wrapper: whole graph as a single ring rooted at `source`,
/// layered with the (CD-free) Decay-epoch BFS; this is Theorem 2.1 end to
/// end. Rounds include the layering.
[[nodiscard]] distributed_gst_outcome build_gst_distributed_single(
    const graph::graph& g, node_id source, const distributed_gst_options& opt);

}  // namespace rn::core
