#include "core/gst_broadcast.h"

#include <memory>
#include <numeric>

#include "common/check.h"
#include "common/math.h"
#include "core/runner.h"
#include "core/schedule.h"
#include "radio/network.h"

namespace rn::core {

namespace {

round_t default_budget(const gst& t, int L, double slack) {
  // O(D + log n (log n + log 1/delta)) with delta = 1/poly(n):
  // budget ~ slack * (2D + c L^2) fast/slow interleaved rounds.
  const round_t d = static_cast<round_t>(t.max_level());
  return static_cast<round_t>(slack * (6.0 * d + 48.0 * L * L + 64));
}

radio::broadcast_result finish(const radio::network& net,
                               const radio::completion_tracker& tracker) {
  radio::broadcast_result res;
  res.completed = tracker.all_done();
  res.rounds_to_complete = tracker.first_complete_round();
  res.rounds_executed = net.stats().rounds;
  res.transmissions = net.stats().transmissions;
  res.deliveries = net.stats().deliveries;
  res.collisions_observed = net.stats().collisions_observed;
  res.energy = net.energy();
  return res;
}

std::vector<node_id> all_nodes(std::size_t n) {
  std::vector<node_id> out(n);
  std::iota(out.begin(), out.end(), node_id{0});
  return out;
}

}  // namespace

radio::broadcast_result run_gst_single_broadcast(
    const graph::graph& g, const gst& t, const gst_derived& d,
    const std::vector<node_id>& informed_init,
    const gst_broadcast_options& opt) {
  const std::size_t n = g.node_count();
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  gst_schedule sched(t, d, n_hat, !opt.classic_levels);
  const round_t max_rounds =
      opt.max_rounds > 0 ? opt.max_rounds
                         : default_budget(t, sched.log_n(), opt.prm.schedule_slack);

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);
  std::vector<char> informed(n, 0);
  for (node_id v = 0; v < n; ++v)
    if (!t.member[v]) tracker.exclude(v);
  for (node_id v : informed_init) {
    RN_REQUIRE(t.member[v], "initially informed node must be a member");
    informed[v] = 1;
    tracker.mark(v);
  }

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  auto body = std::make_shared<radio::packet_body>();
  body->data = {0x6d, 0x73, 0x67};
  // Flyweights: one data and one noise packet for the whole run; every
  // transmission references them (zero allocation, zero refcount churn).
  const radio::packet data_pkt = radio::packet::make_data(0, body);
  const radio::packet noise_pkt = radio::packet::make_noise();
  radio::round_buffer txs;

  // Bucketed planning: per round only the nodes whose schedule (and coin)
  // that round consults are visited — observably identical to the full scan.
  const gst_schedule_index idx(sched, all_nodes(n));
  round_sink sink(net, opt.fast_forward);
  const auto on_rx = [&](const radio::reception& rx) {
    if (rx.what == radio::observation::message &&
        rx.pkt->kind == radio::packet_kind::data && !informed[rx.listener]) {
      informed[rx.listener] = 1;
      tracker.mark(rx.listener);
    }
  };

  for (round_t r = 0; r < max_rounds; ++r) {
    // Naive stepping executes one more (possibly empty) round after the run
    // completes before noticing; force-step it so both modes agree.
    const bool completing = opt.stop_when_complete && tracker.all_done();
    txs.clear();
    if (r % 2 == 0) {
      for (node_id v : idx.fast_bucket(r)) {
        if (!informed[v] && !opt.mmv_noise) continue;
        if (sched.query(v, r, node_rng[v]) == gst_schedule::action::none)
          continue;
        if (informed[v])
          txs.add(v, data_pkt);
        else
          txs.add(v, noise_pkt);
      }
    } else {
      for (node_id v : idx.slow_bucket(r)) {
        // The coin is flipped for uninformed nodes too, exactly as in the
        // naive full scan.
        if (sched.query(v, r, node_rng[v]) == gst_schedule::action::none)
          continue;
        if (informed[v])
          txs.add(v, data_pkt);
        else if (opt.mmv_noise)
          txs.add(v, noise_pkt);
      }
    }
    if (sink.commit(txs, on_rx, completing)) {
      tracker.observe_round(net.stats().rounds);
      if (opt.stop_when_complete && tracker.all_done()) break;
    }
  }
  sink.flush();
  return finish(net, tracker);
}

radio::broadcast_result run_gst_rlnc_broadcast(
    const graph::graph& g, const gst& t, const gst_derived& d,
    const std::vector<std::vector<coding::message>>& source_messages,
    std::size_t k, std::size_t payload_size, const rlnc_broadcast_options& opt,
    std::vector<coding::rlnc_node>* decoders) {
  const std::size_t n = g.node_count();
  RN_REQUIRE(source_messages.size() == n, "source_messages size mismatch");
  RN_REQUIRE(k >= 1, "k must be positive");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  gst_schedule sched(t, d, n_hat, /*slow_by_virtual_distance=*/true);
  const int L = sched.log_n();
  const round_t max_rounds =
      opt.max_rounds > 0
          ? opt.max_rounds
          : default_budget(t, L, opt.prm.schedule_slack) +
                static_cast<round_t>(opt.prm.schedule_slack * 8.0 *
                                     static_cast<double>(k) * (L + 1));

  radio::network net(g, {.collision_detection = false});
  radio::completion_tracker tracker(n);

  std::vector<coding::rlnc_node> buf;
  buf.reserve(n);
  for (node_id v = 0; v < n; ++v) buf.emplace_back(k, payload_size);
  std::size_t source_loaded = 0;
  for (node_id v = 0; v < n; ++v) {
    if (!t.member[v]) {
      tracker.exclude(v);
      continue;
    }
    for (std::size_t i = 0; i < source_messages[v].size(); ++i) {
      RN_REQUIRE(source_messages[v][i].size() == payload_size,
                 "message payload size mismatch");
      buf[v].load_source_message(source_loaded + i, source_messages[v][i]);
    }
    if (!source_messages[v].empty()) source_loaded += source_messages[v].size();
    if (buf[v].can_decode()) tracker.mark(v);
  }
  RN_REQUIRE(source_loaded == k, "sources must jointly hold all k messages");

  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed, v));

  // Interior stretch nodes relay the most recent packet received from their
  // stretch predecessor (paper 3.3.2 case (b)).
  std::vector<std::shared_ptr<const radio::packet_body>> relay(n);

  auto fresh_packet = [&](node_id v) -> radio::packet {
    auto row = buf[v].encode(node_rng[v]);
    auto body = std::make_shared<radio::packet_body>();
    body->coeffs = std::move(row.coeffs);
    body->data = std::move(row.payload);
    return radio::packet::make_coded(0, std::move(body));
  };

  radio::round_buffer txs;
  const gst_schedule_index idx(sched, all_nodes(n));
  round_sink sink(net, opt.fast_forward);
  const auto on_rx = [&](const radio::reception& rx) {
    if (rx.what != radio::observation::message ||
        rx.pkt->kind != radio::packet_kind::coded)
      return;
    const node_id v = rx.listener;
    if (!t.member[v]) return;
    buf[v].receive(rx.pkt->body->coeffs, rx.pkt->body->data);
    if (buf[v].can_decode()) tracker.mark(v);
    // Remember stretch-predecessor packets for relaying: the predecessor is
    // this node's parent when both share a rank.
    if (rx.from == t.parent[v] && !d.is_stretch_head[v])
      relay[v] = rx.pkt->body;
  };
  auto plan = [&](node_id v, gst_schedule::action a) {
    if (a == gst_schedule::action::fast && !d.is_stretch_head[v]) {
      // Relay role: forward the predecessor's packet verbatim.
      if (relay[v]) txs.add_owned(v, radio::packet::make_coded(0, relay[v]));
      return;
    }
    // Stretch heads (fast) and all slow prompts send fresh combinations.
    if (buf[v].has_anything()) txs.add_owned(v, fresh_packet(v));
  };

  for (round_t r = 0; r < max_rounds; ++r) {
    const bool completing = opt.stop_when_complete && tracker.all_done();
    txs.clear();
    for (node_id v : r % 2 == 0 ? idx.fast_bucket(r) : idx.slow_bucket(r)) {
      const auto a = sched.query(v, r, node_rng[v]);
      if (a != gst_schedule::action::none) plan(v, a);
    }
    if (sink.commit(txs, on_rx, completing)) {
      tracker.observe_round(net.stats().rounds);
      if (opt.stop_when_complete && tracker.all_done()) break;
    }
  }
  sink.flush();

  auto res = finish(net, tracker);
  if (decoders != nullptr) *decoders = std::move(buf);
  return res;
}

}  // namespace rn::core
