// Gathering Spanning Trees (paper section 2.1).
//
// A GST is a BFS tree (or multi-root BFS forest, for ring decompositions)
// whose nodes carry ranks computed by the GPX ranking rule:
//   * a leaf has rank 1;
//   * an internal node whose children's maximum rank is r has rank r if
//     exactly one child attains r, and rank r+1 otherwise;
// and which satisfies the *collision-freeness* property: the edges between
// same-rank parents and children form an induced matching of the level-graph
// (no node u with a same-rank parent v is adjacent to a different same-rank
// node v' that also has a same-rank child).
//
// A maximal same-rank root-to-leaf path segment is a *fast stretch*; because
// a rank-r node has at most one rank-r child, stretches are paths and every
// node has at most one `stretch_child`.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rn::core {

/// A ranked BFS forest over (a subset of) a graph's nodes.
struct gst {
  std::vector<node_id> roots;   ///< level-0 nodes (1 for single-source GSTs)
  std::vector<char> member;     ///< nodes covered by this (ring's) forest
  std::vector<level_t> level;   ///< BFS level within the forest; no_level if non-member
  std::vector<node_id> parent;  ///< tree parent; no_node for roots/non-members
  std::vector<rank_t> rank;     ///< GPX rank; no_rank if non-member

  [[nodiscard]] std::size_t node_count() const { return member.size(); }
  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] level_t max_level() const;
  [[nodiscard]] rank_t max_rank() const;
};

/// Derived structure used by transmission schedules.
struct gst_derived {
  std::vector<node_id> stretch_child;  ///< same-rank child; no_node if none
  std::vector<char> is_stretch_head;   ///< true if parent missing or of higher rank
  /// Virtual distance: directed distance from the roots in G' = G (both
  /// directions) + fast edges (stretch head -> each same-rank descendant).
  /// Roots have distance 0. (Paper section 3.2; bounded by 2*ceil(log2 n)+1.)
  std::vector<level_t> virtual_distance;
};

/// Computes stretches and virtual distances for a valid GST.
[[nodiscard]] gst_derived derive(const graph::graph& g, const gst& t);

/// Recomputes ranks from scratch by the GPX ranking rule (used by the
/// validator and by the ranked-BFS example). Assumes parent/level are set.
[[nodiscard]] std::vector<rank_t> compute_ranks(const gst& t);

/// Validates all GST invariants; returns human-readable violations (empty ==
/// valid): tree structure over members, BFS levels, ranking rule, max-rank
/// bound ceil(log2(member_count)), and collision-freeness.
[[nodiscard]] std::vector<std::string> validate_gst(const graph::graph& g,
                                                    const gst& t);

/// Builds a plain ranked BFS tree (min-id parents, ranking rule applied,
/// no collision-freeness guarantee). This reproduces the *left* side of the
/// paper's Figure 1; `validate_gst` on it may legitimately fail.
[[nodiscard]] gst ranked_bfs(const graph::graph& g, node_id source);

}  // namespace rn::core
