// Centralized GST construction — our substitute for the O(n^2) algorithm of
// Gasieniec, Peleg and Xin [7] (the paper uses it as a black box in the known
// topology setting).
//
// Per level pair (l-1, l), ranks are processed from high to low. While some
// yet-unranked red node has >= 2 unassigned rank-i blue neighbors, it adopts
// them all and gets rank i+1. Afterwards every unranked red has at most one
// unassigned rank-i neighbor, so the remaining blues can each pick any
// neighbor (preferring unranked ones, which then get rank i); a short
// exchange argument shows collision-freeness can never be violated at that
// point. The result always passes `validate_gst`.
#pragma once

#include <vector>

#include "core/gst.h"
#include "graph/graph.h"

namespace rn::core {

/// Single-source GST over the whole (connected component of the) graph.
[[nodiscard]] gst build_gst_centralized(const graph::graph& g, node_id source);

/// Multi-root GST forest restricted to `mask` (ring construction). All roots
/// sit at level 0; `mask == nullptr` means all nodes.
[[nodiscard]] gst build_gst_centralized_multi(
    const graph::graph& g, const std::vector<node_id>& roots,
    const std::vector<char>* mask = nullptr);

}  // namespace rn::core
