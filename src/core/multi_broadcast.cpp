#include "core/multi_broadcast.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/math.h"
#include "common/rng.h"
#include "core/gst_broadcast.h"
#include "core/gst_centralized.h"
#include "core/runner.h"
#include "core/schedule.h"
#include "radio/network.h"

namespace rn::core {

multi_broadcast_result run_known_multi_broadcast(
    const graph::graph& g, node_id source,
    const std::vector<coding::message>& messages,
    const multi_broadcast_options& opt) {
  const std::size_t n = g.node_count();
  const std::size_t k = messages.size();
  RN_REQUIRE(k >= 1, "need at least one message");
  const auto t = build_gst_centralized(g, source);
  const auto d = derive(g, t);

  std::vector<std::vector<coding::message>> source_messages(n);
  source_messages[source] = messages;

  rlnc_broadcast_options bo;
  bo.n_hat = opt.n_hat;
  bo.seed = opt.seed;
  bo.prm = opt.prm;
  bo.max_rounds = opt.max_rounds;
  bo.fast_forward = opt.fast_forward;

  std::vector<coding::rlnc_node> decoders;
  multi_broadcast_result out;
  out.base = run_gst_rlnc_broadcast(g, t, d, source_messages, k,
                                    opt.payload_size, bo, &decoders);
  out.payloads_verified = out.base.completed;
  for (node_id v = 0; v < n && out.payloads_verified; ++v) {
    if (!t.member[v]) continue;
    if (!decoders[v].can_decode()) {
      out.payloads_verified = false;
      break;
    }
    const auto got = decoders[v].decode_all();
    for (std::size_t i = 0; i < k; ++i)
      if (got[i] != messages[i]) out.payloads_verified = false;
  }
  return out;
}

multi_broadcast_result run_unknown_cd_multi_broadcast(
    const graph::graph& g, node_id source,
    const std::vector<coding::message>& messages,
    const multi_broadcast_options& opt) {
  const std::size_t n = g.node_count();
  const std::size_t k = messages.size();
  RN_REQUIRE(k >= 1, "need at least one message");
  const std::size_t n_hat = opt.n_hat == 0 ? n : opt.n_hat;
  const int L = log_range(n_hat);
  const int dp = opt.prm.decay_phases(n_hat);

  single_broadcast_options so;
  so.n_hat = opt.n_hat;
  so.d_hat = opt.d_hat;
  so.seed = opt.seed;
  so.prm = opt.prm;
  so.fast_forward = opt.fast_forward;
  auto setup = prepare_unknown_topology(g, source, so);
  const std::size_t ring_count = setup.rings.rings.size();

  // Batches of Theta(log n) messages [DEV-7].
  coding::batch_layout batches{k, std::max<std::size_t>(1, static_cast<std::size_t>(L))};
  const std::size_t B = batches.batch_count();

  multi_broadcast_result out;
  out.base.phase_rounds.emplace_back("bfs_wave", setup.wave_rounds);
  out.base.phase_rounds.emplace_back("gst_construction",
                                     setup.construction_rounds);
  out.base.phase_rounds.emplace_back("vdist_labeling", setup.labeling_rounds);

  // Per-node per-batch RLNC buffers.
  std::vector<std::vector<coding::rlnc_node>> buf(n);
  for (node_id v = 0; v < n; ++v) {
    if (setup.rings.ring_of[v] < 0 && v != source) continue;
    buf[v].reserve(B);
    for (std::size_t b = 0; b < B; ++b)
      buf[v].emplace_back(batches.size_of(b), opt.payload_size);
  }
  for (std::size_t b = 0; b < B; ++b)
    for (std::size_t i = batches.batch_begin(b); i < batches.batch_end(b); ++i) {
      RN_REQUIRE(messages[i].size() == opt.payload_size,
                 "message payload size mismatch");
      buf[source][b].load_source_message(i - batches.batch_begin(b),
                                         messages[i]);
    }

  radio::completion_tracker tracker(n);
  auto node_done = [&](node_id v) {
    for (std::size_t b = 0; b < B; ++b)
      if (!buf[v][b].can_decode()) return false;
    return true;
  };
  for (node_id v = 0; v < n; ++v) {
    if (setup.rings.ring_of[v] < 0)
      tracker.exclude(v);
    else if (node_done(v))
      tracker.mark(v);
  }

  radio::network net(g, {.collision_detection = true});
  std::vector<rng> node_rng;
  node_rng.reserve(n);
  for (node_id v = 0; v < n; ++v)
    node_rng.push_back(rng::for_stream(opt.seed ^ 0x3517ULL, v));

  // Schedules (and per-round candidate buckets) per ring.
  std::vector<gst_schedule> scheds;
  scheds.reserve(ring_count);
  level_t w_max = 0;
  for (std::size_t j = 0; j < ring_count; ++j) {
    scheds.emplace_back(setup.forests[j], setup.derived[j], n_hat, true);
    w_max = std::max(w_max, setup.rings.rings[j].depth);
  }
  std::vector<gst_schedule_index> sched_idx;
  sched_idx.reserve(ring_count);
  for (std::size_t j = 0; j < ring_count; ++j)
    sched_idx.emplace_back(scheds[j], setup.rings.rings[j].members);
  const round_t intra_budget = static_cast<round_t>(
      opt.prm.schedule_slack *
      (6.0 * w_max + 48.0 * L * L +
       8.0 * static_cast<double>(batches.batch_size) * (L + 1) + 64));
  const int handoff_phases =
      dp + static_cast<int>(opt.prm.fec_overhead *
                            static_cast<double>(batches.batch_size));

  auto fresh_packet = [&](node_id v, std::size_t b) {
    auto row = buf[v][b].encode(node_rng[v]);
    auto body = std::make_shared<radio::packet_body>();
    body->coeffs = std::move(row.coeffs);
    body->data = std::move(row.payload);
    return radio::packet::make_coded(static_cast<std::uint32_t>(b),
                                     std::move(body));
  };

  // Relay buffers for interior stretch nodes (reset per super-epoch).
  std::vector<std::shared_ptr<const radio::packet_body>> relay(n);
  std::vector<std::uint32_t> relay_batch(n, 0);

  auto on_rx = [&](const radio::reception& rx) {
    if (rx.what != radio::observation::message ||
        rx.pkt->kind != radio::packet_kind::coded)
      return;
    const node_id v = rx.listener;
    const auto ring = setup.rings.ring_of[v];
    if (ring < 0) return;
    const std::size_t b = rx.pkt->x;
    if (b >= B || buf[v].empty()) return;
    const bool was_done = buf[v][b].can_decode();
    buf[v][b].receive(rx.pkt->body->coeffs, rx.pkt->body->data);
    if (!was_done && node_done(v)) tracker.mark(v);
    if (rx.from == setup.forests[static_cast<std::size_t>(ring)].parent[v] &&
        !setup.derived[static_cast<std::size_t>(ring)].is_stretch_head[v]) {
      relay[v] = rx.pkt->body;
      relay_batch[v] = rx.pkt->x;
    }
  };

  radio::round_buffer txs;
  core::round_sink sink(net, opt.fast_forward);
  const std::size_t super_epochs = ring_count + B;  // one slack epoch
  round_t pipeline_rounds = 0;
  for (std::size_t e = 0; e < super_epochs; ++e) {
    // Intra-ring RLNC phase: ring j works on batch e - j.
    std::fill(relay.begin(), relay.end(), nullptr);
    for (round_t r = 0; r < intra_budget; ++r) {
      txs.clear();
      for (std::size_t j = 0; j < ring_count; ++j) {
        if (e < j || e - j >= B) continue;
        const std::size_t b = e - j;
        const auto& der = setup.derived[j];
        // Bucketed planning — the exact members whose schedule (and coin)
        // round r consults, in member order (see gst_schedule_index).
        const auto& bucket = r % 2 == 0 ? sched_idx[j].fast_bucket(r)
                                        : sched_idx[j].slow_bucket(r);
        for (node_id v : bucket) {
          const auto a = scheds[j].query(v, r, node_rng[v]);
          if (a == gst_schedule::action::none) continue;
          if (a == gst_schedule::action::fast && !der.is_stretch_head[v]) {
            if (relay[v] && relay_batch[v] == b)
              txs.add_owned(v, radio::packet::make_coded(
                                   static_cast<std::uint32_t>(b), relay[v]));
            continue;
          }
          if (buf[v][b].has_anything())
            txs.add_owned(v, fresh_packet(v, b));
        }
      }
      if (sink.commit(txs, on_rx)) tracker.observe_round(net.stats().rounds);
    }
    pipeline_rounds += intra_budget;

    // FEC handoff phase: ring j's outer boundary pushes batch e - j to ring
    // j+1's roots with fountain packets over Decay.
    for (int ph = 0; ph < handoff_phases; ++ph) {
      for (int ex = 0; ex <= L; ++ex) {
        txs.clear();
        for (std::size_t j = 0; j + 1 < ring_count; ++j) {
          if (e < j || e - j >= B) continue;
          const std::size_t b = e - j;
          const level_t outer = setup.rings.rings[j].depth;
          for (node_id v : setup.rings.rings[j].members) {
            if (setup.rings.rel_level[v] != outer) continue;
            if (!buf[v][b].can_decode()) continue;
            if (node_rng[v].with_probability_pow2(ex))
              txs.add_owned(v, fresh_packet(v, b));
          }
        }
        if (sink.commit(txs, on_rx)) tracker.observe_round(net.stats().rounds);
      }
    }
    pipeline_rounds += static_cast<round_t>(handoff_phases) * (L + 1);
  }
  sink.flush();
  out.base.phase_rounds.emplace_back("batch_pipeline", pipeline_rounds);

  out.base.completed = tracker.all_done();
  out.base.rounds_to_complete =
      tracker.first_complete_round() < 0
          ? -1
          : setup.total_rounds() + tracker.first_complete_round();
  out.base.rounds_executed = setup.total_rounds() + net.stats().rounds;
  out.base.transmissions = net.stats().transmissions;
  out.base.deliveries = net.stats().deliveries;
  out.base.collisions_observed = net.stats().collisions_observed;
  out.base.energy = net.energy();

  out.payloads_verified = out.base.completed;
  for (node_id v = 0; v < n && out.payloads_verified; ++v) {
    if (setup.rings.ring_of[v] < 0) continue;
    for (std::size_t b = 0; b < B && out.payloads_verified; ++b) {
      if (!buf[v][b].can_decode()) {
        out.payloads_verified = false;
        break;
      }
      const auto got = buf[v][b].decode_all();
      for (std::size_t i = 0; i < got.size(); ++i)
        if (got[i] != messages[batches.batch_begin(b) + i])
          out.payloads_verified = false;
    }
  }
  return out;
}

}  // namespace rn::core
