// The hit-word merge algebra of the distributed backend.
//
// A round's per-listener state is one packed 64-bit word: transmitting-
// neighbor count in the high half, index of the last transmitter that
// touched the listener in the low half (the serial walk visits transmitters
// in index order, so "last" = the maximum index). Zero means untouched —
// unambiguous, because any touched listener has count >= 1.
//
// Split the transmitter set across ranks arbitrarily and each rank produces
// a partial word per listener; the serial word is recovered by summing the
// counts and taking the max of the last-sender indices. That makes the word
// a commutative monoid under `merge_hit_words` with 0 as the identity — the
// property the dist property tests pin (tests/test_dist.cpp) and the reason
// a multi-process walk can be byte-identical to the serial one. The shipped
// block partition never actually needs a runtime merge (each listener block
// is wholly owned by one rank), but the algebra is what licenses any future
// partition that does split a listener's transmitters across ranks.
#pragma once

#include <algorithm>
#include <cstdint>

namespace rn::dist {

/// Combines two partial hit words for the same listener. Commutative and
/// associative with 0 as identity; counts accumulate mod 2^32 exactly like
/// the serial walk's `(hs + (1 << 32)) & 0xffffffff00000000` update, so the
/// merged word is bit-equal to the serial word, not merely equivalent.
[[nodiscard]] constexpr std::uint64_t merge_hit_words(std::uint64_t a,
                                                      std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  const std::uint64_t count = (a >> 32) + (b >> 32);  // low 32 bits kept
  const std::uint64_t last =
      std::max(a & 0xffffffffULL, b & 0xffffffffULL);
  return (count << 32) | last;
}

}  // namespace rn::dist
