#include "dist/wire.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"

namespace rn::dist {

std::uint32_t wire_reader::u32() {
  RN_REQUIRE(at_ + 4 <= size_, "dist frame truncated (u32)");
  std::uint32_t v = 0;
  std::memcpy(&v, data_ + at_, 4);
  at_ += 4;
  return v;
}

std::uint64_t wire_reader::u64() {
  RN_REQUIRE(at_ + 8 <= size_, "dist frame truncated (u64)");
  std::uint64_t v = 0;
  std::memcpy(&v, data_ + at_, 8);
  at_ += 8;
  return v;
}

const std::uint8_t* wire_reader::raw(std::size_t len) {
  RN_REQUIRE(at_ + len <= size_, "dist frame truncated (raw)");
  const std::uint8_t* p = data_ + at_;
  at_ += len;
  return p;
}

channel& channel::operator=(channel&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    sent_ = o.sent_;
    received_ = o.received_;
    o.fd_ = -1;
  }
  return *this;
}

void channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      RN_REQUIRE(false, std::string("dist channel write failed: ") +
                            std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Returns false on clean EOF at a frame boundary-less position — the
/// caller decides whether that is a crash. Partial reads keep looping.
bool read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  bool any = false;
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      RN_REQUIRE(false, std::string("dist channel read failed: ") +
                            std::strerror(errno));
    }
    if (n == 0) {
      RN_REQUIRE(!any, "dist peer closed mid-frame");
      return false;
    }
    any = true;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void channel::send(msg_type type, const wire_writer& payload) {
  RN_REQUIRE(open(), "dist channel is closed");
  const auto body = static_cast<std::uint32_t>(1 + payload.bytes.size());
  std::uint8_t header[5];
  std::memcpy(header, &body, 4);
  header[4] = static_cast<std::uint8_t>(type);
  write_all(fd_, header, sizeof(header));
  if (!payload.bytes.empty())
    write_all(fd_, payload.bytes.data(), payload.bytes.size());
  sent_ += sizeof(header) + payload.bytes.size();
}

msg_type channel::recv(std::vector<std::uint8_t>& payload) {
  RN_REQUIRE(open(), "dist channel is closed");
  std::uint8_t header[5];
  RN_REQUIRE(read_all(fd_, header, sizeof(header)),
             "dist peer closed the channel");
  std::uint32_t body = 0;
  std::memcpy(&body, header, 4);
  RN_REQUIRE(body >= 1, "dist frame has no type byte");
  payload.resize(body - 1);
  if (!payload.empty())
    RN_REQUIRE(read_all(fd_, payload.data(), payload.size()),
               "dist peer closed mid-frame");
  received_ += sizeof(header) + payload.size();
  return static_cast<msg_type>(header[4]);
}

std::pair<channel, channel> make_channel_pair() {
  int fds[2] = {-1, -1};
  RN_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
             std::string("socketpair failed: ") + std::strerror(errno));
  return {channel(fds[0]), channel(fds[1])};
}

}  // namespace rn::dist
