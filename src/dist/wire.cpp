#include "dist/wire.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rn::dist {

std::uint8_t wire_reader::u8() {
  RN_REQUIRE(at_ + 1 <= size_, "dist frame truncated (u8)");
  return data_[at_++];
}

std::uint32_t wire_reader::u32() {
  RN_REQUIRE(at_ + 4 <= size_, "dist frame truncated (u32)");
  std::uint32_t v = 0;
  std::memcpy(&v, data_ + at_, 4);
  at_ += 4;
  return v;
}

std::uint64_t wire_reader::u64() {
  RN_REQUIRE(at_ + 8 <= size_, "dist frame truncated (u64)");
  std::uint64_t v = 0;
  std::memcpy(&v, data_ + at_, 8);
  at_ += 8;
  return v;
}

const std::uint8_t* wire_reader::raw(std::size_t len) {
  RN_REQUIRE(at_ + len <= size_, "dist frame truncated (raw)");
  const std::uint8_t* p = data_ + at_;
  at_ += len;
  return p;
}

channel& channel::operator=(channel&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    deadline_ms_ = o.deadline_ms_;
    max_frame_ = o.max_frame_;
    sent_ = o.sent_;
    received_ = o.received_;
    o.fd_ = -1;
  }
  return *this;
}

void channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

using steady = std::chrono::steady_clock;

/// One whole-frame deadline shared by every partial read/write of the frame.
/// `armed == false` blocks indefinitely.
struct frame_deadline {
  bool armed;
  steady::time_point until;

  explicit frame_deadline(unsigned ms)
      : armed(ms > 0), until(steady::now() + std::chrono::milliseconds(ms)) {}

  /// Remaining budget for poll(): -1 = infinite, 0 = already expired.
  [[nodiscard]] int remaining_ms() const {
    if (!armed) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          until - steady::now())
                          .count();
    return left <= 0 ? 0 : static_cast<int>(left);
  }
};

[[noreturn]] void throw_errno(const char* op) {
  throw wire_error(wire_errc::io, std::string("dist channel ") + op +
                                      " failed: " + std::strerror(errno));
}

/// Blocks (poll, EINTR-safe) until fd is ready for `events` or the deadline
/// expires; throws wire_errc::timeout on expiry.
void wait_ready(int fd, short events, const frame_deadline& dl,
                const char* phase) {
  for (;;) {
    const int budget = dl.remaining_ms();
    if (budget == 0)
      throw wire_error(wire_errc::timeout,
                       std::string("dist channel deadline expired (") + phase +
                           ")");
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, budget);
    if (rc < 0) {
      if (errno == EINTR) continue;  // recompute the remaining budget
      throw_errno("poll");
    }
    if (rc > 0) return;
    // rc == 0: poll's own timeout — loop so the frame deadline (not poll's
    // millisecond rounding) decides when to give up.
  }
}

void write_all(int fd, const void* data, std::size_t len,
               const frame_deadline& dl) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    wait_ready(fd, POLLOUT, dl, "write");
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        throw wire_error(wire_errc::closed,
                         "dist peer closed the channel (write)");
      throw_errno("write");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Returns false on clean EOF before the first byte — the caller decides
/// whether that is a crash. EOF after any byte throws (mid-frame death
/// desynchronizes the framing; the channel must be discarded).
bool read_all(int fd, void* data, std::size_t len, const frame_deadline& dl) {
  auto* p = static_cast<std::uint8_t*>(data);
  bool any = false;
  while (len > 0) {
    wait_ready(fd, POLLIN, dl, "read");
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET)
        throw wire_error(wire_errc::closed,
                         "dist peer reset the channel (read)");
      throw_errno("read");
    }
    if (n == 0) {
      if (any)
        throw wire_error(wire_errc::closed, "dist peer closed mid-frame");
      return false;
    }
    any = true;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void channel::send(msg_type type, const wire_writer& payload) {
  send_truncated(type, payload, payload.bytes.size());
}

void channel::send_truncated(msg_type type, const wire_writer& payload,
                             std::size_t wire_bytes) {
  RN_REQUIRE(open(), "dist channel is closed");
  const frame_deadline dl(deadline_ms_);
  const auto body = static_cast<std::uint32_t>(1 + payload.bytes.size());
  std::uint8_t header[5];
  std::memcpy(header, &body, 4);
  header[4] = static_cast<std::uint8_t>(type);
  write_all(fd_, header, sizeof(header), dl);
  const std::size_t n = std::min(wire_bytes, payload.bytes.size());
  if (n > 0) write_all(fd_, payload.bytes.data(), n, dl);
  sent_ += sizeof(header) + n;
}

msg_type channel::recv(std::vector<std::uint8_t>& payload) {
  RN_REQUIRE(open(), "dist channel is closed");
  const frame_deadline dl(deadline_ms_);
  std::uint8_t header[5];
  if (!read_all(fd_, header, sizeof(header), dl))
    throw wire_error(wire_errc::closed, "dist peer closed the channel");
  std::uint32_t body = 0;
  std::memcpy(&body, header, 4);
  if (body < 1)
    throw wire_error(wire_errc::corrupt, "dist frame has no type byte");
  if (body - 1 > max_frame_)
    throw wire_error(wire_errc::corrupt,
                     "dist frame length " + std::to_string(body - 1) +
                         " exceeds the " + std::to_string(max_frame_) +
                         "-byte cap (corrupt or desynced peer)");
  payload.resize(body - 1);
  if (!payload.empty() &&
      !read_all(fd_, payload.data(), payload.size(), dl))
    throw wire_error(wire_errc::closed, "dist peer closed mid-frame");
  received_ += sizeof(header) + payload.size();
  return static_cast<msg_type>(header[4]);
}

std::pair<channel, channel> make_channel_pair() {
  int fds[2] = {-1, -1};
  RN_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
             std::string("socketpair failed: ") + std::strerror(errno));
  return {channel(fds[0]), channel(fds[1])};
}

}  // namespace rn::dist
