// Supervision policy and process-wide recovery accounting for the
// distributed backend.
//
// The session (dist/session.cpp) detects rank failures — a crashed worker
// turns channel reads into EOF, a wedged one into a deadline timeout — and
// drives recovery through this policy:
//
//   1. *Respawn*: fork (or fork+exec) a fresh process for the rank, with
//      bounded exponential backoff between attempts, rebuild its partitioned
//      CSR slice by replaying the edge source (the setup frame carries the
//      topology spec), and replay the current trial's rounds from the trial
//      start so a stateful worker implementation would also land in the
//      right state. Each rank gets `max_respawns` attempts per trial.
//   2. *Degrade*: when respawn is exhausted the rank is retired for the rest
//      of the session; its block range is covered locally for the in-flight
//      round (the coordinator holds the trial graph) and reassigned to the
//      surviving ranks at the next round boundary. Because blocks are
//      applied in canonical ascending order regardless of which process
//      computes them, results JSON stays byte-identical to the fault-free
//      run through every path.
//
// The counters here are process-wide atomics mirrored from every live
// session, so observers that do not own the session — the rn_serve
// Prometheus registry, the rn-bench-timing-v6 sidecar — can report
// restarts and degradations without plumbing.
#pragma once

#include <cstdint>

namespace rn::dist {

/// Detection deadlines and the respawn/backoff policy. All knobs surface on
/// rn_dist (--round-deadline-ms etc.); tests shrink them to keep the fault
/// matrix fast.
struct supervise_policy {
  /// recv deadline for a round-results frame (also every frame sent while a
  /// trial is live). A rank that exceeds it is treated as wedged: killed,
  /// then respawned. 0 disables detection (block forever).
  unsigned round_deadline_ms = 60'000;
  /// recv deadline for setup/teardown acks — CSR slice builds scale with n,
  /// so this phase gets a larger budget.
  unsigned setup_deadline_ms = 300'000;
  /// Respawn attempts per rank per trial before degrading to reassignment.
  unsigned max_respawns = 2;
  /// Exponential backoff before attempt k sleeps min(base << k, cap).
  unsigned backoff_base_ms = 100;
  unsigned backoff_cap_ms = 5'000;
};

/// Backoff before 0-based respawn attempt `attempt`: min(base << attempt,
/// cap). Pure — tests pin it directly.
[[nodiscard]] unsigned backoff_delay_ms(const supervise_policy& policy,
                                        unsigned attempt);

/// Process-wide recovery totals (monotone, relaxed atomics underneath).
struct recovery_snapshot {
  std::uint64_t rank_restarts = 0;     ///< respawn attempts launched
  std::uint64_t reassigned_blocks = 0; ///< blocks moved off retired ranks
  std::uint64_t degraded_ranks = 0;    ///< ranks retired after exhaustion
  std::uint64_t recovery_wall_ms = 0;  ///< wall time inside recovery paths
};

[[nodiscard]] recovery_snapshot recovery_counters();

/// Mirrors called by the session as recoveries happen.
void note_rank_restart();
void note_reassigned_blocks(std::uint64_t blocks);
void note_degraded_rank();
void note_recovery_wall_ms(std::uint64_t ms);

}  // namespace rn::dist
