#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/check.h"
#include "core/params.h"
#include "dist/fault.h"
#include "dist/wire.h"
#include "graph/generators.h"
#include "graph/topology.h"
#include "sim/engine.h"

namespace rn::dist {

void partition_walker::bind(const graph::partitioned_view* view,
                            unsigned threads) {
  view_ = view;
  const unsigned owned = view->last_block() - view->first_block();
  threads_ = std::max(1u, std::min(threads, owned));
  hits_.assign(view->node_count(), 0);
  owner_.assign(view->owned_end() - view->owned_begin(), 0);
  for (unsigned b = view->first_block(); b < view->last_block(); ++b)
    for (node_id v = view->plan().block_begin(b);
         v < view->plan().block_end(b); ++v)
      owner_[v - view->owned_begin()] =
          static_cast<std::uint8_t>(b - view->first_block());
  touched_.assign(owned, {});
}

void partition_walker::unbind() {
  view_ = nullptr;
  hits_.clear();
  hits_.shrink_to_fit();
  owner_.clear();
  owner_.shrink_to_fit();
  touched_.clear();
}

void partition_walker::walk_span(std::span<const node_id> tx_ids,
                                 unsigned first_block, unsigned last_block) {
  // The view's rows hold only owned-range neighbors; restrict further to
  // this span's contiguous listener range with one binary search per row
  // (rows are sorted ascending). Walk order — transmitters in index order,
  // then row order — matches the serial walk, so each block's first-touch
  // list comes out in the canonical dispatch order.
  const node_id lo = view_->plan().block_begin(first_block);
  const node_id hi = view_->plan().block_end(last_block - 1);
  std::uint64_t* hits = hits_.data();
  const std::uint8_t* owner = owner_.data();
  const node_id base = view_->owned_begin();
  for (std::uint32_t i = 0; i < tx_ids.size(); ++i) {
    const std::span<const node_id> row = view_->row(tx_ids[i]);
    const node_id* a =
        std::lower_bound(row.data(), row.data() + row.size(), lo);
    const node_id* row_end = row.data() + row.size();
    for (; a != row_end && *a < hi; ++a) {
      const node_id v = *a;
      const std::uint64_t hs = hits[v];
      if (hs == 0) touched_[owner[v - base]].push_back(v);
      hits[v] = ((hs + (1ULL << 32)) & 0xffffffff00000000ULL) | i;
    }
  }
}

void partition_walker::walk(std::span<const node_id> tx_ids) {
  RN_REQUIRE(view_ != nullptr, "partition_walker is unbound");
  const unsigned first = view_->first_block();
  const unsigned owned = view_->last_block() - first;
  if (threads_ <= 1 || tx_ids.empty()) {
    if (!tx_ids.empty()) walk_span(tx_ids, first, first + owned);
    return;
  }
  // Contiguous block sub-ranges per thread: disjoint listener ranges mean
  // disjoint hits_/touched_ writes, and block results are read back in
  // block order afterwards — the split cannot show up in the output.
  std::vector<std::thread> team;
  team.reserve(threads_ - 1);
  for (unsigned t = 0; t < threads_; ++t) {
    const unsigned b0 = first + owned * t / threads_;
    const unsigned b1 = first + owned * (t + 1) / threads_;
    if (b0 == b1) continue;
    if (t + 1 == threads_) {
      walk_span(tx_ids, b0, b1);
    } else {
      team.emplace_back([this, tx_ids, b0, b1] { walk_span(tx_ids, b0, b1); });
    }
  }
  for (auto& th : team) th.join();
}

void partition_walker::clear_round() {
  for (auto& list : touched_) {
    for (const node_id v : list) hits_[v] = 0;
    list.clear();
  }
}

namespace {

constexpr unsigned kBlocks = core::kChannelContractBlocks;

/// Builds the rank's partitioned view for a trial. Layered topologies — the
/// family the n = 10^8 point uses — stream straight from the generator and
/// never materialize the full graph in the worker; every other kind builds
/// the graph and filters it down (its footprint is the same as a
/// single-process trial, which those kinds already fit).
graph::partitioned_view build_view(const graph::topology_spec& spec,
                                   unsigned first_block, unsigned last_block) {
  if (spec.kind == "layered") {
    // Mirror of the topology registry's layered parameter mapping.
    graph::layered_options lo;
    lo.depth = static_cast<std::size_t>(spec.param("depth", 8));
    lo.width = static_cast<std::size_t>(spec.param("width", 8));
    lo.edge_prob = spec.param("edge_prob", lo.edge_prob);
    lo.intra_prob = spec.param("intra_prob", lo.intra_prob);
    lo.seed = spec.seed;
    const std::size_t n = 1 + lo.depth * lo.width;
    return graph::partitioned_view::from_edge_source(
        n,
        [&lo](const graph::edge_sink& sink) {
          graph::for_each_layered_edge(lo, sink);
        },
        kBlocks, first_block, last_block);
  }
  const graph::graph g = graph::build_topology(spec);
  std::vector<std::uint32_t> prefix(g.node_count() + 1, 0);
  std::size_t total = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    total += g.degree(v);
    prefix[v + 1] = static_cast<std::uint32_t>(total);
  }
  return graph::partitioned_view::from_graph(
      g, graph::compute_block_plan(prefix, kBlocks), first_block, last_block);
}

}  // namespace

int worker_main(int fd) {
  // A coordinator that died leaves us writing into a closed socket; surface
  // that as an error return, not a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  channel ch(fd);
  std::vector<std::uint8_t> payload;
  graph::partitioned_view view;
  partition_walker walker;
  std::vector<node_id> tx_ids;
  bool bound = false;

  try {
    for (;;) {
      const msg_type type = ch.recv(payload);
      wire_reader in(payload);
      switch (type) {
        case msg_type::setup: {
          // The block range is explicit (not derived from rank/ranks): the
          // supervisor reassigns ranges mid-session when a rank degrades,
          // and a worker only ever needs to know which slice to rebuild.
          const std::uint32_t first = in.u32();
          const std::uint32_t last = in.u32();
          const std::uint32_t blocks = in.u32();
          const std::uint32_t threads = in.u32();
          const std::uint64_t seed = in.u64();
          const std::uint32_t spec_len = in.u32();
          const auto* text = in.raw(spec_len);
          RN_REQUIRE(blocks == kBlocks,
                     "dist setup block count does not match channel-v1");
          RN_REQUIRE(first < last && last <= kBlocks,
                     "dist setup block range invalid");
          graph::topology_spec spec = graph::parse_topology_spec(
              std::string(reinterpret_cast<const char*>(text), spec_len));
          spec.seed = seed;
          view = build_view(spec, first, last);
          walker.bind(&view, threads);
          bound = true;
          wire_writer ack;
          ack.u64(view.node_count());
          ack.u64(view.adjacency().size());
          ch.send(msg_type::setup_ack, ack);
          break;
        }
        case msg_type::round: {
          RN_REQUIRE(bound, "dist round before setup");
          const std::uint8_t flags = in.u8();
          const auto fault = static_cast<fault_kind>(in.u8());
          const std::uint32_t fault_arg_ms = in.u32();
          const bool want_results = (flags & 1u) != 0;
          // Coordinator-injected faults (dist/fault.h). `kill` models a
          // crash before the round is processed; `drop` a wedged rank the
          // coordinator's deadline must catch; `truncate` death mid-write.
          if (fault == fault_kind::kill) ::_exit(42);
          if (fault == fault_kind::drop) break;
          const std::uint32_t m = in.u32();
          tx_ids.resize(m);
          std::memcpy(tx_ids.data(), in.raw(std::size_t{m} * 4),
                      std::size_t{m} * 4);
          walker.walk(tx_ids);
          if (want_results) {
            wire_writer out;
            for (unsigned b = view.first_block(); b < view.last_block();
                 ++b) {
              const std::span<const node_id> ids = walker.touched(b);
              out.u32(b);
              out.u32(static_cast<std::uint32_t>(ids.size()));
              out.raw(ids.data(), ids.size() * 4);
              for (const node_id v : ids) out.u64(walker.hit_word(v));
            }
            if (fault == fault_kind::delay)
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(fault_arg_ms));
            if (fault == fault_kind::truncate) {
              ch.send_truncated(msg_type::round_results, out,
                                out.bytes.size() / 2);
              ::_exit(43);
            }
            ch.send(msg_type::round_results, out);
          }
          walker.clear_round();
          break;
        }
        case msg_type::teardown: {
          walker.unbind();
          view = graph::partitioned_view();
          bound = false;
          wire_writer ack;
          ack.u64(static_cast<std::uint64_t>(sim::process_peak_rss_kb()));
          ch.send(msg_type::teardown_ack, ack);
          break;
        }
        case msg_type::shutdown:
          return 0;
        default:
          RN_REQUIRE(false, "dist worker received an unknown frame type");
      }
    }
  } catch (const std::exception&) {
    // Coordinator gone (EOF / EPIPE) or a protocol violation: exit nonzero
    // so the supervisor's waitpid sees an abnormal worker.
    return 1;
  }
}

}  // namespace rn::dist
