// Deterministic fault injection for the distributed backend.
//
// A fault plan is a list of one-shot fault specs keyed by (rank, trial,
// round). The *coordinator* owns the plan: when it sends a round frame it
// consults `take()` and embeds the matching fault code in the frame, so the
// worker-side logic is a trivial switch and — crucially — a respawned rank
// can never re-trigger a fault that already fired (entries are consumed at
// send time, and replayed rounds always carry `none`). That makes every
// recovery path exercisable on demand and exactly once.
//
// Plan grammar (the `--fault-plan` flag on rn_dist, ';'-separated):
//
//   kill:rank=1,trial=0,round=4        worker exits before walking round 4
//   drop:rank=2,trial=0,round=7        worker swallows round 7 and never
//                                      replies (a wedged rank: the
//                                      coordinator's deadline must fire)
//   truncate:rank=0,trial=1,round=2    worker sends half the result frame,
//                                      then exits (death mid-write)
//   delay:rank=1,trial=0,round=3,ms=50 worker sleeps 50 ms before replying
//                                      (past the deadline = timeout, under
//                                      it = survivable latency)
//
// Trials and rounds are 0-based; the round index counts stepped (non-empty)
// rounds within the trial, across every protocol probe the trial runs.
// Entries that never match (round past the end of the run) simply never
// fire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rn::dist {

/// Wire codes for the fault byte of a round frame. Part of the (internal)
/// wire format; append only.
enum class fault_kind : std::uint8_t {
  none = 0,
  kill = 1,      ///< _exit before walking the round
  drop = 2,      ///< walk nothing, never reply (wedged)
  truncate = 3,  ///< reply with a truncated frame, then _exit
  delay = 4,     ///< sleep arg_ms, then reply normally
};

struct fault_spec {
  fault_kind kind = fault_kind::none;
  unsigned rank = 0;
  std::uint32_t trial = 0;
  std::uint32_t round = 0;
  std::uint32_t arg_ms = 0;  ///< delay only
  bool fired = false;
};

class fault_plan {
 public:
  fault_plan() = default;

  /// Parses the ';'-separated plan grammar above; throws rn::contract_error
  /// with the offending entry on malformed input. An empty string is the
  /// empty plan.
  [[nodiscard]] static fault_plan parse(const std::string& text);

  [[nodiscard]] bool empty() const { return specs_.empty(); }

  /// Returns the first unfired spec matching (rank, trial, round) and marks
  /// it fired, or nullptr. Called by the coordinator once per (rank, round)
  /// frame send — one-shot by construction.
  [[nodiscard]] const fault_spec* take(unsigned rank, std::uint32_t trial,
                                       std::uint32_t round);

 private:
  std::vector<fault_spec> specs_;
};

}  // namespace rn::dist
