// Worker-rank side of the distributed backend.
//
// A worker owns a contiguous range of the 32-block listener partition and
// holds only the in-edge partitioned CSR for that range
// (graph::partitioned_view). Per round it receives the global transmitter
// list, tallies hit words for its own listeners, and returns each owned
// block's first-touched listeners (in the canonical walk order) with their
// packed words. The coordinator applies blocks in ascending order, so the
// reception dispatch it then runs is byte-identical to the serial walk's.
//
// `partition_walker` is the reusable walk over a view — the worker loop
// uses it over a socketpair, and the dist tests drive it in-process to pin
// the determinism argument without any forking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/partitioned.h"

namespace rn::dist {

/// One rank's round walk over a partitioned view. Not thread-safe; one
/// walker per rank.
class partition_walker {
 public:
  /// Binds to a view (which must outlive the walker) and allocates round
  /// state. `threads >= 2` splits the owned blocks into that many contiguous
  /// sub-ranges walked concurrently — per-block results are written by
  /// exactly one thread and read back in block order, so results are
  /// byte-identical at every thread count (the intra-trial knob composes
  /// with ranks).
  void bind(const graph::partitioned_view* view, unsigned threads);
  void unbind();

  /// Walks one round: `tx_ids[i]` transmits with transmitter index i.
  /// Leaves per-owned-block touch lists and hit words readable until
  /// `clear_round`.
  void walk(std::span<const node_id> tx_ids);

  /// First-touched owned listeners of block `b` (absolute index), in the
  /// serial walk's touch order.
  [[nodiscard]] std::span<const node_id> touched(unsigned b) const {
    return touched_[b - view_->first_block()];
  }
  /// Packed hit word of listener v (valid for touched listeners).
  [[nodiscard]] std::uint64_t hit_word(node_id v) const { return hits_[v]; }

  /// Zeroes the touched hit words and empties the touch lists — O(touched),
  /// mirroring the engine's per-round cleanup.
  void clear_round();

 private:
  void walk_span(std::span<const node_id> tx_ids, unsigned first_block,
                 unsigned last_block);

  const graph::partitioned_view* view_ = nullptr;
  unsigned threads_ = 1;
  std::vector<std::uint64_t> hits_;          ///< indexed by absolute node id
  std::vector<std::uint8_t> owner_;          ///< owned range, block - first
  std::vector<std::vector<node_id>> touched_;  ///< per owned block
};

/// Runs the worker protocol loop on `fd` until shutdown (returns 0) or the
/// coordinator disappears (returns 1). Invoked by tools/rn_dist when spawned
/// with --rn-worker-fd, and directly by fork-only test sessions.
int worker_main(int fd);

}  // namespace rn::dist
