// Coordinator side of the distributed backend: rank supervision, the
// per-trial setup/teardown protocol, and the per-round walk exchange.
//
// A session spawns R worker processes at construction (fork-only for tests,
// fork+exec of a launcher binary for tools/rn_dist) and implements both
// process-wide hooks the rest of the stack exposes:
//
//   sim::trial_graph_hook — sees every declarative trial's topology spec and
//   graph right after build_topology: it ships the spec (with its resolved
//   seed) to every rank, waits for the partitioned CSRs to build, and arms
//   the radio remote-walk hook for that trial. Trials are serialized on an
//   internal mutex, so scenario-pool threads compose with a session — they
//   just take turns on the rank fleet.
//
//   radio::remote_walk — adopted by networks whose topology is the armed
//   trial graph (pointer identity). The coordinator then skips its private
//   adjacency copy; each stepped round sends the transmitter list to every
//   rank and applies the returned per-block touch lists in ascending block
//   order, reproducing the serial walk's dispatch state exactly.
//
// Failure behavior (the supervision layer, see dist/supervisor.h): every
// frame exchanged while a trial is live carries a per-phase deadline, so a
// crashed rank (EOF) and a wedged rank (timeout) are both detected within a
// bound, never a hang. The session then respawns the rank with bounded
// exponential backoff — rebuilding its partitioned CSR slice by replaying
// the edge source and replaying the current trial's rounds from the trial
// start — or, once the respawn budget is exhausted, retires the rank:
// its blocks are covered locally for the in-flight round (the coordinator
// holds the trial graph) and reassigned to the surviving ranks at the next
// round boundary. Per-rank result frames are validated before any of their
// blocks are applied, application is tracked per block, and reception
// dispatch always walks blocks in ascending canonical order — so results
// JSON is byte-identical to the fault-free (and single-process) run through
// every recovery path. Faults are injectable on demand via
// session_options::fault_plan (dist/fault.h).
//
// Results are byte-identical to single-process runs at any rank count; the
// session only ever shows up in the timing sidecar (v6 rank + recovery
// counters).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "dist/fault.h"
#include "dist/supervisor.h"
#include "dist/wire.h"
#include "graph/partitioned.h"
#include "graph/topology.h"
#include "radio/network.h"
#include "sim/experiment.h"

namespace rn::dist {

struct session_options {
  /// Worker processes; clamped to [1, 32] (a rank owns >= 1 of the 32
  /// blocks). Every value yields byte-identical results.
  unsigned ranks = 2;
  /// Walk threads per rank (the intra-trial knob, applied worker-side in
  /// distributed mode). Byte-identical at every value.
  unsigned intra_trial_threads = 1;
  /// Non-empty: fork+exec this binary with "--rn-worker-fd N" per rank
  /// (tools/rn_dist passes /proc/self/exe). Empty: fork-only — the child
  /// runs worker_main in-process, which tests use; fork-only children must
  /// be spawned (and respawned) from a single-threaded driver.
  std::string worker_exec;
  /// Detection deadlines + respawn/backoff budget (dist/supervisor.h).
  supervise_policy policy;
  /// Deterministic fault plan (dist/fault.h grammar); parsed at
  /// construction, throws on malformed input. Empty = no faults.
  std::string fault_plan;
  /// Replaying a trial's rounds to a respawned rank needs the round log;
  /// past this many logged bytes the log is dropped for the trial and
  /// respawned ranks skip replay — still byte-identical, because the worker
  /// protocol is round-stateless (clear_round after every reply).
  std::size_t max_round_log_bytes = std::size_t{1} << 30;
};

/// Cumulative rank-fleet counters for the v6 timing sidecar.
struct session_totals {
  std::vector<std::int64_t> peak_rss_kb_per_rank;  ///< max over trials
  std::uint64_t bytes_sent = 0;      ///< coordinator -> workers, framed
  std::uint64_t bytes_received = 0;  ///< workers -> coordinator, framed
  double merge_wall_ms = 0.0;  ///< receiving + applying block results
  std::uint64_t trials = 0;    ///< trials executed on the rank fleet
  std::uint64_t rounds = 0;    ///< stepped rounds shipped to the fleet
  // Recovery counters (also mirrored process-wide: dist/supervisor.h).
  std::uint64_t rank_restarts = 0;     ///< respawn attempts launched
  std::uint64_t reassigned_blocks = 0; ///< blocks moved off retired ranks
  std::uint64_t degraded_ranks = 0;    ///< ranks retired after exhaustion
  double recovery_wall_ms = 0.0;       ///< wall time inside recovery paths
};

class session : public radio::remote_walk, public sim::trial_graph_hook {
 public:
  explicit session(session_options opt);
  ~session() override;
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Registers this session as the process trial observer. The remote-walk
  /// hook arms and disarms per trial. Call once; the destructor (or
  /// uninstall) deregisters.
  void install();
  void uninstall();

  [[nodiscard]] unsigned ranks() const {
    return static_cast<unsigned>(ranks_.size());
  }
  [[nodiscard]] session_totals totals() const;

  // sim::trial_graph_hook — also directly callable by tests that build
  // their networks by hand instead of through make_trial: `spec` must
  // rebuild exactly the graph `g` in the workers.
  void trial_begin(const graph::topology_spec& spec,
                   const graph::graph& g) override;
  void trial_end(const graph::graph& g) override;

  // radio::remote_walk
  bool adopt(const graph::graph& g) override;
  void release(const graph::graph& g) override;
  void walk_round(const radio::round_buffer& txs, std::uint64_t* hit_state,
                  radio::touch_list* block_touched) override;

 private:
  /// Lifecycle of a rank slot. `up` speaks the protocol; `down` lost its
  /// process outside a trial (teardown failure) and is revived at the next
  /// trial_begin; `degraded` exhausted its respawn budget and is retired
  /// for the rest of the session (its blocks are reassigned).
  enum class rank_state : std::uint8_t { up, down, degraded };

  struct rank_proc {
    channel ch;
    pid_t pid = -1;
    unsigned first_block = 0;
    unsigned last_block = 0;
    rank_state state = rank_state::up;
    unsigned respawns_this_trial = 0;
  };

  struct local_cover;  ///< coordinator-side walker for orphaned blocks

  [[nodiscard]] bool spawn_rank(unsigned r);
  void kill_rank(unsigned r);
  /// setup + setup-ack + round-log replay for the rank's current block
  /// range; throws wire_error on any failure.
  void resync_rank(unsigned r);
  /// Bounded-backoff respawn loop ending in a resynced rank (true) or an
  /// exhausted budget (false — caller degrades).
  [[nodiscard]] bool respawn_rank(unsigned r, const char* why);
  void degrade_rank(unsigned r);
  /// Round-boundary reassignment: retile the 32 blocks over up ranks and
  /// resync every survivor whose range changed.
  void reassign_blocks();
  void send_setup(unsigned r);
  void recv_setup_ack(unsigned r);
  void send_round_frame(unsigned r, const fault_spec* fault,
                        bool want_results);
  /// recv + validate + apply one rank's round results. Validation precedes
  /// any application (per-rank frames apply atomically) and already-applied
  /// blocks are skipped, so recovery can never double-apply.
  void collect_round(unsigned r, std::uint64_t* hit_state,
                     radio::touch_list* block_touched);
  /// Full mid-round recovery of rank r: respawn/resync (+ resend the
  /// current round) or degrade. Never throws for rank death — only for
  /// genuine contract violations (e.g. a respawned rank rebuilding a
  /// different graph).
  void recover_round(unsigned r, std::uint64_t* hit_state,
                     radio::touch_list* block_touched);
  /// Walks every still-unapplied block range locally on the coordinator's
  /// resident trial graph (degraded fleet paths).
  void cover_missing(std::uint64_t* hit_state,
                     radio::touch_list* block_touched);
  [[nodiscard]] bool rank_done(const rank_proc& r) const;

  session_options opt_;
  fault_plan plan_;
  std::vector<rank_proc> ranks_;
  bool installed_ = false;

  std::mutex trial_mu_;  ///< held from trial_begin to trial_end
  // Atomic because pool threads running *local* trials may construct
  // networks (and hence call adopt) while the distributed trial is armed.
  std::atomic<const graph::graph*> armed_{nullptr};

  // Per-trial state (valid between trial_begin and trial_end).
  graph::topology_spec trial_spec_;
  std::uint64_t trial_node_count_ = 0;
  bool trial_live_ = false;
  std::uint32_t trial_index_ = 0;  ///< 0-based once the first trial begins
  std::uint32_t round_index_ = 0;  ///< stepped rounds within the trial
  std::vector<std::vector<std::uint8_t>> round_log_;  ///< tx sections
  std::size_t round_log_bytes_ = 0;
  bool round_log_dropped_ = false;
  std::vector<node_id> current_txs_;
  std::vector<std::uint8_t> applied_;  ///< per block, current round
  bool needs_reassign_ = false;
  graph::block_plan trial_plan_;  ///< for local covers; built on demand
  bool have_trial_plan_ = false;
  std::vector<std::unique_ptr<local_cover>> covers_;

  std::vector<std::int64_t> rank_peak_rss_kb_;
  double merge_wall_ms_ = 0.0;
  std::uint64_t trials_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t reassigned_blocks_ = 0;
  std::uint64_t degraded_ranks_ = 0;
  double recovery_wall_ms_ = 0.0;
  std::uint64_t bytes_sent_closed_ = 0;      ///< counters of replaced channels
  std::uint64_t bytes_received_closed_ = 0;
  std::vector<std::uint8_t> frame_;  ///< recv scratch (coordinator thread)
};

}  // namespace rn::dist
