// Coordinator side of the distributed backend: rank supervision, the
// per-trial setup/teardown protocol, and the per-round walk exchange.
//
// A session spawns R worker processes at construction (fork-only for tests,
// fork+exec of a launcher binary for tools/rn_dist) and implements both
// process-wide hooks the rest of the stack exposes:
//
//   sim::trial_graph_hook — sees every declarative trial's topology spec and
//   graph right after build_topology: it ships the spec (with its resolved
//   seed) to every rank, waits for the partitioned CSRs to build, and arms
//   the radio remote-walk hook for that trial. Trials are serialized on an
//   internal mutex, so scenario-pool threads compose with a session — they
//   just take turns on the rank fleet.
//
//   radio::remote_walk — adopted by networks whose topology is the armed
//   trial graph (pointer identity). The coordinator then skips its private
//   adjacency copy; each stepped round sends the transmitter list to every
//   rank and applies the returned per-block touch lists in ascending block
//   order, reproducing the serial walk's dispatch state exactly.
//
// Failure behavior: a worker that dies mid-protocol surfaces as one
// rn::contract_error naming the rank and its wait status (exit code or
// signal) — never a hang, because the coordinator writes all requests
// before blocking on any reply and a dead peer turns reads into EOF.
//
// Results are byte-identical to single-process runs at any rank count; the
// session only ever shows up in the timing sidecar (v5 rank counters).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "dist/wire.h"
#include "graph/topology.h"
#include "radio/network.h"
#include "sim/experiment.h"

namespace rn::dist {

struct session_options {
  /// Worker processes; clamped to [1, 32] (a rank owns >= 1 of the 32
  /// blocks). Every value yields byte-identical results.
  unsigned ranks = 2;
  /// Walk threads per rank (the intra-trial knob, applied worker-side in
  /// distributed mode). Byte-identical at every value.
  unsigned intra_trial_threads = 1;
  /// Non-empty: fork+exec this binary with "--rn-worker-fd N" per rank
  /// (tools/rn_dist passes /proc/self/exe). Empty: fork-only — the child
  /// runs worker_main in-process, which tests use; fork-only children must
  /// be spawned before the process grows threads.
  std::string worker_exec;
};

/// Cumulative rank-fleet counters for the v5 timing sidecar.
struct session_totals {
  std::vector<std::int64_t> peak_rss_kb_per_rank;  ///< max over trials
  std::uint64_t bytes_sent = 0;      ///< coordinator -> workers, framed
  std::uint64_t bytes_received = 0;  ///< workers -> coordinator, framed
  double merge_wall_ms = 0.0;  ///< receiving + applying block results
  std::uint64_t trials = 0;    ///< trials executed on the rank fleet
};

class session : public radio::remote_walk, public sim::trial_graph_hook {
 public:
  explicit session(session_options opt);
  ~session() override;
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Registers this session as the process trial observer. The remote-walk
  /// hook arms and disarms per trial. Call once; the destructor (or
  /// uninstall) deregisters.
  void install();
  void uninstall();

  [[nodiscard]] unsigned ranks() const {
    return static_cast<unsigned>(ranks_.size());
  }
  [[nodiscard]] session_totals totals() const;

  // sim::trial_graph_hook — also directly callable by tests that build
  // their networks by hand instead of through make_trial: `spec` must
  // rebuild exactly the graph `g` in the workers.
  void trial_begin(const graph::topology_spec& spec,
                   const graph::graph& g) override;
  void trial_end(const graph::graph& g) override;

  // radio::remote_walk
  bool adopt(const graph::graph& g) override;
  void release(const graph::graph& g) override;
  void walk_round(const radio::round_buffer& txs, std::uint64_t* hit_state,
                  radio::touch_list* block_touched) override;

 private:
  struct rank_proc {
    channel ch;
    pid_t pid = -1;
    unsigned first_block = 0;
    unsigned last_block = 0;
  };

  void spawn_ranks();
  /// Receives one frame from rank r, expecting `want`; a dead worker is
  /// reported as a structured contract_error naming the rank and its wait
  /// status.
  void recv_expect(unsigned r, msg_type want, std::vector<std::uint8_t>& out);
  [[noreturn]] void report_dead_rank(unsigned r, const std::string& what);

  session_options opt_;
  std::vector<rank_proc> ranks_;
  bool installed_ = false;

  std::mutex trial_mu_;  ///< held from trial_begin to trial_end
  // Atomic because pool threads running *local* trials may construct
  // networks (and hence call adopt) while the distributed trial is armed.
  std::atomic<const graph::graph*> armed_{nullptr};

  std::vector<std::int64_t> rank_peak_rss_kb_;
  double merge_wall_ms_ = 0.0;
  std::uint64_t trials_ = 0;
  std::vector<std::uint8_t> frame_;  ///< recv scratch (coordinator thread)
};

}  // namespace rn::dist
