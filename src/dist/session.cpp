#include "dist/session.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>

#include <sys/wait.h>
#include <unistd.h>

#include "common/check.h"
#include "core/params.h"
#include "dist/worker.h"

namespace rn::dist {

namespace {
constexpr unsigned kBlocks = core::kChannelContractBlocks;
}  // namespace

session::session(session_options opt) : opt_(std::move(opt)) {
  opt_.ranks = std::max(1u, std::min(opt_.ranks, kBlocks));
  // A dead worker must surface as a write error on its channel, not a
  // SIGPIPE kill of the coordinator.
  std::signal(SIGPIPE, SIG_IGN);
  spawn_ranks();
  rank_peak_rss_kb_.assign(opt_.ranks, 0);
}

session::~session() {
  uninstall();
  radio::set_remote_walk(nullptr);
  for (auto& r : ranks_) {
    if (r.ch.open()) {
      try {
        r.ch.send(msg_type::shutdown, wire_writer{});
      } catch (const std::exception&) {
        // Already dead; reaped below either way.
      }
      r.ch.close();
    }
    if (r.pid > 0) {
      int status = 0;
      ::waitpid(r.pid, &status, 0);
    }
  }
}

void session::install() {
  sim::set_trial_graph_hook(this);
  installed_ = true;
}

void session::uninstall() {
  if (installed_) {
    sim::set_trial_graph_hook(nullptr);
    installed_ = false;
  }
}

void session::spawn_ranks() {
  ranks_.resize(opt_.ranks);
  for (unsigned r = 0; r < opt_.ranks; ++r) {
    auto [coord_end, worker_end] = make_channel_pair();
    const pid_t pid = ::fork();
    RN_REQUIRE(pid >= 0, "fork failed for dist worker rank");
    if (pid == 0) {
      // Child: drop every coordinator-side fd inherited so far, then run
      // the worker — in-process (fork-only) or via exec of the launcher.
      coord_end.close();
      for (unsigned prev = 0; prev < r; ++prev) ranks_[prev].ch.close();
      if (opt_.worker_exec.empty()) {
        ::_exit(worker_main(worker_end.fd()));
      }
      const std::string fd_arg = std::to_string(worker_end.fd());
      ::execl(opt_.worker_exec.c_str(), opt_.worker_exec.c_str(),
              "--rn-worker-fd", fd_arg.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed; the coordinator sees EOF + status 127
    }
    ranks_[r].ch = std::move(coord_end);
    ranks_[r].pid = pid;
    ranks_[r].first_block = kBlocks * r / opt_.ranks;
    ranks_[r].last_block = kBlocks * (r + 1) / opt_.ranks;
    // worker_end closes here (parent side), leaving the child the only
    // holder — its EOF semantics depend on that.
  }
}

void session::report_dead_rank(unsigned r, const std::string& what) {
  std::string detail = "no wait status";
  if (ranks_[r].pid > 0) {
    int status = 0;
    if (::waitpid(ranks_[r].pid, &status, 0) == ranks_[r].pid) {
      ranks_[r].pid = -1;
      if (WIFEXITED(status))
        detail = "exit status " + std::to_string(WEXITSTATUS(status));
      else if (WIFSIGNALED(status))
        detail = "killed by signal " + std::to_string(WTERMSIG(status));
    }
  }
  ranks_[r].ch.close();
  RN_REQUIRE(false, "dist worker rank " + std::to_string(r) +
                        " died mid-protocol (" + detail + "): " + what);
}

void session::recv_expect(unsigned r, msg_type want,
                          std::vector<std::uint8_t>& out) {
  msg_type got = msg_type::shutdown;
  try {
    got = ranks_[r].ch.recv(out);
  } catch (const contract_error& e) {
    report_dead_rank(r, e.what());
  }
  RN_REQUIRE(got == want, "dist rank " + std::to_string(r) +
                              " sent an out-of-protocol frame");
}

void session::trial_begin(const graph::topology_spec& spec,
                          const graph::graph& g) {
  // Serialize trials across scenario-pool threads: the rank fleet runs one
  // trial at a time; everyone else queues here. Unlocked in trial_end on
  // the same thread (the trial hook scope guarantees the pairing).
  trial_mu_.lock();
  try {
    const std::string text = spec.to_string();
    for (unsigned r = 0; r < ranks(); ++r) {
      wire_writer setup;
      setup.u32(r);
      setup.u32(ranks());
      setup.u32(kBlocks);
      setup.u32(opt_.intra_trial_threads);
      setup.u64(spec.seed);
      setup.u32(static_cast<std::uint32_t>(text.size()));
      setup.raw(text.data(), text.size());
      try {
        ranks_[r].ch.send(msg_type::setup, setup);
      } catch (const contract_error& e) {
        report_dead_rank(r, e.what());
      }
    }
    for (unsigned r = 0; r < ranks(); ++r) {
      recv_expect(r, msg_type::setup_ack, frame_);
      wire_reader in(frame_);
      const std::uint64_t n = in.u64();
      static_cast<void>(in.u64());  // owned adjacency entries (diagnostic)
      RN_REQUIRE(n == g.node_count(),
                 "dist rank rebuilt a different graph (node count mismatch) "
                 "— topology spec is not replay-deterministic");
    }
    armed_.store(&g, std::memory_order_release);
    radio::set_remote_walk(this);
  } catch (...) {
    trial_mu_.unlock();
    throw;
  }
}

void session::trial_end(const graph::graph& g) {
  try {
    RN_REQUIRE(armed_.load(std::memory_order_acquire) == &g,
               "dist trial_end for a graph that never began");
    radio::set_remote_walk(nullptr);
    armed_.store(nullptr, std::memory_order_release);
    for (unsigned r = 0; r < ranks(); ++r) {
      try {
        ranks_[r].ch.send(msg_type::teardown, wire_writer{});
      } catch (const contract_error& e) {
        report_dead_rank(r, e.what());
      }
    }
    for (unsigned r = 0; r < ranks(); ++r) {
      recv_expect(r, msg_type::teardown_ack, frame_);
      wire_reader in(frame_);
      rank_peak_rss_kb_[r] = std::max(
          rank_peak_rss_kb_[r], static_cast<std::int64_t>(in.u64()));
    }
    ++trials_;
  } catch (...) {
    trial_mu_.unlock();
    throw;
  }
  trial_mu_.unlock();
}

bool session::adopt(const graph::graph& g) {
  return armed_.load(std::memory_order_acquire) == &g;
}

void session::release(const graph::graph& g) {
  (void)g;  // nothing rank-side to undo: state is per trial, not per network
}

void session::walk_round(const radio::round_buffer& txs,
                         std::uint64_t* hit_state,
                         radio::touch_list* block_touched) {
  // An empty round touches nothing — identical to the serial walk — so it
  // never crosses the wire (fast-forwarded protocols still advance() past
  // idle rounds before this is reached; this covers stepped-but-empty).
  if (txs.empty()) return;

  wire_writer round;
  round.u32(static_cast<std::uint32_t>(txs.size()));
  for (std::size_t i = 0; i < txs.size(); ++i) round.u32(txs[i].from);
  // Write every request before blocking on any reply: ranks work in
  // parallel, and a dead rank turns the read below into EOF, not a hang.
  for (unsigned r = 0; r < ranks(); ++r) {
    try {
      ranks_[r].ch.send(msg_type::round, round);
    } catch (const contract_error& e) {
      report_dead_rank(r, e.what());
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned r = 0; r < ranks(); ++r) {
    recv_expect(r, msg_type::round_results, frame_);
    wire_reader in(frame_);
    unsigned expect_block = ranks_[r].first_block;
    while (in.remaining() > 0) {
      const std::uint32_t b = in.u32();
      const std::uint32_t count = in.u32();
      RN_REQUIRE(b == expect_block && b < ranks_[r].last_block,
                 "dist rank returned blocks out of order");
      ++expect_block;
      const auto* ids =
          reinterpret_cast<const node_id*>(in.raw(std::size_t{count} * 4));
      const auto* words = in.raw(std::size_t{count} * 8);
      radio::touch_list& touched = block_touched[b];
      for (std::uint32_t k = 0; k < count; ++k) {
        const node_id v = ids[k];
        touched.push(v);
        std::memcpy(&hit_state[v], words + std::size_t{k} * 8, 8);
      }
    }
    RN_REQUIRE(expect_block == ranks_[r].last_block,
               "dist rank returned too few blocks");
  }
  merge_wall_ms_ +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
}

session_totals session::totals() const {
  session_totals t;
  t.peak_rss_kb_per_rank = rank_peak_rss_kb_;
  for (const auto& r : ranks_) {
    t.bytes_sent += r.ch.bytes_sent();
    t.bytes_received += r.ch.bytes_received();
  }
  t.merge_wall_ms = merge_wall_ms_;
  t.trials = trials_;
  return t;
}

}  // namespace rn::dist
