#include "dist/session.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "common/check.h"
#include "core/params.h"
#include "dist/worker.h"

namespace rn::dist {

namespace {

constexpr unsigned kBlocks = core::kChannelContractBlocks;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)  // rn-lint: allow(R1) recovery/backoff wall time feeds the v6 sidecar, never results JSON
      .count();
}

}  // namespace

/// Coordinator-side walker over the resident trial graph for a contiguous
/// orphaned block range — the degraded-fleet fallback. Built lazily per
/// (first, last) range and cached for the rest of the trial; walking it is
/// exactly the rank walk (same view construction, same canonical plan), so
/// locally covered blocks are byte-identical to remotely computed ones.
struct session::local_cover {
  unsigned first = 0;
  unsigned last = 0;
  graph::partitioned_view view;
  partition_walker walker;
};

session::session(session_options opt)
    : opt_(std::move(opt)), plan_(fault_plan::parse(opt_.fault_plan)) {
  opt_.ranks = std::max(1u, std::min(opt_.ranks, kBlocks));
  // A dead worker must surface as a write error on its channel, not a
  // SIGPIPE kill of the coordinator.
  std::signal(SIGPIPE, SIG_IGN);
  ranks_.resize(opt_.ranks);
  for (unsigned r = 0; r < opt_.ranks; ++r) {
    ranks_[r].first_block = kBlocks * r / opt_.ranks;
    ranks_[r].last_block = kBlocks * (r + 1) / opt_.ranks;
    RN_REQUIRE(spawn_rank(r), "fork failed for dist worker rank");
  }
  rank_peak_rss_kb_.assign(opt_.ranks, 0);
  applied_.assign(kBlocks, 0);
}

session::~session() {
  uninstall();
  radio::set_remote_walk(nullptr);
  for (unsigned r = 0; r < ranks_.size(); ++r) {
    auto& rk = ranks_[r];
    if (rk.ch.open()) {
      try {
        rk.ch.set_deadline_ms(opt_.policy.round_deadline_ms);
        rk.ch.send(msg_type::shutdown, wire_writer{});
      } catch (const std::exception&) {
        // Already dead; reaped below either way.
      }
      rk.ch.close();
    }
    if (rk.pid > 0) {
      int status = 0;
      ::waitpid(rk.pid, &status, 0);
    }
  }
}

void session::install() {
  sim::set_trial_graph_hook(this);
  installed_ = true;
}

void session::uninstall() {
  if (installed_) {
    sim::set_trial_graph_hook(nullptr);
    installed_ = false;
  }
}

bool session::spawn_rank(unsigned r) {
  auto [coord_end, worker_end] = make_channel_pair();
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Child: drop every coordinator-side fd (this rank's replaced channel is
    // already closed; the others must not leak into the worker, or a dead
    // coordinator would never produce EOF on them).
    coord_end.close();
    for (auto& other : ranks_) other.ch.close();
    if (opt_.worker_exec.empty()) {
      ::_exit(worker_main(worker_end.fd()));
    }
    const std::string fd_arg = std::to_string(worker_end.fd());
    ::execl(opt_.worker_exec.c_str(), opt_.worker_exec.c_str(),
            "--rn-worker-fd", fd_arg.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed; the coordinator sees EOF + status 127
  }
  ranks_[r].ch = std::move(coord_end);
  ranks_[r].pid = pid;
  return true;
  // worker_end closes here (parent side), leaving the child the only
  // holder — its EOF semantics depend on that.
}

void session::kill_rank(unsigned r) {
  auto& rk = ranks_[r];
  if (rk.ch.open()) {
    // Channels are replaced on respawn; fold their traffic into the session
    // totals before the counters vanish with the object.
    bytes_sent_closed_ += rk.ch.bytes_sent();
    bytes_received_closed_ += rk.ch.bytes_received();
    rk.ch.close();
  }
  if (rk.pid > 0) {
    ::kill(rk.pid, SIGKILL);
    int status = 0;
    ::waitpid(rk.pid, &status, 0);
    rk.pid = -1;
  }
}

void session::send_setup(unsigned r) {
  auto& rk = ranks_[r];
  rk.ch.set_deadline_ms(opt_.policy.setup_deadline_ms);
  const std::string text = trial_spec_.to_string();
  wire_writer setup;
  setup.u32(rk.first_block);
  setup.u32(rk.last_block);
  setup.u32(kBlocks);
  setup.u32(opt_.intra_trial_threads);
  setup.u64(trial_spec_.seed);
  setup.u32(static_cast<std::uint32_t>(text.size()));
  setup.raw(text.data(), text.size());
  rk.ch.send(msg_type::setup, setup);
}

void session::recv_setup_ack(unsigned r) {
  auto& rk = ranks_[r];
  rk.ch.set_deadline_ms(opt_.policy.setup_deadline_ms);
  const msg_type got = rk.ch.recv(frame_);
  if (got != msg_type::setup_ack)
    throw wire_error(wire_errc::corrupt,
                     "dist rank " + std::to_string(r) +
                         " sent an out-of-protocol frame (expected "
                         "setup_ack)");
  wire_reader in(frame_);
  const std::uint64_t n = in.u64();
  static_cast<void>(in.u64());  // owned adjacency entries (diagnostic)
  // A node-count mismatch is NOT a rank failure — the spec replayed to a
  // different graph, so respawning cannot help. Let it escape as a plain
  // contract violation (fatal), past every recovery catch.
  RN_REQUIRE(n == trial_node_count_,
             "dist rank rebuilt a different graph (node count mismatch) "
             "— topology spec is not replay-deterministic");
}

void session::resync_rank(unsigned r) {
  send_setup(r);
  recv_setup_ack(r);
  // Replay the trial's completed rounds with want_results = 0. The protocol
  // is round-stateless worker-side (clear_round after every round), so this
  // is for protocol-evolution safety, not correctness today; if the log was
  // dropped (cap) the skip is still byte-identical.
  if (round_log_dropped_) return;
  auto& rk = ranks_[r];
  rk.ch.set_deadline_ms(opt_.policy.round_deadline_ms);
  for (const auto& section : round_log_) {
    wire_writer w;
    w.u8(0);  // replay: no results wanted
    w.u8(static_cast<std::uint8_t>(fault_kind::none));
    w.u32(0);
    w.raw(section.data(), section.size());
    rk.ch.send(msg_type::round, w);
  }
}

bool session::respawn_rank(unsigned r, const char* why) {
  const auto t0 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) respawn latency feeds dist_recovery_wall_ms (sidecar counter only)
  auto& rk = ranks_[r];
  bool up = false;
  while (!up && rk.respawns_this_trial < opt_.policy.max_respawns) {
    const unsigned attempt = rk.respawns_this_trial++;
    ++restarts_;
    note_rank_restart();
    const unsigned backoff = backoff_delay_ms(opt_.policy, attempt);
    std::fprintf(stderr,
                 "[rn-dist] rank %u %s; respawn attempt %u/%u after %u ms\n",
                 r, why, attempt + 1, opt_.policy.max_respawns, backoff);
    kill_rank(r);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    if (!spawn_rank(r)) break;  // fork refused: treat the budget as spent
    try {
      resync_rank(r);
      up = true;
    } catch (const wire_error&) {
      // Next attempt (or exhaustion) — the budget strictly decreases.
    }
  }
  const double ms = ms_since(t0);
  recovery_wall_ms_ += ms;
  note_recovery_wall_ms(static_cast<std::uint64_t>(ms));
  return up;
}

void session::degrade_rank(unsigned r) {
  auto& rk = ranks_[r];
  kill_rank(r);
  rk.state = rank_state::degraded;
  ++degraded_ranks_;
  note_degraded_rank();
  const unsigned owned = rk.last_block - rk.first_block;
  reassigned_blocks_ += owned;
  note_reassigned_blocks(owned);
  needs_reassign_ = true;
  std::fprintf(stderr,
               "[rn-dist] rank %u degraded (respawn budget %u exhausted); "
               "blocks [%u, %u) move to the survivors\n",
               r, opt_.policy.max_respawns, rk.first_block, rk.last_block);
}

void session::reassign_blocks() {
  // Retile the 32 blocks contiguously over the up ranks, in rank order —
  // the same tiling rule as construction, so a fleet that never lost a rank
  // is always a fixed point and fault-free runs never resync here.
  needs_reassign_ = false;
  std::vector<unsigned> up;
  for (unsigned r = 0; r < ranks_.size(); ++r) {
    auto& rk = ranks_[r];
    if (rk.state == rank_state::up)
      up.push_back(r);
    else
      rk.first_block = rk.last_block = 0;  // owns nothing
  }
  if (up.empty()) return;  // cover_missing carries the whole round locally
  const auto k = static_cast<unsigned>(up.size());
  std::vector<unsigned> changed;
  for (unsigned j = 0; j < k; ++j) {
    auto& rk = ranks_[up[j]];
    const unsigned nf = kBlocks * j / k;
    const unsigned nl = kBlocks * (j + 1) / k;
    if (nf != rk.first_block || nl != rk.last_block) changed.push_back(up[j]);
    rk.first_block = nf;
    rk.last_block = nl;
  }
  if (!trial_live_) return;  // trial_begin's setup pass syncs everyone
  for (const unsigned r : changed) {
    try {
      resync_rank(r);
    } catch (const wire_error&) {
      if (!respawn_rank(r, "failed during block reassignment"))
        degrade_rank(r);
    }
  }
  // A survivor dying during the retile shrinks the up set; go again (each
  // pass retires at least one rank, so this terminates).
  if (needs_reassign_) reassign_blocks();
}

void session::trial_begin(const graph::topology_spec& spec,
                          const graph::graph& g) {
  // Serialize trials across scenario-pool threads: the rank fleet runs one
  // trial at a time; everyone else queues here. Unlocked in trial_end on
  // the same thread (the trial hook scope guarantees the pairing).
  trial_mu_.lock();
  try {
    trial_spec_ = spec;
    trial_node_count_ = g.node_count();
    trial_index_ = static_cast<std::uint32_t>(trials_);
    trial_live_ = true;
    round_index_ = 0;
    round_log_.clear();
    round_log_bytes_ = 0;
    round_log_dropped_ = false;
    covers_.clear();
    have_trial_plan_ = false;
    for (auto& rk : ranks_) rk.respawns_this_trial = 0;

    // Revive ranks lost at a previous trial's teardown: a fresh process and
    // a fresh respawn budget. Failure to even fork degrades them for good.
    for (unsigned r = 0; r < ranks_.size(); ++r) {
      auto& rk = ranks_[r];
      if (rk.state != rank_state::down) continue;
      if (spawn_rank(r)) {
        rk.state = rank_state::up;
        ++restarts_;
        note_rank_restart();
      } else {
        degrade_rank(r);
      }
    }

    // Setup pass over the whole fleet, with recovery. Each iteration either
    // completes cleanly or degrades at least one rank (changing the tiling),
    // so the loop runs at most ranks + 1 times.
    for (;;) {
      if (needs_reassign_) {
        // Retile only — the passes below ship the new ranges to everyone.
        const bool was_live = trial_live_;
        trial_live_ = false;
        reassign_blocks();
        trial_live_ = was_live;
      }
      // 0 = pending, 1 = setup sent (ack outstanding), 2 = fully synced
      // (respawn_rank resyncs internally).
      std::vector<std::uint8_t> stage(ranks_.size(), 0);
      for (unsigned r = 0; r < ranks_.size(); ++r) {
        if (ranks_[r].state != rank_state::up) continue;
        try {
          send_setup(r);
          stage[r] = 1;
        } catch (const wire_error&) {
          if (respawn_rank(r, "failed at trial setup"))
            stage[r] = 2;
          else
            degrade_rank(r);
        }
      }
      for (unsigned r = 0; r < ranks_.size(); ++r) {
        if (ranks_[r].state != rank_state::up || stage[r] != 1) continue;
        try {
          recv_setup_ack(r);
        } catch (const wire_error&) {
          if (!respawn_rank(r, "failed at trial setup"))
            degrade_rank(r);
        }
      }
      if (!needs_reassign_) break;
    }

    armed_.store(&g, std::memory_order_release);
    radio::set_remote_walk(this);
  } catch (...) {
    trial_live_ = false;
    trial_mu_.unlock();
    throw;
  }
}

void session::trial_end(const graph::graph& g) {
  try {
    RN_REQUIRE(armed_.load(std::memory_order_acquire) == &g,
               "dist trial_end for a graph that never began");
    radio::set_remote_walk(nullptr);
    armed_.store(nullptr, std::memory_order_release);
    // Teardown failures mark the rank down — no respawn mid-teardown (there
    // is nothing left to compute); the next trial_begin revives it.
    std::vector<std::uint8_t> sent(ranks_.size(), 0);
    for (unsigned r = 0; r < ranks_.size(); ++r) {
      auto& rk = ranks_[r];
      if (rk.state != rank_state::up) continue;
      rk.ch.set_deadline_ms(opt_.policy.setup_deadline_ms);
      try {
        rk.ch.send(msg_type::teardown, wire_writer{});
        sent[r] = 1;
      } catch (const wire_error&) {
        kill_rank(r);
        rk.state = rank_state::down;
      }
    }
    for (unsigned r = 0; r < ranks_.size(); ++r) {
      auto& rk = ranks_[r];
      if (rk.state != rank_state::up || sent[r] != 1) continue;
      try {
        const msg_type got = rk.ch.recv(frame_);
        if (got != msg_type::teardown_ack)
          throw wire_error(wire_errc::corrupt,
                           "dist rank " + std::to_string(r) +
                               " sent an out-of-protocol frame (expected "
                               "teardown_ack)");
        wire_reader in(frame_);
        rank_peak_rss_kb_[r] = std::max(rank_peak_rss_kb_[r],
                                        static_cast<std::int64_t>(in.u64()));
      } catch (const wire_error&) {
        kill_rank(r);
        rk.state = rank_state::down;
      }
    }
    ++trials_;
    trial_live_ = false;
    covers_.clear();
  } catch (...) {
    trial_live_ = false;
    trial_mu_.unlock();
    throw;
  }
  trial_mu_.unlock();
}

bool session::adopt(const graph::graph& g) {
  return armed_.load(std::memory_order_acquire) == &g;
}

void session::release(const graph::graph& g) {
  (void)g;  // nothing rank-side to undo: state is per trial, not per network
}

void session::send_round_frame(unsigned r, const fault_spec* fault,
                               bool want_results) {
  auto& rk = ranks_[r];
  rk.ch.set_deadline_ms(opt_.policy.round_deadline_ms);
  wire_writer w;
  w.u8(want_results ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(fault ? fault->kind : fault_kind::none));
  w.u32(fault ? fault->arg_ms : 0);
  w.u32(static_cast<std::uint32_t>(current_txs_.size()));
  w.raw(current_txs_.data(), current_txs_.size() * 4);
  rk.ch.send(msg_type::round, w);
}

void session::collect_round(unsigned r, std::uint64_t* hit_state,
                            radio::touch_list* block_touched) {
  auto& rk = ranks_[r];
  rk.ch.set_deadline_ms(opt_.policy.round_deadline_ms);
  const msg_type got = rk.ch.recv(frame_);
  if (got != msg_type::round_results)
    throw wire_error(wire_errc::corrupt,
                     "dist rank " + std::to_string(r) +
                         " sent an out-of-protocol frame (expected "
                         "round_results)");
  // Validate the whole frame before applying any of it: a frame that dies
  // halfway through validation has touched nothing, so the respawned rank's
  // resend (or a local cover) can apply the same blocks with no trace of
  // the failed attempt.
  struct block_ref {
    std::uint32_t b = 0;
    std::uint32_t count = 0;
    const std::uint8_t* ids = nullptr;
    const std::uint8_t* words = nullptr;
  };
  std::vector<block_ref> refs;
  refs.reserve(rk.last_block - rk.first_block);
  try {
    wire_reader in(frame_);
    unsigned expect_block = rk.first_block;
    while (in.remaining() > 0) {
      block_ref ref;
      ref.b = in.u32();
      ref.count = in.u32();
      if (ref.b != expect_block || ref.b >= rk.last_block)
        throw wire_error(wire_errc::corrupt,
                         "dist rank returned blocks out of order");
      ref.ids = in.raw(std::size_t{ref.count} * 4);
      ref.words = in.raw(std::size_t{ref.count} * 8);
      refs.push_back(ref);
      ++expect_block;
    }
    if (expect_block != rk.last_block)
      throw wire_error(wire_errc::corrupt,
                       "dist rank returned too few blocks");
  } catch (const wire_error&) {
    throw;
  } catch (const contract_error& e) {
    // wire_reader truncation inside a well-framed payload: same category as
    // any other corrupt frame — recoverable by respawn, not fatal.
    throw wire_error(wire_errc::corrupt, e.what());
  }

  const auto t0 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) merge wall time feeds dist_merge_wall_ms (sidecar counter only)
  for (const auto& ref : refs) {
    if (applied_[ref.b]) continue;  // recovery already covered it
    radio::touch_list& touched = block_touched[ref.b];
    const auto* ids = reinterpret_cast<const node_id*>(ref.ids);
    for (std::uint32_t k = 0; k < ref.count; ++k) {
      const node_id v = ids[k];
      touched.push(v);
      std::memcpy(&hit_state[v], ref.words + std::size_t{k} * 8, 8);
    }
    applied_[ref.b] = 1;
  }
  merge_wall_ms_ += ms_since(t0);
}

void session::recover_round(unsigned r, std::uint64_t* hit_state,
                            radio::touch_list* block_touched) {
  for (;;) {
    if (!respawn_rank(r, "failed mid-round")) {
      degrade_rank(r);
      return;  // cover_missing picks up its unapplied blocks this round
    }
    if (rank_done(ranks_[r])) return;  // everything already applied
    try {
      send_round_frame(r, nullptr, true);  // resend; faults never replay
      collect_round(r, hit_state, block_touched);
      return;
    } catch (const wire_error&) {
      // Fell over again — loop; the respawn budget strictly decreases.
    }
  }
}

bool session::rank_done(const rank_proc& rk) const {
  for (unsigned b = rk.first_block; b < rk.last_block; ++b)
    if (!applied_[b]) return false;
  return true;
}

void session::cover_missing(std::uint64_t* hit_state,
                            radio::touch_list* block_touched) {
  unsigned b = 0;
  while (b < kBlocks) {
    if (applied_[b]) {
      ++b;
      continue;
    }
    unsigned e = b;
    while (e < kBlocks && !applied_[e]) ++e;
    const graph::graph* g = armed_.load(std::memory_order_acquire);
    RN_REQUIRE(g != nullptr,
               "dist local cover requested without an armed trial graph");
    const auto t0 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) local-cover recovery timing feeds the v6 sidecar, never results JSON
    local_cover* cov = nullptr;
    for (const auto& c : covers_)
      if (c->first == b && c->last == e) cov = c.get();
    if (cov == nullptr) {
      if (!have_trial_plan_) {
        std::vector<std::uint32_t> prefix(g->node_count() + 1, 0);
        std::size_t total = 0;
        for (node_id v = 0; v < g->node_count(); ++v) {
          total += g->degree(v);
          prefix[v + 1] = static_cast<std::uint32_t>(total);
        }
        trial_plan_ = graph::compute_block_plan(prefix, kBlocks);
        have_trial_plan_ = true;
      }
      auto made = std::make_unique<local_cover>();
      made->first = b;
      made->last = e;
      made->view = graph::partitioned_view::from_graph(*g, trial_plan_, b, e);
      made->walker.bind(&made->view, opt_.intra_trial_threads);
      covers_.push_back(std::move(made));
      cov = covers_.back().get();
    }
    cov->walker.walk(current_txs_);
    for (unsigned blk = b; blk < e; ++blk) {
      const std::span<const node_id> ids = cov->walker.touched(blk);
      radio::touch_list& touched = block_touched[blk];
      for (const node_id v : ids) {
        touched.push(v);
        hit_state[v] = cov->walker.hit_word(v);
      }
      applied_[blk] = 1;
    }
    cov->walker.clear_round();
    const double ms = ms_since(t0);
    recovery_wall_ms_ += ms;
    note_recovery_wall_ms(static_cast<std::uint64_t>(ms));
    b = e;
  }
}

void session::walk_round(const radio::round_buffer& txs,
                         std::uint64_t* hit_state,
                         radio::touch_list* block_touched) {
  // An empty round touches nothing — identical to the serial walk — so it
  // never crosses the wire (fast-forwarded protocols still advance() past
  // idle rounds before this is reached; this covers stepped-but-empty).
  if (txs.empty()) return;

  // Round boundary: fold any degradation from the previous round into the
  // tiling before new work ships.
  if (needs_reassign_) reassign_blocks();

  current_txs_.resize(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) current_txs_[i] = txs[i].from;
  std::fill(applied_.begin(), applied_.end(), std::uint8_t{0});

  // Write every request before blocking on any reply: ranks work in
  // parallel, and a dead rank turns the read below into a structured
  // wire_error (EOF or deadline), never a hang.
  for (unsigned r = 0; r < ranks_.size(); ++r) {
    auto& rk = ranks_[r];
    if (rk.state != rank_state::up || rk.first_block == rk.last_block)
      continue;
    const fault_spec* fault = plan_.take(r, trial_index_, round_index_);
    try {
      send_round_frame(r, fault, true);
    } catch (const wire_error&) {
      recover_round(r, hit_state, block_touched);
    }
  }
  for (unsigned r = 0; r < ranks_.size(); ++r) {
    auto& rk = ranks_[r];
    if (rk.state != rank_state::up || rank_done(rk)) continue;
    try {
      collect_round(r, hit_state, block_touched);
    } catch (const wire_error&) {
      recover_round(r, hit_state, block_touched);
    }
  }
  // Whatever no surviving rank owns (degraded mid-round or earlier) is
  // walked locally; a healthy fleet leaves nothing and this is a no-op.
  cover_missing(hit_state, block_touched);

  if (!round_log_dropped_) {
    const std::size_t section_bytes = 4 + current_txs_.size() * 4;
    if (round_log_bytes_ + section_bytes > opt_.max_round_log_bytes) {
      round_log_.clear();
      round_log_bytes_ = 0;
      round_log_dropped_ = true;
    } else {
      std::vector<std::uint8_t> section(section_bytes);
      const auto m = static_cast<std::uint32_t>(current_txs_.size());
      std::memcpy(section.data(), &m, 4);
      std::memcpy(section.data() + 4, current_txs_.data(),
                  current_txs_.size() * 4);
      round_log_.push_back(std::move(section));
      round_log_bytes_ += section_bytes;
    }
  }
  ++round_index_;
  ++rounds_;
}

session_totals session::totals() const {
  session_totals t;
  t.peak_rss_kb_per_rank = rank_peak_rss_kb_;
  t.bytes_sent = bytes_sent_closed_;
  t.bytes_received = bytes_received_closed_;
  for (const auto& rk : ranks_) {
    t.bytes_sent += rk.ch.bytes_sent();
    t.bytes_received += rk.ch.bytes_received();
  }
  t.merge_wall_ms = merge_wall_ms_;
  t.trials = trials_;
  t.rounds = rounds_;
  t.rank_restarts = restarts_;
  t.reassigned_blocks = reassigned_blocks_;
  t.degraded_ranks = degraded_ranks_;
  t.recovery_wall_ms = recovery_wall_ms_;
  return t;
}

}  // namespace rn::dist
