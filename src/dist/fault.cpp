#include "dist/fault.h"

#include <cstdlib>

#include "common/check.h"

namespace rn::dist {

namespace {

/// "key=value" -> (key, value); throws on a missing '='.
std::pair<std::string, std::string> split_kv(const std::string& field,
                                             const std::string& entry) {
  const auto eq = field.find('=');
  RN_REQUIRE(eq != std::string::npos && eq > 0,
             "fault plan entry '" + entry + "': field '" + field +
                 "' is not key=value");
  return {field.substr(0, eq), field.substr(eq + 1)};
}

std::uint32_t parse_u32(const std::string& value, const std::string& entry) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(value.c_str(), &end, 10);
  RN_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
             "fault plan entry '" + entry + "': bad number '" + value + "'");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

fault_plan fault_plan::parse(const std::string& text) {
  fault_plan plan;
  std::size_t at = 0;
  while (at < text.size()) {
    const auto semi = text.find(';', at);
    const std::string entry =
        text.substr(at, semi == std::string::npos ? semi : semi - at);
    at = semi == std::string::npos ? text.size() : semi + 1;
    if (entry.empty()) continue;

    const auto colon = entry.find(':');
    RN_REQUIRE(colon != std::string::npos,
               "fault plan entry '" + entry +
                   "' needs kind:key=value,... (kinds: kill, drop, "
                   "truncate, delay)");
    const std::string kind = entry.substr(0, colon);
    fault_spec spec;
    if (kind == "kill") {
      spec.kind = fault_kind::kill;
    } else if (kind == "drop") {
      spec.kind = fault_kind::drop;
    } else if (kind == "truncate") {
      spec.kind = fault_kind::truncate;
    } else if (kind == "delay") {
      spec.kind = fault_kind::delay;
    } else {
      RN_REQUIRE(false, "fault plan entry '" + entry + "': unknown kind '" +
                            kind + "'");
    }

    bool have_rank = false, have_trial = false, have_round = false;
    std::size_t fat = colon + 1;
    while (fat <= entry.size()) {
      const auto comma = entry.find(',', fat);
      const std::string field = entry.substr(
          fat, comma == std::string::npos ? comma : comma - fat);
      fat = comma == std::string::npos ? entry.size() + 1 : comma + 1;
      if (field.empty()) continue;
      const auto [key, value] = split_kv(field, entry);
      if (key == "rank") {
        spec.rank = parse_u32(value, entry);
        have_rank = true;
      } else if (key == "trial") {
        spec.trial = parse_u32(value, entry);
        have_trial = true;
      } else if (key == "round") {
        spec.round = parse_u32(value, entry);
        have_round = true;
      } else if (key == "ms") {
        spec.arg_ms = parse_u32(value, entry);
      } else {
        RN_REQUIRE(false, "fault plan entry '" + entry + "': unknown key '" +
                              key + "'");
      }
    }
    RN_REQUIRE(have_rank && have_trial && have_round,
               "fault plan entry '" + entry +
                   "' needs rank=, trial= and round=");
    RN_REQUIRE(spec.kind != fault_kind::delay || spec.arg_ms > 0,
               "fault plan entry '" + entry + "': delay needs ms=");
    plan.specs_.push_back(spec);
  }
  return plan;
}

const fault_spec* fault_plan::take(unsigned rank, std::uint32_t trial,
                                   std::uint32_t round) {
  for (auto& spec : specs_) {
    if (spec.fired || spec.rank != rank || spec.trial != trial ||
        spec.round != round)
      continue;
    spec.fired = true;
    return &spec;
  }
  return nullptr;
}

}  // namespace rn::dist
