// Length-prefixed frame transport between the coordinator and worker ranks.
//
// One socketpair per rank; every message is [u32 length][u8 type][payload],
// length counting type + payload. Integers are little-endian (both ends are
// the same machine — the encoding is fixed anyway so byte counters and any
// future cross-machine transport mean the same thing).
//
// Every failure mode is a structured `wire_error` carrying a `wire_errc`,
// never undefined behavior and — when a deadline is armed — never a hang:
//
//   timeout  — the peer did not produce/consume bytes within the deadline
//              (a wedged rank becomes detectable instead of blocking forever)
//   closed   — EOF: at a frame boundary (peer exited between frames) or
//              mid-frame (peer died while writing; the channel is desynced
//              and must be discarded)
//   corrupt  — a frame that cannot be valid: zero-length body (no type
//              byte) or a length prefix above the configured cap
//   io       — errno-level read/write/poll failure (EPIPE included)
//
// All reads and writes go through poll()-based EINTR-safe loops; a deadline
// of 0 (the default) blocks indefinitely, which only the worker side uses
// (waiting for work is its idle state — a dead coordinator still turns into
// EOF). The coordinator arms per-phase deadlines (dist/session.cpp), so a
// rank that stops responding surfaces as `timeout` within that bound.
//
// Round-trip shape per stepped round (see session.cpp): the coordinator
// writes the transmitter frame to every rank and only then reads results
// back rank by rank. Workers never send unsolicited frames, so the pattern
// cannot deadlock: each socketpair carries at most one in-flight request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace rn::dist {

/// Frame types. Values are part of the wire format; append only.
enum class msg_type : std::uint8_t {
  setup = 1,         ///< coord -> worker: block range + topology spec
  setup_ack = 2,     ///< worker -> coord: node count + owned adjacency size
  round = 3,         ///< coord -> worker: this round's transmitter ids
  round_results = 4, ///< worker -> coord: per-owned-block touched listeners
  teardown = 5,      ///< coord -> worker: trial over, free the partition
  teardown_ack = 6,  ///< worker -> coord: peak RSS + byte counters
  shutdown = 7,      ///< coord -> worker: exit the worker loop
};

/// Structured failure category of a channel operation.
enum class wire_errc : std::uint8_t {
  timeout = 1,  ///< deadline expired before the frame completed
  closed = 2,   ///< EOF — peer gone (boundary or mid-frame)
  corrupt = 3,  ///< impossible frame (no type byte / oversized length)
  io = 4,       ///< errno-level failure
};

/// Thrown by channel send/recv; derives from contract_error so pre-existing
/// catch sites keep working, while the supervisor dispatches on kind().
class wire_error : public contract_error {
 public:
  wire_error(wire_errc kind, const std::string& what)
      : contract_error(what), kind_(kind) {}
  [[nodiscard]] wire_errc kind() const { return kind_; }

 private:
  wire_errc kind_;
};

/// Append-only little-endian payload builder.
struct wire_writer {
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u32(std::uint32_t v) {
    const std::size_t at = bytes.size();
    bytes.resize(at + 4);
    std::memcpy(bytes.data() + at, &v, 4);
  }
  void u64(std::uint64_t v) {
    const std::size_t at = bytes.size();
    bytes.resize(at + 8);
    std::memcpy(bytes.data() + at, &v, 8);
  }
  void raw(const void* data, std::size_t len) {
    const std::size_t at = bytes.size();
    bytes.resize(at + len);
    std::memcpy(bytes.data() + at, data, len);
  }
};

/// Sequential payload reader; throws contract_error on truncation.
class wire_reader {
 public:
  explicit wire_reader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// Borrows `len` raw bytes (valid while the frame buffer lives).
  [[nodiscard]] const std::uint8_t* raw(std::size_t len);
  [[nodiscard]] std::size_t remaining() const { return size_ - at_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

/// One end of a rank's socketpair. Owns the fd; counts bytes both ways
/// (reported in the timing sidecar).
class channel {
 public:
  channel() = default;
  explicit channel(int fd) : fd_(fd) {}
  ~channel() { close(); }
  channel(const channel&) = delete;
  channel& operator=(const channel&) = delete;
  channel(channel&& o) noexcept { *this = std::move(o); }
  channel& operator=(channel&& o) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool open() const { return fd_ >= 0; }
  void close();

  /// Whole-frame deadline applied independently to each send() and recv().
  /// 0 = block indefinitely (worker default). The supervisor arms per-phase
  /// values so a wedged peer surfaces as wire_errc::timeout, never a hang.
  void set_deadline_ms(unsigned ms) { deadline_ms_ = ms; }
  [[nodiscard]] unsigned deadline_ms() const { return deadline_ms_; }

  /// Largest frame body accepted by recv(); a length prefix above it is
  /// wire_errc::corrupt (a desynced or garbage peer would otherwise drive
  /// a multi-GB allocation). Defaults to the u32 maximum — real frames are
  /// bounded by the workload, tests lower it to pin the error path.
  void set_max_frame_bytes(std::uint32_t n) { max_frame_ = n; }

  /// Writes one frame (poll-gated, EINTR-safe, retrying partial writes).
  void send(msg_type type, const wire_writer& payload);
  /// Fault-injection only: writes a frame header promising the full payload
  /// but stops after `wire_bytes` payload bytes — the receiver sees a
  /// mid-frame EOF once this end closes. Models a peer dying mid-write.
  void send_truncated(msg_type type, const wire_writer& payload,
                      std::size_t wire_bytes);
  /// Reads one frame into `payload`; returns its type. Throws wire_error
  /// (timeout/closed/corrupt/io) — see the header comment.
  [[nodiscard]] msg_type recv(std::vector<std::uint8_t>& payload);

  [[nodiscard]] std::uint64_t bytes_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return received_; }

 private:
  int fd_ = -1;
  unsigned deadline_ms_ = 0;
  std::uint32_t max_frame_ = 0xffffffffu;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Creates a connected pair of channels (AF_UNIX socketpair): first for the
/// coordinator, second for the worker.
[[nodiscard]] std::pair<channel, channel> make_channel_pair();

}  // namespace rn::dist
