// Length-prefixed frame transport between the coordinator and worker ranks.
//
// One socketpair per rank; every message is [u32 length][u8 type][payload],
// length counting type + payload. Integers are little-endian (both ends are
// the same machine — the encoding is fixed anyway so byte counters and any
// future cross-machine transport mean the same thing). A short read — the
// peer closed mid-frame — throws rn::contract_error; the session wraps it
// with the rank id and the child's wait status so a crashed rank surfaces
// as one structured error instead of a hang.
//
// Round-trip shape per stepped round (see session.cpp): the coordinator
// writes the transmitter frame to every rank and only then reads results
// back rank by rank. Workers never send unsolicited frames, so the pattern
// cannot deadlock: each socketpair carries at most one in-flight request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace rn::dist {

/// Frame types. Values are part of the wire format; append only.
enum class msg_type : std::uint8_t {
  setup = 1,         ///< coord -> worker: rank geometry + topology spec
  setup_ack = 2,     ///< worker -> coord: node count + owned adjacency size
  round = 3,         ///< coord -> worker: this round's transmitter ids
  round_results = 4, ///< worker -> coord: per-owned-block touched listeners
  teardown = 5,      ///< coord -> worker: trial over, free the partition
  teardown_ack = 6,  ///< worker -> coord: peak RSS + byte counters
  shutdown = 7,      ///< coord -> worker: exit the worker loop
};

/// Append-only little-endian payload builder.
struct wire_writer {
  std::vector<std::uint8_t> bytes;

  void u32(std::uint32_t v) {
    const std::size_t at = bytes.size();
    bytes.resize(at + 4);
    std::memcpy(bytes.data() + at, &v, 4);
  }
  void u64(std::uint64_t v) {
    const std::size_t at = bytes.size();
    bytes.resize(at + 8);
    std::memcpy(bytes.data() + at, &v, 8);
  }
  void raw(const void* data, std::size_t len) {
    const std::size_t at = bytes.size();
    bytes.resize(at + len);
    std::memcpy(bytes.data() + at, data, len);
  }
};

/// Sequential payload reader; throws contract_error on truncation.
class wire_reader {
 public:
  explicit wire_reader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// Borrows `len` raw bytes (valid while the frame buffer lives).
  [[nodiscard]] const std::uint8_t* raw(std::size_t len);
  [[nodiscard]] std::size_t remaining() const { return size_ - at_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

/// One end of a rank's socketpair. Owns the fd; counts bytes both ways
/// (reported in the v5 timing sidecar).
class channel {
 public:
  channel() = default;
  explicit channel(int fd) : fd_(fd) {}
  ~channel() { close(); }
  channel(const channel&) = delete;
  channel& operator=(const channel&) = delete;
  channel(channel&& o) noexcept { *this = std::move(o); }
  channel& operator=(channel&& o) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool open() const { return fd_ >= 0; }
  void close();

  /// Writes one frame (retrying partial writes; throws on error/EPIPE).
  void send(msg_type type, const wire_writer& payload);
  /// Reads one frame into `payload`; returns its type. Throws
  /// contract_error on EOF or a short read (peer died mid-frame).
  [[nodiscard]] msg_type recv(std::vector<std::uint8_t>& payload);

  [[nodiscard]] std::uint64_t bytes_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return received_; }

 private:
  int fd_ = -1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Creates a connected pair of channels (AF_UNIX socketpair): first for the
/// coordinator, second for the worker.
[[nodiscard]] std::pair<channel, channel> make_channel_pair();

}  // namespace rn::dist
