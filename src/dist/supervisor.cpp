#include "dist/supervisor.h"

#include <algorithm>
#include <atomic>

namespace rn::dist {

unsigned backoff_delay_ms(const supervise_policy& policy, unsigned attempt) {
  const unsigned shift = std::min(attempt, 20u);  // no u32 overflow
  const std::uint64_t raw = std::uint64_t{policy.backoff_base_ms} << shift;
  return static_cast<unsigned>(
      std::min<std::uint64_t>(raw, policy.backoff_cap_ms));
}

namespace {
std::atomic<std::uint64_t> g_restarts{0};
std::atomic<std::uint64_t> g_reassigned{0};
std::atomic<std::uint64_t> g_degraded{0};
std::atomic<std::uint64_t> g_recovery_ms{0};
}  // namespace

recovery_snapshot recovery_counters() {
  recovery_snapshot s;
  s.rank_restarts = g_restarts.load(std::memory_order_relaxed);
  s.reassigned_blocks = g_reassigned.load(std::memory_order_relaxed);
  s.degraded_ranks = g_degraded.load(std::memory_order_relaxed);
  s.recovery_wall_ms = g_recovery_ms.load(std::memory_order_relaxed);
  return s;
}

void note_rank_restart() { g_restarts.fetch_add(1, std::memory_order_relaxed); }

void note_reassigned_blocks(std::uint64_t blocks) {
  g_reassigned.fetch_add(blocks, std::memory_order_relaxed);
}

void note_degraded_rank() {
  g_degraded.fetch_add(1, std::memory_order_relaxed);
}

void note_recovery_wall_ms(std::uint64_t ms) {
  g_recovery_ms.fetch_add(ms, std::memory_order_relaxed);
}

}  // namespace rn::dist
