// Undirected simple graph with CSR-style adjacency, the substrate every radio
// network in this library runs on. Nodes are dense ids [0, n).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace rn::graph {

/// Immutable undirected graph. Build with `builder`, then query.
class graph {
 public:
  graph() = default;

  [[nodiscard]] std::size_t node_count() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// Neighbors of v in ascending id order.
  [[nodiscard]] std::span<const node_id> neighbors(node_id v) const;

  [[nodiscard]] std::size_t degree(node_id v) const;

  [[nodiscard]] bool has_edge(node_id u, node_id v) const;

  /// All edges as (u, v) with u < v.
  [[nodiscard]] std::vector<std::pair<node_id, node_id>> edges() const;

  /// True iff every node is reachable from node 0.
  [[nodiscard]] bool connected() const;

  class builder {
   public:
    explicit builder(std::size_t n) : n_(n) {}
    /// Adds the undirected edge {u, v}; duplicates and self-loops ignored.
    void add_edge(node_id u, node_id v);
    [[nodiscard]] graph build() &&;

   private:
    std::size_t n_;
    std::vector<std::pair<node_id, node_id>> edges_;
  };

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<node_id> adjacency_;
};

}  // namespace rn::graph
