// Graphviz DOT export, used by examples to visualize GSTs (Figure 1 style).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rn::graph {

/// Per-node annotation for DOT output.
struct dot_node_style {
  std::string label;  ///< empty = node id
  std::string color;  ///< empty = default
};

/// Highlighted (directed) edges drawn in bold on top of the base graph.
struct dot_highlight_edge {
  node_id from = 0;
  node_id to = 0;
  std::string color = "green";
};

[[nodiscard]] std::string to_dot(const graph& g,
                                 const std::vector<dot_node_style>& styles = {},
                                 const std::vector<dot_highlight_edge>& tree = {});

}  // namespace rn::graph
