// Breadth-first search utilities: levels, parents, diameter.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rn::graph {

/// Result of a BFS from a single source.
struct bfs_result {
  std::vector<level_t> level;   ///< hop distance from source; no_level if unreachable
  std::vector<node_id> parent;  ///< BFS parent (min-id among candidates); no_node for source/unreachable
  level_t max_level = 0;        ///< eccentricity of the source
};

/// BFS over the whole graph from `source`.
[[nodiscard]] bfs_result bfs(const graph& g, node_id source);

/// BFS restricted to nodes with `mask[v] == true` (used for ring subgraphs);
/// `sources` all start at level 0.
[[nodiscard]] bfs_result bfs_multi(const graph& g,
                                   const std::vector<node_id>& sources,
                                   const std::vector<char>* mask = nullptr);

/// Exact diameter (max eccentricity); O(n * m), fine for test-sized graphs.
[[nodiscard]] level_t diameter(const graph& g);

}  // namespace rn::graph
