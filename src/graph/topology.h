// Declarative topology specs: workloads name their graph family as data.
//
// A `topology_spec` is {kind, ordered params, seed}; `build_topology` resolves
// the kind through a string-keyed registry of generator adapters wrapping
// everything in graph/generators.h. Specs print to a canonical
// "kind:param=value,..." form (stable across a parse round-trip), so the exact
// graph family of every scenario lands in the results JSON and on the CLI
// (`bench_suite --topology layered:depth=12,width=8`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/registry.h"
#include "graph/graph.h"

namespace rn::graph {

/// A graph family member as a value: generator kind + numeric parameters.
struct topology_spec {
  std::string kind;  ///< registry key, e.g. "layered", "unit_disk", "power_law"
  /// Ordered (name, value) pairs; unknown names are rejected at build time.
  std::vector<std::pair<std::string, double>> params;
  /// Generator seed for the random families (ignored by deterministic ones).
  /// Experiment runners overwrite this per trial from the trial's rng stream.
  std::uint64_t seed = 1;

  /// Value of `name`, or `fallback` if the spec does not set it.
  [[nodiscard]] double param(std::string_view name, double fallback) const;
  [[nodiscard]] bool has_param(std::string_view name) const;
  /// Sets `name` to `value` (appends if new, overwrites in place otherwise).
  void set_param(std::string_view name, double value);

  /// Canonical "kind:param=value,..." text form (no seed; the seed is a
  /// per-trial execution detail, not part of the family identity).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const topology_spec&, const topology_spec&) = default;
};

/// Builds one member of the family; throws contract_error on bad params.
using topology_generator = std::function<graph(const topology_spec&)>;

/// Process-wide kind -> generator table. The builtin kinds are registered on
/// first access; custom families can be added at runtime (kinds must be
/// unique).
class topology_registry {
 public:
  static topology_registry& instance();

  struct entry {
    std::string kind;
    std::string params_help;  ///< e.g. "depth, width, edge_prob, intra_prob"
    topology_generator make;
  };

  void add(entry e) { table_.add(std::move(e)); }
  [[nodiscard]] const entry* find(std::string_view kind) const {
    return table_.find(kind);
  }
  /// Registration order.
  [[nodiscard]] std::vector<std::string> kinds() const {
    return table_.keys();
  }
  [[nodiscard]] std::string kinds_joined() const {
    return table_.keys_joined();
  }

 private:
  topology_registry();
  keyed_registry<entry, &entry::kind> table_{"topology kind"};
};

/// Resolves `spec.kind` through the registry and builds the graph.
/// Deterministic: equal specs (including seed) yield identical graphs.
/// Throws contract_error for an unknown kind or invalid parameters.
[[nodiscard]] graph build_topology(const topology_spec& spec);

/// Parses the canonical text form, e.g. "layered:depth=12,width=8". Parameter
/// values must be plain decimal numbers. Throws contract_error on syntax
/// errors; kind existence is checked later, at build time.
[[nodiscard]] topology_spec parse_topology_spec(std::string_view text);

}  // namespace rn::graph
