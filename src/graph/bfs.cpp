#include "graph/bfs.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace rn::graph {

bfs_result bfs(const graph& g, node_id source) {
  return bfs_multi(g, {source});
}

bfs_result bfs_multi(const graph& g, const std::vector<node_id>& sources,
                     const std::vector<char>* mask) {
  const std::size_t n = g.node_count();
  bfs_result out;
  out.level.assign(n, no_level);
  out.parent.assign(n, no_node);
  std::deque<node_id> queue;
  for (node_id s : sources) {
    RN_REQUIRE(s < n, "BFS source out of range");
    RN_REQUIRE(mask == nullptr || (*mask)[s], "BFS source excluded by mask");
    if (out.level[s] == no_level) {
      out.level[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const node_id u = queue.front();
    queue.pop_front();
    out.max_level = std::max(out.max_level, out.level[u]);
    for (node_id v : g.neighbors(u)) {
      if (mask != nullptr && !(*mask)[v]) continue;
      if (out.level[v] == no_level) {
        out.level[v] = out.level[u] + 1;
        out.parent[v] = u;
        queue.push_back(v);
      } else if (out.level[v] == out.level[u] + 1 && out.parent[v] != no_node &&
                 u < out.parent[v]) {
        out.parent[v] = u;  // deterministic min-id parent
      }
    }
  }
  return out;
}

level_t diameter(const graph& g) {
  level_t best = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    const auto r = bfs(g, v);
    best = std::max(best, r.max_level);
  }
  return best;
}

}  // namespace rn::graph
