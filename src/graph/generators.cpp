#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace rn::graph {

using detail::bernoulli_indices;

graph path(std::size_t n) {
  RN_REQUIRE(n >= 1, "path needs >= 1 node");
  graph::builder b(n);
  for (node_id i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

graph cycle(std::size_t n) {
  RN_REQUIRE(n >= 3, "cycle needs >= 3 nodes");
  graph::builder b(n);
  for (node_id i = 0; i < n; ++i)
    b.add_edge(i, static_cast<node_id>((i + 1) % n));
  return std::move(b).build();
}

graph star(std::size_t n) {
  RN_REQUIRE(n >= 2, "star needs >= 2 nodes");
  graph::builder b(n);
  for (node_id i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

graph complete(std::size_t n) {
  RN_REQUIRE(n >= 1, "complete graph needs >= 1 node");
  graph::builder b(n);
  for (node_id i = 0; i < n; ++i)
    for (node_id j = i + 1; j < n; ++j) b.add_edge(i, j);
  return std::move(b).build();
}

graph grid(std::size_t rows, std::size_t cols) {
  RN_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  graph::builder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<node_id>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

graph binary_tree(std::size_t n) {
  RN_REQUIRE(n >= 1, "tree needs >= 1 node");
  graph::builder b(n);
  for (node_id i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return std::move(b).build();
}

graph caterpillar(std::size_t spine, std::size_t legs) {
  RN_REQUIRE(spine >= 1, "caterpillar needs a spine");
  const std::size_t n = spine * (1 + legs);
  graph::builder b(n);
  for (node_id i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  node_id next = static_cast<node_id>(spine);
  for (node_id s = 0; s < spine; ++s)
    for (std::size_t l = 0; l < legs; ++l) b.add_edge(s, next++);
  return std::move(b).build();
}

graph random_layered(const layered_options& opt) {
  RN_REQUIRE(opt.depth >= 1 && opt.width >= 1, "layered graph dimensions");
  const std::size_t n = 1 + opt.depth * opt.width;
  graph::builder b(n);
  for_each_layered_edge(opt, [&](node_id u, node_id v) { b.add_edge(u, v); });
  return std::move(b).build();
}

graph random_gnp_connected(std::size_t n, double p, std::uint64_t seed) {
  RN_REQUIRE(n >= 1, "gnp needs >= 1 node");
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    rng r(seed + attempt * 0x51ed2701ULL);
    graph::builder b(n);
    for (node_id i = 0; i < n; ++i)
      bernoulli_indices(r, n - i - 1, p, [&](std::size_t j) {
        b.add_edge(i, static_cast<node_id>(i + 1 + j));
      });
    graph g = std::move(b).build();
    if (g.connected()) return g;
  }
  RN_REQUIRE(false, "G(n,p) never connected; p too small");
  return {};
}

graph random_unit_disk(std::size_t n, double radius, std::uint64_t seed) {
  RN_REQUIRE(n >= 1 && radius > 0, "unit disk parameters");
  // Any cell width >= radius means an edge spans at most one cell boundary
  // per axis, so scanning the 3x3 neighborhood finds exactly the brute-force
  // edge set while only the points draw randomness. The grid is clamped to
  // ~sqrt(n) cells per axis so memory stays O(n) at any radius.
  const double min_width = 1.0 / (std::sqrt(static_cast<double>(n)) + 1.0);
  const double cell_width = std::max(radius, min_width);
  const std::size_t cells =
      cell_width >= 1.0 ? 1 : static_cast<std::size_t>(1.0 / cell_width) + 1;
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    rng r(seed + attempt * 0x9d5f3ULL);
    std::vector<std::pair<double, double>> pts(n);
    for (auto& pt : pts) pt = {r.uniform01(), r.uniform01()};
    auto cell_of = [&](double x) {
      auto c = static_cast<std::size_t>(x / cell_width);
      return c >= cells ? cells - 1 : c;
    };
    std::vector<std::vector<node_id>> grid_cells(cells * cells);
    for (node_id i = 0; i < n; ++i)
      grid_cells[cell_of(pts[i].first) * cells + cell_of(pts[i].second)]
          .push_back(i);
    graph::builder b(n);
    for (node_id i = 0; i < n; ++i) {
      const std::size_t cx = cell_of(pts[i].first);
      const std::size_t cy = cell_of(pts[i].second);
      for (std::size_t nx = cx > 0 ? cx - 1 : 0;
           nx <= (cx + 1 < cells ? cx + 1 : cells - 1); ++nx) {
        for (std::size_t ny = cy > 0 ? cy - 1 : 0;
             ny <= (cy + 1 < cells ? cy + 1 : cells - 1); ++ny) {
          for (const node_id j : grid_cells[nx * cells + ny]) {
            if (j <= i) continue;
            const double dx = pts[i].first - pts[j].first;
            const double dy = pts[i].second - pts[j].second;
            if (std::sqrt(dx * dx + dy * dy) <= radius) b.add_edge(i, j);
          }
        }
      }
    }
    graph g = std::move(b).build();
    if (g.connected()) return g;
  }
  RN_REQUIRE(false, "unit disk never connected; radius too small");
  return {};
}

graph power_law(std::size_t n, std::size_t edges_per_node,
                std::uint64_t seed) {
  RN_REQUIRE(n >= 2 && edges_per_node >= 1, "power law parameters");
  rng r(seed);
  graph::builder b(n);
  // One entry per edge endpoint: sampling it uniformly is sampling a node
  // with probability proportional to degree (the classic BA list trick).
  std::vector<node_id> endpoints;
  endpoints.reserve(2 * edges_per_node * n);
  std::vector<node_id> chosen;
  for (node_id v = 1; v < n; ++v) {
    const std::size_t m = std::min<std::size_t>(edges_per_node, v);
    chosen.clear();
    if (m == v) {
      for (node_id u = 0; u < v; ++u) chosen.push_back(u);
    } else {
      for (std::size_t e = 0; e < m; ++e) {
        node_id pick = endpoints.empty() ? 0 : no_node;
        for (int tries = 0; tries < 64 && pick == no_node; ++tries) {
          const node_id cand = endpoints[r.uniform(endpoints.size())];
          if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end())
            pick = cand;
        }
        if (pick == no_node)  // pathological rejection streak: first unused id
          for (node_id u = 0; u < v && pick == no_node; ++u)
            if (std::find(chosen.begin(), chosen.end(), u) == chosen.end())
              pick = u;
        chosen.push_back(pick);
      }
    }
    for (const node_id u : chosen) {
      b.add_edge(v, u);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  return std::move(b).build();
}

graph clique_chain(std::size_t cliques, std::size_t clique_size) {
  RN_REQUIRE(cliques >= 1 && clique_size >= 1, "clique chain parameters");
  const std::size_t n = cliques * clique_size;
  graph::builder b(n);
  auto id = [clique_size](std::size_t c, std::size_t i) {
    return static_cast<node_id>(c * clique_size + i);
  };
  for (std::size_t c = 0; c < cliques; ++c) {
    for (std::size_t i = 0; i < clique_size; ++i)
      for (std::size_t j = i + 1; j < clique_size; ++j)
        b.add_edge(id(c, i), id(c, j));
    if (c + 1 < cliques)
      b.add_edge(id(c, clique_size - 1), id(c + 1, 0));
  }
  return std::move(b).build();
}

graph dumbbell(std::size_t side, std::size_t bridge_len) {
  RN_REQUIRE(side >= 1, "dumbbell side size");
  const std::size_t n = 2 * side + bridge_len;
  graph::builder b(n);
  for (node_id i = 0; i < side; ++i)
    for (node_id j = i + 1; j < side; ++j) b.add_edge(i, j);
  const node_id right = static_cast<node_id>(side + bridge_len);
  for (node_id i = right; i < n; ++i)
    for (node_id j = i + 1; j < n; ++j) b.add_edge(i, j);
  node_id prev = side - 1;
  for (std::size_t i = 0; i < bridge_len; ++i) {
    const node_id mid = static_cast<node_id>(side + i);
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, right);
  return std::move(b).build();
}

}  // namespace rn::graph
