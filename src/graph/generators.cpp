#include "graph/generators.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace rn::graph {

graph path(std::size_t n) {
  RN_REQUIRE(n >= 1, "path needs >= 1 node");
  graph::builder b(n);
  for (node_id i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

graph cycle(std::size_t n) {
  RN_REQUIRE(n >= 3, "cycle needs >= 3 nodes");
  graph::builder b(n);
  for (node_id i = 0; i < n; ++i)
    b.add_edge(i, static_cast<node_id>((i + 1) % n));
  return std::move(b).build();
}

graph star(std::size_t n) {
  RN_REQUIRE(n >= 2, "star needs >= 2 nodes");
  graph::builder b(n);
  for (node_id i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

graph complete(std::size_t n) {
  RN_REQUIRE(n >= 1, "complete graph needs >= 1 node");
  graph::builder b(n);
  for (node_id i = 0; i < n; ++i)
    for (node_id j = i + 1; j < n; ++j) b.add_edge(i, j);
  return std::move(b).build();
}

graph grid(std::size_t rows, std::size_t cols) {
  RN_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  graph::builder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<node_id>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

graph binary_tree(std::size_t n) {
  RN_REQUIRE(n >= 1, "tree needs >= 1 node");
  graph::builder b(n);
  for (node_id i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  return std::move(b).build();
}

graph caterpillar(std::size_t spine, std::size_t legs) {
  RN_REQUIRE(spine >= 1, "caterpillar needs a spine");
  const std::size_t n = spine * (1 + legs);
  graph::builder b(n);
  for (node_id i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  node_id next = static_cast<node_id>(spine);
  for (node_id s = 0; s < spine; ++s)
    for (std::size_t l = 0; l < legs; ++l) b.add_edge(s, next++);
  return std::move(b).build();
}

graph random_layered(const layered_options& opt) {
  RN_REQUIRE(opt.depth >= 1 && opt.width >= 1, "layered graph dimensions");
  const std::size_t n = 1 + opt.depth * opt.width;
  rng r(opt.seed);
  graph::builder b(n);
  auto layer_node = [&](std::size_t layer, std::size_t i) -> node_id {
    // Layer 0 is just node 0.
    return layer == 0 ? 0
                      : static_cast<node_id>(1 + (layer - 1) * opt.width + i);
  };
  auto layer_size = [&](std::size_t layer) -> std::size_t {
    return layer == 0 ? 1 : opt.width;
  };
  for (std::size_t layer = 1; layer <= opt.depth; ++layer) {
    const std::size_t prev = layer_size(layer - 1);
    for (std::size_t i = 0; i < layer_size(layer); ++i) {
      const node_id v = layer_node(layer, i);
      // Guarantee one parent so BFS depth is exact.
      b.add_edge(v, layer_node(layer - 1, r.uniform(prev)));
      for (std::size_t j = 0; j < prev; ++j)
        if (r.bernoulli(opt.edge_prob))
          b.add_edge(v, layer_node(layer - 1, j));
      if (opt.intra_prob > 0)
        for (std::size_t j = i + 1; j < layer_size(layer); ++j)
          if (r.bernoulli(opt.intra_prob))
            b.add_edge(v, layer_node(layer, j));
    }
  }
  return std::move(b).build();
}

graph random_gnp_connected(std::size_t n, double p, std::uint64_t seed) {
  RN_REQUIRE(n >= 1, "gnp needs >= 1 node");
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    rng r(seed + attempt * 0x51ed2701ULL);
    graph::builder b(n);
    for (node_id i = 0; i < n; ++i)
      for (node_id j = i + 1; j < n; ++j)
        if (r.bernoulli(p)) b.add_edge(i, j);
    graph g = std::move(b).build();
    if (g.connected()) return g;
  }
  RN_REQUIRE(false, "G(n,p) never connected; p too small");
  return {};
}

graph random_unit_disk(std::size_t n, double radius, std::uint64_t seed) {
  RN_REQUIRE(n >= 1 && radius > 0, "unit disk parameters");
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    rng r(seed + attempt * 0x9d5f3ULL);
    std::vector<std::pair<double, double>> pts(n);
    for (auto& pt : pts) pt = {r.uniform01(), r.uniform01()};
    graph::builder b(n);
    for (node_id i = 0; i < n; ++i) {
      for (node_id j = i + 1; j < n; ++j) {
        const double dx = pts[i].first - pts[j].first;
        const double dy = pts[i].second - pts[j].second;
        if (std::sqrt(dx * dx + dy * dy) <= radius) b.add_edge(i, j);
      }
    }
    graph g = std::move(b).build();
    if (g.connected()) return g;
  }
  RN_REQUIRE(false, "unit disk never connected; radius too small");
  return {};
}

graph clique_chain(std::size_t cliques, std::size_t clique_size) {
  RN_REQUIRE(cliques >= 1 && clique_size >= 1, "clique chain parameters");
  const std::size_t n = cliques * clique_size;
  graph::builder b(n);
  auto id = [clique_size](std::size_t c, std::size_t i) {
    return static_cast<node_id>(c * clique_size + i);
  };
  for (std::size_t c = 0; c < cliques; ++c) {
    for (std::size_t i = 0; i < clique_size; ++i)
      for (std::size_t j = i + 1; j < clique_size; ++j)
        b.add_edge(id(c, i), id(c, j));
    if (c + 1 < cliques)
      b.add_edge(id(c, clique_size - 1), id(c + 1, 0));
  }
  return std::move(b).build();
}

graph dumbbell(std::size_t side, std::size_t bridge_len) {
  RN_REQUIRE(side >= 1, "dumbbell side size");
  const std::size_t n = 2 * side + bridge_len;
  graph::builder b(n);
  for (node_id i = 0; i < side; ++i)
    for (node_id j = i + 1; j < side; ++j) b.add_edge(i, j);
  const node_id right = static_cast<node_id>(side + bridge_len);
  for (node_id i = right; i < n; ++i)
    for (node_id j = i + 1; j < n; ++j) b.add_edge(i, j);
  node_id prev = side - 1;
  for (std::size_t i = 0; i < bridge_len; ++i) {
    const node_id mid = static_cast<node_id>(side + i);
    b.add_edge(prev, mid);
    prev = mid;
  }
  b.add_edge(prev, right);
  return std::move(b).build();
}

}  // namespace rn::graph
