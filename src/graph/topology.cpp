#include "graph/topology.h"

#include <charconv>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "graph/generators.h"

namespace rn::graph {

double topology_spec::param(std::string_view name, double fallback) const {
  for (const auto& [k, v] : params)
    if (k == name) return v;
  return fallback;
}

bool topology_spec::has_param(std::string_view name) const {
  for (const auto& [k, v] : params)
    if (k == name) return true;
  return false;
}

void topology_spec::set_param(std::string_view name, double value) {
  for (auto& [k, v] : params) {
    if (k == name) {
      v = value;
      return;
    }
  }
  params.emplace_back(std::string(name), value);
}

namespace {

std::string format_value(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9e15)
    return std::to_string(static_cast<long long>(v));
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  RN_REQUIRE(ec == std::errc(), "unformattable parameter value");
  return std::string(buf, ptr);
}

/// Reads params off a spec while checking every provided name is known, so a
/// typo ("with=8") fails instead of silently running the default.
class param_reader {
 public:
  explicit param_reader(const topology_spec& spec) : spec_(spec) {}

  double get(std::string_view name, double fallback) {
    known_.emplace_back(name);
    return spec_.param(name, fallback);
  }

  std::size_t count(std::string_view name, std::size_t fallback) {
    const double v = get(name, static_cast<double>(fallback));
    RN_REQUIRE(v >= 0 && v == std::floor(v),
               "topology param must be a non-negative integer: " +
                   std::string(name) + " in " + spec_.to_string());
    return static_cast<std::size_t>(v);
  }

  /// Call after all get()/count() calls: rejects unconsumed spec params.
  void finish() const {
    for (const auto& [k, v] : spec_.params) {
      bool ok = false;
      for (const auto& name : known_)
        if (name == k) ok = true;
      RN_REQUIRE(ok, "unknown parameter '" + k + "' for topology kind '" +
                         spec_.kind + "'");
    }
  }

 private:
  const topology_spec& spec_;
  std::vector<std::string> known_;
};

}  // namespace

std::string topology_spec::to_string() const {
  std::string out = kind;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ":" : ",";
    out += params[i].first;
    out += "=";
    out += format_value(params[i].second);
  }
  return out;
}

topology_registry& topology_registry::instance() {
  static topology_registry reg;
  return reg;
}

topology_registry::topology_registry() {
  auto wrap = [this](const char* kind, const char* params_help,
                     topology_generator make) {
    add({kind, params_help, std::move(make)});
  };
  wrap("path", "n", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 16);
    p.finish();
    return path(n);
  });
  wrap("cycle", "n", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 16);
    p.finish();
    return cycle(n);
  });
  wrap("star", "n", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 16);
    p.finish();
    return star(n);
  });
  wrap("complete", "n", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 16);
    p.finish();
    return complete(n);
  });
  wrap("grid", "rows, cols", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t rows = p.count("rows", 4);
    const std::size_t cols = p.count("cols", 4);
    p.finish();
    return grid(rows, cols);
  });
  wrap("binary_tree", "n", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 15);
    p.finish();
    return binary_tree(n);
  });
  wrap("caterpillar", "spine, legs", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t spine = p.count("spine", 8);
    const std::size_t legs = p.count("legs", 2);
    p.finish();
    return caterpillar(spine, legs);
  });
  wrap("layered", "depth, width, edge_prob, intra_prob",
       [](const topology_spec& s) {
         param_reader p(s);
         layered_options lo;
         lo.depth = p.count("depth", lo.depth);
         lo.width = p.count("width", lo.width);
         lo.edge_prob = p.get("edge_prob", lo.edge_prob);
         lo.intra_prob = p.get("intra_prob", lo.intra_prob);
         lo.seed = s.seed;
         p.finish();
         return random_layered(lo);
       });
  wrap("gnp", "n, p", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 32);
    const double prob = p.get("p", 0.2);
    p.finish();
    return random_gnp_connected(n, prob, s.seed);
  });
  wrap("unit_disk", "n, radius", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 40);
    const double radius = p.get("radius", 0.3);
    p.finish();
    return random_unit_disk(n, radius, s.seed);
  });
  wrap("power_law", "n, edges_per_node", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t n = p.count("n", 64);
    const std::size_t m = p.count("edges_per_node", 2);
    p.finish();
    return power_law(n, m, s.seed);
  });
  wrap("clique_chain", "cliques, clique_size", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t cliques = p.count("cliques", 4);
    const std::size_t clique_size = p.count("clique_size", 4);
    p.finish();
    return clique_chain(cliques, clique_size);
  });
  wrap("dumbbell", "side, bridge_len", [](const topology_spec& s) {
    param_reader p(s);
    const std::size_t side = p.count("side", 8);
    const std::size_t bridge_len = p.count("bridge_len", 2);
    p.finish();
    return dumbbell(side, bridge_len);
  });
}

graph build_topology(const topology_spec& spec) {
  const auto* e = topology_registry::instance().find(spec.kind);
  RN_REQUIRE(e != nullptr,
             "unknown topology kind '" + spec.kind + "' (known: " +
                 topology_registry::instance().kinds_joined() + ")");
  return e->make(spec);
}

topology_spec parse_topology_spec(std::string_view text) {
  RN_REQUIRE(!text.empty(), "empty topology spec");
  topology_spec spec;
  const std::size_t colon = text.find(':');
  spec.kind = std::string(text.substr(0, colon));
  RN_REQUIRE(!spec.kind.empty(), "topology spec has no kind: " +
                                     std::string(text));
  if (colon == std::string_view::npos) return spec;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    RN_REQUIRE(eq != std::string_view::npos && eq > 0,
               "bad topology parameter (want name=value): " +
                   std::string(item));
    const std::string name(item.substr(0, eq));
    const std::string value(item.substr(eq + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    RN_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
               "bad numeric value for topology parameter '" + name +
                   "': " + value);
    spec.set_param(name, v);
  }
  return spec;
}

}  // namespace rn::graph
