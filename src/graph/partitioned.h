// Partitioned CSR views: the graph representation that no longer assumes one
// resident adjacency.
//
// The round engine's shard plan — `kChannelContractBlocks` contiguous
// listener ranges balanced by adjacency volume — is computed here from the
// CSR row-offset prefix alone, so every process that can reproduce the degree
// sequence reproduces the *identical* plan without holding the graph. A
// `partitioned_view` is the in-edge CSR restricted to a contiguous range of
// those blocks: row u lists only the neighbors of u that fall inside the
// owned listener range. A worker rank holding blocks [first, last) can tally
// every transmitter's hits on its own listeners from its view alone, because
// rows are complete per listener even when they are partial per transmitter.
//
// Views can be built two ways: filtered from a resident `graph`, or streamed
// from an edge source (two deterministic passes; the full graph never
// materializes). The streamed path is what lets an n = 10^8 trial fit a rank
// in a few GB — see graph/generators.h `for_each_layered_edge`.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rn::graph {

/// The fixed listener partition: `bounds[b] .. bounds[b+1]` is block b.
/// Equality of plans across processes is what keeps the distributed
/// reception dispatch byte-identical to the single-process walk.
struct block_plan {
  std::vector<node_id> bounds;  ///< size blocks() + 1, ascending

  [[nodiscard]] unsigned blocks() const {
    return bounds.empty() ? 0 : static_cast<unsigned>(bounds.size() - 1);
  }
  [[nodiscard]] node_id block_begin(unsigned b) const { return bounds[b]; }
  [[nodiscard]] node_id block_end(unsigned b) const { return bounds[b + 1]; }
};

/// Computes the canonical degree-balanced plan from a CSR row-offset prefix
/// (`row_prefix[v]` = sum of degrees of nodes < v; size n + 1). This is the
/// exact algorithm the round engine has used since the channel-v1 contract:
/// block b starts at the first row whose prefix reaches `total * b / blocks`
/// (32-bit arithmetic on the prefix, monotone bounds). Any change here
/// re-baselines every erasure-channel result — bump kChannelContract instead.
[[nodiscard]] block_plan compute_block_plan(
    std::span<const std::uint32_t> row_prefix, unsigned blocks);

/// Calls `sink(u, v)` exactly once per undirected edge, in a deterministic
/// order. A build invokes the source several times (degree pass, count pass,
/// fill pass) — sources must replay identically, which the deterministic
/// generators do by reseeding.
using edge_sink = std::function<void(node_id, node_id)>;
using edge_source = std::function<void(const edge_sink&)>;

/// In-edge CSR for a contiguous block range of a plan: row u holds the
/// neighbors of u that lie inside [owned_begin(), owned_end()), ascending.
class partitioned_view {
 public:
  partitioned_view() = default;

  /// Filters a resident graph down to the view for blocks [first, last) of
  /// `plan`. The plan must have been computed from this graph's degrees.
  [[nodiscard]] static partitioned_view from_graph(const graph& g,
                                                   const block_plan& plan,
                                                   unsigned first_block,
                                                   unsigned last_block);

  /// Streams `edges` (several identical replays: degrees — which also fix
  /// the plan — then count and fill) and never materializes the full
  /// adjacency. `edges` must emit each undirected edge exactly once and
  /// replay identically across passes.
  [[nodiscard]] static partitioned_view from_edge_source(
      std::size_t node_count, const edge_source& edges, unsigned blocks,
      unsigned first_block, unsigned last_block);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const block_plan& plan() const { return plan_; }
  [[nodiscard]] unsigned first_block() const { return first_block_; }
  [[nodiscard]] unsigned last_block() const { return last_block_; }
  [[nodiscard]] node_id owned_begin() const {
    return plan_.bounds[first_block_];
  }
  [[nodiscard]] node_id owned_end() const { return plan_.bounds[last_block_]; }

  /// Restricted CSR row of u: neighbors of u inside the owned range.
  [[nodiscard]] std::span<const node_id> row(node_id u) const {
    return {adj_.data() + row_start_[u], adj_.data() + row_start_[u + 1]};
  }
  [[nodiscard]] const std::vector<std::uint32_t>& row_start() const {
    return row_start_;
  }
  [[nodiscard]] const std::vector<node_id>& adjacency() const { return adj_; }

 private:
  std::size_t node_count_ = 0;
  block_plan plan_;
  unsigned first_block_ = 0;
  unsigned last_block_ = 0;
  std::vector<std::uint32_t> row_start_;  ///< size node_count_ + 1
  std::vector<node_id> adj_;              ///< owned-range neighbors, sorted
};

}  // namespace rn::graph
