// Topology generators for the experiments. Each returns a connected graph.
//
// The workhorse for diameter-controlled experiments is `random_layered`: D+1
// layers of a given width with random inter-layer edges, so the BFS depth from
// node 0 is exactly D while the layer width controls contention (this is the
// shape the paper's lower-bound graphs and the classic Decay analyses use).
#pragma once

#include <cstdint>
#include <cstddef>

#include "graph/graph.h"

namespace rn::graph {

/// Simple path v0 - v1 - ... - v_{n-1}.
[[nodiscard]] graph path(std::size_t n);

/// Cycle over n >= 3 nodes.
[[nodiscard]] graph cycle(std::size_t n);

/// Star: node 0 is the hub of n-1 leaves.
[[nodiscard]] graph star(std::size_t n);

/// Complete graph on n nodes.
[[nodiscard]] graph complete(std::size_t n);

/// rows x cols grid; node (r, c) has id r*cols + c.
[[nodiscard]] graph grid(std::size_t rows, std::size_t cols);

/// Balanced binary tree on n nodes (heap indexing).
[[nodiscard]] graph binary_tree(std::size_t n);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
[[nodiscard]] graph caterpillar(std::size_t spine, std::size_t legs);

/// Parameters for `random_layered`.
struct layered_options {
  std::size_t depth = 8;       ///< number of hops from node 0 to the last layer
  std::size_t width = 8;       ///< nodes per intermediate layer
  double edge_prob = 0.5;      ///< probability of each cross-layer edge
  double intra_prob = 0.0;     ///< probability of each same-layer edge
  std::uint64_t seed = 1;
};

/// Layer 0 = {node 0}; layers 1..depth have `width` nodes each. Every node in
/// layer i+1 gets at least one neighbor in layer i (so eccentricity of node 0
/// is exactly `depth`), plus random cross/intra-layer edges.
[[nodiscard]] graph random_layered(const layered_options& opt);

/// Erdos-Renyi G(n, p) conditioned on connectivity: edges are resampled with
/// fresh seeds until the graph is connected (p should be above the threshold).
[[nodiscard]] graph random_gnp_connected(std::size_t n, double p,
                                         std::uint64_t seed);

/// Random unit-disk graph: n points uniform in [0,1]^2, edge iff distance <=
/// radius; resampled until connected. Edge discovery uses a radius-sized cell
/// grid, so generation is O(n + edges) expected — usable at n = 10^5+.
[[nodiscard]] graph random_unit_disk(std::size_t n, double radius,
                                     std::uint64_t seed);

/// Barabasi-Albert preferential attachment: nodes arrive one at a time and
/// attach `edges_per_node` edges to distinct earlier nodes, each chosen with
/// probability proportional to its current degree (node i < edges_per_node
/// attaches to all i earlier nodes). Connected by construction; the degree
/// distribution develops the power-law hub tail the sweep experiments need.
[[nodiscard]] graph power_law(std::size_t n, std::size_t edges_per_node,
                              std::uint64_t seed);

/// A chain of `cliques` cliques of size `clique_size`, consecutive cliques
/// joined by a single bridge edge. Diameter ~ 2 * cliques; heavy contention
/// inside cliques. Node 0 is in the first clique.
[[nodiscard]] graph clique_chain(std::size_t cliques, std::size_t clique_size);

/// Two cliques of size `side` joined by a path of length `bridge_len`.
[[nodiscard]] graph dumbbell(std::size_t side, std::size_t bridge_len);

}  // namespace rn::graph
