// Topology generators for the experiments. Each returns a connected graph.
//
// The workhorse for diameter-controlled experiments is `random_layered`: D+1
// layers of a given width with random inter-layer edges, so the BFS depth from
// node 0 is exactly D while the layer width controls contention (this is the
// shape the paper's lower-bound graphs and the classic Decay analyses use).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstddef>

#include "common/check.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace rn::graph {

namespace detail {

/// Calls fn(j) for every index j in [0, m) that passes an independent
/// Bernoulli(p) trial, using geometric skip-sampling: one uniform draw per
/// *success* (plus one trailing miss) instead of one per index. At the
/// sparse densities the scale sweeps use (p ~ 40/width) this makes G(n,p)
/// style generation O(edges) instead of O(pairs); at n = 10^5+ that is the
/// difference between milliseconds and seconds per trial.
template <class Fn>
void bernoulli_indices(rng& r, std::size_t m, double p, Fn&& fn) {
  if (m == 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (std::size_t j = 0; j < m; ++j) fn(j);
    return;
  }
  const double log_q = std::log1p(-p);  // < 0
  std::size_t j = 0;
  for (;;) {
    // Failures before the next success: floor(log(1-u) / log(1-p)).
    const double skip = std::floor(std::log1p(-r.uniform01()) / log_q);
    if (skip >= static_cast<double>(m - j)) return;
    j += static_cast<std::size_t>(skip);
    fn(j);
    if (++j >= m) return;
  }
}

}  // namespace detail

/// Simple path v0 - v1 - ... - v_{n-1}.
[[nodiscard]] graph path(std::size_t n);

/// Cycle over n >= 3 nodes.
[[nodiscard]] graph cycle(std::size_t n);

/// Star: node 0 is the hub of n-1 leaves.
[[nodiscard]] graph star(std::size_t n);

/// Complete graph on n nodes.
[[nodiscard]] graph complete(std::size_t n);

/// rows x cols grid; node (r, c) has id r*cols + c.
[[nodiscard]] graph grid(std::size_t rows, std::size_t cols);

/// Balanced binary tree on n nodes (heap indexing).
[[nodiscard]] graph binary_tree(std::size_t n);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
[[nodiscard]] graph caterpillar(std::size_t spine, std::size_t legs);

/// Parameters for `random_layered`.
struct layered_options {
  std::size_t depth = 8;       ///< number of hops from node 0 to the last layer
  std::size_t width = 8;       ///< nodes per intermediate layer
  double edge_prob = 0.5;      ///< probability of each cross-layer edge
  double intra_prob = 0.0;     ///< probability of each same-layer edge
  std::uint64_t seed = 1;
};

/// Layer 0 = {node 0}; layers 1..depth have `width` nodes each. Every node in
/// layer i+1 gets at least one neighbor in layer i (so eccentricity of node 0
/// is exactly `depth`), plus random cross/intra-layer edges.
[[nodiscard]] graph random_layered(const layered_options& opt);

/// Streams the edges of `random_layered(opt)` as `fn(u, v)` calls without
/// building the graph: same seed, same RNG draw order, and each undirected
/// edge emitted exactly once. The only duplicate `random_layered`'s builder
/// ever deduplicates is a Bernoulli cross-layer pick landing on the node
/// already chosen as the guaranteed parent, so skipping exactly that pick
/// here makes the stream duplicate-free while `random_layered` itself stays
/// a thin wrapper over this function (graph identity by construction).
/// Replaying with the same options replays the identical edge sequence,
/// which is what `partitioned_view::from_edge_source` requires.
template <class Fn>
void for_each_layered_edge(const layered_options& opt, Fn&& fn) {
  RN_REQUIRE(opt.depth >= 1 && opt.width >= 1, "layered graph dimensions");
  rng r(opt.seed);
  auto layer_node = [&](std::size_t layer, std::size_t i) -> node_id {
    // Layer 0 is just node 0.
    return layer == 0 ? 0
                      : static_cast<node_id>(1 + (layer - 1) * opt.width + i);
  };
  auto layer_size = [&](std::size_t layer) -> std::size_t {
    return layer == 0 ? 1 : opt.width;
  };
  for (std::size_t layer = 1; layer <= opt.depth; ++layer) {
    const std::size_t prev = layer_size(layer - 1);
    for (std::size_t i = 0; i < layer_size(layer); ++i) {
      const node_id v = layer_node(layer, i);
      // Guarantee one parent so BFS depth is exact.
      const std::size_t parent = r.uniform(prev);
      fn(v, layer_node(layer - 1, parent));
      detail::bernoulli_indices(r, prev, opt.edge_prob, [&](std::size_t j) {
        if (j != parent) fn(v, layer_node(layer - 1, j));
      });
      if (opt.intra_prob > 0)
        detail::bernoulli_indices(r, layer_size(layer) - i - 1, opt.intra_prob,
                                  [&](std::size_t j) {
                                    fn(v, layer_node(layer, i + 1 + j));
                                  });
    }
  }
}

/// Erdos-Renyi G(n, p) conditioned on connectivity: edges are resampled with
/// fresh seeds until the graph is connected (p should be above the threshold).
[[nodiscard]] graph random_gnp_connected(std::size_t n, double p,
                                         std::uint64_t seed);

/// Random unit-disk graph: n points uniform in [0,1]^2, edge iff distance <=
/// radius; resampled until connected. Edge discovery uses a radius-sized cell
/// grid, so generation is O(n + edges) expected — usable at n = 10^5+.
[[nodiscard]] graph random_unit_disk(std::size_t n, double radius,
                                     std::uint64_t seed);

/// Barabasi-Albert preferential attachment: nodes arrive one at a time and
/// attach `edges_per_node` edges to distinct earlier nodes, each chosen with
/// probability proportional to its current degree (node i < edges_per_node
/// attaches to all i earlier nodes). Connected by construction; the degree
/// distribution develops the power-law hub tail the sweep experiments need.
[[nodiscard]] graph power_law(std::size_t n, std::size_t edges_per_node,
                              std::uint64_t seed);

/// A chain of `cliques` cliques of size `clique_size`, consecutive cliques
/// joined by a single bridge edge. Diameter ~ 2 * cliques; heavy contention
/// inside cliques. Node 0 is in the first clique.
[[nodiscard]] graph clique_chain(std::size_t cliques, std::size_t clique_size);

/// Two cliques of size `side` joined by a path of length `bridge_len`.
[[nodiscard]] graph dumbbell(std::size_t side, std::size_t bridge_len);

}  // namespace rn::graph
