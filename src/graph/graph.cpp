#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace rn::graph {

std::span<const node_id> graph::neighbors(node_id v) const {
  RN_REQUIRE(v < node_count(), "node id out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t graph::degree(node_id v) const {
  RN_REQUIRE(v < node_count(), "node id out of range");
  return offsets_[v + 1] - offsets_[v];
}

bool graph::has_edge(node_id u, node_id v) const {
  if (u >= node_count() || v >= node_count()) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<node_id, node_id>> graph::edges() const {
  std::vector<std::pair<node_id, node_id>> out;
  out.reserve(edge_count());
  for (node_id u = 0; u < node_count(); ++u)
    for (node_id v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

bool graph::connected() const {
  if (node_count() == 0) return true;
  std::vector<char> seen(node_count(), 0);
  std::vector<node_id> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const node_id u = stack.back();
    stack.pop_back();
    for (node_id v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == node_count();
}

void graph::builder::add_edge(node_id u, node_id v) {
  RN_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  if (u == v) return;
  edges_.emplace_back(u, v);
}

graph graph::builder::build() && {
  // Deduplicate symmetric pairs.
  std::vector<std::pair<node_id, node_id>> sym;
  sym.reserve(edges_.size() * 2);
  for (auto [u, v] : edges_) {
    sym.emplace_back(u, v);
    sym.emplace_back(v, u);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  graph g;
  g.offsets_.assign(n_ + 1, 0);
  for (auto [u, v] : sym) g.offsets_[u + 1]++;
  for (std::size_t i = 1; i <= n_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.reserve(sym.size());
  for (auto [u, v] : sym) g.adjacency_.push_back(v);
  return g;
}

}  // namespace rn::graph
