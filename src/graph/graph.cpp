#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace rn::graph {

std::span<const node_id> graph::neighbors(node_id v) const {
  RN_REQUIRE(v < node_count(), "node id out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t graph::degree(node_id v) const {
  RN_REQUIRE(v < node_count(), "node id out of range");
  return offsets_[v + 1] - offsets_[v];
}

bool graph::has_edge(node_id u, node_id v) const {
  if (u >= node_count() || v >= node_count()) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<node_id, node_id>> graph::edges() const {
  std::vector<std::pair<node_id, node_id>> out;
  out.reserve(edge_count());
  for (node_id u = 0; u < node_count(); ++u)
    for (node_id v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

bool graph::connected() const {
  if (node_count() == 0) return true;
  std::vector<char> seen(node_count(), 0);
  std::vector<node_id> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const node_id u = stack.back();
    stack.pop_back();
    for (node_id v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == node_count();
}

void graph::builder::add_edge(node_id u, node_id v) {
  RN_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  if (u == v) return;
  edges_.emplace_back(u, v);
}

graph graph::builder::build() && {
  // Counting-sort scatter into per-row slots, then sort + dedup each row.
  // Rows stay sorted ascending (has_edge binary-searches them) but the
  // global O(E log E) comparison sort becomes O(E + sum deg log deg) — at
  // 10^6-node scale-sweep graphs that is most of the generation time.
  std::vector<std::size_t> start(n_ + 1, 0);
  for (auto [u, v] : edges_) {
    ++start[u + 1];
    ++start[v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) start[i] += start[i - 1];
  std::vector<node_id> adj(start[n_]);
  {
    std::vector<std::size_t> cur(start.begin(), start.end() - 1);
    for (auto [u, v] : edges_) {
      adj[cur[u]++] = v;
      adj[cur[v]++] = u;
    }
  }
  graph g;
  g.offsets_.assign(n_ + 1, 0);
  std::size_t w = 0;  // write cursor; trails every row start, so in-place
  for (std::size_t u = 0; u < n_; ++u) {
    const auto row_begin = adj.begin() + static_cast<std::ptrdiff_t>(start[u]);
    const auto row_end = adj.begin() + static_cast<std::ptrdiff_t>(start[u + 1]);
    std::sort(row_begin, row_end);
    const auto row_unique = std::unique(row_begin, row_end);
    for (auto it = row_begin; it != row_unique; ++it) adj[w++] = *it;
    g.offsets_[u + 1] = w;
  }
  adj.resize(w);
  adj.shrink_to_fit();
  g.adjacency_ = std::move(adj);
  return g;
}

}  // namespace rn::graph
