#include "graph/dot.h"

#include <set>
#include <sstream>

namespace rn::graph {

std::string to_dot(const graph& g, const std::vector<dot_node_style>& styles,
                   const std::vector<dot_highlight_edge>& tree) {
  std::ostringstream os;
  os << "graph G {\n  node [shape=circle];\n";
  for (node_id v = 0; v < g.node_count(); ++v) {
    os << "  n" << v;
    os << " [";
    if (v < styles.size() && !styles[v].label.empty())
      os << "label=\"" << styles[v].label << "\" ";
    else
      os << "label=\"" << v << "\" ";
    if (v < styles.size() && !styles[v].color.empty())
      os << "style=filled fillcolor=" << styles[v].color;
    os << "];\n";
  }
  std::set<std::pair<node_id, node_id>> tree_edges;
  for (const auto& e : tree) {
    tree_edges.insert({std::min(e.from, e.to), std::max(e.from, e.to)});
  }
  for (auto [u, v] : g.edges()) {
    if (tree_edges.count({u, v}) != 0) continue;
    os << "  n" << u << " -- n" << v << ";\n";
  }
  for (const auto& e : tree) {
    os << "  n" << e.from << " -- n" << e.to << " [color=" << e.color
       << " penwidth=2.5];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rn::graph
