#include "graph/partitioned.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace rn::graph {

block_plan compute_block_plan(std::span<const std::uint32_t> row_prefix,
                              unsigned blocks) {
  RN_REQUIRE(blocks >= 1, "block plan needs >= 1 block");
  RN_REQUIRE(!row_prefix.empty(), "block plan needs a row prefix");
  const std::size_t node_count = row_prefix.size() - 1;
  const std::size_t total = row_prefix[node_count];
  block_plan plan;
  plan.bounds.assign(blocks + 1, 0);
  plan.bounds[blocks] = static_cast<node_id>(node_count);
  for (unsigned b = 1; b < blocks; ++b) {
    const std::uint32_t target =
        static_cast<std::uint32_t>(total * b / blocks);
    const auto it =
        std::lower_bound(row_prefix.begin(), row_prefix.end(), target);
    auto v = static_cast<node_id>(it - row_prefix.begin());
    if (v > node_count) v = static_cast<node_id>(node_count);
    plan.bounds[b] = std::max(plan.bounds[b - 1], v);
  }
  return plan;
}

namespace {

void check_block_range(const block_plan& plan, unsigned first, unsigned last) {
  RN_REQUIRE(first < last && last <= plan.blocks(),
             "partitioned view needs a non-empty block range inside the plan");
}

}  // namespace

partitioned_view partitioned_view::from_graph(const graph& g,
                                              const block_plan& plan,
                                              unsigned first_block,
                                              unsigned last_block) {
  check_block_range(plan, first_block, last_block);
  partitioned_view pv;
  pv.node_count_ = g.node_count();
  pv.plan_ = plan;
  pv.first_block_ = first_block;
  pv.last_block_ = last_block;
  const node_id lo = pv.owned_begin();
  const node_id hi = pv.owned_end();

  pv.row_start_.assign(pv.node_count_ + 1, 0);
  std::size_t total = 0;
  for (node_id u = 0; u < pv.node_count_; ++u) {
    for (const node_id v : g.neighbors(u))
      if (v >= lo && v < hi) ++total;
    RN_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
               "partitioned adjacency too large for 32-bit offsets");
    pv.row_start_[u + 1] = static_cast<std::uint32_t>(total);
  }
  pv.adj_.reserve(total);
  // Graph rows are sorted ascending, so the filtered rows stay sorted.
  for (node_id u = 0; u < pv.node_count_; ++u)
    for (const node_id v : g.neighbors(u))
      if (v >= lo && v < hi) pv.adj_.push_back(v);
  return pv;
}

partitioned_view partitioned_view::from_edge_source(std::size_t node_count,
                                                    const edge_source& edges,
                                                    unsigned blocks,
                                                    unsigned first_block,
                                                    unsigned last_block) {
  RN_REQUIRE(node_count >= 1, "partitioned view needs >= 1 node");
  partitioned_view pv;
  pv.node_count_ = node_count;

  // Pass 1: the full degree prefix. This is what fixes the plan —
  // identically to a process holding the resident graph, because both run
  // compute_block_plan over the same prefix values.
  std::vector<std::uint32_t> prefix(node_count + 1, 0);
  std::uint64_t total = 0;
  edges([&](node_id u, node_id v) {
    RN_REQUIRE(u < node_count && v < node_count && u != v,
               "edge source emitted an invalid edge");
    prefix[u + 1] += 1;
    prefix[v + 1] += 1;
    total += 2;
  });
  RN_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
             "adjacency too large for 32-bit CSR offsets");
  for (std::size_t i = 0; i < node_count; ++i) prefix[i + 1] += prefix[i];
  pv.plan_ = compute_block_plan(prefix, blocks);
  check_block_range(pv.plan_, first_block, last_block);
  pv.first_block_ = first_block;
  pv.last_block_ = last_block;
  const node_id lo = pv.owned_begin();
  const node_id hi = pv.owned_end();

  // Restricted per-row sizes follow from the filtered full prefix only when
  // we re-count, so pass 2 counts owned-range entries per row, prefixes,
  // then pass 2b (same replay) fills. The fill scatters in emission order; a
  // final per-row sort restores the ascending-neighbor contract the row
  // walks rely on.
  pv.row_start_.assign(node_count + 1, 0);
  edges([&](node_id u, node_id v) {
    if (v >= lo && v < hi) pv.row_start_[u + 1] += 1;
    if (u >= lo && u < hi) pv.row_start_[v + 1] += 1;
  });
  std::uint32_t owned_total = 0;
  for (std::size_t i = 0; i < node_count; ++i) {
    owned_total += pv.row_start_[i + 1];
    pv.row_start_[i + 1] = owned_total;
  }
  pv.adj_.assign(owned_total, 0);
  std::vector<std::uint32_t> cursor(pv.row_start_.begin(),
                                    pv.row_start_.end() - 1);
  edges([&](node_id u, node_id v) {
    if (v >= lo && v < hi) pv.adj_[cursor[u]++] = v;
    if (u >= lo && u < hi) pv.adj_[cursor[v]++] = u;
  });
  for (std::size_t u = 0; u < node_count; ++u)
    std::sort(pv.adj_.begin() + pv.row_start_[u],
              pv.adj_.begin() + pv.row_start_[u + 1]);
  return pv;
}

}  // namespace rn::graph
