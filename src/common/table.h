// Aligned plain-text table printer used by the benchmark harnesses so every
// experiment emits a uniform, diffable report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rn {

/// Accumulates rows of strings and prints them with aligned columns.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rn
