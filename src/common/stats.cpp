#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rn {

void sample_stats::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double sample_stats::mean() const {
  RN_REQUIRE(!samples_.empty(), "mean of empty sample set");
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double sample_stats::stddev() const {
  RN_REQUIRE(!samples_.empty(), "stddev of empty sample set");
  if (samples_.size() == 1) return 0.0;
  const double m = mean();
  double s = 0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void sample_stats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double sample_stats::min() const {
  RN_REQUIRE(!samples_.empty(), "min of empty sample set");
  ensure_sorted();
  return sorted_.front();
}

double sample_stats::max() const {
  RN_REQUIRE(!samples_.empty(), "max of empty sample set");
  ensure_sorted();
  return sorted_.back();
}

stats_summary sample_stats::summarize() const {
  RN_REQUIRE(!samples_.empty(), "summarize of empty sample set");
  stats_summary s;
  s.count = count();
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.p10 = percentile(0.1);
  s.p50 = percentile(0.5);
  s.p90 = percentile(0.9);
  s.max = max();
  return s;
}

double sample_stats::percentile(double p) const {
  RN_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  RN_REQUIRE(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

}  // namespace rn
