#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace rn {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {
  RN_REQUIRE(!header_.empty(), "table needs at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
  RN_REQUIRE(cells.size() == header_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string text_table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule.append(width[c], '-');
    if (c + 1 != header_.size()) rule.append("  ");
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rn
