// Checked preconditions/invariants (I.5/I.7 style Expects/Ensures).
//
// RN_REQUIRE is always on: it guards public API contracts and protocol
// invariants whose violation indicates a bug, and throws rn::contract_error so
// tests can assert on misuse. RN_ASSERT compiles out in NDEBUG builds and is
// used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rn {

/// Thrown when a checked contract (RN_REQUIRE) is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace rn

#define RN_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rn::detail::contract_failure("RN_REQUIRE", #expr, __FILE__,        \
                                     __LINE__, (msg));                     \
  } while (0)

#ifdef NDEBUG
#define RN_ASSERT(expr) ((void)0)
#else
#define RN_ASSERT(expr)                                                    \
  do {                                                                     \
    if (!(expr))                                                           \
      ::rn::detail::contract_failure("RN_ASSERT", #expr, __FILE__,         \
                                     __LINE__, std::string{});             \
  } while (0)
#endif
