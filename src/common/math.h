// Small integer math helpers used throughout the protocol code.
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace rn {

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) {
  RN_REQUIRE(x >= 1, "ceil_log2 requires x >= 1");
  return x == 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::uint64_t x) {
  RN_REQUIRE(x >= 1, "floor_log2 requires x >= 1");
  return 63 - std::countl_zero(x);
}

/// The paper's ceil(log2 n) rank/probability range, but never 0 (so that
/// modulus arithmetic in schedules is well defined even for tiny n).
[[nodiscard]] constexpr int log_range(std::uint64_t n) {
  const int l = ceil_log2(n < 2 ? 2 : n);
  return l < 1 ? 1 : l;
}

/// Integer ceil division for non-negative operands.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  RN_REQUIRE(b > 0 && a >= 0, "ceil_div domain");
  return (a + b - 1) / b;
}

/// x^2, spelled out for readability in round-budget formulas.
[[nodiscard]] constexpr std::int64_t sq(std::int64_t x) { return x * x; }

}  // namespace rn
