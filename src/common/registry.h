// String-keyed, registration-ordered lookup table — the shared backbone of
// the topology and protocol registries (and any future one: schedules,
// noise models, ...). `Key` is a pointer to the entry's key member; `noun`
// names the key in error messages ("topology kind", "protocol id").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace rn {

template <typename Entry, std::string Entry::*Key>
class keyed_registry {
 public:
  explicit keyed_registry(const char* noun) : noun_(noun) {}

  void add(Entry e) {
    RN_REQUIRE(!(e.*Key).empty(),
               std::string(noun_) + " must be non-empty");
    RN_REQUIRE(find(e.*Key) == nullptr,
               "duplicate " + std::string(noun_) + ": " + e.*Key);
    entries_.push_back(std::move(e));
  }

  [[nodiscard]] const Entry* find(std::string_view key) const {
    for (const auto& e : entries_)
      if (e.*Key == key) return &e;
    return nullptr;
  }

  /// Registration order.
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.*Key);
    return out;
  }

  /// "a, b, c" — for unknown-key error messages.
  [[nodiscard]] std::string keys_joined() const {
    std::string out;
    for (const auto& e : entries_) {
      if (!out.empty()) out += ", ";
      out += e.*Key;
    }
    return out;
  }

 private:
  const char* noun_;
  std::vector<Entry> entries_;
};

}  // namespace rn
