// Fundamental identifier and index types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace rn {

/// Index of a node in a network; dense in [0, n).
using node_id = std::uint32_t;

/// A synchronous round number (rounds start at 0).
using round_t = std::int64_t;

/// BFS level (distance from the source in hops).
using level_t = std::int32_t;

/// GST rank; valid ranks are >= 1 and at most ceil(log2 n).
using rank_t = std::int32_t;

/// Sentinel for "no node" (e.g. the root's parent).
inline constexpr node_id no_node = std::numeric_limits<node_id>::max();

/// Sentinel for "level not yet assigned".
inline constexpr level_t no_level = -1;

/// Sentinel for "rank not yet assigned".
inline constexpr rank_t no_rank = -1;

}  // namespace rn
