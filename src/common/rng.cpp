#include "common/rng.h"

#include "common/check.h"

namespace rn {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64's finalizer (a strong 64-bit mixer), without the chain state.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

rng rng::for_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id through splitmix so nearby ids give unrelated states.
  std::uint64_t x = seed ^ (0xd1342543de82ef95ULL * (stream + 1));
  rng r;
  for (auto& s : r.s_) s = splitmix64(x);
  return r;
}

rng::result_type rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t rng::uniform(std::uint64_t bound) {
  RN_REQUIRE(bound > 0, "uniform bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t counter_word(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t k) {
  // Mix (seed, stream) first so nearby streams land far apart, then fold the
  // block counter in through a second full finalizer round.
  const std::uint64_t s =
      mix64(seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
  return mix64(s ^ (0xd1342543de82ef95ULL * (k + 1)));
}

bool rng::with_probability_pow2(int e) {
  RN_REQUIRE(e >= 0, "exponent must be non-negative");
  if (e == 0) return true;
  if (e >= 64) return false;
  // True iff the low e bits are all zero: probability exactly 2^-e.
  return ((*this)() & ((1ULL << e) - 1)) == 0;
}

}  // namespace rn
