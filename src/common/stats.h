// Tiny descriptive-statistics accumulator for benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace rn {

/// Fixed snapshot of a sample set, cheap to copy and serialize (the shape the
/// experiment engine's JSON output uses).
struct stats_summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p10 = 0;
  double p50 = 0;
  double p90 = 0;
  double max = 0;
};

/// Collects samples and reports mean / stddev / min / max / percentiles.
class sample_stats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  ///< sample standard deviation
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// p in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

  /// Snapshot of every statistic at once; requires count() > 0.
  [[nodiscard]] stats_summary summarize() const;

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

}  // namespace rn
