// Tiny descriptive-statistics accumulator for benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace rn {

/// Collects samples and reports mean / stddev / min / max / percentiles.
class sample_stats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  ///< sample standard deviation
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// p in [0,1]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

}  // namespace rn
