// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded via splitmix64. Every protocol node derives its own
// stream from (run seed, node id) so simulations are reproducible and
// insensitive to iteration order.
#pragma once

#include <cstdint>

namespace rn {

/// xoshiro256** engine; satisfies UniformRandomBitGenerator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// A stream that is statistically independent per (seed, stream) pair.
  static rng for_stream(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// True with probability 2^-e for e >= 0 (exact, no floating point).
  bool with_probability_pow2(int e);

 private:
  std::uint64_t s_[4];
};

/// Stateless counter-based stream: the k-th 64-bit block of the (seed,
/// stream) coin sequence. Unlike `rng`, there is no per-stream state to
/// store or advance — any block is addressable directly, which is what the
/// batched-coin protocol fast paths need (one `std::uint32_t` cursor per
/// node instead of a 32-byte engine). Blocks are statistically independent
/// across all three coordinates (two rounds of splitmix64-style finalizing).
[[nodiscard]] std::uint64_t counter_word(std::uint64_t seed,
                                         std::uint64_t stream,
                                         std::uint64_t k);

}  // namespace rn
