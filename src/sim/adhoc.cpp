#include "sim/adhoc.h"

#include <algorithm>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/api.h"
#include "graph/topology.h"

namespace rn::sim {

namespace {

std::vector<std::string> split_commas(std::string_view s) {
  std::vector<std::string> out;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    out.emplace_back(s.substr(0, comma));
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
  }
  return out;
}

struct parsed_sweep {
  std::string param;
  std::vector<double> values;
};

parsed_sweep parse_sweep(const std::string& sweep) {
  parsed_sweep out;
  if (sweep.empty()) return out;
  const std::size_t eq = sweep.find('=');
  RN_REQUIRE(eq != std::string::npos && eq > 0,
             "bad sweep (want PARAM=V1,V2,...): " + sweep);
  out.param = sweep.substr(0, eq);
  for (const auto& v : split_commas(std::string_view(sweep).substr(eq + 1))) {
    // Reuse the spec grammar ("x:param=value") so sweep values parse exactly
    // like topology parameters.
    const auto one = graph::parse_topology_spec("x:" + out.param + "=" + v);
    out.values.push_back(one.param(out.param, 0.0));
  }
  RN_REQUIRE(!out.values.empty(), "empty sweep value list");
  return out;
}

std::vector<std::string> validated_protocols(const adhoc_spec& spec) {
  std::vector<std::string> ids =
      split_commas(spec.protocols.empty() ? "decay" : spec.protocols);
  for (const auto& id : ids) {
    const auto* p = core::protocol_registry::instance().find(id);
    RN_REQUIRE(p != nullptr, "unknown protocol '" + id + "' (try --list)");
    RN_REQUIRE(spec.messages == 1 || p->multi_message,
               "protocol '" + id + "' is single-message; drop it or use"
               " messages = 1");
  }
  return ids;
}

}  // namespace

core::options adhoc_options(const adhoc_spec& spec) {
  if (spec.options.empty()) {
    core::options o;
    o.prm = core::params::fast();
    return o;
  }
  return core::parse_options(spec.options);
}

experiment make_adhoc_experiment(const adhoc_spec& spec) {
  RN_REQUIRE(!spec.topology.empty(), "ad-hoc workload needs a topology spec");
  RN_REQUIRE(spec.messages >= 1, "ad-hoc workload needs messages >= 1");
  const graph::topology_spec base = graph::parse_topology_spec(spec.topology);
  RN_REQUIRE(graph::topology_registry::instance().find(base.kind) != nullptr,
             "unknown topology kind '" + base.kind + "' (try --list)");

  const std::vector<std::string> protocol_ids = validated_protocols(spec);
  const parsed_sweep sweep = parse_sweep(spec.sweep);
  const core::options effective = adhoc_options(spec);

  experiment e;
  e.id = "adhoc";
  e.title = "ad-hoc workload: " + base.to_string();
  e.claim = "(user-defined workload; no registered paper claim)";
  e.profile = "fast";
  e.default_trials = 8;
  e.make_scenarios = [base, protocol_ids, sweep, effective,
                      messages = spec.messages] {
    std::vector<scenario> out;
    const std::size_t points = sweep.values.empty() ? 1 : sweep.values.size();
    for (std::size_t i = 0; i < points; ++i) {
      scenario sc;
      sc.topology = base;
      if (!sweep.values.empty()) {
        sc.topology.set_param(sweep.param, sweep.values[i]);
        // "x:param=value" with the canonical value formatting, minus "x:".
        sc.label = graph::topology_spec{"x", {{sweep.param, sweep.values[i]}}}
                       .to_string()
                       .substr(2);
        sc.params = {{sweep.param, sweep.values[i]}};
      } else {
        sc.label = base.kind;
      }
      sc.workload.messages = messages;
      sc.options = effective;
      for (const auto& id : protocol_ids) sc.probes.push_back({id, id});
      out.push_back(std::move(sc));
    }
    return out;
  };
  // One dry build of the first scenario (base spec + sweep param): a
  // mistyped parameter name fails here, before any trial runs. Later sweep
  // points only change this parameter's value, so one build checks them all.
  static_cast<void>(graph::build_topology(e.make_scenarios().front().topology));
  return e;
}

std::string canonical_run_key(const adhoc_spec& spec, std::size_t trials,
                              std::uint64_t seed) {
  RN_REQUIRE(!spec.topology.empty(), "ad-hoc workload needs a topology spec");
  graph::topology_spec base = graph::parse_topology_spec(spec.topology);
  // Author param order is semantically irrelevant (build_topology looks
  // params up by name), so the key sorts them — "grid:cols=5,rows=4" and
  // "grid:rows=4,cols=5" share one cache entry.
  std::sort(base.params.begin(), base.params.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string key = "topology=" + base.to_string();
  key += ";protocols=";
  const std::vector<std::string> ids = validated_protocols(spec);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) key += ",";
    key += ids[i];
  }
  const parsed_sweep sweep = parse_sweep(spec.sweep);
  key += ";sweep=";
  if (!sweep.values.empty()) {
    // Canonical value formatting via the spec printer, minus "x:param=".
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
      const std::string one =
          graph::topology_spec{"x", {{sweep.param, sweep.values[i]}}}
              .to_string();
      key += i == 0 ? one.substr(2) : "," + one.substr(one.find('=') + 1);
    }
  }
  key += ";messages=" + std::to_string(spec.messages);
  key += ";options=" + adhoc_options(spec).to_string();
  key += ";trials=" + std::to_string(trials);
  key += ";seed=" + std::to_string(seed);
  return key;
}

}  // namespace rn::sim
