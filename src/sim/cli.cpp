#include "sim/cli.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string_view>

#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::sim {

namespace {

void print_usage(std::ostream& os, const char* prog) {
  os << "usage: " << prog
     << " [--experiment ID|all] [--trials N] [--threads N] [--seed S]\n"
     << "       [--json PATH] [--list] [--help]\n\n"
     << "  --experiment, -e  experiment id (see --list), or 'all'\n"
     << "  --trials,     -t  Monte Carlo trials per scenario (default: per"
        " experiment)\n"
     << "  --threads,    -j  worker threads (default: hardware concurrency);\n"
     << "                    results are identical at every thread count\n"
     << "  --seed,       -s  run seed (default 1)\n"
     << "  --json            also write machine-readable results to PATH\n"
     << "  --timing          write a wall-clock/engine sidecar JSON to PATH\n"
     << "                    (results are mode- and thread-independent; only\n"
     << "                    this sidecar carries timing)\n"
     << "  --no-fast-forward cross-check mode: step every protocol round\n"
     << "                    instead of skipping idle ones (same results,\n"
     << "                    more wall-clock)\n"
     << "  --list            list registered experiments and exit\n";
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

}  // namespace

bool parse_cli(int argc, char** argv, cli_options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&](std::string_view flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      out.help = true;
    } else if (arg == "--list") {
      out.list = true;
    } else if (arg == "--experiment" || arg == "-e") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.experiment = v;
    } else if (arg == "--json") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.json_path = v;
    } else if (arg == "--timing") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.timing_path = v;
    } else if (arg == "--no-fast-forward") {
      out.no_fast_forward = true;
    } else if (arg == "--trials" || arg == "-t" || arg == "--threads" ||
               arg == "-j" || arg == "--seed" || arg == "-s") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      std::uint64_t n = 0;
      if (!parse_u64(v, n)) {
        std::cerr << "bad value for " << arg << ": " << v << "\n";
        return false;
      }
      if (arg == "--trials" || arg == "-t") {
        if (n == 0) {
          std::cerr << "--trials must be >= 1\n";
          return false;
        }
        out.trials = static_cast<std::size_t>(n);
      } else if (arg == "--threads" || arg == "-j") {
        out.threads = static_cast<unsigned>(n);
      } else {
        out.seed = n;
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

int run_suite(int argc, char** argv, const char* forced_experiment) {
  cli_options opt;
  if (forced_experiment != nullptr) opt.experiment = forced_experiment;
  if (!parse_cli(argc, argv, opt)) {
    print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (opt.help) {
    print_usage(std::cout, argv[0]);
    return 0;
  }

  const registry& reg = registry::instance();
  if (opt.list) {
    for (const auto& id : reg.ids()) {
      const experiment* e = reg.find(id);
      std::cout << id << "  " << e->title << "\n";
    }
    return 0;
  }
  if (opt.experiment.empty()) {
    std::cerr << "no experiment selected\n";
    print_usage(std::cerr, argv[0]);
    return 2;
  }

  std::vector<std::string> ids;
  if (opt.experiment == "all") {
    ids = reg.ids();
  } else {
    if (reg.find(opt.experiment) == nullptr) {
      std::cerr << "unknown experiment: " << opt.experiment
                << " (try --list)\n";
      return 2;
    }
    ids.push_back(opt.experiment);
  }

  set_fast_forward(!opt.no_fast_forward);

  json_value all = json_value::array();
  json_value timing_rows = json_value::array();
  double total_wall_ms = 0.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const experiment* e = reg.find(ids[i]);
    run_config cfg;
    cfg.trials = opt.trials != 0 ? opt.trials : e->default_trials;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;
    const engine_snapshot before = engine_counters();
    const auto t0 = std::chrono::steady_clock::now();
    const experiment_result result = run_experiment(*e, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const engine_snapshot after = engine_counters();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    total_wall_ms += wall_ms;
    if (i > 0) std::cout << "\n";
    print_report(std::cout, *e, result);
    if (!opt.json_path.empty()) all.push_back(to_json(*e, result));
    if (!opt.timing_path.empty()) {
      json_value row = json_value::object();
      row["id"] = e->id;
      row["wall_ms"] = wall_ms;
      row["stepped_rounds"] = after.stepped_rounds - before.stepped_rounds;
      row["skipped_rounds"] = after.skipped_rounds - before.skipped_rounds;
      timing_rows.push_back(std::move(row));
    }
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 1;
    }
    all.dump(out, 2);  // always an array, even for one experiment
    out << "\n";
  }
  if (!opt.timing_path.empty()) {
    json_value timing = json_value::object();
    timing["schema"] = "rn-bench-timing-v1";
    timing["fast_forward"] = !opt.no_fast_forward;
    timing["seed"] = opt.seed;
    timing["experiments"] = std::move(timing_rows);
    timing["total_wall_ms"] = total_wall_ms;
    std::ofstream out(opt.timing_path);
    if (!out) {
      std::cerr << "cannot write " << opt.timing_path << "\n";
      return 1;
    }
    timing.dump(out, 2);
    out << "\n";
  }
  return 0;
}

}  // namespace rn::sim
