#include "sim/cli.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "core/api.h"
#include "graph/topology.h"
#include "sim/adhoc.h"
#include "sim/engine.h"
#include "sim/experiment.h"

namespace rn::sim {

namespace {

void print_usage(std::ostream& os, const char* prog) {
  os << "usage: " << prog
     << " [--experiment ID|all] [--trials N] [--threads N] [--seed S]\n"
     << "       [--topology SPEC [--protocol IDS] [--sweep PARAM=V1,V2,..]"
        " [--messages K]]\n"
     << "       [--json PATH] [--list] [--help]\n\n"
     << "  --experiment, -e  experiment id (see --list), or 'all' (slow\n"
     << "                    scale sweeps are skipped; run them by id)\n"
     << "  --trials,     -t  Monte Carlo trials per scenario (default: per"
        " experiment)\n"
     << "  --threads,    -j  worker threads (default: hardware concurrency);\n"
     << "                    results are identical at every thread count\n"
     << "  --intra-trial-threads  shards per big-trial network: 0 = auto\n"
     << "                    (above a node-count threshold, borrow pool\n"
     << "                    capacity), 1 = serial, k = force k-thread teams;\n"
     << "                    results are identical at every value\n"
     << "  --seed,       -s  run seed (default 1)\n"
     << "  --topology        ad-hoc workload: topology spec"
        " kind:param=value,...\n"
     << "                    (e.g. layered:depth=12,width=8 — see --list)\n"
     << "  --protocol        comma-separated protocol ids for the ad-hoc\n"
     << "                    workload (default: decay)\n"
     << "  --sweep           PARAM=V1,V2,...: one scenario per value,\n"
     << "                    overriding PARAM of the --topology spec\n"
     << "  --messages        ad-hoc workload message count (default 1)\n"
     << "  --options         canonical run options opt-v1:key=value,... for\n"
     << "                    the ad-hoc workload (default: fast profile);\n"
     << "                    captures every determinism-relevant input\n"
     << "  --json            also write machine-readable results to PATH\n"
     << "  --timing          write a wall-clock/engine sidecar JSON to PATH\n"
     << "                    (results are mode- and thread-independent; only\n"
     << "                    this sidecar carries timing)\n"
     << "  --no-fast-forward cross-check mode: step every protocol round\n"
     << "                    instead of skipping idle ones (same results,\n"
     << "                    more wall-clock)\n"
     << "  --list            list experiments, topology kinds and protocols\n";
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// The shared ad-hoc builder's spec for --topology/--protocol/--sweep (the
/// broadcast service assembles the same struct from request JSON).
adhoc_spec to_adhoc_spec(const cli_options& opt) {
  adhoc_spec spec;
  spec.topology = opt.topology;
  spec.protocols = opt.protocols;
  spec.sweep = opt.sweep;
  spec.messages = opt.messages;
  spec.options = opt.options;
  return spec;
}

timing_extension g_timing_extension;

}  // namespace

void set_timing_extension(timing_extension fn) {
  g_timing_extension = std::move(fn);
}

bool parse_cli(int argc, char** argv, cli_options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&](std::string_view flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      out.help = true;
    } else if (arg == "--list") {
      out.list = true;
    } else if (arg == "--experiment" || arg == "-e") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.experiment = v;
    } else if (arg == "--json") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.json_path = v;
    } else if (arg == "--timing") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.timing_path = v;
    } else if (arg == "--topology") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.topology = v;
    } else if (arg == "--protocol") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.protocols = v;
    } else if (arg == "--sweep") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.sweep = v;
    } else if (arg == "--options") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      out.options = v;
    } else if (arg == "--no-fast-forward") {
      out.no_fast_forward = true;
    } else if (arg == "--trials" || arg == "-t" || arg == "--threads" ||
               arg == "-j" || arg == "--seed" || arg == "-s" ||
               arg == "--messages" || arg == "--intra-trial-threads") {
      const char* v = value(arg);
      if (v == nullptr) return false;
      std::uint64_t n = 0;
      if (!parse_u64(v, n)) {
        std::cerr << "bad value for " << arg << ": " << v << "\n";
        return false;
      }
      if (arg == "--trials" || arg == "-t") {
        if (n == 0) {
          std::cerr << "--trials must be >= 1\n";
          return false;
        }
        out.trials = static_cast<std::size_t>(n);
      } else if (arg == "--threads" || arg == "-j") {
        out.threads = static_cast<unsigned>(n);
      } else if (arg == "--intra-trial-threads") {
        out.intra_trial_threads = static_cast<unsigned>(n);
      } else if (arg == "--messages") {
        if (n == 0) {
          std::cerr << "--messages must be >= 1\n";
          return false;
        }
        out.messages = static_cast<std::size_t>(n);
      } else {
        out.seed = n;
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

int run_suite(int argc, char** argv) {
  cli_options opt;
  if (!parse_cli(argc, argv, opt)) {
    print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (opt.help) {
    print_usage(std::cout, argv[0]);
    return 0;
  }

  const registry& reg = registry::instance();
  if (opt.list) {
    std::cout << "experiments:\n";
    for (const auto& id : reg.ids()) {
      const experiment* e = reg.find(id);
      std::cout << "  " << id << "  " << e->title
                << (e->slow ? "  [slow: excluded from 'all']" : "") << "\n";
    }
    std::cout << "\ntopology kinds (--topology kind:param=value,...):\n";
    for (const auto& kind : graph::topology_registry::instance().kinds()) {
      const auto* t = graph::topology_registry::instance().find(kind);
      std::cout << "  " << kind << "  (" << t->params_help << ")\n";
    }
    std::cout << "\nprotocols (--protocol id[,id...]):\n";
    for (const auto& id : core::protocol_registry::instance().ids()) {
      const auto* p = core::protocol_registry::instance().find(id);
      std::string col = "  " + id + (p->multi_message ? " [multi]" : "");
      col.resize(std::max<std::size_t>(col.size(), 26), ' ');
      std::cout << col << p->summary << "\n";
    }
    return 0;
  }

  if (opt.topology.empty() &&
      (!opt.protocols.empty() || !opt.sweep.empty() || opt.messages != 1 ||
       !opt.options.empty())) {
    std::cerr << "--protocol/--sweep/--messages/--options define an ad-hoc"
                 " workload and require --topology\n";
    return 2;
  }

  experiment adhoc;
  std::vector<const experiment*> selected;
  if (!opt.topology.empty()) {
    if (!opt.experiment.empty()) {
      std::cerr << "--topology defines an ad-hoc workload; drop"
                   " --experiment\n";
      return 2;
    }
    try {
      adhoc = make_adhoc_experiment(to_adhoc_spec(opt));
    } catch (const std::exception& ex) {
      std::cerr << ex.what() << "\n";
      return 2;
    }
    selected.push_back(&adhoc);
  } else if (opt.experiment == "all") {
    for (const auto& id : reg.ids()) {
      const experiment* e = reg.find(id);
      if (e->slow) {
        std::cerr << "skipping " << id << " (slow; run with -e " << id
                  << ")\n";
        continue;
      }
      selected.push_back(e);
    }
  } else if (!opt.experiment.empty()) {
    const experiment* e = reg.find(opt.experiment);
    if (e == nullptr) {
      std::cerr << "unknown experiment: " << opt.experiment
                << " (try --list)\n";
      return 2;
    }
    selected.push_back(e);
  } else {
    std::cerr << "no experiment selected\n";
    print_usage(std::cerr, argv[0]);
    return 2;
  }

  set_fast_forward(!opt.no_fast_forward);
  // Worker capacity is shared between the scenario pool and intra-trial
  // shard teams; --intra-trial-threads picks how big trials use it (auto by
  // default — byte-identical results at every value, so purely a perf knob).
  radio::set_worker_budget(opt.threads);
  set_intra_trial_threads(opt.intra_trial_threads);

  json_value all = json_value::array();
  json_value timing_rows = json_value::array();
  double total_wall_ms = 0.0;
  // Per-run RSS peaks need kernel support for high-water-mark resets; when
  // absent the per-experiment field falls back to the monotone process peak
  // (the pre-v3 behavior) and the sidecar says so.
  bool rss_resets = true;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const experiment* e = selected[i];
    run_config cfg;
    cfg.trials = opt.trials != 0 ? opt.trials : e->default_trials;
    cfg.threads = opt.threads;
    cfg.seed = opt.seed;
    if (!opt.timing_path.empty()) rss_resets = reset_peak_rss() && rss_resets;
    const engine_snapshot before = engine_counters();
    const shard_snapshot shards_before = shard_counters();
    const auto t0 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) wall_ms measurement for the timing sidecar, never results JSON
    experiment_result result;
    try {
      result = run_experiment(*e, cfg);
    } catch (const std::exception& ex) {
      // Trial-time contract violations (e.g. a bad ad-hoc topology
      // parameter) surface as a clean error, not std::terminate.
      std::cerr << ex.what() << "\n";
      return 2;
    }
    const auto t1 = std::chrono::steady_clock::now();  // rn-lint: allow(R1) wall_ms measurement for the timing sidecar, never results JSON
    const engine_snapshot after = engine_counters();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    total_wall_ms += wall_ms;
    if (i > 0) std::cout << "\n";
    print_report(std::cout, *e, result);
    if (!opt.json_path.empty()) all.push_back(to_json(*e, result));
    if (!opt.timing_path.empty()) {
      json_value row = json_value::object();
      row["id"] = e->id;
      row["wall_ms"] = wall_ms;
      row["scenarios"] = result.scenarios.size();
      // Scenario-level parallelism evidence: the flattened queue offers
      // scenarios x trials units to resolve_threads, not trials.
      row["work_units"] = result.scenarios.size() * cfg.trials;
      row["workers"] = static_cast<std::uint64_t>(
          resolve_threads(cfg.threads, result.scenarios.size() * cfg.trials));
      row["stepped_rounds"] = after.stepped_rounds - before.stepped_rounds;
      row["skipped_rounds"] = after.skipped_rounds - before.skipped_rounds;
      // SIMD-vs-scalar row-walk split of the stepped rounds (v4): which
      // kernel tier actually resolved this experiment's channel work.
      const std::int64_t simd_rounds =
          after.simd_stepped_rounds - before.simd_stepped_rounds;
      row["simd_rounds"] = simd_rounds;
      row["scalar_rounds"] =
          (after.stepped_rounds - before.stepped_rounds) - simd_rounds;
      // Intra-trial backend evidence: rounds whose row walks were sharded
      // and the per-team-slot busy time they consumed (slot 0 = the
      // stepping thread). Deltas, so each experiment reports its own work.
      const shard_snapshot shards_after = shard_counters();
      row["parallel_rounds"] =
          shards_after.parallel_rounds - shards_before.parallel_rounds;
      json_value shard_ms = json_value::array();
      for (std::size_t s = 0; s < shards_after.busy_ns.size(); ++s) {
        const std::int64_t prev = s < shards_before.busy_ns.size()
                                      ? shards_before.busy_ns[s]
                                      : 0;
        shard_ms.push_back((shards_after.busy_ns[s] - prev) / 1e6);
      }
      row["shard_busy_ms"] = std::move(shard_ms);
      // This experiment's own peak (high-water mark since the reset above);
      // falls back to the monotone process maximum where resets are
      // unsupported — see "rss_resets" at the top level.
      row["peak_rss_kb"] = peak_rss_kb();
      timing_rows.push_back(std::move(row));
    }
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 1;
    }
    all.dump(out, 2);  // always an array, even for one experiment
    out << "\n";
  }
  if (!opt.timing_path.empty()) {
    json_value timing = json_value::object();
    // v3: per-experiment peak_rss_kb became a per-run high-water mark (reset
    // between experiments); the top-level field stays the monotone process
    // maximum, and rss_resets records whether the kernel honored the resets.
    // v4: adds the active SIMD kernel tier ("simd") plus per-experiment
    // simd_rounds/scalar_rounds — execution evidence only; the results JSON
    // stays byte-identical across tiers, like every other engine knob.
    timing["schema"] = "rn-bench-timing-v4";
    timing["simd"] = radio::to_string(radio::active_simd_level());
    timing["fast_forward"] = !opt.no_fast_forward;
    timing["seed"] = opt.seed;
    // 0 = hardware concurrency
    timing["threads"] = static_cast<std::uint64_t>(opt.threads);
    // 0 = auto (node-count threshold + borrowed pool capacity)
    timing["intra_trial_threads"] =
        static_cast<std::uint64_t>(opt.intra_trial_threads);
    timing["rss_resets"] = rss_resets;
    timing["experiments"] = std::move(timing_rows);
    timing["total_wall_ms"] = total_wall_ms;
    timing["peak_rss_kb"] = process_peak_rss_kb();
    // v5 (distributed runs only): the installed extension re-stamps the
    // schema and adds rank counters — see tools/rn_dist.
    if (g_timing_extension) g_timing_extension(timing);
    std::ofstream out(opt.timing_path);
    if (!out) {
      std::cerr << "cannot write " << opt.timing_path << "\n";
      return 1;
    }
    timing.dump(out, 2);
    out << "\n";
  }
  return 0;
}

}  // namespace rn::sim
