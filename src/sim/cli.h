// Command-line driver shared by bench_suite and the per-experiment binaries.
//
//   bench_suite --experiment e1 --trials 64 --threads 8 --seed 1 --json out.json
//   bench_suite --experiment all --trials 4 --json bench.json
//   bench_suite --list
//
// Experiments must already be registered (bench::register_all()).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/json.h"

namespace rn::sim {

/// Amends the timing sidecar object just before it is written — the seam a
/// frontend (tools/rn_dist) uses to add execution-backend evidence, e.g.
/// bumping the schema to rn-bench-timing-v5 and attaching per-rank RSS and
/// transport counters. Results JSON is never touched: like every other
/// engine knob, the distributed backend may only show up in the sidecar.
using timing_extension = std::function<void(json_value& timing)>;

/// Installs (empty clears) the process-wide sidecar amendment, applied by
/// run_suite after the v4 fields are in place.
void set_timing_extension(timing_extension fn);

struct cli_options {
  std::string experiment;    ///< id, or "all" (skips slow-labeled sweeps)
  std::size_t trials = 0;    ///< 0 = each experiment's default_trials
  unsigned threads = 0;      ///< 0 = hardware concurrency
  /// Shards per big-trial network: 0 = auto (networks above the intra-trial
  /// node threshold borrow worker capacity the trial pool is not using),
  /// 1 = serial row walks, k >= 2 = force k-thread teams. Results are
  /// byte-identical at every value.
  unsigned intra_trial_threads = 0;
  std::uint64_t seed = 1;
  std::string json_path;     ///< empty = no JSON output
  /// Wall-clock / engine-counter / peak-RSS sidecar (rn-bench-timing-v4:
  /// per-experiment peak_rss_kb is a per-run high-water mark where the
  /// kernel supports resets, with the process-lifetime maximum kept at the
  /// top level; v4 adds the active SIMD kernel tier and per-experiment
  /// simd/scalar round splits). Kept separate from --json so result files stay
  /// byte-identical across thread counts and execution modes; the CI perf
  /// gate trends this file.
  std::string timing_path;
  /// Disable fast-forward execution (cross-check mode: identical results,
  /// every protocol round resolved on the channel).
  bool no_fast_forward = false;
  /// Ad-hoc workload mode (no recompiling): "kind:param=value,..." topology,
  /// comma-separated protocol ids, and an optional "param=v1,v2,..." sweep
  /// that expands into one scenario per value. Exclusive with --experiment.
  std::string topology;
  std::string protocols;     ///< default "decay" when --topology is given
  std::string sweep;
  std::size_t messages = 1;  ///< workload message count for ad-hoc runs
  /// Canonical core::options string ("opt-v1:key=value,...") for ad-hoc
  /// runs; empty = the historical ad-hoc default (fast constants profile).
  std::string options;
  bool list = false;
  bool help = false;
};

/// Parses argv; returns false (with a message on stderr) on bad usage.
[[nodiscard]] bool parse_cli(int argc, char** argv, cli_options& out);

/// Full driver: parse, run, report. Returns a process exit code.
int run_suite(int argc, char** argv);

}  // namespace rn::sim
