// Process-wide execution-engine knobs and accounting for the bench harness.
//
// Experiments opt their protocol runners into fast-forward execution via
// `use_fast_forward()`; the bench CLI's `--no-fast-forward` flips the global
// default so a run can be cross-checked against naive stepping (results are
// bit-identical by contract — only the timing sidecar may differ).
//
// `engine_counters()` reads the radio engine's process-wide stepped/skipped
// round totals; the CLI reports per-experiment deltas in the timing sidecar
// (never in the results JSON, which must be independent of execution mode).
#pragma once

#include "radio/network.h"

namespace rn::sim {

/// Whether experiments should request fast-forward execution (default true).
[[nodiscard]] bool use_fast_forward();

/// Overrides the process-wide fast-forward default (bench CLI).
void set_fast_forward(bool on);

using engine_snapshot = radio::engine_totals;

/// Cumulative engine counters for this process (monotone; diff two snapshots
/// to attribute work to a run).
[[nodiscard]] engine_snapshot engine_counters();

/// Intra-trial parallelism knob: shards per big-trial network. 1 = serial
/// (default), 0 = auto — networks above the radio policy's node threshold
/// borrow whatever worker capacity the trial pool is not using, k >= 2
/// forces k-thread teams everywhere. Results are byte-identical at every
/// value; only the timing sidecar can tell the difference.
void set_intra_trial_threads(unsigned n);
[[nodiscard]] unsigned intra_trial_threads();

using shard_snapshot = radio::shard_totals;

/// Cumulative intra-trial shard counters/timing for this process (monotone;
/// diff two snapshots to attribute per-shard busy time to a run).
[[nodiscard]] shard_snapshot shard_counters();

/// Peak resident-set size of this process in kilobytes (0 where the platform
/// offers neither /proc nor getrusage). High-water mark since process start
/// *or since the last successful reset_peak_rss()* — the bench sidecar and
/// the service daemon reset between runs so each run reports its own peak
/// rather than the process-lifetime maximum.
[[nodiscard]] std::int64_t peak_rss_kb();

/// Best-effort reset of the kernel's peak-RSS accounting (Linux:
/// `echo 5 > /proc/self/clear_refs`). Returns false where unsupported, in
/// which case peak_rss_kb() remains a process-lifetime maximum. The
/// pre-reset peak is folded into process_peak_rss_kb() first, so the
/// monotone high-water mark never loses history.
bool reset_peak_rss();

/// Current resident-set size in kilobytes (Linux VmRSS; 0 where
/// unsupported). A gauge — the service exports it alongside the peaks.
[[nodiscard]] std::int64_t current_rss_kb();

/// Monotone process-lifetime peak RSS in kilobytes: the maximum
/// peak_rss_kb() ever observed, immune to reset_peak_rss(). This is the
/// number the top-level sidecar field and cross-run memory trending use.
[[nodiscard]] std::int64_t process_peak_rss_kb();

}  // namespace rn::sim
