// Ad-hoc declarative workloads assembled from the topology/protocol
// registries — the shared validation and experiment builder behind
// `bench_suite --topology ...` and the broadcast service's "run" requests.
//
// Everything is validated up front (unknown kinds, protocol ids, parameter
// names and malformed option strings throw contract_error before any trial
// runs), and every determinism-relevant input has a canonical text form, so
// two spec strings that canonicalize equal are guaranteed to produce
// byte-identical rn-bench-v2 results for equal (trials, seed) — the property
// the service result cache is keyed on.
#pragma once

#include <cstdint>
#include <string>

#include "sim/experiment.h"

namespace rn::sim {

/// One ad-hoc workload, exactly the CLI surface: a topology spec string, the
/// protocol probes to run on it, an optional one-parameter sweep, and the
/// canonical core::options string.
struct adhoc_spec {
  std::string topology;   ///< "kind:param=value,..." (required)
  std::string protocols;  ///< comma-separated protocol ids; empty = "decay"
  std::string sweep;      ///< "PARAM=V1,V2,..."; empty = single scenario
  std::size_t messages = 1;
  /// Canonical options string ("opt-v1:..."); empty = the ad-hoc default
  /// (core::options with the "fast" constants profile, the historical CLI
  /// behavior).
  std::string options;
};

/// The effective run options of `spec` (parsed `options`, or the ad-hoc
/// default when empty).
[[nodiscard]] core::options adhoc_options(const adhoc_spec& spec);

/// Validates `spec` against the registries and returns the synthetic "adhoc"
/// experiment (default_trials = 8). Throws contract_error on any unknown
/// kind/protocol/parameter, a single-message protocol with messages > 1, or
/// a malformed sweep/options string — always before any trial runs.
[[nodiscard]] experiment make_adhoc_experiment(const adhoc_spec& spec);

/// Canonical identity of one (spec, trials, seed) run:
/// "topology=<canon>;protocols=<ids>;sweep=<canon>;messages=K;"
/// "options=<canon opt-v1>;trials=N;seed=S". Topology, sweep values and
/// options are re-printed through their parsers, so textual variants of the
/// same workload collapse to one key. Requires a valid spec (throws where
/// make_adhoc_experiment would).
[[nodiscard]] std::string canonical_run_key(const adhoc_spec& spec,
                                            std::size_t trials,
                                            std::uint64_t seed);

}  // namespace rn::sim
