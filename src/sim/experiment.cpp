#include "sim/experiment.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"
#include "common/table.h"

namespace rn::sim {

const stats_summary* scenario_result::find(std::string_view name) const {
  for (const auto& m : summaries)
    if (m.name == name) return &m.stats;
  return nullptr;
}

std::vector<metric_summary> aggregate(const std::vector<metrics>& per_trial) {
  std::vector<std::string> order;
  std::vector<sample_stats> acc;
  for (const auto& m : per_trial) {
    for (const auto& [name, value] : m.items()) {
      std::size_t i = 0;
      while (i < order.size() && order[i] != name) ++i;
      if (i == order.size()) {
        order.push_back(name);
        acc.emplace_back();
      }
      acc[i].add(value);
    }
  }
  std::vector<metric_summary> out;
  out.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    out.push_back({order[i], acc[i].summarize()});
  return out;
}

experiment_result run_experiment(const experiment& e, const run_config& cfg) {
  RN_REQUIRE(static_cast<bool>(e.make_scenarios),
             "experiment has no scenario factory: " + e.id);
  experiment_result result;
  result.id = e.id;
  result.seed = cfg.seed;
  result.trials_requested = cfg.trials;

  const auto scenarios = e.make_scenarios();
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const scenario& sc = scenarios[s];
    run_config trial_cfg = cfg;
    if (sc.max_trials != 0 && trial_cfg.trials > sc.max_trials)
      trial_cfg.trials = sc.max_trials;
    trial_cfg.stream_base = static_cast<std::uint64_t>(s) << 32;

    const trial_results trials = run_trials(trial_cfg, sc.run);

    scenario_result sr;
    sr.label = sc.label;
    sr.params = sc.params;
    sr.trials = trial_cfg.trials;
    sr.summaries = aggregate(trials.per_trial);
    result.scenarios.push_back(std::move(sr));
  }
  return result;
}

namespace {

/// Metric column order: the experiment's explicit list, else first-seen union.
std::vector<std::string> metric_order(const experiment& e,
                                      const experiment_result& r) {
  if (!e.metric_columns.empty()) return e.metric_columns;
  std::vector<std::string> order;
  for (const auto& sr : r.scenarios)
    for (const auto& m : sr.summaries)
      if (std::find(order.begin(), order.end(), m.name) == order.end())
        order.push_back(m.name);
  return order;
}

std::string format_param(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9e15)
    return std::to_string(static_cast<long long>(v));
  return text_table::num(v, 2);
}

}  // namespace

void print_report(std::ostream& os, const experiment& e,
                  const experiment_result& r) {
  os << "==============================================================\n"
     << e.id << ": " << e.title << "\n"
     << e.claim << "\n"
     << "constants profile: " << e.profile << "   seed: " << r.seed
     << "   trials: " << r.trials_requested << "\n"
     << "==============================================================\n";

  const auto cols = metric_order(e, r);
  // Param columns: first-seen union (scenario groups may differ, e.g. E8).
  std::vector<std::string> param_cols;
  for (const auto& sr : r.scenarios)
    for (const auto& [name, value] : sr.params)
      if (std::find(param_cols.begin(), param_cols.end(), name) ==
          param_cols.end())
        param_cols.push_back(name);

  std::vector<std::string> header{"scenario"};
  for (const auto& p : param_cols) header.push_back(p);
  for (const auto& c : cols) header.push_back(c);
  header.push_back("trials");

  text_table table(header);
  for (const auto& sr : r.scenarios) {
    std::vector<std::string> row{sr.label};
    for (const auto& p : param_cols) {
      std::string cell = "-";
      for (const auto& [name, value] : sr.params)
        if (name == p) cell = format_param(value);
      row.push_back(std::move(cell));
    }
    for (const auto& c : cols) {
      const stats_summary* s = sr.find(c);
      row.push_back(s != nullptr ? text_table::num(s->mean) : "-");
    }
    row.push_back(std::to_string(sr.trials));
    table.add_row(std::move(row));
  }
  table.print(os);
  if (!e.notes.empty()) os << "\n" << e.notes << "\n";
}

json_value to_json(const experiment& e, const experiment_result& r) {
  json_value root = json_value::object();
  root["schema"] = "rn-bench-v1";
  root["experiment"] = r.id;
  root["title"] = e.title;
  root["claim"] = e.claim;
  root["profile"] = e.profile;
  root["seed"] = r.seed;
  root["trials"] = r.trials_requested;

  json_value scenarios = json_value::array();
  for (const auto& sr : r.scenarios) {
    json_value js = json_value::object();
    js["label"] = sr.label;
    json_value params = json_value::object();
    for (const auto& [name, value] : sr.params) params[name] = value;
    js["params"] = std::move(params);
    js["trials"] = sr.trials;
    json_value ms = json_value::object();
    for (const auto& m : sr.summaries) {
      json_value s = json_value::object();
      s["count"] = m.stats.count;
      s["mean"] = m.stats.mean;
      s["stddev"] = m.stats.stddev;
      s["min"] = m.stats.min;
      s["p10"] = m.stats.p10;
      s["p50"] = m.stats.p50;
      s["p90"] = m.stats.p90;
      s["max"] = m.stats.max;
      ms[m.name] = std::move(s);
    }
    js["metrics"] = std::move(ms);
    scenarios.push_back(std::move(js));
  }
  root["scenarios"] = std::move(scenarios);
  return root;
}

registry& registry::instance() {
  static registry r;
  return r;
}

void registry::add(experiment e) {
  RN_REQUIRE(!e.id.empty(), "experiment id must be non-empty");
  RN_REQUIRE(find(e.id) == nullptr, "duplicate experiment id: " + e.id);
  experiments_.push_back(std::move(e));
}

const experiment* registry::find(std::string_view id) const {
  for (const auto& e : experiments_)
    if (e.id == id) return &e;
  return nullptr;
}

std::vector<std::string> registry::ids() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(e.id);
  return out;
}

}  // namespace rn::sim
