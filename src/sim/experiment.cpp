#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>

#include "common/check.h"
#include "common/table.h"
#include "sim/engine.h"

namespace rn::sim {

const stats_summary* scenario_result::find(std::string_view name) const {
  for (const auto& m : summaries)
    if (m.name == name) return &m.stats;
  return nullptr;
}

std::vector<metric_summary> aggregate(const std::vector<metrics>& per_trial) {
  std::vector<std::string> order;
  std::vector<sample_stats> acc;
  for (const auto& m : per_trial) {
    for (const auto& [name, value] : m.items()) {
      std::size_t i = 0;
      while (i < order.size() && order[i] != name) ++i;
      if (i == order.size()) {
        order.push_back(name);
        acc.emplace_back();
      }
      acc[i].add(value);
    }
  }
  std::vector<metric_summary> out;
  out.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    out.push_back({order[i], acc[i].summarize()});
  return out;
}

namespace {

std::atomic<trial_graph_hook*> g_trial_hook{nullptr};

/// Pairs trial_begin with trial_end even when a probe throws.
struct trial_hook_scope {
  trial_graph_hook* hook;
  const graph::graph* g;
  trial_hook_scope(trial_graph_hook* h, const graph::topology_spec& spec,
                   const graph::graph& graph)
      : hook(h), g(&graph) {
    if (hook != nullptr) hook->trial_begin(spec, graph);
  }
  ~trial_hook_scope() {
    if (hook != nullptr) hook->trial_end(*g);
  }
};

}  // namespace

void set_trial_graph_hook(trial_graph_hook* hook) {
  g_trial_hook.store(hook, std::memory_order_release);
}

trial_graph_hook* get_trial_graph_hook() {
  return g_trial_hook.load(std::memory_order_acquire);
}

trial_fn make_trial(const scenario& sc) {
  if (sc.run) return sc.run;
  RN_REQUIRE(!sc.probes.empty(),
             "scenario '" + sc.label + "' has neither probes nor a trial fn");
  // Captured by value: the trial outlives the scenario list on the queue.
  return [topology = sc.topology, workload = sc.workload, options = sc.options,
          probes = sc.probes](std::size_t, rng& r) {
    graph::topology_spec spec = topology;
    spec.seed = r();
    const graph::graph g = graph::build_topology(spec);
    const trial_hook_scope hook_scope(get_trial_graph_hook(), spec, g);
    metrics m;
    for (const auto& p : probes) {
      core::options opt = options;
      opt.fast_forward = use_fast_forward();
      opt.seed = r();
      if (p.payload_size != 0) opt.payload_size = p.payload_size;
      if (p.message_seed != 0) opt.message_seed = p.message_seed;
      const core::broadcast_outcome out =
          core::run_broadcast(g, p.protocol, workload, opt);
      round_t setup = 0;
      if (!p.relay_phase.empty()) {
        for (const auto& [name, rounds] : out.base.phase_rounds)
          if (p.relay_phase != name) setup += rounds;
        if (!p.setup_metric.empty())
          m.set(p.setup_metric, static_cast<double>(setup));
      }
      m.set(p.metric,
            static_cast<double>(out.base.rounds_to_complete - setup));
      if (!p.completed_metric.empty())
        m.set(p.completed_metric, out.base.completed ? 1.0 : 0.0);
      if (!p.verified_metric.empty())
        m.set(p.verified_metric, out.payloads_verified ? 1.0 : 0.0);
    }
    return m;
  };
}

experiment_result run_experiment(const experiment& e, const run_config& cfg) {
  RN_REQUIRE(static_cast<bool>(e.make_scenarios),
             "experiment has no scenario factory: " + e.id);
  experiment_result result;
  result.id = e.id;
  result.seed = cfg.seed;
  result.trials_requested = cfg.trials;

  const auto scenarios = e.make_scenarios();
  std::vector<trial_fn> fns;
  fns.reserve(scenarios.size());
  for (const auto& sc : scenarios) fns.push_back(make_trial(sc));

  // Flatten scenarios x trials into one queue so one slow scenario cannot
  // serialize the experiment. Unit u = (s, t) keeps the historical stream
  // (s << 32) + t, so results are identical to the scenario-sequential runner
  // at every thread count.
  std::vector<std::vector<metrics>> per_trial(scenarios.size());
  for (auto& v : per_trial) v.resize(cfg.trials);
  run_parallel(scenarios.size() * cfg.trials, cfg.threads, [&](std::size_t u) {
    const std::size_t s = u / cfg.trials;
    const std::size_t t = u % cfg.trials;
    rng r = rng::for_stream(cfg.seed, (static_cast<std::uint64_t>(s) << 32) + t);
    per_trial[s][t] = fns[s](t, r);
  });

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    scenario_result sr;
    sr.label = scenarios[s].label;
    sr.params = scenarios[s].params;
    if (!scenarios[s].probes.empty() && !scenarios[s].run)
      sr.topology = scenarios[s].topology.to_string();
    sr.trials = cfg.trials;
    sr.summaries = aggregate(per_trial[s]);
    result.scenarios.push_back(std::move(sr));
  }
  return result;
}

namespace {

/// Metric column order: the experiment's explicit list, else first-seen union.
std::vector<std::string> metric_order(const experiment& e,
                                      const experiment_result& r) {
  if (!e.metric_columns.empty()) return e.metric_columns;
  std::vector<std::string> order;
  for (const auto& sr : r.scenarios)
    for (const auto& m : sr.summaries)
      if (std::find(order.begin(), order.end(), m.name) == order.end())
        order.push_back(m.name);
  return order;
}

std::string format_param(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9e15)
    return std::to_string(static_cast<long long>(v));
  return text_table::num(v, 2);
}

}  // namespace

void print_report(std::ostream& os, const experiment& e,
                  const experiment_result& r) {
  os << "==============================================================\n"
     << e.id << ": " << e.title << "\n"
     << e.claim << "\n"
     << "constants profile: " << e.profile << "   seed: " << r.seed
     << "   trials: " << r.trials_requested << "\n"
     << "==============================================================\n";

  const auto cols = metric_order(e, r);
  // Param columns: first-seen union (scenario groups may differ, e.g. E8).
  std::vector<std::string> param_cols;
  for (const auto& sr : r.scenarios)
    for (const auto& [name, value] : sr.params)
      if (std::find(param_cols.begin(), param_cols.end(), name) ==
          param_cols.end())
        param_cols.push_back(name);

  std::vector<std::string> header{"scenario"};
  for (const auto& p : param_cols) header.push_back(p);
  for (const auto& c : cols) header.push_back(c);
  header.push_back("trials");

  text_table table(header);
  for (const auto& sr : r.scenarios) {
    std::vector<std::string> row{sr.label};
    for (const auto& p : param_cols) {
      std::string cell = "-";
      for (const auto& [name, value] : sr.params)
        if (name == p) cell = format_param(value);
      row.push_back(std::move(cell));
    }
    for (const auto& c : cols) {
      const stats_summary* s = sr.find(c);
      row.push_back(s != nullptr ? text_table::num(s->mean) : "-");
    }
    row.push_back(std::to_string(sr.trials));
    table.add_row(std::move(row));
  }
  table.print(os);
  if (!e.notes.empty()) os << "\n" << e.notes << "\n";
}

json_value to_json(const experiment& e, const experiment_result& r) {
  json_value root = json_value::object();
  // rn-bench-v2 everywhere: declarative scenarios carry their canonical
  // "topology" spec; escape-hatch scenarios simply omit the key. (The v1
  // compatibility hold ended with the Decay coin-contract re-baseline.)
  root["schema"] = "rn-bench-v2";
  root["experiment"] = r.id;
  root["title"] = e.title;
  root["claim"] = e.claim;
  root["profile"] = e.profile;
  root["seed"] = r.seed;
  root["trials"] = r.trials_requested;

  json_value scenarios = json_value::array();
  for (const auto& sr : r.scenarios) {
    json_value js = json_value::object();
    js["label"] = sr.label;
    if (!sr.topology.empty())
      js["topology"] = sr.topology;
    json_value params = json_value::object();
    for (const auto& [name, value] : sr.params) params[name] = value;
    js["params"] = std::move(params);
    js["trials"] = sr.trials;
    json_value ms = json_value::object();
    for (const auto& m : sr.summaries) {
      json_value s = json_value::object();
      s["count"] = m.stats.count;
      s["mean"] = m.stats.mean;
      s["stddev"] = m.stats.stddev;
      s["min"] = m.stats.min;
      s["p10"] = m.stats.p10;
      s["p50"] = m.stats.p50;
      s["p90"] = m.stats.p90;
      s["max"] = m.stats.max;
      ms[m.name] = std::move(s);
    }
    js["metrics"] = std::move(ms);
    scenarios.push_back(std::move(js));
  }
  root["scenarios"] = std::move(scenarios);
  return root;
}

registry& registry::instance() {
  static registry r;
  return r;
}

void registry::add(experiment e) {
  RN_REQUIRE(!e.id.empty(), "experiment id must be non-empty");
  RN_REQUIRE(find(e.id) == nullptr, "duplicate experiment id: " + e.id);
  experiments_.push_back(std::move(e));
}

const experiment* registry::find(std::string_view id) const {
  for (const auto& e : experiments_)
    if (e.id == id) return &e;
  return nullptr;
}

std::vector<std::string> registry::ids() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(e.id);
  return out;
}

}  // namespace rn::sim
