// Minimal JSON document model for machine-readable experiment output and
// the broadcast service's request/response lines.
//
// Deliberately tiny: ordered objects (insertion order is preserved so output
// is deterministic and diffable), doubles printed as integers when integral,
// %.17g (round-trip exact) otherwise. `parse_json` covers the full value
// grammar (the service reads newline-delimited request objects with it);
// numbers are doubles, so 64-bit identifiers above 2^53 should travel as
// strings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rn::sim {

class json_value {
 public:
  enum class kind : std::uint8_t { null, boolean, number, string, array, object };

  json_value() = default;                     ///< null
  json_value(bool b) : kind_(kind::boolean), bool_(b) {}
  json_value(double v) : kind_(kind::number), num_(v) {}
  json_value(int v) : kind_(kind::number), num_(v) {}
  json_value(std::int64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}
  json_value(std::uint64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}
  json_value(std::string s) : kind_(kind::string), str_(std::move(s)) {}
  json_value(std::string_view s) : kind_(kind::string), str_(s) {}
  json_value(const char* s) : kind_(kind::string), str_(s) {}

  [[nodiscard]] static json_value array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
  }
  [[nodiscard]] static json_value object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
  }

  [[nodiscard]] kind type() const { return kind_; }

  /// Array append (requires array kind).
  void push_back(json_value v);

  /// Object field access: inserts a null field if absent (requires object).
  json_value& operator[](std::string_view key);

  // --- read access (the service's request-parsing side) ---

  /// Object field lookup: nullptr when absent or when this is not an object.
  [[nodiscard]] const json_value* find(std::string_view key) const;
  /// Element count of an array or object; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  /// Array element access (requires array kind and i < size()).
  [[nodiscard]] const json_value& at(std::size_t i) const;

  [[nodiscard]] bool is_null() const { return kind_ == kind::null; }
  /// Typed reads with a fallback for absent/mistyped values. A field that is
  /// present but of the wrong type reads as the fallback — callers that need
  /// to distinguish use find() + type().
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind_ == kind::boolean ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0) const {
    return kind_ == kind::number ? num_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string empty;
    return kind_ == kind::string ? str_ : empty;
  }

  /// Serializes compactly when indent == 0, pretty-printed otherwise.
  void dump(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  kind kind_ = kind::null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<json_value> arr_;
  std::vector<std::pair<std::string, json_value>> obj_;

  void write(std::ostream& os, int indent, int depth) const;
  static void write_escaped(std::ostream& os, std::string_view s);
  static void write_number(std::ostream& os, double v);
};

/// Parses one JSON value (the whole input must be consumed, modulo
/// whitespace). Throws contract_error with a byte offset on syntax errors.
[[nodiscard]] json_value parse_json(std::string_view text);

}  // namespace rn::sim
