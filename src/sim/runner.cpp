#include "sim/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "radio/network.h"

namespace rn::sim {

unsigned resolve_threads(unsigned requested, std::size_t trials) {
  unsigned t = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (trials > 0 && t > trials) t = static_cast<unsigned>(trials);
  return t < 1 ? 1 : t;
}

void run_parallel(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  RN_REQUIRE(static_cast<bool>(fn), "run_parallel requires a work function");
  if (count == 0) return;

  const unsigned workers = resolve_threads(threads, count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&] {
    for (;;) {
      const std::size_t u = next.fetch_add(1, std::memory_order_relaxed);
      if (u >= count) return;
      try {
        fn(u);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // drain the queue
        return;
      }
    }
  };

  // Every worker (the caller included) holds one slot of the shared worker
  // budget while it runs and returns it the moment its queue drains — so
  // the capacity a finished scenario worker frees up is immediately
  // borrowable by a live big trial's intra-trial shard team instead of
  // idling. The requested worker count itself is always honored (an
  // explicit --threads beats the budget; intra-trial auto mode is what
  // adapts), so borrowing here is accounting, not admission control.
  std::atomic<int> to_return{
      static_cast<int>(radio::borrow_workers(workers))};
  auto work_and_release = [&work, &to_return] {
    work();
    if (to_return.fetch_sub(1, std::memory_order_relaxed) > 0)
      radio::return_workers(1);
  };
  if (workers == 1) {
    work_and_release();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned i = 0; i < workers - 1; ++i)
      pool.emplace_back(work_and_release);
    work_and_release();
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

trial_results run_trials(const run_config& cfg, const trial_fn& fn) {
  RN_REQUIRE(static_cast<bool>(fn), "run_trials requires a trial function");
  trial_results out;
  out.per_trial.resize(cfg.trials);
  run_parallel(cfg.trials, cfg.threads, [&](std::size_t t) {
    rng r = rng::for_stream(cfg.seed, cfg.stream_base + t);
    out.per_trial[t] = fn(t, r);
  });
  return out;
}

}  // namespace rn::sim
