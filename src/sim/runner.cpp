#include "sim/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace rn::sim {

unsigned resolve_threads(unsigned requested, std::size_t trials) {
  unsigned t = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (trials > 0 && t > trials) t = static_cast<unsigned>(trials);
  return t < 1 ? 1 : t;
}

void run_parallel(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  RN_REQUIRE(static_cast<bool>(fn), "run_parallel requires a work function");
  if (count == 0) return;

  const unsigned workers = resolve_threads(threads, count);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&] {
    for (;;) {
      const std::size_t u = next.fetch_add(1, std::memory_order_relaxed);
      if (u >= count) return;
      try {
        fn(u);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // drain the queue
        return;
      }
    }
  };

  if (workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

trial_results run_trials(const run_config& cfg, const trial_fn& fn) {
  RN_REQUIRE(static_cast<bool>(fn), "run_trials requires a trial function");
  trial_results out;
  out.per_trial.resize(cfg.trials);
  run_parallel(cfg.trials, cfg.threads, [&](std::size_t t) {
    rng r = rng::for_stream(cfg.seed, cfg.stream_base + t);
    out.per_trial[t] = fn(t, r);
  });
  return out;
}

}  // namespace rn::sim
