// Named experiments on top of the scenario-parallel runner.
//
// An experiment is a list of scenarios (e.g. one per diameter value). A
// scenario is declarative by default: a topology spec names the graph family
// and a list of protocol probes names what runs on it and which metric
// columns it produces; `trial_fn run` remains as an escape hatch for the
// construction/coding experiments that measure something other than a
// registered broadcast protocol. `run_experiment` flattens
// experiment -> scenarios -> trials into one global work queue on the thread
// pool (scenario-level parallelism) and aggregates each metric into a
// `stats_summary`; the result renders as the classic aligned text table
// and/or as machine-readable JSON (the BENCH_*.json format the CI perf
// trajectory accumulates).
//
// Determinism contract: scenario s / trial t always runs on rng stream
// (s << 32) + t of the run seed, so aggregate results depend only on
// (seed, trials) — never on --threads or on which scenarios share the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "core/api.h"
#include "graph/topology.h"
#include "sim/json.h"
#include "sim/runner.h"

namespace rn::sim {

/// One protocol run per trial of a declarative scenario, producing one or
/// more metric columns. Draw order per trial: one rng draw for the topology
/// seed, then one draw per probe for the protocol seed.
struct protocol_probe {
  protocol_probe() = default;
  protocol_probe(std::string protocol_id, std::string metric_name)
      : protocol(std::move(protocol_id)), metric(std::move(metric_name)) {}

  std::string protocol;  ///< core::protocol_registry id
  std::string metric;    ///< column for rounds_to_complete (or the
                         ///< dissemination rounds when relay_phase is set)
  /// Phase-split reporting (the Thm 1.1/1.3 setup-vs-dissemination rows):
  /// when `relay_phase` is non-empty, every other phase's rounds sum into
  /// `setup_metric` and `metric` becomes rounds_to_complete minus that setup.
  std::string setup_metric;
  std::string relay_phase;
  std::string completed_metric;  ///< if non-empty, emit the completion flag
  std::string verified_metric;   ///< if non-empty, emit payloads_verified
  /// Per-probe option overrides (0 = inherit the scenario's options).
  std::size_t payload_size = 0;
  std::uint64_t message_seed = 0;
};

/// One parameter point of an experiment.
struct scenario {
  std::string label;  ///< row label, e.g. "D=8"
  /// Key columns shown before the metrics (e.g. {"D", 8}, {"n", 241}).
  std::vector<std::pair<std::string, double>> params;
  /// Declarative form: a fresh `topology` member is built per trial (its seed
  /// drawn from the trial rng) and every probe runs on it.
  graph::topology_spec topology;
  core::broadcast_workload workload;  ///< source + message count
  core::options options;          ///< seed/fast_forward set per probe
  std::vector<protocol_probe> probes;
  /// Escape hatch: when set, it replaces the declarative fields entirely
  /// (construction experiments, coding-layer measurements, noise models).
  trial_fn run;
};

/// The trial function a scenario executes: `run` if set, else the
/// declarative topology + probes interpreter. Throws if neither is present.
[[nodiscard]] trial_fn make_trial(const scenario& sc);

/// Observer of declarative trial lifecycles. The distributed backend
/// (src/dist) installs one to see each trial's resolved topology spec and
/// freshly built graph *before* any network is constructed — its window to
/// arm the radio remote-walk hook and ship the spec to worker ranks.
/// `trial_begin` is called right after `build_topology`, `trial_end` when
/// the trial's probes are done (including on exception). Escape-hatch
/// scenarios (`scenario::run`) build no declarative topology and bypass the
/// hook. Implementations must be safe against concurrent trials from the
/// scenario pool — the dist session serializes them internally.
class trial_graph_hook {
 public:
  virtual ~trial_graph_hook() = default;
  virtual void trial_begin(const graph::topology_spec& spec,
                           const graph::graph& g) = 0;
  virtual void trial_end(const graph::graph& g) = 0;
};

/// Installs (nullptr clears) the process-wide trial observer. Set it before
/// launching a run; swapping it mid-run races the trial pool.
void set_trial_graph_hook(trial_graph_hook* hook);
[[nodiscard]] trial_graph_hook* get_trial_graph_hook();

struct experiment {
  std::string id;       ///< CLI name, e.g. "e1"
  std::string title;
  std::string claim;    ///< the paper claim under test
  std::string profile;  ///< constants profile ("fast", "paper", ...)
  std::string notes;    ///< epilogue printed under the table
  std::size_t default_trials = 5;
  /// Excluded from `--experiment all` (scale sweeps); run explicitly by id.
  bool slow = false;
  /// Metric column order for the table; empty = first-seen order.
  std::vector<std::string> metric_columns;
  std::function<std::vector<scenario>()> make_scenarios;
};

struct metric_summary {
  std::string name;
  stats_summary stats;
};

struct scenario_result {
  std::string label;
  std::vector<std::pair<std::string, double>> params;
  std::string topology;    ///< canonical spec text; empty for escape-hatch
  std::size_t trials = 0;  ///< trials run
  std::vector<metric_summary> summaries;

  /// nullptr if no trial reported the metric.
  [[nodiscard]] const stats_summary* find(std::string_view name) const;
};

struct experiment_result {
  std::string id;
  std::uint64_t seed = 0;
  std::size_t trials_requested = 0;
  std::vector<scenario_result> scenarios;
};

/// Aggregates per-trial metrics by name (trials missing a metric simply do
/// not contribute to its summary). Order: first-seen across trials.
[[nodiscard]] std::vector<metric_summary> aggregate(
    const std::vector<metrics>& per_trial);

/// Runs every scenario of `e` with `cfg` trials/threads/seed.
[[nodiscard]] experiment_result run_experiment(const experiment& e,
                                               const run_config& cfg);

/// Human-readable report: banner, aligned table (means), notes.
void print_report(std::ostream& os, const experiment& e,
                  const experiment_result& r);

/// Machine-readable report with the full per-metric summaries. Thread count
/// is deliberately not recorded: it must never affect results.
[[nodiscard]] json_value to_json(const experiment& e,
                                 const experiment_result& r);

/// Process-wide experiment name -> definition table. Experiments register
/// explicitly (no static-initialization tricks) via bench::register_all().
class registry {
 public:
  static registry& instance();

  void add(experiment e);
  [[nodiscard]] const experiment* find(std::string_view id) const;
  [[nodiscard]] std::vector<std::string> ids() const;  ///< registration order

 private:
  std::vector<experiment> experiments_;
};

}  // namespace rn::sim
