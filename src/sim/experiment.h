// Named experiments on top of the trial-parallel runner.
//
// An experiment is a list of scenarios (e.g. one per diameter value); each
// scenario supplies a trial function measuring one or more named metrics.
// `run_experiment` executes every scenario's trials on the thread pool and
// aggregates each metric into a `stats_summary`; the result renders as the
// classic aligned text table and/or as machine-readable JSON (the BENCH_*.json
// format the CI perf trajectory accumulates).
//
// Determinism contract: scenario s / trial t always runs on rng stream
// (s << 32) + t of the run seed, so aggregate results depend only on
// (seed, trials) — never on --threads.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "sim/json.h"
#include "sim/runner.h"

namespace rn::sim {

/// One parameter point of an experiment.
struct scenario {
  std::string label;  ///< row label, e.g. "D=8"
  /// Key columns shown before the metrics (e.g. {"D", 8}, {"n", 241}).
  std::vector<std::pair<std::string, double>> params;
  /// Hard cap on trials for expensive scenarios (0 = no cap). Applies
  /// identically at every thread count, so determinism is unaffected.
  std::size_t max_trials = 0;
  trial_fn run;
};

struct experiment {
  std::string id;       ///< CLI name, e.g. "e1"
  std::string title;
  std::string claim;    ///< the paper claim under test
  std::string profile;  ///< constants profile ("fast", "paper", ...)
  std::string notes;    ///< epilogue printed under the table
  std::size_t default_trials = 5;
  /// Metric column order for the table; empty = first-seen order.
  std::vector<std::string> metric_columns;
  std::function<std::vector<scenario>()> make_scenarios;
};

struct metric_summary {
  std::string name;
  stats_summary stats;
};

struct scenario_result {
  std::string label;
  std::vector<std::pair<std::string, double>> params;
  std::size_t trials = 0;  ///< trials actually run (after max_trials cap)
  std::vector<metric_summary> summaries;

  /// nullptr if no trial reported the metric.
  [[nodiscard]] const stats_summary* find(std::string_view name) const;
};

struct experiment_result {
  std::string id;
  std::uint64_t seed = 0;
  std::size_t trials_requested = 0;
  std::vector<scenario_result> scenarios;
};

/// Aggregates per-trial metrics by name (trials missing a metric simply do
/// not contribute to its summary). Order: first-seen across trials.
[[nodiscard]] std::vector<metric_summary> aggregate(
    const std::vector<metrics>& per_trial);

/// Runs every scenario of `e` with `cfg` trials/threads/seed.
[[nodiscard]] experiment_result run_experiment(const experiment& e,
                                               const run_config& cfg);

/// Human-readable report: banner, aligned table (means), notes.
void print_report(std::ostream& os, const experiment& e,
                  const experiment_result& r);

/// Machine-readable report with the full per-metric summaries. Thread count
/// is deliberately not recorded: it must never affect results.
[[nodiscard]] json_value to_json(const experiment& e,
                                 const experiment_result& r);

/// Process-wide experiment name -> definition table. Experiments register
/// explicitly (no static-initialization tricks) via bench::register_all().
class registry {
 public:
  static registry& instance();

  void add(experiment e);
  [[nodiscard]] const experiment* find(std::string_view id) const;
  [[nodiscard]] std::vector<std::string> ids() const;  ///< registration order

 private:
  std::vector<experiment> experiments_;
};

}  // namespace rn::sim
