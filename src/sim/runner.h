// Trial-parallel Monte Carlo runner.
//
// Fans N independent trials out over a std::thread pool. Trial t always runs
// on `rng::for_stream(seed, stream_base + t)` and writes its metrics into
// slot t of the result vector, so the outcome is bit-identical regardless of
// thread count or scheduling — parallelism is purely an execution detail.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/metrics.h"

namespace rn::sim {

struct run_config {
  std::size_t trials = 8;
  unsigned threads = 0;           ///< 0 = std::thread::hardware_concurrency()
  std::uint64_t seed = 1;
  std::uint64_t stream_base = 0;  ///< trial t uses rng stream stream_base + t
};

/// One trial: gets its index and a private deterministic rng, returns its
/// measurements. Must not touch shared mutable state (trials run in parallel).
using trial_fn = std::function<metrics(std::size_t trial, rng& r)>;

struct trial_results {
  std::vector<metrics> per_trial;  ///< indexed by trial
};

/// Worker count actually used for (requested, trials): never 0, never more
/// than `trials`.
[[nodiscard]] unsigned resolve_threads(unsigned requested, std::size_t trials);

/// Fans `count` independent work units out over a thread pool: `fn(u)` is
/// called exactly once for every u in [0, count), in an unspecified order and
/// possibly concurrently. `fn` owns its determinism (derive rng streams from
/// u, write only to slot u). If a unit throws, the queue is drained and the
/// first exception is rethrown after all workers have stopped.
void run_parallel(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Runs `cfg.trials` trials of `fn`, in parallel when cfg.threads (or the
/// hardware) allows. If a trial throws, the first exception is rethrown after
/// all workers have stopped.
[[nodiscard]] trial_results run_trials(const run_config& cfg,
                                       const trial_fn& fn);

}  // namespace rn::sim
